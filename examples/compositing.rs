//! Image compositing on the in-memory SC accelerator vs software and
//! binary CIM, with quality metrics — the paper's first application
//! (Fig. 3a).
//!
//! Run with `cargo run --release --example compositing`.

use reram_sc::apps::scbackend::ScReramConfig;
use reram_sc::apps::{compositing, metrics, synth};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 32;
    let set = synth::app_images(size, size, 7);
    let reference = compositing::software(&set.foreground, &set.background, &set.alpha)?;

    println!("compositing {size}x{size}: foreground blobs over textured background");
    println!("{:<22}{:>12}{:>12}", "backend", "SSIM (%)", "PSNR (dB)");

    for n in [32usize, 64, 128, 256] {
        let cfg = ScReramConfig::new(n, 11);
        let out = compositing::sc_reram(&set.foreground, &set.background, &set.alpha, &cfg)?;
        println!(
            "{:<22}{:>12.1}{:>12.1}",
            format!("SC-ReRAM N={n}"),
            metrics::ssim_percent(&reference, &out)?,
            metrics::psnr(&reference, &out)?
        );
    }

    let cim = compositing::binary_cim(&set.foreground, &set.background, &set.alpha, 0.0, 1)?;
    println!(
        "{:<22}{:>12.1}{:>12.1}",
        "binary CIM",
        metrics::ssim_percent(&reference, &cim)?,
        metrics::psnr(&reference, &cim)?
    );

    // Write the composites out as PGM files for inspection.
    std::fs::write("composited_software.pgm", reference.to_pgm())?;
    let out = compositing::sc_reram(
        &set.foreground,
        &set.background,
        &set.alpha,
        &ScReramConfig::new(256, 11),
    )?;
    std::fs::write("composited_sc_reram.pgm", out.to_pgm())?;
    println!("\nwrote composited_software.pgm and composited_sc_reram.pgm");
    Ok(())
}
