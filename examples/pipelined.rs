//! Cross-array pipelined execution demo: one logical program, sliced at
//! clean register-lifetime cuts and run through the ❶ SBS / ❷ arithmetic
//! / ❸ S2B stage workers — the executable form of the Fig. 5 throughput
//! model — then the same scheduler driving a real image kernel.
//!
//! Run with `cargo run --release --example pipelined`.

use reram_sc::accel::cost::ScOperation;
use reram_sc::accel::pipeline::PipelineModel;
use reram_sc::accel::program::sched::{self, PipelineScheduler, StageKind};
use reram_sc::accel::program::Program;
use reram_sc::accel::{Accelerator, ImscError};
use reram_sc::apps::{bilinear, synth, ScReramConfig, Schedule};
use reram_sc::sc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- One logical program, pipelined across arrays -----------------
    // 32 independent multiply wavefronts: encode two operands ❶,
    // AND-multiply them ❷, read the product ❸.
    let mut p = Program::new();
    for i in 0..32u8 {
        let a = p.encode(Fixed::from_u8(64 + i));
        let b = p.encode(Fixed::from_u8(200 - i));
        let prod = p.multiply(a, b);
        p.read(prod);
    }

    // Slice it at wavefront boundaries (no register lives across a cut)
    // and run with 4 arrays in flight. Each slice gets its own
    // accelerator; values and ledgers are bit-identical to running the
    // slices one by one.
    let slices = sched::partition_into(&p, 8)?;
    let scheduler = PipelineScheduler::new(4);
    let run = scheduler.run(&slices, |i| -> Result<Accelerator, ImscError> {
        Accelerator::builder()
            .stream_len(256)
            .seed(i as u64)
            .build()
    })?;

    let report = run.report;
    println!(
        "slices: {}, wavefronts: {}",
        run.slices.len(),
        report.wavefronts
    );
    for stage in StageKind::ALL {
        println!(
            "stage {:<5} busy {:>10.1} ns, occupancy {:>5.1}%",
            stage.name(),
            report.stage_busy_ns[stage.index()],
            report.stage_occupancy()[stage.index()] * 100.0
        );
    }
    println!(
        "measured II {:.1} ns, makespan {:.1} ns ({:.2}x over serial)",
        report.initiation_interval_ns,
        report.makespan_ns,
        report.pipeline_speedup()
    );

    // The measured initiation interval lands on the analytic Fig. 5
    // bottleneck for the same op shape. Table III charges *one* operand
    // conversion per op while this program encodes both multiply
    // operands, so the measured II is exactly two analytic SBS stages.
    let model = PipelineModel::evaluation_default();
    let analytic = model.stages(ScOperation::Multiply, 256).bottleneck_ns();
    println!(
        "analytic bottleneck {analytic:.1} ns/conversion → measured/analytic = {:.3} \
         (2 conversions per wavefront)",
        report.initiation_interval_ns / analytic
    );

    // --- The same scheduler under an image kernel ----------------------
    // `Schedule::Pipelined` gives bit-identical pixels and ledgers to the
    // default per-tile schedule, plus the measured pipeline report.
    let src = synth::value_noise(16, 16, 3, 9);
    let cfg = ScReramConfig::new(256, 11);
    let (per_tile, _) = bilinear::sc_reram_with_stats(&src, 2, &cfg)?;
    let (pipelined, stats) = bilinear::sc_reram_with_stats(
        &src,
        2,
        &cfg.with_schedule(Schedule::Pipelined { arrays: 3 }),
    )?;
    assert_eq!(per_tile.pixels(), pipelined.pixels());
    let kernel_report = stats.pipeline.expect("pipelined runs carry a report");
    println!(
        "bilinear 16→32: {} tiles pipelined over {} arrays, II {:.1} ns, \
         throughput {:.2} ops/us (pixels identical to per-tile)",
        stats.tiles,
        kernel_report.arrays,
        kernel_report.initiation_interval_ns,
        kernel_report.throughput_ops_per_us()
    );
    Ok(())
}
