//! Reliability through stochastic computing (§IV-C): the same CIM fault
//! rates that barely dent the SC design devastate binary arithmetic.
//!
//! Run with `cargo run --release --example fault_tolerance`.

use reram_sc::apps::scbackend::ScReramConfig;
use reram_sc::apps::{compositing, metrics, synth};
use reram_sc::device::cell::DeviceParams;
use reram_sc::device::faults::FaultRates;
use reram_sc::device::vcm::derive_fault_rates;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Derive per-operation failure rates from the device model, exactly
    // as the paper's evaluation does.
    let rates = derive_fault_rates(&DeviceParams::hfo2(), 4, 512, 99);
    println!(
        "derived CIM fault rates: AND {:.4}, OR {:.4}, XOR {:.4}, MAJ {:.4}",
        rates.and, rates.or, rates.xor, rates.maj
    );

    let size = 24;
    let set = synth::app_images(size, size, 21);
    let reference = compositing::software(&set.foreground, &set.background, &set.alpha)?;

    println!("\ncompositing {size}x{size} under CIM faults");
    println!("{:<28}{:>12}{:>12}", "design", "SSIM (%)", "PSNR (dB)");

    // SC design, fault-free and faulty.
    for (label, cfg) in [
        ("SC-ReRAM N=64 fault-free", ScReramConfig::new(64, 5)),
        (
            "SC-ReRAM N=64 faulty",
            ScReramConfig::new(64, 5).with_faults(rates),
        ),
        (
            "SC-ReRAM N=64 10x faults",
            ScReramConfig::new(64, 5).with_faults(FaultRates::uniform(0.05)),
        ),
    ] {
        let out = compositing::sc_reram(&set.foreground, &set.background, &set.alpha, &cfg)?;
        println!(
            "{:<28}{:>12.1}{:>12.1}",
            label,
            metrics::ssim_percent(&reference, &out)?,
            metrics::psnr(&reference, &out)?
        );
    }

    // Binary CIM with the mean sensing fault probability.
    let p = (rates.and + rates.or + rates.xor + rates.maj) / 4.0;
    for (label, prob) in [
        ("binary CIM fault-free", 0.0),
        ("binary CIM faulty", p.max(0.01)),
        ("binary CIM 5% faults", 0.05),
    ] {
        let out = compositing::binary_cim(&set.foreground, &set.background, &set.alpha, prob, 3)?;
        println!(
            "{:<28}{:>12.1}{:>12.1}",
            label,
            metrics::ssim_percent(&reference, &out)?,
            metrics::psnr(&reference, &out)?
        );
    }

    println!("\nSC keeps its structure because every stream bit has equal weight;");
    println!("binary CIM collapses because faults strike positional (high) bits.");
    Ok(())
}
