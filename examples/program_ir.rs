//! Program IR demo: build an SC kernel declaratively, let the planner
//! handle rows and refreshes, and run it on the in-memory accelerator.
//!
//! Run with `cargo run --release --example program_ir`.

use reram_sc::accel::program::Program;
use reram_sc::accel::{Accelerator, RnRefreshPolicy};
use reram_sc::sc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A compositing-style kernel over three "pixels", written as a
    // program emitter instead of imperative accelerator calls. Virtual
    // registers stand in for crossbar rows; nobody calls `release`.
    let pixels = [(200u8, 40u8, 128u8), (90, 170, 30), (250, 10, 220)];
    let mut p = Program::new();
    for &(f, b, alpha) in &pixels {
        // MAJ computes sel·max + (1−sel)·min, so direct the select at
        // the larger operand.
        let sel = if f >= b { alpha } else { 255 - alpha };
        // F and B must share a realization (one correlated batch) …
        let fb = p.encode_correlated(&[Fixed::from_u8(f), Fixed::from_u8(b)]);
        // … while the select must be independent of it: a new refresh
        // group declares the independence point. The next pixel's F/B
        // pair safely reuses the select's realization (those streams
        // never meet in one operation), so no tag change there.
        p.next_group();
        let hs = p.encode(Fixed::from_u8(sel));
        let hc = p.blend(fb[0], fb[1], hs);
        p.read(hc);
    }

    // The plan knows the program's row footprint before anything runs.
    let plan = p.plan()?;
    println!(
        "ops: {}, outputs: {}, rows needed: {} planned vs {} naive",
        p.len(),
        p.outputs(),
        plan.peak_rows(),
        plan.naive_peak_rows()
    );

    // Execute under the declarative schedule: `Explicit` hands refresh
    // scheduling to the program's group boundaries. The same program
    // also runs unchanged under `PerEncode`/`EveryN`, where the
    // accelerator schedules realizations itself and the tags are inert.
    let mut acc = Accelerator::builder()
        .stream_len(2048)
        .seed(7)
        .refresh_policy(RnRefreshPolicy::Explicit)
        .build()?;
    let out = plan.execute(&mut acc)?;
    for ((f, b, alpha), v) in pixels.iter().zip(&out) {
        let exact = (f64::from(*f) * f64::from(*alpha)
            + f64::from(*b) * (255.0 - f64::from(*alpha)))
            / (255.0 * 256.0);
        println!("F={f:>3} B={b:>3} α={alpha:>3}  composite ≈ {v:.4} (exact {exact:.4})");
    }
    println!(
        "rn epochs: {} (initial fill + one boundary refresh per pixel)",
        acc.rn_epoch()
    );
    assert_eq!(acc.available_rows(), 64, "the planner returned every row");
    Ok(())
}
