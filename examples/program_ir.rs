//! Program IR demo: build an SC kernel declaratively, let the planner
//! handle rows and refreshes, and run it on the in-memory accelerator —
//! then run a multi-frame loop through the compiled-template cache,
//! compiling once and binding per-frame values into the template holes.
//!
//! Run with `cargo run --release --example program_ir`.

use reram_sc::accel::program::Program;
use reram_sc::accel::{
    Accelerator, ExecArena, Optimize, PlanCache, ProgramSink, RnRefreshPolicy, Template,
    TemplateKey, ValueTape,
};
use reram_sc::sc::prelude::*;
use std::sync::Arc;

/// The compositing kernel as an emitter: the same code fills a real
/// [`Program`] (compile path) or a [`ValueTape`] (cached path, values
/// only — no op list is built).
fn emit_frame<S: ProgramSink>(pixels: &[(u8, u8, u8)], alpha_shift: u8, p: &mut S) {
    for &(f, b, alpha) in pixels {
        let alpha = alpha.saturating_add(alpha_shift);
        let sel = if f >= b { alpha } else { 255 - alpha };
        let fb = p.encode_correlated(&[Fixed::from_u8(f), Fixed::from_u8(b)]);
        p.next_group();
        let hs = p.encode(Fixed::from_u8(sel));
        let hc = p.blend(fb[0], fb[1], hs);
        p.read(hc);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A compositing-style kernel over three "pixels", written as a
    // program emitter instead of imperative accelerator calls. Virtual
    // registers stand in for crossbar rows; nobody calls `release`.
    let pixels = [(200u8, 40u8, 128u8), (90, 170, 30), (250, 10, 220)];
    let mut p = Program::new();
    for &(f, b, alpha) in &pixels {
        // MAJ computes sel·max + (1−sel)·min, so direct the select at
        // the larger operand.
        let sel = if f >= b { alpha } else { 255 - alpha };
        // F and B must share a realization (one correlated batch) …
        let fb = p.encode_correlated(&[Fixed::from_u8(f), Fixed::from_u8(b)]);
        // … while the select must be independent of it: a new refresh
        // group declares the independence point. The next pixel's F/B
        // pair safely reuses the select's realization (those streams
        // never meet in one operation), so no tag change there.
        p.next_group();
        let hs = p.encode(Fixed::from_u8(sel));
        let hc = p.blend(fb[0], fb[1], hs);
        p.read(hc);
    }

    // The plan knows the program's row footprint before anything runs.
    let plan = p.plan()?;
    println!(
        "ops: {}, outputs: {}, rows needed: {} planned vs {} naive",
        p.len(),
        p.outputs(),
        plan.peak_rows(),
        plan.naive_peak_rows()
    );

    // Execute under the declarative schedule: `Explicit` hands refresh
    // scheduling to the program's group boundaries. The same program
    // also runs unchanged under `PerEncode`/`EveryN`, where the
    // accelerator schedules realizations itself and the tags are inert.
    let mut acc = Accelerator::builder()
        .stream_len(2048)
        .seed(7)
        .refresh_policy(RnRefreshPolicy::Explicit)
        .build()?;
    let out = plan.execute(&mut acc)?;
    for ((f, b, alpha), v) in pixels.iter().zip(&out) {
        let exact = (f64::from(*f) * f64::from(*alpha)
            + f64::from(*b) * (255.0 - f64::from(*alpha)))
            / (255.0 * 256.0);
        println!("F={f:>3} B={b:>3} α={alpha:>3}  composite ≈ {v:.4} (exact {exact:.4})");
    }
    println!(
        "rn epochs: {} (initial fill + one boundary refresh per pixel)",
        acc.rn_epoch()
    );
    assert_eq!(acc.available_rows(), 64, "the planner returned every row");

    // --- Template cache: compile once, bind per frame ---------------
    // The same kernel over a 4-frame α-drift "video". Each frame emits
    // into a ValueTape — which records only the value stream and the
    // structure/value hashes, never building an op list — and probes
    // the cache. Frame 0 misses and compiles; at `Optimize::Off` the
    // template keeps holes for the encode immediates, so frames 1..4
    // bind their drifted α values into the *same* compiled plan.
    let cache = PlanCache::new();
    let mut arena = ExecArena::new();
    for frame in 0..4u8 {
        let mut tape = ValueTape::new();
        emit_frame(&pixels, frame * 16, &mut tape);
        let key = TemplateKey {
            kernel: "compositing-demo",
            structure: tape.structure_hash(),
            level: Optimize::Off,
            policy: RnRefreshPolicy::Explicit,
            substrate: 0, // one fixed substrate in this demo
            values: 0,    // Off is value-safe: one template fits all values
        };
        let tpl = match cache.lookup(&key) {
            Some(t) => t,
            None => {
                // Compile path: re-emit into a real Program this once.
                let mut p = Program::new();
                emit_frame(&pixels, frame * 16, &mut p);
                let t = Arc::new(Template::compile(p, key.level, key.policy)?);
                cache.insert(key, Arc::clone(&t));
                t
            }
        };
        let mut acc = Accelerator::builder()
            .stream_len(2048)
            .seed(7)
            .refresh_policy(RnRefreshPolicy::Explicit)
            .build()?;
        let out = tpl.execute_in(&mut acc, &tape.into_bindings(), &mut arena)?;
        println!(
            "frame {frame}: α+{:<3} composites {:?}",
            frame * 16,
            out.iter()
                .map(|v| (v * 10000.0).round() / 10000.0)
                .collect::<Vec<_>>()
        );
    }
    let stats = cache.stats();
    println!(
        "plan cache: {} hit(s), {} miss(es), {} template(s) resident",
        stats.hits, stats.misses, stats.len
    );
    assert_eq!((stats.hits, stats.misses, stats.len), (3, 1, 1));
    Ok(())
}
