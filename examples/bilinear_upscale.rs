//! Bilinear up-scaling through nested in-memory MAJ blends — the paper's
//! second application (Fig. 3b).
//!
//! Run with `cargo run --release --example bilinear_upscale`.

use reram_sc::apps::scbackend::{CmosScConfig, CmosSngKind, ScReramConfig};
use reram_sc::apps::{bilinear, metrics, synth};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = synth::blobs(16, 16, 3, 9);
    let factor = 2;
    let reference = bilinear::software(&src, factor)?;
    println!(
        "up-scaling {}x{} -> {}x{}",
        src.width(),
        src.height(),
        reference.width(),
        reference.height()
    );
    println!("{:<26}{:>12}{:>12}", "backend", "SSIM (%)", "PSNR (dB)");

    for n in [32usize, 128] {
        let out = bilinear::sc_reram(&src, factor, &ScReramConfig::new(n, 5))?;
        println!(
            "{:<26}{:>12.1}{:>12.1}",
            format!("SC-ReRAM N={n}"),
            metrics::ssim_percent(&reference, &out)?,
            metrics::psnr(&reference, &out)?
        );
    }

    let cmos = bilinear::sc_cmos(&src, factor, &CmosScConfig::new(128, CmosSngKind::Sobol, 5))?;
    println!(
        "{:<26}{:>12.1}{:>12.1}",
        "SC-CMOS Sobol N=128",
        metrics::ssim_percent(&reference, &cmos)?,
        metrics::psnr(&reference, &cmos)?
    );

    let cim = bilinear::binary_cim(&src, factor, 0.0, 0)?;
    println!(
        "{:<26}{:>12.1}{:>12.1}",
        "binary CIM",
        metrics::ssim_percent(&reference, &cim)?,
        metrics::psnr(&reference, &cim)?
    );
    Ok(())
}
