//! Image matting: recovering the α channel with in-memory CORDIV — the
//! paper's third application (Fig. 3c).
//!
//! Run with `cargo run --release --example matting`.

use reram_sc::apps::scbackend::ScReramConfig;
use reram_sc::apps::{compositing, matting, metrics, synth};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 24;
    let set = synth::app_images(size, size, 13);
    // The observed image I is a true composite, so the exact matte is
    // recoverable as α = (I − B) / (F − B).
    let observed = compositing::software(&set.foreground, &set.background, &set.alpha)?;

    let rec_true = matting::recomposite(&set.foreground, &set.background, &set.alpha)?;
    println!("matting {size}x{size}: quality of recomposites with estimated alpha");
    println!("{:<22}{:>12}{:>12}", "backend", "SSIM (%)", "PSNR (dB)");

    for n in [64usize, 256] {
        let est = matting::sc_reram(
            &observed,
            &set.background,
            &set.foreground,
            &ScReramConfig::new(n, 3),
        )?;
        let rec = matting::recomposite(&set.foreground, &set.background, &est)?;
        println!(
            "{:<22}{:>12.1}{:>12.1}",
            format!("SC-ReRAM N={n}"),
            metrics::ssim_percent(&rec_true, &rec)?,
            metrics::psnr(&rec_true, &rec)?
        );
    }

    let est = matting::binary_cim(&observed, &set.background, &set.foreground, 0.0, 0)?;
    let rec = matting::recomposite(&set.foreground, &set.background, &est)?;
    println!(
        "{:<22}{:>12.1}{:>12.1}",
        "binary CIM",
        metrics::ssim_percent(&rec_true, &rec)?,
        metrics::psnr(&rec_true, &rec)?
    );

    // The headline reliability story: inject faults into the binary CIM
    // divider and watch the matte collapse, while SC degrades gracefully.
    let est = matting::binary_cim(&observed, &set.background, &set.foreground, 0.02, 1)?;
    let rec = matting::recomposite(&set.foreground, &set.background, &est)?;
    println!(
        "{:<22}{:>12.1}{:>12.1}",
        "binary CIM, 2% faults",
        metrics::ssim_percent(&rec_true, &rec)?,
        metrics::psnr(&rec_true, &rec)?
    );
    Ok(())
}
