//! Quickstart: the full in-memory SC flow on a handful of scalars.
//!
//! Run with `cargo run --release --example quickstart`.

use reram_sc::accel::Accelerator;
use reram_sc::sc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An accelerator with 1024-bit streams (long, for a crisp demo; the
    // paper's default is 256) and the latch-optimized IMSNG.
    let mut acc = Accelerator::builder().stream_len(1024).seed(2025).build()?;

    // ❶ Binary → stochastic: encode 0.75 and 0.5 against independent
    //    in-memory random-number rows.
    let x = acc.encode(Fixed::from_u8(192))?; // 192/256 = 0.75
    let y = acc.encode(Fixed::from_u8(128))?; // 128/256 = 0.50

    // ❷ In-memory SC arithmetic.
    let product = acc.multiply(x, y)?;
    let sum = acc.scaled_add(x, y)?;

    // ❸ Stochastic → binary through the reference column and ADC.
    println!(
        "0.75 × 0.50  ≈ {:.4} (exact 0.3750)",
        acc.read_value(product)?
    );
    println!("(0.75+0.50)/2 ≈ {:.4} (exact 0.6250)", acc.read_value(sum)?);

    // Correlated operations share random-number rows.
    let (a, b) = acc.encode_correlated(Fixed::from_u8(60), Fixed::from_u8(180))?;
    let diff = acc.abs_subtract(a, b)?;
    let quot = acc.divide(a, b)?;
    println!(
        "|0.234-0.703| ≈ {:.4} (exact 0.4688)",
        acc.read_value(diff)?
    );
    println!("0.234/0.703  ≈ {:.4} (exact 0.3333)", acc.read_value(quot)?);

    // What did that cost in the memory?
    let costs = reram_sc::device::energy::ReramCosts::calibrated();
    let ledger = acc.ledger();
    println!(
        "\nledger: {} IMSNG sense steps, {} CORDIV steps, {} ADC samples",
        ledger.imsng.sense_ops, ledger.cordiv_steps, ledger.adc_samples
    );
    println!(
        "estimated cost: {:.1} ns, {:.2} nJ (per-op model, N-bit rows)",
        ledger.latency_ns(&costs),
        ledger.energy_nj(&costs, 1024)
    );
    Ok(())
}
