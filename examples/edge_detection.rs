//! Extension application: Roberts-cross edge detection entirely in
//! memory — two XOR subtractions and one correlated blend per pixel.
//!
//! Run with `cargo run --release --example edge_detection`.

use reram_sc::apps::scbackend::ScReramConfig;
use reram_sc::apps::{edge, metrics, synth};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let img = synth::blobs(24, 24, 3, 17);
    let reference = edge::software(&img);

    println!("edge detection on 24x24 blobs");
    println!("{:<22}{:>12}{:>12}", "backend", "SSIM (%)", "PSNR (dB)");

    for n in [64usize, 256] {
        let out = edge::sc_reram(&img, &ScReramConfig::new(n, 9))?;
        println!(
            "{:<22}{:>12.1}{:>12.1}",
            format!("SC-ReRAM N={n}"),
            metrics::ssim_percent(&reference, &out)?,
            metrics::psnr(&reference, &out)?
        );
    }

    let cim = edge::binary_cim(&img, 0.0, 0)?;
    println!(
        "{:<22}{:>12.1}{:>12.1}",
        "binary CIM",
        metrics::ssim_percent(&reference, &cim)?,
        metrics::psnr(&reference, &cim)?
    );

    let cim_faulty = edge::binary_cim(&img, 0.02, 1)?;
    println!(
        "{:<22}{:>12.1}{:>12.1}",
        "binary CIM, 2% faults",
        metrics::ssim_percent(&reference, &cim_faulty)?,
        metrics::psnr(&reference, &cim_faulty)?
    );

    std::fs::write("edges_software.pgm", reference.to_pgm())?;
    println!("\nwrote edges_software.pgm");
    Ok(())
}
