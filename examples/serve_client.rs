//! Serve client: drive the SC-ReRAM service over its wire protocol.
//!
//! Starts an in-process server on a loopback port (stand-in for a
//! `cargo run --release -p serve` deployment), then walks the client
//! API: a kernel request on the default SC-ReRAM backend, the same
//! request on the software baseline for comparison, a deadline so tight
//! the service must shed it, and the in-band shutdown handshake.
//!
//! Run with `cargo run --release --example serve_client`.

use reram_sc::apps::request::KernelRequest;
use reram_sc::apps::{synth, ScReramConfig, Schedule};
use reram_sc::service::{Client, Server, ServiceConfig, Status};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ❶ A service over four pipelined shards with a shared template
    //    cache — the same configuration `serve --arrays 4` runs.
    let engine = ScReramConfig::new(64, 42)
        .with_schedule(Schedule::Pipelined { arrays: 4 })
        .with_plan_cache(Arc::new(reram_sc::accel::PlanCache::new()));
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let server = Server::start(
        listener,
        ServiceConfig {
            engine,
            ..ServiceConfig::default()
        },
    )?;
    let addr = server.addr();
    println!("service listening on {addr}");

    // ❷ One client, one edge-detection request on the accelerator.
    let mut client = Client::connect(addr)?;
    let image = synth::value_noise(32, 32, 3, 7);
    let req = KernelRequest::Edge { image };
    let resp = client.call(&req, None)?;
    println!(
        "edge 32x32 on SC-ReRAM: {:?}, N={}, queued {:.2} ms, served {:.2} ms",
        resp.status,
        resp.effective_n,
        resp.queue_ns as f64 / 1e6,
        resp.service_ns as f64 / 1e6
    );
    let sc_pixels = resp.pixels.expect("Ok response carries pixels");

    // ❸ The same request on the exact software baseline (backend byte
    //    3 on the wire): the SC result should be close, not identical.
    let resp = client.call_backend(&req, 3, 0.0, None)?;
    let sw_pixels = resp.pixels.expect("Ok response carries pixels");
    let mse = sc_pixels
        .pixels()
        .iter()
        .zip(sw_pixels.pixels())
        .map(|(&a, &b)| (f64::from(a) - f64::from(b)).powi(2))
        .sum::<f64>()
        / sc_pixels.pixels().len() as f64;
    println!("software baseline MSE vs SC-ReRAM: {mse:.2}");

    // ❹ An unmeetable deadline: the service sheds instead of erroring —
    //    graceful degradation is part of the API contract.
    let resp = client.call(&req, Some(Duration::from_micros(1)))?;
    assert_eq!(resp.status, Status::Shed, "1 µs is never meetable");
    println!("1 µs deadline: {:?} ({})", resp.status, resp.message);

    // ❺ In-band shutdown: the server acknowledges, then exits.
    let bye = client.shutdown()?;
    assert_eq!(bye.status, Status::Ok);
    server.wait();
    println!("service drained and stopped");
    Ok(())
}
