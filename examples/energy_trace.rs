//! Energy ground truth demo: record the nvsim command stream a real
//! schedule emits, replay it through the memory simulator, and compare
//! the simulated joules/nanoseconds against the analytic Table III
//! model.
//!
//! Two layers are shown:
//!
//! 1. **Program level** — one accelerator records its trace while a
//!    small program executes; the trace drains into a [`TraceSink`] and
//!    replays to a [`ReplaySummary`].
//! 2. **Kernel level** — `with_trace_replay(true)` makes the edge
//!    kernel do the same across a whole pipelined schedule: every
//!    slice's sub-trace is stitched in dispatch order and replayed,
//!    and the summary lands in `ScRunStats::replay`.
//!
//! Run with `cargo run --release --example energy_trace`.
//!
//! [`TraceSink`]: reram_sc::accel::instrument::TraceSink
//! [`ReplaySummary`]: reram_sc::accel::instrument::ReplaySummary

use reram_sc::accel::instrument::{replay_config, TraceSink};
use reram_sc::accel::program::Program;
use reram_sc::accel::Accelerator;
use reram_sc::apps::{edge, synth, ScReramConfig, Schedule};
use reram_sc::device::energy::ReramCosts;
use reram_sc::sc::prelude::*;

const STREAM_LEN: usize = 64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let costs = ReramCosts::calibrated();

    // --- 1. One program, one recorded trace ---------------------------
    // `record_trace(true)` makes the accelerator log every sense, write,
    // CORDIV step, and ADC sample it performs as an nvsim command on its
    // assigned bank.
    let mut acc = Accelerator::builder()
        .stream_len(STREAM_LEN)
        .seed(7)
        .record_trace(true)
        .trace_bank(0)
        .build()?;
    let mut p = Program::new();
    let a = p.encode(Fixed::from_u8(96));
    let b = p.encode(Fixed::from_u8(200));
    let prod = p.multiply(a, b);
    p.read(prod);
    let values = p.plan()?.execute(&mut acc)?;

    // Drain the recorded sub-trace into a sink and replay. The sink's
    // memory config derives from the same calibration table the analytic
    // model uses, so replay and model disagree only where the *models*
    // differ, never the plumbing.
    let mut sink = TraceSink::new(replay_config(STREAM_LEN))?;
    sink.ingest(&mut acc);
    let replay = sink.finish()?;
    println!(
        "multiply: product ≈ {:.4}, {} commands replayed, {:.1} ns busy, {:.3} nJ",
        values[0], replay.commands, replay.busy_ns, replay.energy_nj
    );

    // The ledger's replay mirror matches the simulator to machine
    // precision — the cross-check the test suite pins at < 1e-9.
    let ledger = acc.ledger();
    assert_eq!(replay.commands, ledger.replay_commands());
    println!(
        "ledger mirror: busy gap {:.2e}, energy gap {:.2e}",
        replay.busy_vs_ledger(ledger, &costs),
        replay.energy_vs_ledger(ledger, &costs, STREAM_LEN)
    );

    // --- 2. A kernel's real pipelined schedule ------------------------
    // The same machinery, driven by the scheduler: three arrays in
    // flight, each slice recording on its own bank, sub-traces stitched
    // in dispatch order as slices retire.
    let img = synth::value_noise(16, 32, 3, 11);
    let cfg = ScReramConfig::new(STREAM_LEN, 9)
        .with_trace_replay(true)
        .with_schedule(Schedule::Pipelined { arrays: 3 });
    let (_, stats) = edge::sc_reram_with_stats(&img, &cfg)?;
    let replay = stats.replay.expect("trace replay was enabled");
    println!(
        "edge 16x32 pipelined: {} commands over {} banks, makespan {:.1} ns \
         (serial busy {:.1} ns), {:.3} nJ, peak buffer {} commands",
        replay.commands,
        replay.banks_used,
        replay.time_ns,
        replay.busy_ns,
        replay.energy_nj,
        replay.peak_buffered_commands
    );

    // The paper-facing analytic estimates sit inside a documented band
    // of the replayed ground truth (see the energy_crosscheck suite).
    let analytic_ns = stats.ledger.latency_ns(&costs);
    let analytic_nj = stats.ledger.energy_nj(&costs, STREAM_LEN);
    println!(
        "analytic/replay: latency {:.3}, energy {:.3}",
        analytic_ns / replay.busy_ns,
        analytic_nj / replay.energy_nj
    );
    Ok(())
}
