//! # reram-sc — all-in-memory stochastic computing using ReRAM
//!
//! Umbrella crate for the full simulation stack reproducing
//! *"All-in-Memory Stochastic Computing using ReRAM"* (DAC 2025). It
//! re-exports every layer so examples and downstream users need a single
//! dependency:
//!
//! * [`sc`] ([`sc_core`]) — bit-streams, RNGs, SNG, SC arithmetic,
//!   correlation control, conversion, accuracy metrics.
//! * [`device`] ([`reram`]) — ReRAM cells, crossbar arrays, scouting
//!   logic, TRNG rows, peripheral latches, ADC, variability and fault
//!   models.
//! * [`mem`] ([`nvsim`]) — NVMain-style trace-driven timing and energy
//!   simulation.
//! * [`accel`] ([`imsc`]) — the paper's contribution: the in-memory SC
//!   accelerator (IMSNG generation, in-place SC operations, ADC-based
//!   conversion, cost model).
//! * [`baseline`] ([`baselines`]) — CMOS SC designs and the binary-CIM
//!   comparator.
//! * [`apps`] ([`imgproc`]) — image compositing, bilinear interpolation,
//!   and image matting over software / SC / binary-CIM backends, plus
//!   the unified [`apps::request`](imgproc::request) dispatch API.
//! * [`service`] ([`serve`]) — the long-running SC-ReRAM service: an
//!   async batched TCP frontend over the shard farm, with admission
//!   control, request coalescing, and deadline-driven degradation.
//!
//! # Quickstart
//!
//! ```
//! use reram_sc::accel::Accelerator;
//! use reram_sc::sc::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Multiply 0.75 × 0.5 entirely "in memory".
//! let mut acc = Accelerator::builder().stream_len(256).seed(7).build()?;
//! let a = acc.encode(Fixed::from_u8(192))?;
//! let b = acc.encode(Fixed::from_u8(128))?;
//! let prod = acc.multiply(a, b)?;
//! let result = acc.read_value(prod)?;
//! assert!((result - 0.375).abs() < 0.1);
//! # Ok(())
//! # }
//! ```

pub use baselines as baseline;
pub use imgproc as apps;
pub use imsc as accel;
pub use nvsim as mem;
pub use reram as device;
pub use sc_core as sc;
pub use serve as service;
