#!/usr/bin/env bash
# Bench-regression gate: reruns the engine bench smoke and fails when any
# committed BENCH_engine.json anchor regresses beyond a threshold.
#
# Usage: scripts/bench_check.sh [BASELINE] [THRESHOLD_PCT]
#   BASELINE       committed anchor file (default: BENCH_engine.json)
#   THRESHOLD_PCT  allowed slowdown in percent (default: 25, or
#                  $BENCH_CHECK_THRESHOLD)
#
# The fresh measurement is written next to the baseline as
# BENCH_engine.check.json so a failing run leaves the numbers behind for
# inspection; the committed baseline is never touched.

set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_engine.json}"
threshold="${2:-${BENCH_CHECK_THRESHOLD:-25}}"

if [ ! -f "$baseline" ]; then
    echo "bench_check: baseline '$baseline' not found" >&2
    exit 2
fi

echo "==> bench regression check vs $baseline (threshold ${threshold}%)"
cargo run --release -p bench --bin bench_engine -- \
    --out "${baseline%.json}.check.json" \
    --check "$baseline" \
    --check-threshold "$threshold"
