#!/usr/bin/env bash
# Tier-1 verification in one command: formatting, lints, build, tests,
# and a bench smoke run that refreshes BENCH_engine.json.
#
# Usage: scripts/verify.sh [--no-bench]
#   --no-bench  skip the bench smoke run (e.g. on very slow machines)

set -euo pipefail
cd "$(dirname "$0")/.."

run_bench=1
for arg in "$@"; do
    case "$arg" in
    --no-bench) run_bench=0 ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The thread work queue must stay exercised even if the umbrella crate's
# default features ever stop enabling it (the determinism tests force
# multi-worker runs via IMGPROC_TILE_THREADS, so this is meaningful on
# single-core machines too).
echo "==> cargo test -q -p imgproc --features parallel"
cargo test -q -p imgproc --features parallel

if [ "$run_bench" = 1 ]; then
    echo "==> bench smoke run (BENCH_engine.json)"
    cargo run --release -p bench --bin bench_engine -- --out BENCH_engine.json
fi

echo "verify: OK"
