#!/usr/bin/env bash
# Tier-1 verification in one command: formatting, lints, build, tests,
# and a bench smoke run that refreshes BENCH_engine.json.
#
# Usage: scripts/verify.sh [--no-bench|--bench]
#   --no-bench  skip the bench smoke run (e.g. on very slow machines)
#   --bench     force the bench smoke run even on CI
#
# On CI (CI=1 or CI=true) the bench smoke run is skipped automatically
# unless --bench is passed — the dedicated bench-regression job covers
# it there. Every step prints its wall-clock duration.

set -euo pipefail
cd "$(dirname "$0")/.."

run_bench=1
case "${CI:-}" in
1 | true) run_bench=0 ;;
esac
for arg in "$@"; do
    case "$arg" in
    --no-bench) run_bench=0 ;;
    --bench) run_bench=1 ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

total_start=$SECONDS
step() {
    local name=$1
    shift
    echo "==> $name"
    local start=$SECONDS
    "$@"
    echo "    [$name: $((SECONDS - start))s]"
}

step "cargo fmt --all --check" cargo fmt --all --check
step "cargo clippy --workspace --all-targets -- -D warnings" \
    cargo clippy --workspace --all-targets -- -D warnings
step "cargo build --release" cargo build --release
step "cargo test -q" cargo test -q

# The thread work queue must stay exercised even if the umbrella crate's
# default features ever stop enabling it (the determinism tests force
# multi-worker runs via IMGPROC_TILE_THREADS, so this is meaningful on
# single-core machines too). The imsc leg is the only build that runs
# the threaded pipeline scheduler's *failure-path* tests (stage-worker
# abort, token bookkeeping, lowest-indexed-error semantics) and the
# BoundedQueue/Semaphore unit tests.
step "cargo test -q -p imsc --features parallel" \
    cargo test -q -p imsc --features parallel
step "cargo test -q -p imgproc --features parallel" \
    cargo test -q -p imgproc --features parallel

# The serve frontend end to end over real loopback TCP: an in-process
# server, a short closed-loop burst, every request answered Ok, clean
# shutdown. (CI additionally smokes the standalone `serve` binary.)
step "service smoke (in-process loadgen)" \
    cargo run --release -p bench --bin loadgen -- \
    --requests 8 --concurrency 2 --size 12 --expect-all-ok

if [ "$run_bench" = 1 ]; then
    step "bench smoke run (BENCH_engine.json)" \
        cargo run --release -p bench --bin bench_engine -- --out BENCH_engine.json
else
    echo "==> bench smoke run skipped (CI or --no-bench; pass --bench to force)"
fi

echo "verify: OK [total: $((SECONDS - total_start))s]"
