//! Exact software reference kernels (the accuracy yardstick).
//!
//! All pixel kernels in 8-bit fixed point (`x/256` semantics) and in
//! `f64`, so both quantized and continuous references are available.

/// Exact compositing `C = F·α + B·(1−α)` in `f64` probabilities.
#[must_use]
pub fn composite_f64(f: f64, b: f64, alpha: f64) -> f64 {
    f * alpha + b * (1.0 - alpha)
}

/// Exact compositing over 8-bit pixels (round-to-nearest).
#[must_use]
pub fn composite_u8(f: u8, b: u8, alpha: u8) -> u8 {
    let fa = f64::from(f) * f64::from(alpha);
    let ba = f64::from(b) * (255.0 - f64::from(alpha));
    ((fa + ba) / 255.0).round().clamp(0.0, 255.0) as u8
}

/// Exact bilinear blend of four neighbours with fractional offsets
/// `dx, dy ∈ [0, 1]`.
#[must_use]
pub fn bilinear_f64(i11: f64, i12: f64, i21: f64, i22: f64, dx: f64, dy: f64) -> f64 {
    (1.0 - dx) * (1.0 - dy) * i11 + (1.0 - dx) * dy * i12 + dx * (1.0 - dy) * i21 + dx * dy * i22
}

/// Exact bilinear blend over 8-bit pixels with 8-bit fractional offsets.
#[must_use]
pub fn bilinear_u8(i11: u8, i12: u8, i21: u8, i22: u8, dx: u8, dy: u8) -> u8 {
    let fx = f64::from(dx) / 256.0;
    let fy = f64::from(dy) / 256.0;
    bilinear_f64(
        f64::from(i11),
        f64::from(i12),
        f64::from(i21),
        f64::from(i22),
        fx,
        fy,
    )
    .round()
    .clamp(0.0, 255.0) as u8
}

/// Exact alpha estimation `α̂ = (I − B) / (F − B)`, clamped to `[0, 1]`,
/// in `f64` probabilities. Returns 0 when `F == B` (undefined matte).
#[must_use]
pub fn matte_alpha_f64(i: f64, b: f64, f: f64) -> f64 {
    let denom = f - b;
    if denom.abs() < 1e-12 {
        0.0
    } else {
        ((i - b) / denom).clamp(0.0, 1.0)
    }
}

/// Exact alpha estimation over 8-bit pixels.
#[must_use]
pub fn matte_alpha_u8(i: u8, b: u8, f: u8) -> u8 {
    (matte_alpha_f64(f64::from(i), f64::from(b), f64::from(f)) * 255.0)
        .round()
        .clamp(0.0, 255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_endpoints() {
        assert_eq!(composite_u8(200, 40, 255), 200);
        assert_eq!(composite_u8(200, 40, 0), 40);
        assert!((composite_f64(1.0, 0.0, 0.25) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn bilinear_corners_and_center() {
        assert_eq!(bilinear_u8(10, 20, 30, 40, 0, 0), 10);
        assert_eq!(bilinear_u8(10, 20, 30, 40, 0, 255), 20); // ≈ dy = 1
        let center = bilinear_u8(0, 0, 255, 255, 128, 128);
        assert!((i32::from(center) - 128).abs() <= 1, "{center}");
    }

    #[test]
    fn matting_inverts_compositing() {
        for alpha in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
            let f = 0.9;
            let b = 0.1;
            let i = composite_f64(f, b, alpha);
            let est = matte_alpha_f64(i, b, f);
            assert!((est - alpha).abs() < 1e-12, "alpha {alpha}");
        }
    }

    #[test]
    fn matte_handles_degenerate_background() {
        assert_eq!(matte_alpha_f64(0.5, 0.5, 0.5), 0.0);
        assert_eq!(matte_alpha_u8(200, 100, 100), 0);
    }

    #[test]
    fn matte_clamps_out_of_range() {
        assert_eq!(matte_alpha_f64(1.0, 0.4, 0.6), 1.0);
        assert_eq!(matte_alpha_f64(0.0, 0.4, 0.6), 0.0);
    }
}
