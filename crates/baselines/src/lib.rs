//! # baselines — comparison designs for the evaluation
//!
//! The paper compares its in-ReRAM SC accelerator against two families:
//!
//! * [`cmos`] — conventional CMOS stochastic-computing circuits
//!   (LFSR- or Sobol-based SNG, serial gate logic, `log₂N`-bit counter),
//!   synthesized at 45 nm; reproduced here as a calibrated cost model
//!   (Table III ✛ rows) plus the off-chip data-movement costs the CMOS
//!   flow pays when images live in the same ReRAM storage (Figs. 4–5).
//! * [`bincim`] — binary-radix compute-in-memory arithmetic in the style
//!   of AritPIM (bit-serial MAGIC ops over bit-sliced operands): the ✧
//!   reference of Table IV and the normalization baseline of Figs. 4–5.
//!   Implemented *functionally* — real bit-serial adders, shift-add
//!   multipliers and restoring dividers whose intermediate bits can be
//!   fault-injected, exhibiting the bit-significance vulnerability SC
//!   avoids.
//! * [`sw`] — exact software reference kernels (with optional 8-bit
//!   quantization), the accuracy yardstick everywhere.
//! * [`scrimp`] — write-based in-memory SBS generation (SCRIMP-style),
//!   the prior in-memory approach whose endurance cost and missing
//!   correlation control motivate the paper's read-based IMSNG.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bincim;
pub mod cmos;
pub mod scrimp;
pub mod sw;

pub use bincim::{BinCimCosts, BinaryCim};
pub use cmos::{CmosDesign, CmosSng};
pub use scrimp::WriteBasedSng;
