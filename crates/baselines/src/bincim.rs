//! Binary-radix compute-in-memory baseline (AritPIM-style, paper ref.\[35\]).
//!
//! Bulk-bitwise in-memory machines execute binary arithmetic *bit-serially*
//! over bit-sliced operands: a ripple-carry adder takes `O(n)` row
//! operations, a shift-add multiplier `O(n²)`, and a restoring divider
//! `O(n²)` — each cycle a MAGIC-style stateful gate (a row write). The
//! implementation here is functional, not just a cost table: real
//! bit-serial adders, multipliers and dividers whose *intermediate result
//! bits* can be flipped with a per-cycle fault probability. Because binary
//! radix is positional, a single fault in a high bit corrupts the result
//! catastrophically — the vulnerability the paper's Table IV quantifies
//! against SC's graceful degradation.

use sc_core::rng::Xoshiro256;

/// Cycle counts and per-cycle costs of the binary CIM arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinCimCosts {
    /// Row-operations per full adder bit (MAGIC NOR decomposition).
    pub cycles_per_adder_bit: f64,
    /// One in-memory cycle latency, ns (a programming pulse).
    pub t_cycle_ns: f64,
    /// Energy per cycle per column, pJ.
    pub e_cycle_bit_pj: f64,
    /// Columns processed in parallel (bit-sliced SIMD width).
    pub simd_columns: usize,
    /// Bitcells touched per word per cycle (operand + temporary slices of
    /// a MAGIC-style datapath).
    pub bitcells_per_word: f64,
    /// Words co-resident in one array (columns / slices-per-word); sets
    /// the per-word latency amortization.
    pub words_per_array: usize,
}

impl BinCimCosts {
    /// Calibrated defaults: 13 MAGIC cycles per full-adder bit, write-class
    /// cycle time, 256-column SIMD.
    #[must_use]
    pub fn calibrated() -> Self {
        BinCimCosts {
            cycles_per_adder_bit: 13.0,
            t_cycle_ns: 19.825,
            e_cycle_bit_pj: 1.663,
            simd_columns: 256,
            bitcells_per_word: 4.0,
            words_per_array: 64,
        }
    }

    /// Cycles for an `n`-bit addition.
    #[must_use]
    pub fn add_cycles(&self, n: u32) -> f64 {
        self.cycles_per_adder_bit * f64::from(n)
    }

    /// Cycles for an `n`-bit multiplication (shift-add).
    #[must_use]
    pub fn mul_cycles(&self, n: u32) -> f64 {
        self.cycles_per_adder_bit * f64::from(n) * f64::from(n)
    }

    /// Cycles for an `n`-bit restoring division (subtract + select per
    /// quotient bit).
    #[must_use]
    pub fn div_cycles(&self, n: u32) -> f64 {
        1.5 * self.cycles_per_adder_bit * f64::from(n) * f64::from(n)
    }

    /// Per-element latency (ns) of an operation taking `cycles`, with the
    /// SIMD width amortized across elements.
    #[must_use]
    pub fn latency_per_element_ns(&self, cycles: f64) -> f64 {
        cycles * self.t_cycle_ns / self.simd_columns as f64
    }

    /// Per-element energy (nJ) of an operation taking `cycles` (each
    /// cycle touches one bit per column; per element = one column).
    #[must_use]
    pub fn energy_per_element_nj(&self, cycles: f64) -> f64 {
        cycles * self.e_cycle_bit_pj / 1000.0
    }

    /// Per-word energy (nJ): each cycle programs `bitcells_per_word`
    /// cells of the word's column group.
    #[must_use]
    pub fn energy_per_word_nj(&self, cycles: f64) -> f64 {
        cycles * self.bitcells_per_word * self.e_cycle_bit_pj / 1000.0
    }

    /// Per-word latency (ns), amortized over the words co-resident in
    /// one array.
    #[must_use]
    pub fn latency_per_word_ns(&self, cycles: f64) -> f64 {
        cycles * self.t_cycle_ns / self.words_per_array as f64
    }
}

impl Default for BinCimCosts {
    fn default() -> Self {
        BinCimCosts::calibrated()
    }
}

/// A functional binary CIM unit with per-cycle fault injection.
///
/// # Example
///
/// ```
/// use baselines::bincim::BinaryCim;
///
/// let mut cim = BinaryCim::fault_free();
/// assert_eq!(cim.add(100, 55), 155);
/// assert_eq!(cim.mul_wide(12, 11), 132);
/// assert_eq!(cim.div(200, 8), 25);
/// ```
#[derive(Debug, Clone)]
pub struct BinaryCim {
    fault_prob: f64,
    rng: Xoshiro256,
    cycles: u64,
}

impl BinaryCim {
    /// A fault-free unit.
    #[must_use]
    pub fn fault_free() -> Self {
        BinaryCim {
            fault_prob: 0.0,
            rng: Xoshiro256::seed_from_u64(0),
            cycles: 0,
        }
    }

    /// A unit whose intermediate bits flip with probability `p` per
    /// produced bit.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn with_faults(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "fault probability out of range");
        BinaryCim {
            fault_prob: p,
            rng: Xoshiro256::seed_from_u64(seed),
            cycles: 0,
        }
    }

    /// Total bit-serial cycles executed.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    fn faulty(&mut self, bit: bool) -> bool {
        self.cycles += 1;
        if self.fault_prob > 0.0 && self.rng.next_f64() < self.fault_prob {
            !bit
        } else {
            bit
        }
    }

    /// Generic bit-serial ripple-carry addition over `bits` positions
    /// (each sum and carry bit is a faultable intermediate).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=32`.
    pub fn add_bits(&mut self, a: u32, b: u32, bits: u32) -> u32 {
        assert!((1..=32).contains(&bits), "adder width must be 1..=32");
        let mut carry = false;
        let mut out = 0u32;
        for i in 0..bits {
            let ab = (a >> i) & 1 == 1;
            let bb = (b >> i) & 1 == 1;
            let sum = self.faulty(ab ^ bb ^ carry);
            carry = self.faulty((ab && bb) || (carry && (ab ^ bb)));
            if sum {
                out |= 1 << i;
            }
        }
        out & (u32::MAX >> (32 - bits))
    }

    /// 16-bit ripple-carry addition of two values.
    pub fn add_wide(&mut self, a: u16, b: u16) -> u16 {
        self.add_bits(u32::from(a), u32::from(b), 16) as u16
    }

    /// Absolute difference `|a − b|` via bit-serial two's-complement
    /// subtraction (subtract, then conditionally negate on borrow).
    pub fn sub_abs(&mut self, a: u8, b: u8) -> u8 {
        // a - b = a + !b + 1 over 9 bits; bit 8 is the no-borrow flag.
        let diff = self.add_bits(u32::from(a), u32::from(!b) + 1, 9);
        if diff & 0x100 != 0 {
            (diff & 0xFF) as u8
        } else {
            // Negative: negate the 8-bit two's-complement result.
            let neg = self.add_bits(!(diff & 0xFF) & 0xFF, 1, 8);
            neg as u8
        }
    }

    /// 8-bit addition with saturation at 255 (pixel semantics).
    pub fn add(&mut self, a: u8, b: u8) -> u8 {
        let wide = self.add_wide(u16::from(a), u16::from(b));
        if wide > 255 {
            255
        } else {
            wide as u8
        }
    }

    /// 8×8→16-bit shift-add multiplication.
    pub fn mul_wide(&mut self, a: u8, b: u8) -> u16 {
        let mut acc = 0u16;
        for i in 0..8 {
            if (b >> i) & 1 == 1 {
                acc = self.add_wide(acc, u16::from(a) << i);
            } else {
                // The shift-add datapath still spends the adder cycles on
                // zero partial products (no early exit in SIMD CIM).
                for _ in 0..16 {
                    self.cycles += 2;
                }
            }
        }
        acc
    }

    /// Fixed-point multiply of two 8-bit fractions (`a·b/256`), the pixel
    /// kernel used by compositing/interpolation.
    pub fn mul(&mut self, a: u8, b: u8) -> u8 {
        (self.mul_wide(a, b) >> 8) as u8
    }

    /// 8-bit restoring division `a / b` (returns 255 on division by
    /// zero, matching a saturating hardware path).
    pub fn div(&mut self, a: u8, b: u8) -> u8 {
        if b == 0 {
            return 255;
        }
        let mut remainder = 0u16;
        let mut quotient = 0u8;
        for i in (0..8).rev() {
            remainder = (remainder << 1) | u16::from((a >> i) & 1);
            let fits = remainder >= u16::from(b);
            let q_bit = self.faulty(fits);
            if q_bit {
                quotient |= 1 << i;
                remainder = remainder.wrapping_sub(u16::from(b));
                // A faulted quotient bit of a restoring divider also
                // corrupts the running remainder; model the cycles.
            }
            for _ in 0..12 {
                self.cycles += 1;
            }
        }
        quotient
    }

    /// Fixed-point fraction division `⌊a·256/b⌋` clamped to 255 — the
    /// alpha-estimation kernel of image matting.
    pub fn div_frac(&mut self, a: u8, b: u8) -> u8 {
        if b == 0 {
            return 255;
        }
        let mut remainder = 0u32;
        let wide = u32::from(a) << 8;
        let mut quotient = 0u32;
        for i in (0..16).rev() {
            remainder = (remainder << 1) | ((wide >> i) & 1);
            let fits = remainder >= u32::from(b);
            let q_bit = self.faulty(fits);
            if q_bit {
                quotient |= 1 << i;
                remainder = remainder.wrapping_sub(u32::from(b));
            }
            for _ in 0..12 {
                self.cycles += 1;
            }
        }
        quotient.min(255) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_arithmetic_is_exact() {
        let mut cim = BinaryCim::fault_free();
        for (a, b) in [(0u8, 0u8), (255, 255), (100, 55), (17, 3)] {
            assert_eq!(cim.add(a, b), a.saturating_add(b), "add {a}+{b}");
            assert_eq!(
                cim.mul_wide(a, b),
                u16::from(a) * u16::from(b),
                "mul {a}*{b}"
            );
            if b != 0 {
                assert_eq!(cim.div(a, b), a / b, "div {a}/{b}");
            }
        }
    }

    #[test]
    fn sub_abs_is_absolute_difference() {
        let mut cim = BinaryCim::fault_free();
        for (a, b) in [(0u8, 0u8), (255, 0), (0, 255), (100, 55), (55, 100), (7, 7)] {
            assert_eq!(cim.sub_abs(a, b), a.abs_diff(b), "|{a}-{b}|");
        }
    }

    #[test]
    fn frac_ops_match_fixed_point_reference() {
        let mut cim = BinaryCim::fault_free();
        assert_eq!(cim.mul(128, 128), 64); // 0.5 × 0.5 = 0.25
        assert_eq!(cim.div_frac(64, 128), 128); // 0.25 / 0.5 = 0.5
        assert_eq!(cim.div_frac(200, 100), 255); // saturates above 1.0
        assert_eq!(cim.div_frac(1, 0), 255);
    }

    #[test]
    fn faults_produce_large_positional_errors() {
        // With a 2% per-bit fault rate, binary multiplication errors are
        // frequently worth > 16 gray levels — the positional vulnerability.
        let mut cim = BinaryCim::with_faults(0.02, 42);
        let mut big_errors = 0;
        let trials = 500;
        for t in 0..trials {
            let a = (t * 37 % 256) as u8;
            let b = (t * 91 % 256) as u8;
            let got = cim.mul(a, b);
            let want = ((u16::from(a) * u16::from(b)) >> 8) as u8;
            if (i32::from(got) - i32::from(want)).abs() > 16 {
                big_errors += 1;
            }
        }
        assert!(big_errors > trials / 20, "big errors: {big_errors}");
    }

    #[test]
    fn cycles_accumulate_with_op_complexity() {
        let mut cim = BinaryCim::fault_free();
        cim.add(1, 2);
        let add_cycles = cim.cycles();
        let mut cim = BinaryCim::fault_free();
        cim.mul_wide(3, 5);
        let mul_cycles = cim.cycles();
        assert!(mul_cycles > 5 * add_cycles, "{mul_cycles} vs {add_cycles}");
    }

    #[test]
    fn cost_model_complexity_ordering() {
        let c = BinCimCosts::calibrated();
        assert!(c.mul_cycles(8) > 7.0 * c.add_cycles(8));
        assert!(c.div_cycles(8) > c.mul_cycles(8));
        // Latency amortizes across SIMD columns; energy does not.
        let lat = c.latency_per_element_ns(c.mul_cycles(8));
        assert!(lat < c.mul_cycles(8) * c.t_cycle_ns);
        let e = c.energy_per_element_nj(c.mul_cycles(8));
        assert!(e > 1.0, "{e}"); // ≈ 832 cycles × 1.663 pJ ≈ 1.38 nJ
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed| {
            let mut cim = BinaryCim::with_faults(0.05, seed);
            (0..64)
                .map(|i| cim.mul(i as u8 * 3, 200))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
