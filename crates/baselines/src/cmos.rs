//! CMOS stochastic-computing baseline (Table III ✛ rows).
//!
//! The conventional SC datapath: a PRNG/QRNG plus binary comparator
//! generate the bit-streams, simple gates process them *serially* (one
//! bit per clock), and a `log₂N`-bit counter converts back to binary —
//! so total latency is `critical path × N`. The per-design constants
//! below reproduce the paper's 45 nm Synopsys DC synthesis results at
//! `N = 256` and scale linearly in `N`.
//!
//! Functional accuracy of these designs is obtained with the matching
//! `sc_core` RNGs ([`sc_core::rng::Lfsr`], [`sc_core::rng::Sobol`]); this
//! module supplies the *hardware-cost* side, including the off-chip
//! stream movement the CMOS flow pays when images live in ReRAM storage
//! (the Figs. 4–5 scenario).

use imsc::cost::{DesignCost, ScOperation};

/// The stochastic number generator family of a CMOS design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmosSng {
    /// 8-bit maximal-length LFSR + comparator.
    Lfsr,
    /// 8-bit Sobol sequence generator + comparator.
    Sobol,
}

impl CmosSng {
    /// Display label matching the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CmosSng::Lfsr => "LFSR + Comparator",
            CmosSng::Sobol => "Sobol + Comparator",
        }
    }
}

/// Reference stream length of the synthesized designs.
const N_REF: f64 = 256.0;

/// `(critical_path_ns, energy_nj_at_n256)` for each (SNG, op) pair,
/// encoding the paper's Table III ✛ block.
fn constants(sng: CmosSng, op: ScOperation) -> (f64, f64) {
    match (sng, op) {
        (CmosSng::Lfsr, ScOperation::Multiply) => (122.88 / N_REF, 0.23),
        (CmosSng::Lfsr, ScOperation::Addition) => (130.56 / N_REF, 0.26),
        (CmosSng::Lfsr, ScOperation::Subtraction) => (133.12 / N_REF, 0.16),
        (CmosSng::Lfsr, ScOperation::Division) => (133.12 / N_REF, 0.18),
        (CmosSng::Sobol, ScOperation::Multiply) => (125.44 / N_REF, 0.30),
        (CmosSng::Sobol, ScOperation::Addition) => (130.56 / N_REF, 0.30),
        (CmosSng::Sobol, ScOperation::Subtraction) => (133.12 / N_REF, 0.12),
        (CmosSng::Sobol, ScOperation::Division) => (130.56 / N_REF, 0.14),
    }
}

/// A CMOS stochastic-computing design instance.
///
/// # Example
///
/// ```
/// use baselines::cmos::{CmosDesign, CmosSng};
/// use imsc::cost::ScOperation;
///
/// let d = CmosDesign::new(CmosSng::Lfsr);
/// let c = d.op_cost(ScOperation::Multiply, 256);
/// assert!((c.latency_ns - 122.88).abs() < 1e-9);
/// assert!((c.energy_nj - 0.23).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CmosDesign {
    sng: CmosSng,
}

impl CmosDesign {
    /// Creates a design with the given SNG family.
    #[must_use]
    pub fn new(sng: CmosSng) -> Self {
        CmosDesign { sng }
    }

    /// The SNG family.
    #[must_use]
    pub fn sng(&self) -> CmosSng {
        self.sng
    }

    /// End-to-end cost (❶SNG + ❷serial logic + ❸counter) of one SC
    /// operation at stream length `n`, *excluding* memory movement.
    #[must_use]
    pub fn op_cost(&self, op: ScOperation, n: usize) -> DesignCost {
        let (cp_ns, e_ref) = constants(self.sng, op);
        let scale = n as f64 / N_REF;
        DesignCost {
            latency_ns: cp_ns * n as f64,
            energy_nj: e_ref * scale,
        }
    }

    /// Off-chip data-movement cost for shuttling binary operands between
    /// the ReRAM storage and the CMOS SC logic — the cost the paper notes
    /// is "often overlooked". The CMOS flow moves *binary* words (its
    /// SNG/counter sit at the logic side), so this cost is independent of
    /// the stream length `N`, which is exactly why a crossover against
    /// the N-proportional in-memory design exists.
    ///
    /// Uses 115 pJ/bit end-to-end access energy (off-chip storage read +
    /// link + SRAM staging, the standard figure for off-chip access) and
    /// 1.25 ns/bit serialized link latency.
    #[must_use]
    pub fn transfer_cost(&self, words: usize, bits_per_word: u32) -> DesignCost {
        let bits = words as f64 * f64::from(bits_per_word);
        DesignCost {
            latency_ns: bits * 1.25,
            energy_nj: bits * 115.0 / 1000.0,
        }
    }

    /// Total per-operation cost including loading the binary operand
    /// words and storing the binary result (the Figs. 4–5 accounting);
    /// operands are `bits_per_word`-bit values (8-bit pixels in the
    /// paper's applications).
    #[must_use]
    pub fn op_cost_with_movement(
        &self,
        op: ScOperation,
        n: usize,
        operand_words: usize,
        bits_per_word: u32,
    ) -> DesignCost {
        let compute = self.op_cost(op, n);
        let movement = self.transfer_cost(operand_words + 1, bits_per_word);
        DesignCost {
            latency_ns: compute.latency_ns + movement.latency_ns,
            energy_nj: compute.energy_nj + movement.energy_nj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_cmos_rows_at_n256() {
        let lfsr = CmosDesign::new(CmosSng::Lfsr);
        let sobol = CmosDesign::new(CmosSng::Sobol);
        let rows = [
            (lfsr, ScOperation::Multiply, 122.88, 0.23),
            (lfsr, ScOperation::Addition, 130.56, 0.26),
            (lfsr, ScOperation::Subtraction, 133.12, 0.16),
            (lfsr, ScOperation::Division, 133.12, 0.18),
            (sobol, ScOperation::Multiply, 125.44, 0.30),
            (sobol, ScOperation::Addition, 130.56, 0.30),
            (sobol, ScOperation::Subtraction, 133.12, 0.12),
            (sobol, ScOperation::Division, 130.56, 0.14),
        ];
        for (design, op, lat, e) in rows {
            let c = design.op_cost(op, 256);
            assert!((c.latency_ns - lat).abs() < 1e-9, "{op:?} latency");
            assert!((c.energy_nj - e).abs() < 1e-9, "{op:?} energy");
        }
    }

    #[test]
    fn latency_scales_linearly_with_n() {
        let d = CmosDesign::new(CmosSng::Lfsr);
        let c32 = d.op_cost(ScOperation::Multiply, 32);
        let c256 = d.op_cost(ScOperation::Multiply, 256);
        assert!((c256.latency_ns / c32.latency_ns - 8.0).abs() < 1e-9);
        assert!((c256.energy_nj / c32.energy_nj - 8.0).abs() < 1e-9);
    }

    #[test]
    fn movement_is_stream_length_independent() {
        let d = CmosDesign::new(CmosSng::Sobol);
        let m32 = d.transfer_cost(3, 8);
        let m256 = d.transfer_cost(3, 8);
        assert_eq!(m32, m256);
        assert!((m32.energy_nj - 2.76).abs() < 1e-9);
    }

    #[test]
    fn reram_sc_beats_cmos_with_movement_at_short_streams() {
        // The paper's headline crossover: including transfers, the
        // in-memory design wins at N = 32/64 and loses by N = 256.
        use imsc::cost::reram_op_cost;
        use imsc::imsng::ImsngVariant;
        use reram::energy::ReramCosts;
        let cmos = CmosDesign::new(CmosSng::Lfsr);
        let costs = ReramCosts::calibrated();
        let e_cmos_32 = cmos
            .op_cost_with_movement(ScOperation::Multiply, 32, 2, 8)
            .energy_nj;
        let e_reram_32 =
            reram_op_cost(ScOperation::Multiply, 32, 8, ImsngVariant::Opt, &costs).energy_nj;
        assert!(e_reram_32 < e_cmos_32, "{e_reram_32} vs {e_cmos_32}");
        let e_cmos_256 = cmos
            .op_cost_with_movement(ScOperation::Multiply, 256, 2, 8)
            .energy_nj;
        let e_reram_256 =
            reram_op_cost(ScOperation::Multiply, 256, 8, ImsngVariant::Opt, &costs).energy_nj;
        assert!(e_reram_256 > e_cmos_256, "{e_reram_256} vs {e_cmos_256}");
    }
}
