//! Write-based in-memory SBS generation (SCRIMP-style, paper ref.\[13\]).
//!
//! The closest prior work to the paper generates stochastic bit-streams
//! by exploiting the *probabilistic switching of the write operation*:
//! a sub-threshold SET pulse flips each cell with a probability set by
//! the pulse width/voltage (see [`reram::vcm::VcmModel`]). The paper
//! identifies two structural drawbacks that this module makes
//! measurable:
//!
//! 1. **Speed and endurance** — every generated bit is a programming
//!    event, so an `N`-bit stream costs `N` cell writes (vs. zero
//!    entropy-related writes in read-based IMSNG), burning endurance and
//!    taking write-class (~20 ns) rather than sense-class (~2 ns) time.
//! 2. **No correlation control** — switching events in different cells
//!    are physically independent, so two streams generated this way are
//!    always uncorrelated; the correlated-input operations (XOR
//!    subtraction, CORDIV division, min, max) are simply unavailable.

use reram::array::CrossbarArray;
use reram::cell::CellState;
use reram::vcm::VcmModel;
use reram::ReramError;
use sc_core::rng::Xoshiro256;
use sc_core::{BitStream, Fixed};

/// A write-based stochastic bit-stream generator.
///
/// # Example
///
/// ```
/// use baselines::scrimp::WriteBasedSng;
/// use sc_core::Fixed;
///
/// let mut sng = WriteBasedSng::new(7);
/// let s = sng.generate(Fixed::from_u8(64), 2048);
/// assert!((s.value() - 0.25).abs() < 0.05);
/// // Every bit cost one programming event:
/// assert_eq!(sng.cell_writes(), 2048);
/// ```
#[derive(Debug, Clone)]
pub struct WriteBasedSng {
    model: VcmModel,
    rng: Xoshiro256,
    cell_writes: u64,
    write_voltage: f64,
}

impl WriteBasedSng {
    /// Creates a generator over the default HfO₂ switching model at a
    /// 1.2 V sub-threshold programming voltage.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        WriteBasedSng {
            model: VcmModel::hfo2(),
            rng: Xoshiro256::seed_from_u64(seed),
            cell_writes: 0,
            write_voltage: 1.2,
        }
    }

    /// Total programming events issued (endurance accounting).
    #[must_use]
    pub fn cell_writes(&self) -> u64 {
        self.cell_writes
    }

    /// The pulse width (seconds) that targets probability `p` at the
    /// configured voltage, or `None` for degenerate targets.
    #[must_use]
    pub fn pulse_for(&self, p: f64) -> Option<f64> {
        self.model.pulse_for_probability(self.write_voltage, p)
    }

    /// Generates an `n`-bit stream for `x` by issuing `n` probabilistic
    /// SET pulses with the pulse width that targets `P(switch) = x`.
    #[must_use]
    pub fn generate(&mut self, x: Fixed, n: usize) -> BitStream {
        let p = x.to_prob().get();
        // Degenerate targets skip the pulse shaping but still program.
        let p_switch = match self.pulse_for(p) {
            Some(t) => self.model.switch_probability(self.write_voltage, t),
            None => p,
        };
        BitStream::from_fn(n, |_| {
            self.cell_writes += 1;
            self.rng.next_f64() < p_switch
        })
    }

    /// Generates directly into an array row, programming real cells (the
    /// full endurance cost is visible on the array counters).
    ///
    /// # Errors
    ///
    /// Propagates array range errors.
    pub fn generate_into(
        &mut self,
        array: &mut CrossbarArray,
        row: usize,
        x: Fixed,
    ) -> Result<BitStream, ReramError> {
        let cols = array.cols();
        // Reset the row first (write-based generation always starts from
        // HRS), then apply the probabilistic SET pulses.
        array.write_row(row, &BitStream::zeros(cols))?;
        let bits = self.generate(x, cols);
        for col in 0..cols {
            if bits.get(col).unwrap_or(false) {
                array.write_bit(row, col, CellState::Lrs.as_bool())?;
            }
        }
        Ok(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::correlation::scc;

    #[test]
    fn tracks_target_probability() {
        let mut sng = WriteBasedSng::new(1);
        for &x in &[16u8, 128, 240] {
            let s = sng.generate(Fixed::from_u8(x), 8192);
            let expect = f64::from(x) / 256.0;
            assert!(
                (s.value() - expect).abs() < 0.02,
                "x={x}: {} vs {expect}",
                s.value()
            );
        }
    }

    #[test]
    fn every_bit_is_a_programming_event() {
        let mut sng = WriteBasedSng::new(2);
        let _ = sng.generate(Fixed::from_u8(100), 256);
        let _ = sng.generate(Fixed::from_u8(100), 256);
        assert_eq!(sng.cell_writes(), 512);
    }

    #[test]
    fn streams_cannot_be_correlated() {
        // The structural limitation the paper's IMSNG removes: two
        // write-based streams of nested targets are independent, not
        // nested, so SCC ≈ 0 instead of ≈ 1.
        let mut sng = WriteBasedSng::new(3);
        let a = sng.generate(Fixed::from_u8(60), 8192);
        let b = sng.generate(Fixed::from_u8(180), 8192);
        let c = scc(&a, &b).expect("equal lengths");
        assert!(c.abs() < 0.06, "scc {c}");
    }

    #[test]
    fn array_generation_burns_endurance() {
        let mut sng = WriteBasedSng::new(4);
        let mut array = CrossbarArray::pristine(2, 128, 5);
        sng.generate_into(&mut array, 0, Fixed::from_u8(128))
            .expect("row in range");
        // One reset row-write plus per-bit SET events: the hotspot cell
        // has seen multiple programs while read-based IMSNG would have
        // programmed the stream row exactly once.
        assert!(array.row_writes() >= 1);
        assert!(array.max_cell_writes() >= 2);
    }

    #[test]
    fn pulse_inversion_is_consistent() {
        let sng = WriteBasedSng::new(6);
        let t = sng.pulse_for(0.3).expect("valid target");
        assert!(t > 0.0);
        assert!(sng.pulse_for(0.0).is_none());
    }
}
