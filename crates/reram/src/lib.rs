//! # reram — ReRAM device, array, and compute-in-memory models
//!
//! The physical substrate of the DAC'25 reproduction: everything below the
//! accelerator architecture. The crate models
//!
//! * [`cell`] — metal-oxide (VCM) ReRAM cells with lognormal LRS/HRS
//!   resistance distributions and cycle-to-cycle variability,
//! * [`array`] — 1T1R crossbar arrays with row-granular access and
//!   multi-row activation,
//! * [`sense`] — the modified sense amplifier of scouting logic with
//!   per-operation reference currents,
//! * [`scouting`] — single-cycle in-memory (N)AND / (N)OR / X(N)OR / MAJ
//!   over activated rows, including the variability-induced misread model,
//! * [`trng`] — true-random-number rows from read-noise stochasticity
//!   (the RNG-agnostic entropy supply of IMSNG),
//! * [`latch`] — the L0/L1 write-driver latches used for predicated
//!   sensing (IMSNG-opt) and in-periphery CORDIV state,
//! * [`adc`] — the 8-bit SAR ADC digitizing bitline population counts
//!   (stochastic→binary conversion),
//! * [`vcm`] — the VCM-style device statistics from which per-operation
//!   CIM failure rates are derived,
//! * [`faults`] — seeded fault injection used by the reliability study,
//! * [`energy`] — per-operation latency/energy constants shared with the
//!   architecture-level cost model.
//!
//! # Example
//!
//! ```
//! use reram::array::CrossbarArray;
//! use reram::scouting::{ScoutingLogic, SlOp};
//! use sc_core::BitStream;
//!
//! # fn main() -> Result<(), reram::ReramError> {
//! let mut array = CrossbarArray::pristine(16, 64, 42);
//! array.write_row(0, &BitStream::from_fn(64, |i| i % 2 == 0))?;
//! array.write_row(1, &BitStream::from_fn(64, |i| i % 4 < 2))?;
//! let sl = ScoutingLogic::ideal();
//! let and = sl.execute(&array, SlOp::And, &[0, 1])?;
//! assert_eq!(and.count_ones(), 16); // 0.5 × 0.5 over 64 columns
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adc;
pub mod array;
pub mod cell;
pub mod div;
pub mod energy;
pub mod error;
pub mod faults;
pub mod latch;
pub mod math;
pub mod scouting;
pub mod sense;
pub mod trng;
pub mod vcm;

pub use array::CrossbarArray;
pub use cell::{CellState, DeviceParams, ReramCell};
pub use error::ReramError;
pub use scouting::{ScoutingLogic, SlOp};
pub use trng::TrngEngine;
