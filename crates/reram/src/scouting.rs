//! Scouting logic: single-cycle bulk bitwise operations via multi-row
//! reads (Xie et al., ISVLSI'17; enhanced variant of Yu et al.).
//!
//! A [`ScoutingLogic`] engine executes Boolean operations over whole rows
//! of a [`CrossbarArray`] in one sensing step per operation. Three
//! execution modes cover the paper's methodology:
//!
//! * **Ideal** — digital truth, no faults (the ✗ columns of Table IV).
//! * **FaultInjected** — digital truth plus seeded per-op bit flips at
//!   rates derived from the device model (the ✓ columns).
//! * **Analog** — full Monte-Carlo sensing: per-column current summation
//!   with lognormal cell variability, read noise and HRS instability,
//!   compared against the sense-amplifier references. Used to *derive*
//!   the fault rates (see [`crate::vcm`]).

use crate::array::CrossbarArray;
use crate::error::ReramError;
use crate::faults::{FaultInjector, FaultRates};
use crate::sense::SenseAmp;
use sc_core::BitStream;

/// The Boolean operations scouting logic realizes in a single cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlOp {
    /// k-input AND (reference: ≥ k LRS cells).
    And,
    /// k-input OR (reference: ≥ 1 LRS cell).
    Or,
    /// 2-input XOR (window detector on the L0/L1 pair).
    Xor,
    /// k-input NAND.
    Nand,
    /// k-input NOR.
    Nor,
    /// 2-input XNOR.
    Xnor,
    /// 3-input majority (reference: ≥ 2 LRS cells — the same reference as
    /// 2-input AND, as the paper notes).
    Maj,
    /// Single-row NOT (inverted read).
    Not,
}

impl SlOp {
    /// The human-readable mnemonic.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SlOp::And => "AND",
            SlOp::Or => "OR",
            SlOp::Xor => "XOR",
            SlOp::Nand => "NAND",
            SlOp::Nor => "NOR",
            SlOp::Xnor => "XNOR",
            SlOp::Maj => "MAJ",
            SlOp::Not => "NOT",
        }
    }

    fn check_operands(self, got: usize) -> Result<(), ReramError> {
        let ok = match self {
            SlOp::Xor | SlOp::Xnor => got == 2,
            SlOp::Maj => got == 3,
            SlOp::Not => got == 1,
            SlOp::And | SlOp::Or | SlOp::Nand | SlOp::Nor => got >= 2,
        };
        if ok {
            Ok(())
        } else {
            let expected = match self {
                SlOp::Xor | SlOp::Xnor => 2,
                SlOp::Maj => 3,
                SlOp::Not => 1,
                _ => 2,
            };
            Err(ReramError::BadOperandCount {
                op: self.name(),
                got,
                expected,
            })
        }
    }

    /// Combines one column's operand bits — the per-cell truth-table
    /// semantics, kept as the reference for the packed word path.
    #[must_use]
    pub fn combine(self, bits: &[bool]) -> bool {
        match self {
            SlOp::And => bits.iter().all(|&b| b),
            SlOp::Nand => !bits.iter().all(|&b| b),
            SlOp::Or => bits.iter().any(|&b| b),
            SlOp::Nor => !bits.iter().any(|&b| b),
            SlOp::Xor => (bits.iter().filter(|&&b| b).count() % 2) == 1,
            SlOp::Xnor => (bits.iter().filter(|&&b| b).count() % 2) == 0,
            SlOp::Maj => bits.iter().filter(|&&b| b).count() >= 2,
            SlOp::Not => !bits[0],
        }
    }

    /// Whether the op's word-level form is a complemented accumulation.
    fn inverted(self) -> bool {
        matches!(self, SlOp::Nand | SlOp::Nor | SlOp::Xnor | SlOp::Not)
    }
}

/// Execution mode of the scouting-logic engine.
#[derive(Debug, Clone)]
enum Mode {
    Ideal,
    FaultInjected(Box<FaultInjector>),
    Analog,
}

/// The scouting-logic execution engine.
///
/// # Example
///
/// ```
/// use reram::array::CrossbarArray;
/// use reram::scouting::{ScoutingLogic, SlOp};
/// use sc_core::BitStream;
///
/// # fn main() -> Result<(), reram::ReramError> {
/// let mut array = CrossbarArray::pristine(4, 32, 9);
/// array.write_row(0, &BitStream::from_fn(32, |i| i < 16))?;
/// array.write_row(1, &BitStream::from_fn(32, |i| i >= 8))?;
/// let mut sl = ScoutingLogic::ideal();
/// let xor = sl.execute_mut(&mut array, SlOp::Xor, &[0, 1])?;
/// assert_eq!(xor.count_ones(), 24);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ScoutingLogic {
    mode: Mode,
    ops_executed: u64,
}

impl ScoutingLogic {
    /// Creates a fault-free, digitally exact engine.
    #[must_use]
    pub fn ideal() -> Self {
        ScoutingLogic {
            mode: Mode::Ideal,
            ops_executed: 0,
        }
    }

    /// Creates an engine that injects per-op bit flips at the given rates.
    #[must_use]
    pub fn with_faults(rates: FaultRates, seed: u64) -> Self {
        ScoutingLogic {
            mode: Mode::FaultInjected(Box::new(FaultInjector::new(rates, seed))),
            ops_executed: 0,
        }
    }

    /// Creates an engine that senses analog bitline currents against the
    /// calibrated references (slow; used for failure-rate derivation).
    #[must_use]
    pub fn analog() -> Self {
        ScoutingLogic {
            mode: Mode::Analog,
            ops_executed: 0,
        }
    }

    /// Number of scouting-logic operations executed.
    #[must_use]
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// Total faults injected (zero unless in fault-injection mode).
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        match &self.mode {
            Mode::FaultInjected(inj) => inj.injected(),
            _ => 0,
        }
    }

    /// Executes `op` over the given operand rows, returning the row-wide
    /// result. Immutable-array convenience for ideal mode; see
    /// [`ScoutingLogic::execute_mut`] for the general form.
    ///
    /// # Errors
    ///
    /// * [`ReramError::BadOperandCount`] — operand count unsupported.
    /// * [`ReramError::RowOutOfRange`] — a row index is out of range.
    pub fn execute(
        &self,
        array: &CrossbarArray,
        op: SlOp,
        rows: &[usize],
    ) -> Result<BitStream, ReramError> {
        op.check_operands(rows.len())?;
        Self::digital_words(array, op, rows)
    }

    /// Executes `op` over the operand rows with full mode semantics
    /// (fault injection or analog sensing), updating statistics.
    ///
    /// # Errors
    ///
    /// * [`ReramError::BadOperandCount`] — operand count unsupported.
    /// * [`ReramError::RowOutOfRange`] — a row index is out of range.
    pub fn execute_mut(
        &mut self,
        array: &mut CrossbarArray,
        op: SlOp,
        rows: &[usize],
    ) -> Result<BitStream, ReramError> {
        op.check_operands(rows.len())?;
        self.ops_executed += 1;
        match &mut self.mode {
            Mode::Ideal => Self::digital(array, op, rows),
            Mode::FaultInjected(inj) => {
                let mut out = Self::digital(array, op, rows)?;
                inj.corrupt_op_output(op, &mut out);
                Ok(out)
            }
            Mode::Analog => Self::analog_sense(array, op, rows),
        }
    }

    /// Records per-op statistics for work that was modeled but not
    /// re-simulated (e.g. the accelerator's encode cache replaying an
    /// identical conversion). Keeps `ops_executed` faithful to the
    /// hardware schedule.
    pub fn note_ops(&mut self, n: u64) {
        self.ops_executed += n;
    }

    fn digital(
        array: &mut CrossbarArray,
        op: SlOp,
        rows: &[usize],
    ) -> Result<BitStream, ReramError> {
        array.activate_rows(rows)?;
        Self::digital_words(array, op, rows)
    }

    /// The packed fast path: combines whole 64-bit words of the operand
    /// rows per machine op instead of iterating cells. One word op per
    /// `⌈cols/64⌉` chunk models the single-sensing-cycle row-parallelism
    /// of the hardware.
    fn digital_words(
        array: &CrossbarArray,
        op: SlOp,
        rows: &[usize],
    ) -> Result<BitStream, ReramError> {
        let cols = array.cols();
        let mut acc = array.row_words(rows[0])?.to_vec();
        match op {
            SlOp::And | SlOp::Nand => {
                for &r in &rows[1..] {
                    for (a, &b) in acc.iter_mut().zip(array.row_words(r)?) {
                        *a &= b;
                    }
                }
            }
            SlOp::Or | SlOp::Nor => {
                for &r in &rows[1..] {
                    for (a, &b) in acc.iter_mut().zip(array.row_words(r)?) {
                        *a |= b;
                    }
                }
            }
            SlOp::Xor | SlOp::Xnor => {
                for (a, &b) in acc.iter_mut().zip(array.row_words(rows[1])?) {
                    *a ^= b;
                }
            }
            SlOp::Maj => {
                let b = array.row_words(rows[1])?;
                let c = array.row_words(rows[2])?;
                for (i, a) in acc.iter_mut().enumerate() {
                    *a = (*a & b[i]) | (*a & c[i]) | (b[i] & c[i]);
                }
            }
            SlOp::Not => {}
        }
        if op.inverted() {
            for a in &mut acc {
                *a = !*a;
            }
        }
        // from_words masks the bits beyond `cols` in the last word.
        Ok(BitStream::from_words(acc, cols))
    }

    /// The cell-by-cell reference implementation of the digital path:
    /// reads every operand bit individually and applies the per-column
    /// truth table. Kept public so differential tests (and benches) can
    /// prove the packed word path bit-exact against it.
    ///
    /// # Errors
    ///
    /// * [`ReramError::BadOperandCount`] — operand count unsupported.
    /// * [`ReramError::RowOutOfRange`] — a row index is out of range.
    pub fn digital_reference(
        array: &CrossbarArray,
        op: SlOp,
        rows: &[usize],
    ) -> Result<BitStream, ReramError> {
        op.check_operands(rows.len())?;
        for &r in rows {
            // Surface range errors exactly like the packed path.
            array.row_words(r)?;
        }
        let cols = array.cols();
        let mut bits = vec![false; rows.len()];
        let mut out = BitStream::zeros(cols);
        for col in 0..cols {
            for (slot, &r) in bits.iter_mut().zip(rows) {
                *slot = array.read_bit(r, col)?;
            }
            if op.combine(&bits) {
                out.set(col, true);
            }
        }
        Ok(out)
    }

    fn analog_sense(
        array: &mut CrossbarArray,
        op: SlOp,
        rows: &[usize],
    ) -> Result<BitStream, ReramError> {
        let amp = SenseAmp::calibrated(array.params());
        let cols = array.cols();
        let mut out = BitStream::zeros(cols);
        for col in 0..cols {
            let current = array.column_current(rows, col)?;
            let bit = match op {
                SlOp::Or => amp.sense_at_least(current, 1)?,
                SlOp::Nor => !amp.sense_at_least(current, 1)?,
                SlOp::And => amp.sense_at_least(current, rows.len())?,
                SlOp::Nand => !amp.sense_at_least(current, rows.len())?,
                SlOp::Xor => amp.sense_exactly_one(current)?,
                SlOp::Xnor => !amp.sense_exactly_one(current)?,
                SlOp::Maj => amp.sense_at_least(current, 2)?,
                SlOp::Not => !amp.sense_at_least(current, 1)?,
            };
            if bit {
                out.set(col, true);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> CrossbarArray {
        let mut a = CrossbarArray::pristine(4, 16, 11);
        // row0: 0101..., row1: 0011..., row2: 0000111100001111
        a.write_row(0, &BitStream::from_fn(16, |i| i % 2 == 1))
            .unwrap();
        a.write_row(1, &BitStream::from_fn(16, |i| i % 4 >= 2))
            .unwrap();
        a.write_row(2, &BitStream::from_fn(16, |i| i % 8 >= 4))
            .unwrap();
        a
    }

    #[test]
    fn ideal_ops_match_boolean_truth() {
        let mut a = setup();
        let mut sl = ScoutingLogic::ideal();
        let r0 = a.read_row(0).unwrap();
        let r1 = a.read_row(1).unwrap();
        let r2 = a.read_row(2).unwrap();

        assert_eq!(
            sl.execute_mut(&mut a, SlOp::And, &[0, 1]).unwrap(),
            r0.and(&r1).unwrap()
        );
        assert_eq!(
            sl.execute_mut(&mut a, SlOp::Or, &[0, 1]).unwrap(),
            r0.or(&r1).unwrap()
        );
        assert_eq!(
            sl.execute_mut(&mut a, SlOp::Xor, &[0, 1]).unwrap(),
            r0.xor(&r1).unwrap()
        );
        assert_eq!(
            sl.execute_mut(&mut a, SlOp::Maj, &[0, 1, 2]).unwrap(),
            r0.maj3(&r1, &r2).unwrap()
        );
        assert_eq!(sl.execute_mut(&mut a, SlOp::Not, &[0]).unwrap(), r0.not());
        assert_eq!(sl.ops_executed(), 5);
    }

    #[test]
    fn nand_nor_xnor_are_complements() {
        let mut a = setup();
        let mut sl = ScoutingLogic::ideal();
        let and = sl.execute_mut(&mut a, SlOp::And, &[0, 1]).unwrap();
        let nand = sl.execute_mut(&mut a, SlOp::Nand, &[0, 1]).unwrap();
        assert_eq!(and.not(), nand);
        let or = sl.execute_mut(&mut a, SlOp::Or, &[0, 1]).unwrap();
        let nor = sl.execute_mut(&mut a, SlOp::Nor, &[0, 1]).unwrap();
        assert_eq!(or.not(), nor);
        let xor = sl.execute_mut(&mut a, SlOp::Xor, &[0, 1]).unwrap();
        let xnor = sl.execute_mut(&mut a, SlOp::Xnor, &[0, 1]).unwrap();
        assert_eq!(xor.not(), xnor);
    }

    #[test]
    fn multi_input_and_or() {
        let mut a = setup();
        let mut sl = ScoutingLogic::ideal();
        let and3 = sl.execute_mut(&mut a, SlOp::And, &[0, 1, 2]).unwrap();
        let or3 = sl.execute_mut(&mut a, SlOp::Or, &[0, 1, 2]).unwrap();
        for col in 0..16 {
            let bits = [
                a.read_bit(0, col).unwrap(),
                a.read_bit(1, col).unwrap(),
                a.read_bit(2, col).unwrap(),
            ];
            assert_eq!(and3.get(col).unwrap(), bits.iter().all(|&b| b));
            assert_eq!(or3.get(col).unwrap(), bits.iter().any(|&b| b));
        }
    }

    #[test]
    fn operand_count_validation() {
        let mut a = setup();
        let mut sl = ScoutingLogic::ideal();
        assert!(matches!(
            sl.execute_mut(&mut a, SlOp::Xor, &[0, 1, 2]),
            Err(ReramError::BadOperandCount { .. })
        ));
        assert!(matches!(
            sl.execute_mut(&mut a, SlOp::Maj, &[0, 1]),
            Err(ReramError::BadOperandCount { .. })
        ));
        assert!(matches!(
            sl.execute_mut(&mut a, SlOp::And, &[0]),
            Err(ReramError::BadOperandCount { .. })
        ));
    }

    #[test]
    fn analog_mode_matches_digital_for_clean_devices() {
        // With tight distributions and no tails, analog sensing must agree
        // with digital truth.
        let mut params = crate::cell::DeviceParams::hfo2();
        params.lrs_sigma = 0.02;
        params.hrs_sigma = 0.02;
        params.hrs_tail_prob = 0.0;
        params.read_noise_frac = 0.005;
        let mut a = CrossbarArray::with_params(3, 64, params, 13);
        a.write_row(0, &BitStream::from_fn(64, |i| i % 2 == 0))
            .unwrap();
        a.write_row(1, &BitStream::from_fn(64, |i| i % 3 == 0))
            .unwrap();
        let mut analog = ScoutingLogic::analog();
        let mut ideal = ScoutingLogic::ideal();
        for op in [SlOp::And, SlOp::Or, SlOp::Xor] {
            let got = analog.execute_mut(&mut a, op, &[0, 1]).unwrap();
            let want = ideal.execute_mut(&mut a, op, &[0, 1]).unwrap();
            assert_eq!(got, want, "{}", op.name());
        }
    }

    #[test]
    fn fault_injection_flips_bits() {
        let mut a = setup();
        let mut sl = ScoutingLogic::with_faults(FaultRates::uniform(0.5), 5);
        let mut ideal = ScoutingLogic::ideal();
        let want = ideal.execute_mut(&mut a, SlOp::And, &[0, 1]).unwrap();
        let got = sl.execute_mut(&mut a, SlOp::And, &[0, 1]).unwrap();
        assert_ne!(got, want);
        assert!(sl.faults_injected() > 0);
    }
}
