//! Per-operation latency and energy constants of the ReRAM substrate.
//!
//! The paper extracts scouting-logic latency/energy from Xie et al.
//! (ISVLSI'17) and integrates them into NVMain; the ADC is the ISAAC
//! 8-bit converter. The constants below are calibrated so that the
//! architecture-level cost model reproduces the paper's §IV-B anchor
//! numbers:
//!
//! * IMSNG-naive: 395.4 ns, 10.23 nJ per 8-bit conversion (N = 256),
//! * IMSNG-opt: 78.2 ns, 3.42 nJ,
//! * Table III ReRAM rows (80.8 / 80.8 / 81.6 / 12544.0 ns and
//!   3.50 / 3.50 / 3.51 / 4.48 nJ).
//!
//! Derivation: an 8-bit greater-than comparison is 5·M sensing steps
//! (§III-A), so `t_sense = 78.2 / 40 = 1.955 ns`; the naive variant adds
//! 2·M row writes, so `t_write = (395.4 − 78.2) / 16 = 19.825 ns`; energy
//! splits the same way across `5·M·N` sensed bits and `(2·M + 1)·N`
//! written bits.

/// Latency constants in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReramTimings {
    /// One scouting-logic sensing step (row-parallel, any width).
    pub t_sense_ns: f64,
    /// One row write (programming pulse + verify).
    pub t_write_ns: f64,
    /// One ADC sample (ISAAC 8-bit SAR, 1.28 GS/s class).
    pub t_adc_ns: f64,
    /// Extra latency of an XOR step over a single-reference op (both
    /// references must be resolved on the L0/L1 pair and combined).
    pub t_xor_extra_ns: f64,
    /// One CORDIV step: sense + latch update + write-driver feedback
    /// settling (dominates the division row of Table III).
    pub t_cordiv_step_ns: f64,
    /// Row activation (wordline charge) folded into each sensing step.
    pub t_activate_ns: f64,
}

impl ReramTimings {
    /// The calibrated default timing set.
    #[must_use]
    pub fn calibrated() -> Self {
        ReramTimings {
            t_sense_ns: 1.955,
            t_write_ns: 19.825,
            t_adc_ns: 0.645,
            t_xor_extra_ns: 0.8,
            t_cordiv_step_ns: 48.692,
            t_activate_ns: 0.0,
        }
    }
}

impl Default for ReramTimings {
    fn default() -> Self {
        ReramTimings::calibrated()
    }
}

/// Energy constants (per-bit values in picojoules, per-sample in
/// nanojoules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReramEnergies {
    /// Energy per sensed bit in one scouting-logic step.
    pub e_sense_bit_pj: f64,
    /// Energy per written (programmed) bit.
    pub e_write_bit_pj: f64,
    /// Energy per ADC sample.
    pub e_adc_sample_nj: f64,
    /// Energy per row-wide scouting-logic operation executed during SC
    /// arithmetic (sensing of the operand rows), per bit.
    pub e_slop_bit_pj: f64,
    /// Energy per CORDIV step (periphery latch + feedback), per stream.
    pub e_cordiv_step_pj: f64,
}

impl ReramEnergies {
    /// The calibrated default energy set.
    #[must_use]
    pub fn calibrated() -> Self {
        ReramEnergies {
            e_sense_bit_pj: 0.2924,
            e_write_bit_pj: 1.663,
            e_adc_sample_nj: 0.04,
            e_slop_bit_pj: 0.15625, // 0.04 nJ per 256-bit row op
            e_cordiv_step_pj: 4.0,
        }
    }
}

impl Default for ReramEnergies {
    fn default() -> Self {
        ReramEnergies::calibrated()
    }
}

/// Combined substrate cost table.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReramCosts {
    /// Latency constants.
    pub timings: ReramTimings,
    /// Energy constants.
    pub energies: ReramEnergies,
}

impl ReramCosts {
    /// The calibrated default cost table.
    #[must_use]
    pub fn calibrated() -> Self {
        ReramCosts {
            timings: ReramTimings::calibrated(),
            energies: ReramEnergies::calibrated(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imsng_opt_anchor_reproduced() {
        let t = ReramTimings::calibrated();
        let e = ReramEnergies::calibrated();
        let m = 8.0;
        let n = 256.0;
        // 5M sensing steps; one SBS row write of N bits.
        let latency = 5.0 * m * t.t_sense_ns;
        assert!((latency - 78.2).abs() < 0.01, "latency {latency}");
        let energy_nj = (5.0 * m * n * e.e_sense_bit_pj + n * e.e_write_bit_pj) / 1000.0;
        assert!((energy_nj - 3.42).abs() < 0.03, "energy {energy_nj}");
    }

    #[test]
    fn imsng_naive_anchor_reproduced() {
        let t = ReramTimings::calibrated();
        let e = ReramEnergies::calibrated();
        let m = 8.0;
        let n = 256.0;
        let latency = 5.0 * m * t.t_sense_ns + 2.0 * m * t.t_write_ns;
        assert!((latency - 395.4).abs() < 0.1, "latency {latency}");
        let energy_nj = (5.0 * m * n * e.e_sense_bit_pj
            + 2.0 * m * n * e.e_write_bit_pj
            + n * e.e_write_bit_pj)
            / 1000.0;
        assert!((energy_nj - 10.23).abs() < 0.1, "energy {energy_nj}");
    }

    #[test]
    fn defaults_are_calibrated() {
        assert_eq!(ReramTimings::default(), ReramTimings::calibrated());
        assert_eq!(ReramEnergies::default(), ReramEnergies::calibrated());
        assert_eq!(ReramCosts::default(), ReramCosts::calibrated());
    }
}
