//! In-memory true random number generation from ReRAM stochasticity.
//!
//! The paper builds on threshold-switching / read-noise TRNGs (Woo et al.,
//! Adv. Electron. Mater. 2019; Schnieders et al. 2024): reading a cell
//! biased near its switching point yields a random bit, and whole rows of
//! random bits are stored directly in the array — a *single-step*
//! operation from the architecture's perspective (§III-A).
//!
//! [`TrngEngine`] models the statistical reality of such a source: each
//! generator cell has a small static bias around the ideal 50% point
//! (device-to-device variation) plus unbiased shot-to-shot randomness.
//! The engine fills array rows and doubles as a [`BitSource`] for the
//! segmented random numbers IMSNG consumes. [`VonNeumannWhitened`] wraps
//! any bit source with the classic de-biasing extractor.

use crate::array::CrossbarArray;
use crate::error::ReramError;
use crate::math::GaussianSampler;
use sc_core::rng::BitSource;
use sc_core::BitStream;

/// Statistical model of a row of TRNG cells.
///
/// # Example
///
/// ```
/// use reram::trng::TrngEngine;
/// use sc_core::rng::BitSource;
///
/// let mut trng = TrngEngine::new(64, 0.02, 77);
/// let ones = (0..10_000).filter(|_| trng.next_bit()).count();
/// assert!((4_000..6_000).contains(&ones));
/// ```
#[derive(Debug, Clone)]
pub struct TrngEngine {
    cell_bias: Vec<f64>,
    sampler: GaussianSampler,
    cursor: usize,
    bits_generated: u64,
}

impl TrngEngine {
    /// Creates an engine with `cells` generator cells whose one-probability
    /// is `0.5 + N(0, bias_sigma)` (clamped to `[0.05, 0.95]`).
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0` or `bias_sigma < 0`.
    #[must_use]
    pub fn new(cells: usize, bias_sigma: f64, seed: u64) -> Self {
        assert!(cells > 0, "at least one trng cell required");
        assert!(bias_sigma >= 0.0, "bias sigma must be non-negative");
        let mut sampler = GaussianSampler::new(seed);
        let cell_bias = (0..cells)
            .map(|_| (0.5 + sampler.normal(0.0, bias_sigma)).clamp(0.05, 0.95))
            .collect();
        TrngEngine {
            cell_bias,
            sampler,
            cursor: 0,
            bits_generated: 0,
        }
    }

    /// An ideal engine: every cell exactly unbiased.
    #[must_use]
    pub fn ideal(cells: usize, seed: u64) -> Self {
        TrngEngine::new(cells, 0.0, seed)
    }

    /// Number of generator cells.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.cell_bias.len()
    }

    /// Total bits generated so far.
    #[must_use]
    pub fn bits_generated(&self) -> u64 {
        self.bits_generated
    }

    /// The per-cell one-probabilities (for inspection/tests).
    #[must_use]
    pub fn cell_probabilities(&self) -> &[f64] {
        &self.cell_bias
    }

    /// Generates a full random row of the given width.
    #[must_use]
    pub fn generate_row(&mut self, width: usize) -> BitStream {
        BitStream::from_fn(width, |_| self.next_bit())
    }

    /// Generates a random row and stores it in `array` at `row` — the
    /// paper's single-step TRNG write.
    ///
    /// # Errors
    ///
    /// Propagates array range errors.
    pub fn fill_row(&mut self, array: &mut CrossbarArray, row: usize) -> Result<(), ReramError> {
        let bits = self.generate_row(array.cols());
        array.write_row(row, &bits)?;
        Ok(())
    }
}

impl BitSource for TrngEngine {
    fn next_bit(&mut self) -> bool {
        let p = self.cell_bias[self.cursor];
        // Branchy wrap instead of a modulo: this is the innermost loop of
        // every RN-row refresh.
        self.cursor += 1;
        if self.cursor == self.cell_bias.len() {
            self.cursor = 0;
        }
        self.bits_generated += 1;
        self.sampler.uniform() < p
    }
}

/// Von Neumann whitening over any bit source: consumes bit pairs, emitting
/// `0` for `01` and `1` for `10`, discarding `00`/`11`. Removes static
/// bias at a ≥ 4× rate cost.
#[derive(Debug, Clone)]
pub struct VonNeumannWhitened<B> {
    inner: B,
    consumed: u64,
}

impl<B: BitSource> VonNeumannWhitened<B> {
    /// Wraps a bit source with the extractor.
    #[must_use]
    pub fn new(inner: B) -> Self {
        VonNeumannWhitened { inner, consumed: 0 }
    }

    /// Raw bits consumed from the inner source so far.
    #[must_use]
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Consumes the wrapper, returning the inner source.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: BitSource> BitSource for VonNeumannWhitened<B> {
    fn next_bit(&mut self) -> bool {
        loop {
            let a = self.inner.next_bit();
            let b = self.inner.next_bit();
            self.consumed += 2;
            if a != b {
                return a;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_engine_is_unbiased() {
        let mut t = TrngEngine::ideal(32, 1);
        let ones = (0..100_000).filter(|_| t.next_bit()).count();
        assert!((48_500..51_500).contains(&ones), "ones {ones}");
    }

    #[test]
    fn biased_cells_spread_around_half() {
        let t = TrngEngine::new(1000, 0.05, 2);
        let probs = t.cell_probabilities();
        let mean: f64 = probs.iter().sum::<f64>() / probs.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let spread = probs.iter().map(|p| (p - 0.5).abs()).fold(0.0f64, f64::max);
        assert!(spread > 0.05, "spread {spread}"); // some cells clearly biased
    }

    #[test]
    fn fill_row_stores_random_bits() {
        let mut t = TrngEngine::ideal(64, 3);
        let mut a = CrossbarArray::pristine(2, 256, 4);
        t.fill_row(&mut a, 1).unwrap();
        let row = a.read_row(1).unwrap();
        let ones = row.count_ones();
        assert!((96..160).contains(&ones), "ones {ones}"); // ~128 ± 4σ
        assert_eq!(t.bits_generated(), 256);
    }

    #[test]
    fn whitening_removes_bias() {
        let biased = TrngEngine::new(16, 0.0, 5);
        // Construct an overtly biased source instead: p = 0.8.
        #[derive(Debug)]
        struct Biased(GaussianSampler);
        impl BitSource for Biased {
            fn next_bit(&mut self) -> bool {
                self.0.uniform() < 0.8
            }
        }
        drop(biased);
        let mut w = VonNeumannWhitened::new(Biased(GaussianSampler::new(6)));
        let ones = (0..20_000).filter(|_| w.next_bit()).count();
        assert!((9_500..10_500).contains(&ones), "ones {ones}");
        assert!(w.consumed() >= 40_000);
    }

    #[test]
    fn engine_is_deterministic() {
        let mut a = TrngEngine::new(16, 0.03, 9);
        let mut b = TrngEngine::new(16, 0.03, 9);
        for _ in 0..256 {
            assert_eq!(a.next_bit(), b.next_bit());
        }
    }
}
