//! In-memory true random number generation from ReRAM stochasticity.
//!
//! The paper builds on threshold-switching / read-noise TRNGs (Woo et al.,
//! Adv. Electron. Mater. 2019; Schnieders et al. 2024): reading a cell
//! biased near its switching point yields a random bit, and whole rows of
//! random bits are stored directly in the array — a *single-step*
//! operation from the architecture's perspective (§III-A).
//!
//! [`TrngEngine`] models the statistical reality of such a source: each
//! generator cell has a small static bias around the ideal 50% point
//! (device-to-device variation) plus unbiased shot-to-shot randomness.
//! Because the hardware fills a whole row in one step, the engine's hot
//! path is word-parallel: per-cell one-probabilities are quantized to
//! [`THRESHOLD_BITS`]-bit thresholds at construction and expanded into
//! bit-plane masks per aligned 64-cell window, so one
//! [`sc_core::rng::bernoulli_words`] comparison draws 64 biased Bernoulli
//! bits from (in expectation) about two uniform words. The per-bit
//! [`BitSource::next_bit`] path remains the reference semantics: the word
//! path visits the same cells in the same ring order with the same
//! marginal probabilities (exact for ideal 0.5 cells, quantized to
//! `2^-16` for biased cells) and is differential-tested against it.
//!
//! The engine fills array rows and doubles as a [`BitSource`] for the
//! segmented random numbers IMSNG consumes. [`VonNeumannWhitened`] wraps
//! any bit source with the classic de-biasing extractor.

use crate::array::CrossbarArray;
use crate::error::ReramError;
use crate::math::GaussianSampler;
use sc_core::rng::{bernoulli_words, clear_past_len, probability_threshold, BitSource};
use sc_core::BitStream;

/// Threshold precision of the word-parallel fill path: per-cell
/// one-probabilities quantize to `1/2^16`. An ideal 0.5 cell is
/// represented exactly (`2^15`), so the quantization only touches the
/// modeled device bias, at 1/256 of its smallest clamp step.
const THRESHOLD_BITS: u32 = 16;

/// Statistical model of a row of TRNG cells.
///
/// # Example
///
/// ```
/// use reram::trng::TrngEngine;
/// use sc_core::rng::BitSource;
///
/// let mut trng = TrngEngine::new(64, 0.02, 77);
/// let ones = (0..10_000).filter(|_| trng.next_bit()).count();
/// assert!((4_000..6_000).contains(&ones));
/// ```
#[derive(Debug, Clone)]
pub struct TrngEngine {
    cell_bias: Vec<f64>,
    /// MSB-first threshold bit-planes per aligned 64-cell window, for
    /// the bit-sliced fill path. Empty when `cells % 64 != 0`, in which
    /// case word fills fall back to the per-bit reference path.
    window_planes: Vec<[u64; THRESHOLD_BITS as usize]>,
    sampler: GaussianSampler,
    cursor: usize,
    bits_generated: u64,
}

impl TrngEngine {
    /// Creates an engine with `cells` generator cells whose one-probability
    /// is `0.5 + N(0, bias_sigma)` (clamped to `[0.05, 0.95]`).
    ///
    /// When `cells` is a multiple of 64, row fills run word-parallel
    /// (bit-sliced Bernoulli sampling over precomputed per-cell
    /// thresholds); otherwise they fall back to the per-bit path.
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0` or `bias_sigma < 0`.
    #[must_use]
    pub fn new(cells: usize, bias_sigma: f64, seed: u64) -> Self {
        assert!(cells > 0, "at least one trng cell required");
        assert!(bias_sigma >= 0.0, "bias sigma must be non-negative");
        let mut sampler = GaussianSampler::new(seed);
        let cell_bias: Vec<f64> = (0..cells)
            .map(|_| (0.5 + sampler.normal(0.0, bias_sigma)).clamp(0.05, 0.95))
            .collect();
        let window_planes = if cells.is_multiple_of(64) {
            cell_bias
                .chunks_exact(64)
                .map(|window| {
                    let mut planes = [0u64; THRESHOLD_BITS as usize];
                    for (lane, &p) in window.iter().enumerate() {
                        // p is clamped to [0.05, 0.95], so the threshold is
                        // strictly inside (0, 2^16): never certainty.
                        let t = probability_threshold(p, THRESHOLD_BITS);
                        for (j, plane) in planes.iter_mut().enumerate() {
                            if (t >> (THRESHOLD_BITS as usize - 1 - j)) & 1 == 1 {
                                *plane |= 1 << lane;
                            }
                        }
                    }
                    planes
                })
                .collect()
        } else {
            Vec::new()
        };
        TrngEngine {
            cell_bias,
            window_planes,
            sampler,
            cursor: 0,
            bits_generated: 0,
        }
    }

    /// An ideal engine: every cell exactly unbiased.
    #[must_use]
    pub fn ideal(cells: usize, seed: u64) -> Self {
        TrngEngine::new(cells, 0.0, seed)
    }

    /// Number of generator cells.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.cell_bias.len()
    }

    /// Total bits generated so far.
    #[must_use]
    pub fn bits_generated(&self) -> u64 {
        self.bits_generated
    }

    /// The per-cell one-probabilities (for inspection/tests).
    #[must_use]
    pub fn cell_probabilities(&self) -> &[f64] {
        &self.cell_bias
    }

    /// Draws up to 64 random bits in one step (bit `i` of the result is
    /// stream bit `i`; bits at `bits..` are zero) — the single-word form
    /// of the row fill.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 64`.
    #[must_use]
    pub fn next_word(&mut self, bits: usize) -> u64 {
        let mut word = [0u64; 1];
        self.fill_words(&mut word, bits);
        word[0]
    }

    /// Generates a full random row of the given width (word-parallel when
    /// the cell count allows it).
    #[must_use]
    pub fn generate_row(&mut self, width: usize) -> BitStream {
        let mut words = vec![0u64; width.div_ceil(64)];
        self.fill_words(&mut words, width);
        BitStream::from_words(words, width)
    }

    /// Generates a Von Neumann-whitened random row: each output bit is
    /// extracted from repeated shot-pairs of *one* generator cell
    /// (emitting `a` from the first pair `(a, b)` with `a != b`), so the
    /// cell's static bias cancels exactly and every emitted bit is an
    /// unbiased coin — at a ≥ 4× raw-bit cost, visible in
    /// [`TrngEngine::bits_generated`]. Pairing within a cell matters:
    /// pairing bits of *different* cells (as chaining
    /// [`VonNeumannWhitened`] over the ring would) leaves a residual
    /// bias of order the inter-cell bias difference.
    #[must_use]
    pub fn generate_row_whitened(&mut self, width: usize) -> BitStream {
        let cells = self.cell_bias.len();
        BitStream::from_fn(width, |_| {
            let p = self.cell_bias[self.cursor];
            self.cursor += 1;
            if self.cursor == cells {
                self.cursor = 0;
            }
            loop {
                let a = self.sampler.uniform() < p;
                let b = self.sampler.uniform() < p;
                self.bits_generated += 2;
                if a != b {
                    return a;
                }
            }
        })
    }

    /// Generates a random row and stores it in `array` at `row` — the
    /// paper's single-step TRNG write.
    ///
    /// # Errors
    ///
    /// Propagates array range errors.
    pub fn fill_row(&mut self, array: &mut CrossbarArray, row: usize) -> Result<(), ReramError> {
        let bits = self.generate_row(array.cols());
        array.write_row(row, &bits)?;
        Ok(())
    }

    /// Per-bit fallback for [`BitSource::fill_words`] (mirrors the trait's
    /// default body; also used when the cell count is not word-aligned).
    fn fill_words_per_bit(&mut self, words: &mut [u64], len: usize) {
        words.fill(0);
        for i in 0..len {
            if self.next_bit() {
                words[i / 64] |= 1 << (i % 64);
            }
        }
    }
}

impl BitSource for TrngEngine {
    fn next_bit(&mut self) -> bool {
        let p = self.cell_bias[self.cursor];
        // Branchy wrap instead of a modulo: this is the innermost loop of
        // the per-bit reference path.
        self.cursor += 1;
        if self.cursor == self.cell_bias.len() {
            self.cursor = 0;
        }
        self.bits_generated += 1;
        self.sampler.uniform() < p
    }

    /// Word-parallel fill: each output word is one bit-sliced Bernoulli
    /// draw over the next aligned 64-cell window of the generator ring.
    /// Statistically equivalent to the per-bit path (same cells, same
    /// ring order, thresholds exact for ideal cells); entropy is consumed
    /// in whole windows, so a trailing partial word still advances the
    /// cell cursor by 64 — the hardware fires the whole generator row.
    fn fill_words(&mut self, words: &mut [u64], len: usize) {
        assert!(
            len <= words.len() * 64,
            "{len} bits do not fit in {} words",
            words.len()
        );
        if self.window_planes.is_empty() {
            self.fill_words_per_bit(words, len);
            return;
        }
        // Interleaved per-bit draws can leave the cursor mid-window; the
        // word path restarts at the next aligned generator window.
        if !self.cursor.is_multiple_of(64) {
            self.cursor = self.cursor.div_ceil(64) * 64 % self.cell_bias.len();
        }
        let cells = self.cell_bias.len();
        for word in words.iter_mut().take(len.div_ceil(64)) {
            let planes = &self.window_planes[self.cursor / 64];
            *word = bernoulli_words(planes, || self.sampler.uniform_u64());
            self.cursor += 64;
            if self.cursor == cells {
                self.cursor = 0;
            }
        }
        clear_past_len(words, len);
        self.bits_generated += len as u64;
    }
}

/// Von Neumann whitening over any bit source: consumes bit pairs, emitting
/// `0` for `01` and `1` for `10`, discarding `00`/`11`. Removes static
/// bias at a ≥ 4× rate cost.
#[derive(Debug, Clone)]
pub struct VonNeumannWhitened<B> {
    inner: B,
    consumed: u64,
}

impl<B: BitSource> VonNeumannWhitened<B> {
    /// Wraps a bit source with the extractor.
    #[must_use]
    pub fn new(inner: B) -> Self {
        VonNeumannWhitened { inner, consumed: 0 }
    }

    /// Raw bits consumed from the inner source so far.
    #[must_use]
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Consumes the wrapper, returning the inner source.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: BitSource> BitSource for VonNeumannWhitened<B> {
    fn next_bit(&mut self) -> bool {
        loop {
            let a = self.inner.next_bit();
            let b = self.inner.next_bit();
            self.consumed += 2;
            if a != b {
                return a;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_engine_is_unbiased() {
        let mut t = TrngEngine::ideal(32, 1);
        let ones = (0..100_000).filter(|_| t.next_bit()).count();
        assert!((48_500..51_500).contains(&ones), "ones {ones}");
    }

    #[test]
    fn biased_cells_spread_around_half() {
        let t = TrngEngine::new(1000, 0.05, 2);
        let probs = t.cell_probabilities();
        let mean: f64 = probs.iter().sum::<f64>() / probs.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let spread = probs.iter().map(|p| (p - 0.5).abs()).fold(0.0f64, f64::max);
        assert!(spread > 0.05, "spread {spread}"); // some cells clearly biased
    }

    #[test]
    fn fill_row_stores_random_bits() {
        let mut t = TrngEngine::ideal(64, 3);
        let mut a = CrossbarArray::pristine(2, 256, 4);
        t.fill_row(&mut a, 1).unwrap();
        let row = a.read_row(1).unwrap();
        let ones = row.count_ones();
        assert!((96..160).contains(&ones), "ones {ones}"); // ~128 ± 4σ
        assert_eq!(t.bits_generated(), 256);
    }

    #[test]
    fn word_path_matches_per_bit_statistics_per_cell() {
        // Same cells, same ring order: for every generator cell, the
        // word path's one-frequency must track the cell's modeled bias
        // (and hence the per-bit path's frequency) within sampling noise.
        let mut word_engine = TrngEngine::new(128, 0.08, 41);
        let rounds = 4_000usize;
        let mut ones = vec![0u64; 128];
        for _ in 0..rounds {
            let mut words = [0u64; 2];
            word_engine.fill_words(&mut words, 128);
            for (cell, count) in ones.iter_mut().enumerate() {
                *count += (words[cell / 64] >> (cell % 64)) & 1;
            }
        }
        for (cell, &p) in word_engine.cell_probabilities().iter().enumerate() {
            let got = ones[cell] as f64 / rounds as f64;
            // 4σ of Bernoulli(p) over `rounds` draws, plus 2^-16 quantization.
            let tol = 4.0 * (p * (1.0 - p) / rounds as f64).sqrt() + 2e-5;
            assert!((got - p).abs() < tol, "cell {cell}: {got} vs {p}");
        }
    }

    #[test]
    fn word_path_is_exact_for_ideal_cells() {
        // p = 0.5 quantizes to exactly 2^15 / 2^16: the word path is a
        // distribution-exact Bernoulli(1/2), not an approximation.
        let mut t = TrngEngine::ideal(256, 6);
        let rounds = 3_000usize;
        let mut ones = 0u64;
        for _ in 0..rounds {
            let mut words = [0u64; 4];
            t.fill_words(&mut words, 256);
            ones += words.iter().map(|w| u64::from(w.count_ones())).sum::<u64>();
        }
        let total = (rounds * 256) as f64;
        let got = ones as f64 / total;
        // 4.5σ of an exact fair coin.
        assert!((got - 0.5).abs() < 4.5 * 0.5 / total.sqrt(), "{got}");
    }

    #[test]
    fn unaligned_cell_count_falls_back_to_per_bit_path() {
        // cells % 64 != 0: fill_words must be the per-bit path verbatim,
        // i.e. bit-identical to draining next_bit from a clone.
        let mut word_engine = TrngEngine::new(100, 0.05, 9);
        let mut bit_engine = word_engine.clone();
        let mut words = [0u64; 3];
        word_engine.fill_words(&mut words, 150);
        for i in 0..150 {
            assert_eq!(
                (words[i / 64] >> (i % 64)) & 1 == 1,
                bit_engine.next_bit(),
                "bit {i}"
            );
        }
        assert_eq!(words[2] >> (150 % 64), 0, "tail must be clear");
    }

    #[test]
    fn next_word_masks_past_requested_bits() {
        let mut t = TrngEngine::ideal(64, 12);
        for _ in 0..64 {
            assert_eq!(t.next_word(10) >> 10, 0);
        }
        assert_eq!(t.next_word(0), 0);
    }

    #[test]
    fn interleaving_per_bit_draws_keeps_the_word_path_sound() {
        // A per-bit draw leaves the cursor unaligned; the next word fill
        // realigns to a window boundary and stays statistically correct.
        let mut t = TrngEngine::ideal(128, 15);
        let mut ones = 0u64;
        let rounds = 2_000;
        for _ in 0..rounds {
            let _ = t.next_bit();
            ones += u64::from(t.next_word(64).count_ones());
        }
        let got = ones as f64 / (rounds * 64) as f64;
        assert!((got - 0.5).abs() < 0.01, "{got}");
    }

    #[test]
    fn whitened_rows_remove_per_cell_bias() {
        // Heavily biased cells (sigma 0.3, clamped to [0.05, 0.95]): raw
        // rows reproduce each cell's bias, whitened rows are unbiased
        // per cell.
        let rounds = 3_000usize;
        let mut raw = TrngEngine::new(64, 0.3, 17);
        let worst_cell_bias = raw
            .cell_probabilities()
            .iter()
            .map(|p| (p - 0.5).abs())
            .fold(0.0f64, f64::max);
        assert!(worst_cell_bias > 0.2, "sigma 0.3 must bias some cell hard");
        let mut white = raw.clone();
        let mut raw_ones = vec![0u64; 64];
        let mut white_ones = vec![0u64; 64];
        for _ in 0..rounds {
            let r = raw.generate_row(64);
            let w = white.generate_row_whitened(64);
            for c in 0..64 {
                raw_ones[c] += u64::from(r.get(c).unwrap());
                white_ones[c] += u64::from(w.get(c).unwrap());
            }
        }
        let dev = |ones: &[u64]| {
            ones.iter()
                .map(|&o| (o as f64 / rounds as f64 - 0.5).abs())
                .fold(0.0f64, f64::max)
        };
        let raw_dev = dev(&raw_ones);
        let white_dev = dev(&white_ones);
        // Raw rows track the worst cell's bias; whitened rows sit at the
        // sampling-noise floor (4.5σ of a fair coin over `rounds`).
        assert!(raw_dev > 0.15, "raw {raw_dev}");
        assert!(
            white_dev < 4.5 * 0.5 / (rounds as f64).sqrt(),
            "whitened {white_dev}"
        );
        // The extractor's raw-bit cost is visible: ≥ 2 raw bits per
        // emitted bit, in practice ≥ 4× for biased cells overall.
        assert!(white.bits_generated() >= 2 * (rounds as u64) * 64);
    }

    #[test]
    fn whitening_removes_bias() {
        // An overtly biased source: p = 0.8.
        #[derive(Debug)]
        struct Biased(GaussianSampler);
        impl BitSource for Biased {
            fn next_bit(&mut self) -> bool {
                self.0.uniform() < 0.8
            }
        }
        let mut w = VonNeumannWhitened::new(Biased(GaussianSampler::new(6)));
        let ones = (0..20_000).filter(|_| w.next_bit()).count();
        assert!((9_500..10_500).contains(&ones), "ones {ones}");
        assert!(w.consumed() >= 40_000);
    }

    #[test]
    fn engine_is_deterministic() {
        let mut a = TrngEngine::new(16, 0.03, 9);
        let mut b = TrngEngine::new(16, 0.03, 9);
        for _ in 0..256 {
            assert_eq!(a.next_bit(), b.next_bit());
        }
        let mut a = TrngEngine::new(128, 0.03, 9);
        let mut b = TrngEngine::new(128, 0.03, 9);
        assert_eq!(a.generate_row(512), b.generate_row(512));
    }
}
