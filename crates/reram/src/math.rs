//! Deterministic sampling helpers (normal / lognormal) used by the device
//! models.
//!
//! Implemented in-crate (Box–Muller over [`Xoshiro256`]) so the whole
//! simulation stays bit-exactly reproducible from a `u64` seed without an
//! external distributions dependency.

use sc_core::rng::Xoshiro256;

/// A seeded Gaussian sampler (Box–Muller, caching the second variate).
#[derive(Debug, Clone)]
pub struct GaussianSampler {
    rng: Xoshiro256,
    spare: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        GaussianSampler {
            rng: Xoshiro256::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Returns a standard-normal sample.
    pub fn standard(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller; u1 is kept away from 0 to avoid ln(0).
        let u1 = (self.rng.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Returns a `N(mean, sigma²)` sample.
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        mean + sigma * self.standard()
    }

    /// Returns a lognormal sample with the given *log-domain* parameters
    /// (`ln X ~ N(mu, sigma²)`).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Returns a uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// Returns one raw uniform 64-bit word — the input of the
    /// word-parallel threshold-sampling paths (one word feeds 64 lanes of
    /// a bit-sliced Bernoulli comparison, where the per-bit path consumes
    /// one full `f64` draw per single bit).
    pub fn uniform_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Fills `out` with uniform 64-bit words (batched
    /// [`GaussianSampler::uniform_u64`]).
    pub fn fill_uniform_u64(&mut self, out: &mut [u64]) {
        for w in out {
            *w = self.rng.next_u64();
        }
    }
}

/// Converts a (median, log-domain sigma) pair into lognormal `mu`.
///
/// ReRAM resistance distributions are conventionally reported as a median
/// resistance and a lognormal spread; `median = e^mu`.
#[must_use]
pub fn lognormal_mu_from_median(median: f64) -> f64 {
    median.ln()
}

/// Standard normal cumulative distribution function (Abramowitz–Stegun
/// rational approximation, |error| < 7.5e-8).
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    if x < -8.0 {
        return 0.0;
    }
    if x > 8.0 {
        return 1.0;
    }
    let t = 1.0 / (1.0 + 0.2316419 * x.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let tail = pdf * poly;
    if x >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_normal_moments() {
        let mut g = GaussianSampler::new(17);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.standard()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut g = GaussianSampler::new(23);
        let mu = lognormal_mu_from_median(10_000.0);
        let mut samples: Vec<f64> = (0..50_001).map(|_| g.lognormal(mu, 0.3)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[25_000];
        assert!(
            (median - 10_000.0).abs() / 10_000.0 < 0.05,
            "median {median}"
        );
    }

    #[test]
    fn cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841_344_7).abs() < 1e-6);
        assert!((normal_cdf(-1.0) - 0.158_655_3).abs() < 1e-6);
        assert!((normal_cdf(2.0) - 0.977_249_9).abs() < 1e-6);
        assert_eq!(normal_cdf(-10.0), 0.0);
        assert_eq!(normal_cdf(10.0), 1.0);
    }

    #[test]
    fn sampler_is_deterministic() {
        let mut a = GaussianSampler::new(5);
        let mut b = GaussianSampler::new(5);
        for _ in 0..64 {
            assert_eq!(a.standard(), b.standard());
        }
    }
}
