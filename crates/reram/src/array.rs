//! 1T1R crossbar array with row-granular access and multi-row activation.
//!
//! The array is the Fig. 1(a) structure: wordline rows holding binary
//! data, random-number rows, and generated stochastic bit-streams; bitline
//! columns shared by the scouting-logic sense amplifiers.

use crate::cell::{CellState, DeviceParams, ReramCell};
use crate::error::ReramError;
use crate::math::GaussianSampler;
use sc_core::BitStream;

/// A 2-D grid of ReRAM cells with per-cell drawn resistances.
///
/// Reads and writes are counted for energy accounting and endurance
/// studies. Digital reads are noiseless; the analog path
/// ([`CrossbarArray::column_current`]) includes read noise and HRS
/// instability and feeds the scouting-logic sense model.
#[derive(Debug, Clone)]
pub struct CrossbarArray {
    rows: usize,
    cols: usize,
    cells: Vec<ReramCell>,
    params: DeviceParams,
    sampler: GaussianSampler,
    row_writes: u64,
    row_reads: u64,
}

impl CrossbarArray {
    /// Creates an array with every cell programmed to HRS (logic 0), using
    /// default device parameters.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    #[must_use]
    pub fn pristine(rows: usize, cols: usize, seed: u64) -> Self {
        Self::with_params(rows, cols, DeviceParams::default(), seed)
    }

    /// Creates an all-HRS array with explicit device parameters.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    #[must_use]
    pub fn with_params(rows: usize, cols: usize, params: DeviceParams, seed: u64) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be nonzero");
        let mut sampler = GaussianSampler::new(seed);
        let cells = (0..rows * cols)
            .map(|_| ReramCell::programmed(CellState::Hrs, &params, &mut sampler))
            .collect();
        CrossbarArray {
            rows,
            cols,
            cells,
            params,
            sampler,
            row_writes: 0,
            row_reads: 0,
        }
    }

    /// Number of wordline rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bitline columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The device parameters of this array.
    #[must_use]
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Total row-write operations issued (energy/endurance accounting).
    #[must_use]
    pub fn row_writes(&self) -> u64 {
        self.row_writes
    }

    /// Total row-read (or multi-row activation) operations issued.
    #[must_use]
    pub fn row_reads(&self) -> u64 {
        self.row_reads
    }

    fn idx(&self, row: usize, col: usize) -> usize {
        row * self.cols + col
    }

    fn check_row(&self, row: usize) -> Result<(), ReramError> {
        if row >= self.rows {
            Err(ReramError::RowOutOfRange {
                row,
                rows: self.rows,
            })
        } else {
            Ok(())
        }
    }

    /// Writes a full row from a bit-stream (differential write: only cells
    /// whose value changes are reprogrammed, as the L0/L1 latch pair
    /// implements in hardware).
    ///
    /// Returns the number of cells actually reprogrammed.
    ///
    /// # Errors
    ///
    /// * [`ReramError::RowOutOfRange`] — `row` exceeds the array height.
    /// * [`ReramError::WidthMismatch`] — `data.len() != cols`.
    pub fn write_row(&mut self, row: usize, data: &BitStream) -> Result<usize, ReramError> {
        self.check_row(row)?;
        if data.len() != self.cols {
            return Err(ReramError::WidthMismatch {
                data: data.len(),
                cols: self.cols,
            });
        }
        self.row_writes += 1;
        let mut changed = 0;
        for col in 0..self.cols {
            let bit = data.get(col).unwrap_or(false);
            let i = self.idx(row, col);
            if self.cells[i].state().as_bool() != bit {
                let state = CellState::from_bool(bit);
                self.cells[i].program(state, &self.params, &mut self.sampler);
                changed += 1;
            }
        }
        Ok(changed)
    }

    /// Reads a full row digitally (programmed states, no analog noise).
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::RowOutOfRange`] if `row` exceeds the height.
    pub fn read_row(&mut self, row: usize) -> Result<BitStream, ReramError> {
        self.check_row(row)?;
        self.row_reads += 1;
        let cols = self.cols;
        Ok(BitStream::from_fn(cols, |col| {
            self.cells[row * cols + col].state().as_bool()
        }))
    }

    /// Reads a single cell's programmed state.
    ///
    /// # Errors
    ///
    /// Returns a range error for out-of-bounds coordinates.
    pub fn read_bit(&self, row: usize, col: usize) -> Result<bool, ReramError> {
        self.check_row(row)?;
        if col >= self.cols {
            return Err(ReramError::ColOutOfRange {
                col,
                cols: self.cols,
            });
        }
        Ok(self.cells[self.idx(row, col)].state().as_bool())
    }

    /// Writes a single cell.
    ///
    /// # Errors
    ///
    /// Returns a range error for out-of-bounds coordinates.
    pub fn write_bit(&mut self, row: usize, col: usize, bit: bool) -> Result<(), ReramError> {
        self.check_row(row)?;
        if col >= self.cols {
            return Err(ReramError::ColOutOfRange {
                col,
                cols: self.cols,
            });
        }
        let i = self.idx(row, col);
        if self.cells[i].state().as_bool() != bit {
            self.cells[i].program(CellState::from_bool(bit), &self.params, &mut self.sampler);
        }
        Ok(())
    }

    /// Analog multi-row activation: the total bitline current (amperes)
    /// through `col` when every row in `active_rows` is asserted — the raw
    /// quantity the scouting-logic sense amplifier compares against its
    /// reference current.
    ///
    /// # Errors
    ///
    /// Returns a range error for out-of-bounds coordinates.
    pub fn column_current(&mut self, active_rows: &[usize], col: usize) -> Result<f64, ReramError> {
        if col >= self.cols {
            return Err(ReramError::ColOutOfRange {
                col,
                cols: self.cols,
            });
        }
        let mut total = 0.0;
        for &row in active_rows {
            self.check_row(row)?;
            let i = self.idx(row, col);
            let cell = self.cells[i];
            total += cell.read_current(&self.params, &mut self.sampler);
        }
        Ok(total)
    }

    /// The maximum per-cell write count in the array (endurance hotspot).
    #[must_use]
    pub fn max_cell_writes(&self) -> u64 {
        self.cells.iter().map(ReramCell::writes).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut a = CrossbarArray::pristine(4, 128, 1);
        let data = BitStream::from_fn(128, |i| i % 3 == 0);
        a.write_row(2, &data).unwrap();
        assert_eq!(a.read_row(2).unwrap(), data);
        assert_eq!(a.read_row(0).unwrap().count_ones(), 0);
    }

    #[test]
    fn differential_write_counts_changed_cells() {
        let mut a = CrossbarArray::pristine(2, 64, 2);
        let data = BitStream::from_fn(64, |i| i < 10);
        let changed = a.write_row(0, &data).unwrap();
        assert_eq!(changed, 10); // pristine array: only the new ones flip
        let changed = a.write_row(0, &data).unwrap();
        assert_eq!(changed, 0); // rewriting identical data programs nothing
    }

    #[test]
    fn out_of_range_errors() {
        let mut a = CrossbarArray::pristine(2, 8, 3);
        assert!(matches!(
            a.read_row(2),
            Err(ReramError::RowOutOfRange { .. })
        ));
        assert!(matches!(
            a.write_row(0, &BitStream::zeros(9)),
            Err(ReramError::WidthMismatch { .. })
        ));
        assert!(matches!(
            a.read_bit(0, 8),
            Err(ReramError::ColOutOfRange { .. })
        ));
    }

    #[test]
    fn column_current_scales_with_lrs_count() {
        let mut a = CrossbarArray::pristine(3, 4, 4);
        a.write_row(0, &BitStream::ones(4)).unwrap();
        a.write_row(1, &BitStream::ones(4)).unwrap();
        // rows 0,1 LRS; row 2 HRS.
        let i2 = a.column_current(&[0, 1], 0).unwrap();
        let i1 = a.column_current(&[0], 0).unwrap();
        let i0 = a.column_current(&[2], 0).unwrap();
        assert!(i2 > 1.5 * i1, "i2 {i2} vs i1 {i1}");
        assert!(i1 > 5.0 * i0, "i1 {i1} vs i0 {i0}");
    }

    #[test]
    fn stats_accumulate() {
        let mut a = CrossbarArray::pristine(2, 8, 5);
        a.write_row(0, &BitStream::ones(8)).unwrap();
        a.read_row(0).unwrap();
        a.read_row(1).unwrap();
        assert_eq!(a.row_writes(), 1);
        assert_eq!(a.row_reads(), 2);
        assert!(a.max_cell_writes() >= 2); // initial program + write
    }

    #[test]
    fn write_bit_updates_single_cell() {
        let mut a = CrossbarArray::pristine(1, 8, 6);
        a.write_bit(0, 3, true).unwrap();
        assert!(a.read_bit(0, 3).unwrap());
        assert!(!a.read_bit(0, 2).unwrap());
    }
}
