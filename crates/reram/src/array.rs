//! 1T1R crossbar array with row-granular access and multi-row activation.
//!
//! The array is the Fig. 1(a) structure: wordline rows holding binary
//! data, random-number rows, and generated stochastic bit-streams; bitline
//! columns shared by the scouting-logic sense amplifiers.
//!
//! # Packed digital fast path
//!
//! The scouting-logic substrate executes bulk bitwise operations
//! row-parallel in a single sensing cycle, so the *digital* state of a row
//! is, semantically, a machine word vector — exactly the representation
//! [`BitStream`] already uses. The array therefore stores programmed
//! states as packed `u64` words (`⌈cols/64⌉` per row): `write_row`,
//! `read_row`, and the digital scouting path run word-at-a-time instead of
//! cell-by-cell.
//!
//! The *analog* quantities (per-cell drawn resistances feeding
//! [`CrossbarArray::column_current`] and the sense model) are materialized
//! lazily on first analog access and kept in sync by differential writes
//! afterwards, so fault-rate derivation ([`crate::vcm`]) sees the same
//! lognormal variability model as before while purely digital workloads
//! never pay for it.

use crate::cell::{read_current_from, sample_resistance, CellState, DeviceParams};
use crate::error::ReramError;
use crate::math::GaussianSampler;
use sc_core::BitStream;

/// A 2-D grid of ReRAM cells with packed digital state and lazily drawn
/// per-cell resistances.
///
/// Reads and writes are counted for energy accounting and endurance
/// studies. Digital reads are noiseless; the analog path
/// ([`CrossbarArray::column_current`]) includes read noise and HRS
/// instability and feeds the scouting-logic sense model.
#[derive(Debug, Clone)]
pub struct CrossbarArray {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    /// Packed programmed states, row-major: bit = 1 ⇔ LRS.
    words: Vec<u64>,
    /// Per-cell program counts (endurance accounting), row-major. Kept
    /// at the old per-cell model's u64 width so long endurance studies
    /// cannot wrap.
    cell_writes: Vec<u64>,
    /// Per-cell drawn resistances, materialized on first analog access.
    resistances: Option<Vec<f64>>,
    params: DeviceParams,
    sampler: GaussianSampler,
    row_writes: u64,
    row_reads: u64,
    /// Per-row write-operation counts (wear map for endurance-aware
    /// allocation): one tick per `write_row`, regardless of how many
    /// cells the differential write actually reprogrammed — the wordline
    /// pulse stresses the whole row.
    row_wear: Vec<u64>,
}

impl CrossbarArray {
    /// Creates an array with every cell programmed to HRS (logic 0), using
    /// default device parameters.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    #[must_use]
    pub fn pristine(rows: usize, cols: usize, seed: u64) -> Self {
        Self::with_params(rows, cols, DeviceParams::default(), seed)
    }

    /// Creates an all-HRS array with explicit device parameters.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    #[must_use]
    pub fn with_params(rows: usize, cols: usize, params: DeviceParams, seed: u64) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be nonzero");
        let words_per_row = cols.div_ceil(64);
        CrossbarArray {
            rows,
            cols,
            words_per_row,
            words: vec![0; rows * words_per_row],
            cell_writes: vec![1; rows * cols],
            resistances: None,
            params,
            sampler: GaussianSampler::new(seed),
            row_writes: 0,
            row_reads: 0,
            row_wear: vec![0; rows],
        }
    }

    /// Number of wordline rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bitline columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Packed words per row (`⌈cols/64⌉`).
    #[must_use]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The device parameters of this array.
    #[must_use]
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Total row-write operations issued (energy/endurance accounting).
    #[must_use]
    pub fn row_writes(&self) -> u64 {
        self.row_writes
    }

    /// Total row-read (or multi-row activation) operations issued.
    #[must_use]
    pub fn row_reads(&self) -> u64 {
        self.row_reads
    }

    /// Per-row write-operation counts, indexed by physical row (the wear
    /// map consumed by endurance-aware row allocation).
    #[must_use]
    pub fn wear(&self) -> &[u64] {
        &self.row_wear
    }

    /// The write-operation count of one physical row.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::RowOutOfRange`] if `row` exceeds the height.
    pub fn row_wear(&self, row: usize) -> Result<u64, ReramError> {
        self.check_row(row)?;
        Ok(self.row_wear[row])
    }

    /// Whether the analog per-cell state has been materialized.
    #[must_use]
    pub fn analog_materialized(&self) -> bool {
        self.resistances.is_some()
    }

    fn idx(&self, row: usize, col: usize) -> usize {
        row * self.cols + col
    }

    fn check_row(&self, row: usize) -> Result<(), ReramError> {
        if row >= self.rows {
            Err(ReramError::RowOutOfRange {
                row,
                rows: self.rows,
            })
        } else {
            Ok(())
        }
    }

    fn check_col(&self, col: usize) -> Result<(), ReramError> {
        if col >= self.cols {
            Err(ReramError::ColOutOfRange {
                col,
                cols: self.cols,
            })
        } else {
            Ok(())
        }
    }

    /// The packed digital words of a row (bit = 1 ⇔ LRS). Does not count
    /// as a sensed read; the scouting engine records activations through
    /// [`CrossbarArray::activate_rows`].
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::RowOutOfRange`] if `row` exceeds the height.
    pub fn row_words(&self, row: usize) -> Result<&[u64], ReramError> {
        self.check_row(row)?;
        let start = row * self.words_per_row;
        Ok(&self.words[start..start + self.words_per_row])
    }

    /// Validates a set of operand rows and records one multi-row
    /// activation per row (the accounting hook of the scouting engine's
    /// digital fast path, mirroring the per-row sensed reads of the
    /// original cell-by-cell implementation).
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::RowOutOfRange`] for any out-of-range row.
    pub fn activate_rows(&mut self, rows: &[usize]) -> Result<(), ReramError> {
        for &row in rows {
            self.check_row(row)?;
        }
        self.row_reads += rows.len() as u64;
        Ok(())
    }

    /// Draws per-cell resistances for the current programmed states.
    /// Called on first analog access; afterwards differential writes keep
    /// the drawn values in sync (reprogrammed cells redraw, untouched
    /// cells keep their resistance — the same cycle-to-cycle variability
    /// semantics as the per-cell model).
    fn materialize_analog(&mut self) {
        if self.resistances.is_some() {
            return;
        }
        let mut resistances = Vec::with_capacity(self.rows * self.cols);
        for row in 0..self.rows {
            let base = row * self.words_per_row;
            for col in 0..self.cols {
                let bit = (self.words[base + col / 64] >> (col % 64)) & 1 == 1;
                resistances.push(sample_resistance(
                    CellState::from_bool(bit),
                    &self.params,
                    &mut self.sampler,
                ));
            }
        }
        self.resistances = Some(resistances);
    }

    /// Writes a full row from a bit-stream (differential write: only cells
    /// whose value changes are reprogrammed, as the L0/L1 latch pair
    /// implements in hardware). Runs word-at-a-time; per-cell bookkeeping
    /// (endurance counters, analog resistance redraw) is only done for the
    /// changed bits of each word.
    ///
    /// Returns the number of cells actually reprogrammed.
    ///
    /// # Errors
    ///
    /// * [`ReramError::RowOutOfRange`] — `row` exceeds the array height.
    /// * [`ReramError::WidthMismatch`] — `data.len() != cols`.
    pub fn write_row(&mut self, row: usize, data: &BitStream) -> Result<usize, ReramError> {
        self.check_row(row)?;
        if data.len() != self.cols {
            return Err(ReramError::WidthMismatch {
                data: data.len(),
                cols: self.cols,
            });
        }
        self.row_writes += 1;
        self.row_wear[row] += 1;
        let base = row * self.words_per_row;
        let cell_base = row * self.cols;
        let mut changed = 0usize;
        for (w, &new) in data.as_words().iter().enumerate() {
            let old = self.words[base + w];
            let mut diff = old ^ new;
            if diff == 0 {
                continue;
            }
            changed += diff.count_ones() as usize;
            self.words[base + w] = new;
            // Per-cell bookkeeping only for the flipped bits.
            while diff != 0 {
                let bit = diff.trailing_zeros() as usize;
                diff &= diff - 1;
                let col = w * 64 + bit;
                let i = cell_base + col;
                self.cell_writes[i] += 1;
                if let Some(res) = self.resistances.as_mut() {
                    let state = CellState::from_bool(new >> bit & 1 == 1);
                    res[i] = sample_resistance(state, &self.params, &mut self.sampler);
                }
            }
        }
        Ok(changed)
    }

    /// Reads a full row digitally (programmed states, no analog noise) —
    /// a single word-level copy of the packed row.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::RowOutOfRange`] if `row` exceeds the height.
    pub fn read_row(&mut self, row: usize) -> Result<BitStream, ReramError> {
        self.check_row(row)?;
        self.row_reads += 1;
        let start = row * self.words_per_row;
        Ok(BitStream::from_words(
            self.words[start..start + self.words_per_row].to_vec(),
            self.cols,
        ))
    }

    /// Reads a single cell's programmed state.
    ///
    /// # Errors
    ///
    /// Returns a range error for out-of-bounds coordinates.
    pub fn read_bit(&self, row: usize, col: usize) -> Result<bool, ReramError> {
        self.check_row(row)?;
        self.check_col(col)?;
        let w = row * self.words_per_row + col / 64;
        Ok((self.words[w] >> (col % 64)) & 1 == 1)
    }

    /// Writes a single cell.
    ///
    /// # Errors
    ///
    /// Returns a range error for out-of-bounds coordinates.
    pub fn write_bit(&mut self, row: usize, col: usize, bit: bool) -> Result<(), ReramError> {
        self.check_row(row)?;
        self.check_col(col)?;
        let w = row * self.words_per_row + col / 64;
        let mask = 1u64 << (col % 64);
        let old = self.words[w] & mask != 0;
        if old == bit {
            return Ok(());
        }
        self.words[w] ^= mask;
        let i = self.idx(row, col);
        self.cell_writes[i] += 1;
        if let Some(res) = self.resistances.as_mut() {
            res[i] = sample_resistance(CellState::from_bool(bit), &self.params, &mut self.sampler);
        }
        Ok(())
    }

    /// Analog multi-row activation: the total bitline current (amperes)
    /// through `col` when every row in `active_rows` is asserted — the raw
    /// quantity the scouting-logic sense amplifier compares against its
    /// reference current.
    ///
    /// Materializes the per-cell resistances on first use.
    ///
    /// # Errors
    ///
    /// Returns a range error for out-of-bounds coordinates.
    pub fn column_current(&mut self, active_rows: &[usize], col: usize) -> Result<f64, ReramError> {
        self.check_col(col)?;
        for &row in active_rows {
            self.check_row(row)?;
        }
        self.materialize_analog();
        let res = self.resistances.as_ref().expect("just materialized");
        let mut total = 0.0;
        for &row in active_rows {
            let i = row * self.cols + col;
            let bit = (self.words[row * self.words_per_row + col / 64] >> (col % 64)) & 1 == 1;
            total += read_current_from(
                CellState::from_bool(bit),
                res[i],
                &self.params,
                &mut self.sampler,
            );
        }
        Ok(total)
    }

    /// The maximum per-cell write count in the array (endurance hotspot).
    #[must_use]
    pub fn max_cell_writes(&self) -> u64 {
        self.cell_writes.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut a = CrossbarArray::pristine(4, 128, 1);
        let data = BitStream::from_fn(128, |i| i % 3 == 0);
        a.write_row(2, &data).unwrap();
        assert_eq!(a.read_row(2).unwrap(), data);
        assert_eq!(a.read_row(0).unwrap().count_ones(), 0);
    }

    #[test]
    fn differential_write_counts_changed_cells() {
        let mut a = CrossbarArray::pristine(2, 64, 2);
        let data = BitStream::from_fn(64, |i| i < 10);
        let changed = a.write_row(0, &data).unwrap();
        assert_eq!(changed, 10); // pristine array: only the new ones flip
        let changed = a.write_row(0, &data).unwrap();
        assert_eq!(changed, 0); // rewriting identical data programs nothing
    }

    #[test]
    fn out_of_range_errors() {
        let mut a = CrossbarArray::pristine(2, 8, 3);
        assert!(matches!(
            a.read_row(2),
            Err(ReramError::RowOutOfRange { .. })
        ));
        assert!(matches!(
            a.write_row(0, &BitStream::zeros(9)),
            Err(ReramError::WidthMismatch { .. })
        ));
        assert!(matches!(
            a.read_bit(0, 8),
            Err(ReramError::ColOutOfRange { .. })
        ));
    }

    #[test]
    fn column_current_scales_with_lrs_count() {
        let mut a = CrossbarArray::pristine(3, 4, 4);
        a.write_row(0, &BitStream::ones(4)).unwrap();
        a.write_row(1, &BitStream::ones(4)).unwrap();
        // rows 0,1 LRS; row 2 HRS.
        let i2 = a.column_current(&[0, 1], 0).unwrap();
        let i1 = a.column_current(&[0], 0).unwrap();
        let i0 = a.column_current(&[2], 0).unwrap();
        assert!(i2 > 1.5 * i1, "i2 {i2} vs i1 {i1}");
        assert!(i1 > 5.0 * i0, "i1 {i1} vs i0 {i0}");
    }

    #[test]
    fn stats_accumulate() {
        let mut a = CrossbarArray::pristine(2, 8, 5);
        a.write_row(0, &BitStream::ones(8)).unwrap();
        a.read_row(0).unwrap();
        a.read_row(1).unwrap();
        assert_eq!(a.row_writes(), 1);
        assert_eq!(a.row_reads(), 2);
        assert!(a.max_cell_writes() >= 2); // initial program + write
    }

    #[test]
    fn wear_map_counts_row_writes() {
        let mut a = CrossbarArray::pristine(4, 64, 11);
        let data = BitStream::from_fn(64, |i| i % 2 == 0);
        a.write_row(1, &data).unwrap();
        a.write_row(1, &data).unwrap(); // identical data still wears the row
        a.write_row(3, &data).unwrap();
        assert_eq!(a.wear(), &[0, 2, 0, 1]);
        assert_eq!(a.row_wear(1).unwrap(), 2);
        assert!(a.row_wear(4).is_err());
    }

    #[test]
    fn write_bit_updates_single_cell() {
        let mut a = CrossbarArray::pristine(1, 8, 6);
        a.write_bit(0, 3, true).unwrap();
        assert!(a.read_bit(0, 3).unwrap());
        assert!(!a.read_bit(0, 2).unwrap());
    }

    #[test]
    fn analog_state_is_lazy_and_tracks_writes() {
        let mut a = CrossbarArray::pristine(2, 70, 7);
        a.write_row(0, &BitStream::ones(70)).unwrap();
        assert!(!a.analog_materialized());
        let i_before = a.column_current(&[0], 3).unwrap();
        assert!(a.analog_materialized());
        assert!(i_before > 0.0);
        // Reprogramming to HRS must drop the cell current by orders of
        // magnitude (the resistance is redrawn for the new state).
        a.write_row(0, &BitStream::zeros(70)).unwrap();
        let mut lrs_min = f64::MAX;
        let mut hrs_max: f64 = 0.0;
        let mut b = CrossbarArray::pristine(1, 70, 8);
        b.write_row(0, &BitStream::ones(70)).unwrap();
        for _ in 0..50 {
            lrs_min = lrs_min.min(b.column_current(&[0], 3).unwrap());
            hrs_max = hrs_max.max(a.column_current(&[0], 3).unwrap());
        }
        assert!(lrs_min > hrs_max, "lrs {lrs_min} vs hrs {hrs_max}");
    }

    #[test]
    fn row_words_expose_packed_state() {
        let mut a = CrossbarArray::pristine(2, 130, 9);
        let data = BitStream::from_fn(130, |i| i % 7 == 0);
        a.write_row(1, &data).unwrap();
        assert_eq!(a.words_per_row(), 3);
        assert_eq!(a.row_words(1).unwrap(), data.as_words());
        assert!(a.row_words(2).is_err());
    }

    #[test]
    fn activate_rows_counts_reads() {
        let mut a = CrossbarArray::pristine(4, 16, 10);
        a.activate_rows(&[0, 1, 2]).unwrap();
        assert_eq!(a.row_reads(), 3);
        assert!(a.activate_rows(&[4]).is_err());
        assert_eq!(a.row_reads(), 3);
    }
}
