//! Scouting-logic sense amplifier with per-operation reference currents.
//!
//! During a scouting-logic operation two or more rows are activated
//! simultaneously and the summed bitline current is compared against a
//! reference `I_ref` (Fig. 1c). The choice of `I_ref` selects the Boolean
//! function: detecting ≥1 LRS cell realizes OR, ≥2 realizes 2-input AND —
//! and, on three activated rows, the same ≥2 reference realizes the
//! 3-input majority the paper uses for scaled addition. XOR uses *two*
//! references (a window detector on the L0/L1 latch pair).

use crate::cell::DeviceParams;
use crate::error::ReramError;

/// A sense amplifier calibrated to the device's nominal LRS current.
///
/// Thresholds are expressed in multiples of the nominal single-cell LRS
/// read current; `threshold_for(k)` places `I_ref` halfway between the
/// `k−1`-cell and `k`-cell current levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseAmp {
    lrs_current: f64,
}

impl SenseAmp {
    /// Calibrates a sense amplifier for the given device parameters.
    #[must_use]
    pub fn calibrated(params: &DeviceParams) -> Self {
        SenseAmp {
            lrs_current: params.lrs_current(),
        }
    }

    /// The nominal single-LRS-cell current this amplifier is calibrated
    /// to, in amperes.
    #[must_use]
    pub fn lrs_current(&self) -> f64 {
        self.lrs_current
    }

    /// The reference current that detects "at least `k` LRS cells".
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::InvalidParameter`] if `k == 0`.
    pub fn threshold_for(&self, k: usize) -> Result<f64, ReramError> {
        if k == 0 {
            return Err(ReramError::InvalidParameter {
                name: "k",
                value: 0.0,
            });
        }
        Ok((k as f64 - 0.5) * self.lrs_current)
    }

    /// Single-reference sensing: `true` iff the bitline current exceeds
    /// the "at least `k`" reference.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::InvalidParameter`] if `k == 0`.
    pub fn sense_at_least(&self, current: f64, k: usize) -> Result<bool, ReramError> {
        Ok(current > self.threshold_for(k)?)
    }

    /// Window sensing for XOR: `true` iff the current indicates *exactly
    /// one* LRS cell (above the ≥1 reference on L0, below the ≥2 reference
    /// on L1).
    ///
    /// # Errors
    ///
    /// Propagates threshold errors (cannot occur for the fixed 1/2 pair).
    pub fn sense_exactly_one(&self, current: f64) -> Result<bool, ReramError> {
        Ok(current > self.threshold_for(1)? && current <= self.threshold_for(2)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amp() -> SenseAmp {
        SenseAmp::calibrated(&DeviceParams::hfo2())
    }

    #[test]
    fn thresholds_are_halfway_points() {
        let a = amp();
        let i = a.lrs_current();
        assert!((a.threshold_for(1).unwrap() - 0.5 * i).abs() < 1e-12);
        assert!((a.threshold_for(2).unwrap() - 1.5 * i).abs() < 1e-12);
        assert!(a.threshold_for(0).is_err());
    }

    #[test]
    fn sense_at_least_discriminates_counts() {
        let a = amp();
        let i = a.lrs_current();
        // 0 cells: ~0 current.
        assert!(!a.sense_at_least(0.01 * i, 1).unwrap());
        // 1 cell.
        assert!(a.sense_at_least(1.0 * i, 1).unwrap());
        assert!(!a.sense_at_least(1.0 * i, 2).unwrap());
        // 2 cells.
        assert!(a.sense_at_least(2.0 * i, 2).unwrap());
        // 3 cells vs majority reference.
        assert!(a.sense_at_least(3.0 * i, 2).unwrap());
    }

    #[test]
    fn xor_window() {
        let a = amp();
        let i = a.lrs_current();
        assert!(!a.sense_exactly_one(0.02 * i).unwrap());
        assert!(a.sense_exactly_one(1.0 * i).unwrap());
        assert!(!a.sense_exactly_one(2.0 * i).unwrap());
    }
}
