//! Peripheral write-driver latches (Fig. 1c) and predicated sensing.
//!
//! Nonvolatile memories conventionally pair each write driver with two
//! latches (Chevallier et al., ISSCC'10): **L0** holds the data to be
//! written and **L1** holds whether the cell must actually be modified
//! (differential write). The paper's IMSNG-opt reuses exactly this pair:
//!
//! * the running comparison flag `FFlag` lives in L1, so the
//!   `AND`-with-flag steps of the greater-than network become *predicated
//!   sensing* — no intermediate result is ever written to the array;
//! * the feedback path of IMSNG-naive drives the sensed value back onto
//!   the bitline as a voltage (`Vb`), replacing 2 of the 4 intermediate
//!   writes per bit position.

use crate::error::ReramError;
use sc_core::BitStream;

/// The L0/L1 latch pair of one row-wide write-driver bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteDriverLatches {
    /// L0 — data latch (the value to be written / forwarded).
    l0: BitStream,
    /// L1 — modify-flag latch (predication mask).
    l1: BitStream,
}

impl WriteDriverLatches {
    /// Creates a latch bank of the given width: L0 cleared, L1 all-set
    /// (every column initially active, matching the comparison-flag
    /// initialization of the greater-than network).
    #[must_use]
    pub fn new(width: usize) -> Self {
        WriteDriverLatches {
            l0: BitStream::zeros(width),
            l1: BitStream::ones(width),
        }
    }

    /// Width of the latch bank in columns.
    #[must_use]
    pub fn width(&self) -> usize {
        self.l0.len()
    }

    /// The data latch contents.
    #[must_use]
    pub fn data(&self) -> &BitStream {
        &self.l0
    }

    /// The flag latch contents.
    #[must_use]
    pub fn flags(&self) -> &BitStream {
        &self.l1
    }

    /// Loads the data latch.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::WidthMismatch`] if `data` has a different
    /// width.
    pub fn load_data(&mut self, data: &BitStream) -> Result<(), ReramError> {
        self.check(data)?;
        self.l0 = data.clone();
        Ok(())
    }

    /// Loads the flag latch.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::WidthMismatch`] if `flags` has a different
    /// width.
    pub fn load_flags(&mut self, flags: &BitStream) -> Result<(), ReramError> {
        self.check(flags)?;
        self.l1 = flags.clone();
        Ok(())
    }

    /// Predicated sensing: combines a fresh sense-amplifier result with
    /// the stored flags (`sensed AND L1`) *without any array write* — the
    /// core IMSNG-opt trick.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::WidthMismatch`] if `sensed` has a different
    /// width.
    pub fn predicated_sense(&self, sensed: &BitStream) -> Result<BitStream, ReramError> {
        self.check(sensed)?;
        sensed.and(&self.l1).map_err(|_| ReramError::WidthMismatch {
            data: sensed.len(),
            cols: self.width(),
        })
    }

    /// Updates the flag latch in place by ANDing it with a predicate
    /// (columns whose comparison has been decided drop out).
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::WidthMismatch`] if `keep` has a different
    /// width.
    pub fn mask_flags(&mut self, keep: &BitStream) -> Result<(), ReramError> {
        self.check(keep)?;
        self.l1
            .and_assign(keep)
            .map_err(|_| ReramError::WidthMismatch {
                data: keep.len(),
                cols: self.width(),
            })
    }

    /// Accumulates a predicated result into the data latch
    /// (`L0 ← L0 OR (sensed AND L1)`), the per-bit-position update of the
    /// greater-than network.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::WidthMismatch`] if `sensed` has a different
    /// width.
    pub fn accumulate(&mut self, sensed: &BitStream) -> Result<(), ReramError> {
        let gated = self.predicated_sense(sensed)?;
        self.l0
            .or_assign(&gated)
            .map_err(|_| ReramError::WidthMismatch {
                data: gated.len(),
                cols: self.width(),
            })
    }

    /// Differential-write mask: the columns whose stored value differs
    /// from the latch data and therefore need programming pulses.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::WidthMismatch`] if `current` has a different
    /// width.
    pub fn write_mask(&self, current: &BitStream) -> Result<BitStream, ReramError> {
        self.check(current)?;
        self.l0.xor(current).map_err(|_| ReramError::WidthMismatch {
            data: current.len(),
            cols: self.width(),
        })
    }

    fn check(&self, s: &BitStream) -> Result<(), ReramError> {
        if s.len() != self.width() {
            Err(ReramError::WidthMismatch {
                data: s.len(),
                cols: self.width(),
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_latches_have_open_flags() {
        let l = WriteDriverLatches::new(16);
        assert_eq!(l.flags().count_ones(), 16);
        assert_eq!(l.data().count_ones(), 0);
    }

    #[test]
    fn predicated_sense_gates_by_flags() {
        let mut l = WriteDriverLatches::new(8);
        l.load_flags(&BitStream::from_fn(8, |i| i < 4)).unwrap();
        let sensed = BitStream::ones(8);
        let gated = l.predicated_sense(&sensed).unwrap();
        assert_eq!(gated.count_ones(), 4);
    }

    #[test]
    fn mask_flags_narrows_monotonically() {
        let mut l = WriteDriverLatches::new(8);
        l.mask_flags(&BitStream::from_fn(8, |i| i % 2 == 0))
            .unwrap();
        l.mask_flags(&BitStream::from_fn(8, |i| i < 4)).unwrap();
        assert_eq!(l.flags().count_ones(), 2); // columns 0, 2
    }

    #[test]
    fn accumulate_ors_gated_results() {
        let mut l = WriteDriverLatches::new(8);
        l.load_flags(&BitStream::from_fn(8, |i| i < 6)).unwrap();
        l.accumulate(&BitStream::from_fn(8, |i| i % 2 == 1))
            .unwrap();
        // gated: odd columns below 6 -> 1, 3, 5
        assert_eq!(l.data().count_ones(), 3);
        l.accumulate(&BitStream::from_fn(8, |i| i == 0)).unwrap();
        assert_eq!(l.data().count_ones(), 4);
    }

    #[test]
    fn write_mask_is_xor_with_current() {
        let mut l = WriteDriverLatches::new(4);
        l.load_data(&BitStream::from_bools([true, true, false, false]))
            .unwrap();
        let current = BitStream::from_bools([true, false, true, false]);
        let mask = l.write_mask(&current).unwrap();
        assert_eq!(mask, BitStream::from_bools([false, true, true, false]));
    }

    #[test]
    fn width_mismatch_detected() {
        let mut l = WriteDriverLatches::new(4);
        assert!(l.load_data(&BitStream::zeros(5)).is_err());
        assert!(l.predicated_sense(&BitStream::zeros(3)).is_err());
    }
}
