//! Seeded fault injection for CIM operations.
//!
//! In digital CIM a fault is a bit flip: the sensed result of a bulk
//! bitwise operation inverts from its expected value (§IV-C). Failure
//! *rates* are derived from the device statistics (see [`crate::vcm`]);
//! this module applies them: every output bit of an in-memory operation is
//! flipped independently with the operation's failure probability.

use crate::error::ReramError;
use crate::scouting::SlOp;
use sc_core::rng::Xoshiro256;
use sc_core::BitStream;

/// Per-operation fault probabilities for scouting-logic outputs.
///
/// Different operations have different sensing margins: XOR's window
/// detector fails more often than OR's single wide threshold, and MAJ's
/// mid reference sits in the most crowded current region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Flip probability for AND / NAND outputs.
    pub and: f64,
    /// Flip probability for OR / NOR outputs.
    pub or: f64,
    /// Flip probability for XOR / XNOR outputs.
    pub xor: f64,
    /// Flip probability for 3-input majority outputs.
    pub maj: f64,
    /// Flip probability for single-row NOT reads.
    pub not: f64,
    /// Flip probability per written SBS bit (write disturbance).
    pub write: f64,
}

impl FaultRates {
    /// A fault-free configuration (the paper's ✗ columns).
    #[must_use]
    pub fn none() -> Self {
        FaultRates {
            and: 0.0,
            or: 0.0,
            xor: 0.0,
            maj: 0.0,
            not: 0.0,
            write: 0.0,
        }
    }

    /// A uniform flip probability across all operations.
    #[must_use]
    pub fn uniform(p: f64) -> Self {
        FaultRates {
            and: p,
            or: p,
            xor: p,
            maj: p,
            not: p,
            write: p,
        }
    }

    /// The flip probability for a given scouting-logic operation.
    #[must_use]
    pub fn for_op(&self, op: SlOp) -> f64 {
        match op {
            SlOp::And | SlOp::Nand => self.and,
            SlOp::Or | SlOp::Nor => self.or,
            SlOp::Xor | SlOp::Xnor => self.xor,
            SlOp::Maj => self.maj,
            SlOp::Not => self.not,
        }
    }

    /// Checks that every rate is a probability.
    ///
    /// The geometric-gap sampler assumes `p ∈ [0, 1]`; a NaN or
    /// out-of-range rate would silently sample garbage (NaN comparisons
    /// are all-false, so `corrupt_with_prob` would neither early-out nor
    /// saturate). Builders call this before constructing an injector.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::InvalidParameter`] naming the first offending
    /// field if any rate is NaN or outside `[0.0, 1.0]`.
    pub fn validate(&self) -> Result<(), ReramError> {
        let fields: [(&'static str, f64); 6] = [
            ("fault_rates.and", self.and),
            ("fault_rates.or", self.or),
            ("fault_rates.xor", self.xor),
            ("fault_rates.maj", self.maj),
            ("fault_rates.not", self.not),
            ("fault_rates.write", self.write),
        ];
        for (name, value) in fields {
            if !(0.0..=1.0).contains(&value) {
                return Err(ReramError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }

    /// Whether every rate is zero.
    #[must_use]
    pub fn is_fault_free(&self) -> bool {
        self.and == 0.0
            && self.or == 0.0
            && self.xor == 0.0
            && self.maj == 0.0
            && self.not == 0.0
            && self.write == 0.0
    }
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates::none()
    }
}

/// A seeded injector that flips bits of operation outputs according to a
/// [`FaultRates`] table.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rates: FaultRates,
    rng: Xoshiro256,
    injected: u64,
}

impl FaultInjector {
    /// Creates an injector with the given rates and seed.
    #[must_use]
    pub fn new(rates: FaultRates, seed: u64) -> Self {
        FaultInjector {
            rates,
            rng: Xoshiro256::seed_from_u64(seed),
            injected: 0,
        }
    }

    /// The configured rates.
    #[must_use]
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// Total bit flips injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Applies op-dependent bit flips to an operation output in place.
    pub fn corrupt_op_output(&mut self, op: SlOp, out: &mut BitStream) {
        let p = self.rates.for_op(op);
        self.corrupt_with_prob(p, out);
    }

    /// Applies write-disturbance flips to a stream about to be stored.
    pub fn corrupt_write(&mut self, out: &mut BitStream) {
        let p = self.rates.write;
        self.corrupt_with_prob(p, out);
    }

    fn corrupt_with_prob(&mut self, p: f64, out: &mut BitStream) {
        if p <= 0.0 || out.is_empty() {
            return;
        }
        if p >= 1.0 {
            let flipped = out.not();
            self.injected += out.len() as u64;
            *out = flipped;
            return;
        }
        // Sample the flip positions directly instead of tossing a coin per
        // bit: the gap to the next flipped bit is geometric with parameter
        // `p`, so one `ln` draw per *fault* replaces one uniform draw per
        // *bit* — the sampled positions form exactly the same independent
        // per-bit Bernoulli process, and the flips land as XOR masks on
        // the packed words. Deterministic per seed.
        let ln_keep = (1.0 - p).ln();
        if ln_keep == 0.0 {
            // p below ~1e-16: (1 − p) rounds to 1.0, so the expected flip
            // count is zero for any realistic stream length.
            return;
        }
        let mut i = 0usize;
        loop {
            let u = self.rng.next_f64();
            // `1 - u` is in (0, 1], keeping the log finite.
            let gap = ((1.0 - u).ln() / ln_keep).floor();
            if gap >= (out.len() - i) as f64 {
                return;
            }
            i += gap as usize;
            out.flip(i);
            self.injected += 1;
            i += 1;
            if i >= out.len() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_never_flip() {
        let mut inj = FaultInjector::new(FaultRates::none(), 1);
        let mut s = BitStream::ones(1024);
        inj.corrupt_op_output(SlOp::And, &mut s);
        assert_eq!(s.count_ones(), 1024);
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn uniform_rate_flips_expected_fraction() {
        let mut inj = FaultInjector::new(FaultRates::uniform(0.1), 2);
        let mut s = BitStream::zeros(100_000);
        inj.corrupt_op_output(SlOp::Xor, &mut s);
        let flips = s.count_ones();
        assert!((8_000..12_000).contains(&flips), "flips {flips}");
        assert_eq!(inj.injected(), flips);
    }

    #[test]
    fn per_op_rates_are_selected() {
        let rates = FaultRates {
            and: 0.0,
            or: 0.5,
            xor: 0.0,
            maj: 0.0,
            not: 0.0,
            write: 0.0,
        };
        let mut inj = FaultInjector::new(rates, 3);
        let mut s = BitStream::zeros(10_000);
        inj.corrupt_op_output(SlOp::And, &mut s);
        assert_eq!(s.count_ones(), 0);
        inj.corrupt_op_output(SlOp::Or, &mut s);
        assert!(s.count_ones() > 4_000);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(FaultRates::uniform(0.05), seed);
            let mut s = BitStream::zeros(4096);
            inj.corrupt_op_output(SlOp::Maj, &mut s);
            s
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn fault_free_detection() {
        assert!(FaultRates::none().is_fault_free());
        assert!(!FaultRates::uniform(0.01).is_fault_free());
    }

    #[test]
    fn subnormal_rates_flip_nothing() {
        // p below f64 resolution of (1 − p): ln(1 − p) collapses to 0;
        // the sampler must degrade to "no flips", not "flip everything".
        let mut inj = FaultInjector::new(FaultRates::uniform(1e-18), 4);
        let mut s = BitStream::zeros(4096);
        inj.corrupt_op_output(SlOp::And, &mut s);
        assert_eq!(s.count_ones(), 0);
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn validate_accepts_probabilities() {
        assert!(FaultRates::none().validate().is_ok());
        assert!(FaultRates::uniform(1.0).validate().is_ok());
        assert!(FaultRates::uniform(0.5).validate().is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_and_nan() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = FaultRates::uniform(bad).validate().unwrap_err();
            assert!(matches!(
                err,
                crate::error::ReramError::InvalidParameter { .. }
            ));
        }
        // The first offending field is named.
        let rates = FaultRates {
            maj: -1.0,
            ..FaultRates::none()
        };
        match rates.validate().unwrap_err() {
            crate::error::ReramError::InvalidParameter { name, value } => {
                assert_eq!(name, "fault_rates.maj");
                assert_eq!(value, -1.0);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn certain_rate_flips_everything() {
        let mut inj = FaultInjector::new(FaultRates::uniform(1.0), 5);
        let mut s = BitStream::zeros(100);
        inj.corrupt_op_output(SlOp::Or, &mut s);
        assert_eq!(s.count_ones(), 100);
        assert_eq!(inj.injected(), 100);
    }
}
