//! VCM device statistics → CIM failure-rate derivation (§IV).
//!
//! The paper runs the VCM-based ReRAM model of Wiefels et al. (TED 2020)
//! to obtain the LRS/HRS distributions, from which the probability of an
//! incorrect scouting-logic output is derived; those rates then drive the
//! architecture-level fault injection. This module reproduces that
//! derivation path:
//!
//! * [`VcmModel`] — voltage/time switching-probability model (used by
//!   write-based SBS generators à la SCRIMP, and for TRNG write analysis),
//! * [`derive_fault_rates`] — Monte-Carlo misread probability per
//!   scouting-logic operation, obtained by comparing analog sensing
//!   against digital truth over random operands.

use crate::array::CrossbarArray;
use crate::cell::DeviceParams;
use crate::faults::FaultRates;
use crate::scouting::{ScoutingLogic, SlOp};
use sc_core::rng::Xoshiro256;
use sc_core::BitStream;

/// Physics-inspired switching-probability model for VCM cells.
///
/// The SET transition under a voltage pulse is a thermally activated
/// process: `P(switch) = 1 − exp(−t_pulse / τ(V))` with
/// `τ(V) = τ₀ · exp(−V / V₀)`. Write-based stochastic generators (e.g.
/// SCRIMP) program cells with sub-threshold pulses so that `P(switch)`
/// equals the target probability — slow and endurance-hungry, which is
/// precisely the cost the paper's read-based IMSNG avoids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcmModel {
    /// Characteristic time constant at zero bias, seconds.
    pub tau0_s: f64,
    /// Voltage scale of the exponential acceleration, volts.
    pub v0: f64,
}

impl VcmModel {
    /// Typical HfO₂ parameters: strongly nonlinear voltage acceleration.
    #[must_use]
    pub fn hfo2() -> Self {
        VcmModel {
            tau0_s: 1.0,
            v0: 0.15,
        }
    }

    /// Probability that a pulse of `v` volts for `t_pulse_s` seconds
    /// switches the cell.
    #[must_use]
    pub fn switch_probability(&self, v: f64, t_pulse_s: f64) -> f64 {
        if v <= 0.0 || t_pulse_s <= 0.0 {
            return 0.0;
        }
        let tau = self.tau0_s * (-v / self.v0).exp();
        1.0 - (-t_pulse_s / tau).exp()
    }

    /// The pulse width that yields a target switching probability at a
    /// fixed voltage (inverse of [`VcmModel::switch_probability`]).
    ///
    /// Returns `None` for targets outside `(0, 1)`.
    #[must_use]
    pub fn pulse_for_probability(&self, v: f64, target: f64) -> Option<f64> {
        if !(0.0..1.0).contains(&target) || target == 0.0 || v <= 0.0 {
            return None;
        }
        let tau = self.tau0_s * (-v / self.v0).exp();
        Some(-tau * (1.0 - target).ln())
    }
}

/// Derives per-operation misread probabilities by Monte-Carlo comparison
/// of analog scouting-logic sensing against digital truth.
///
/// `columns_per_trial` sets the bulk width of each trial (wider = more
/// samples per array program); `trials` arrays are programmed with fresh
/// random operands. The paper's evaluation derives its fault-injection
/// rates exactly this way from the device distributions.
#[must_use]
pub fn derive_fault_rates(
    params: &DeviceParams,
    trials: usize,
    columns_per_trial: usize,
    seed: u64,
) -> FaultRates {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut rates = FaultRates::none();
    let ops: [(SlOp, usize, &mut f64); 4] = [
        (SlOp::And, 2, &mut rates.and),
        (SlOp::Or, 2, &mut rates.or),
        (SlOp::Xor, 2, &mut rates.xor),
        (SlOp::Maj, 3, &mut rates.maj),
    ];
    for (op, operands, slot) in ops {
        let mut errors = 0u64;
        let mut total = 0u64;
        for t in 0..trials {
            let mut array = CrossbarArray::with_params(
                operands,
                columns_per_trial,
                *params,
                seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ op as u64,
            );
            let rows: Vec<usize> = (0..operands).collect();
            let mut truth_rows = Vec::with_capacity(operands);
            for &r in &rows {
                let data = BitStream::from_fn(columns_per_trial, |_| rng.next_f64() < 0.5);
                array.write_row(r, &data).expect("row in range");
                truth_rows.push(data);
            }
            let mut analog = ScoutingLogic::analog();
            let got = analog
                .execute_mut(&mut array, op, &rows)
                .expect("valid operands");
            let want = match op {
                SlOp::And => truth_rows[0].and(&truth_rows[1]).expect("equal lengths"),
                SlOp::Or => truth_rows[0].or(&truth_rows[1]).expect("equal lengths"),
                SlOp::Xor => truth_rows[0].xor(&truth_rows[1]).expect("equal lengths"),
                SlOp::Maj => truth_rows[0]
                    .maj3(&truth_rows[1], &truth_rows[2])
                    .expect("equal lengths"),
                _ => unreachable!("only 4 ops derived"),
            };
            errors += got.xor(&want).expect("equal lengths").count_ones();
            total += columns_per_trial as u64;
        }
        *slot = errors as f64 / total.max(1) as f64;
    }
    // Single-row NOT reads fail when an HRS tail event crosses the ≥1
    // reference; reuse the OR estimate (same single threshold).
    rates.not = rates.or;
    // Write disturbance is far rarer than sensing failure; the paper's
    // digital-fault study concentrates on CIM (sensing) faults.
    rates.write = 0.0;
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switching_probability_is_monotonic_in_v_and_t() {
        let m = VcmModel::hfo2();
        let p1 = m.switch_probability(0.8, 1e-7);
        let p2 = m.switch_probability(1.0, 1e-7);
        let p3 = m.switch_probability(1.0, 1e-6);
        assert!(p2 > p1, "{p2} vs {p1}");
        assert!(p3 > p2, "{p3} vs {p2}");
        assert_eq!(m.switch_probability(0.0, 1e-6), 0.0);
        assert_eq!(m.switch_probability(1.0, 0.0), 0.0);
    }

    #[test]
    fn pulse_for_probability_inverts_forward_model() {
        let m = VcmModel::hfo2();
        for &target in &[0.1, 0.5, 0.9] {
            let t = m.pulse_for_probability(1.2, target).unwrap();
            let p = m.switch_probability(1.2, t);
            assert!((p - target).abs() < 1e-9, "target {target} got {p}");
        }
        assert!(m.pulse_for_probability(1.2, 0.0).is_none());
        assert!(m.pulse_for_probability(1.2, 1.0).is_none());
    }

    #[test]
    fn clean_devices_have_near_zero_fault_rates() {
        let mut p = DeviceParams::hfo2();
        p.lrs_sigma = 0.02;
        p.hrs_sigma = 0.05;
        p.hrs_tail_prob = 0.0;
        p.read_noise_frac = 0.01;
        let rates = derive_fault_rates(&p, 4, 128, 1);
        assert!(rates.and < 0.01, "and {}", rates.and);
        assert!(rates.or < 0.01, "or {}", rates.or);
        assert!(rates.maj < 0.01, "maj {}", rates.maj);
    }

    #[test]
    fn noisy_devices_fail_more_and_xor_is_worst() {
        let rates = derive_fault_rates(&DeviceParams::noisy_corner(), 6, 128, 2);
        assert!(rates.xor > 0.0, "xor rate should be nonzero");
        // XOR's window detector is strictly more fragile than OR's single
        // wide threshold.
        assert!(
            rates.xor >= rates.or,
            "xor {} should be >= or {}",
            rates.xor,
            rates.or
        );
    }

    #[test]
    fn default_devices_land_in_the_papers_regime() {
        // The paper's derived rates put SC quality drops near 5%; that
        // corresponds to per-op failure probabilities in the 1e-4..5e-2
        // band for the default device.
        let rates = derive_fault_rates(&DeviceParams::hfo2(), 6, 256, 3);
        for (name, r) in [
            ("and", rates.and),
            ("or", rates.or),
            ("xor", rates.xor),
            ("maj", rates.maj),
        ] {
            assert!(r < 0.08, "{name} rate {r} unrealistically high");
        }
    }
}
