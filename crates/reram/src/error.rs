//! Error types for the ReRAM substrate.

use std::fmt;

/// Errors produced by ReRAM array and periphery operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReramError {
    /// A row index exceeded the array height.
    RowOutOfRange {
        /// The offending row index.
        row: usize,
        /// The array height.
        rows: usize,
    },
    /// A column index exceeded the array width.
    ColOutOfRange {
        /// The offending column index.
        col: usize,
        /// The array width.
        cols: usize,
    },
    /// A written stream's length differed from the array width.
    WidthMismatch {
        /// Length of the data being written.
        data: usize,
        /// Array width.
        cols: usize,
    },
    /// A scouting-logic operation was issued with an unsupported operand
    /// row count (e.g. XOR over three rows).
    BadOperandCount {
        /// The operation name.
        op: &'static str,
        /// Number of operand rows supplied.
        got: usize,
        /// Number of operand rows expected.
        expected: usize,
    },
    /// A device or model parameter was out of its physical range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Supplied value.
        value: f64,
    },
    /// The ADC was asked to digitize more ones than its input range covers.
    AdcOverRange {
        /// Population count presented on the bitline.
        count: u64,
        /// Maximum representable count.
        max: u64,
    },
}

impl fmt::Display for ReramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReramError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range (array has {rows} rows)")
            }
            ReramError::ColOutOfRange { col, cols } => {
                write!(f, "column {col} out of range (array has {cols} columns)")
            }
            ReramError::WidthMismatch { data, cols } => {
                write!(f, "data length {data} does not match array width {cols}")
            }
            ReramError::BadOperandCount { op, got, expected } => {
                write!(f, "{op} expects {expected} operand rows, got {got}")
            }
            ReramError::InvalidParameter { name, value } => {
                write!(f, "parameter {name} = {value} is out of range")
            }
            ReramError::AdcOverRange { count, max } => {
                write!(f, "bitline count {count} exceeds adc range {max}")
            }
        }
    }
}

impl std::error::Error for ReramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_values() {
        let e = ReramError::RowOutOfRange { row: 9, rows: 8 };
        assert!(e.to_string().contains("row 9"));
        let e = ReramError::AdcOverRange {
            count: 300,
            max: 255,
        };
        assert!(e.to_string().contains("300"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ReramError>();
    }
}
