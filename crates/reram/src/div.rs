//! Periphery-executed CORDIV division (§III-B, "Division").
//!
//! Prior SC work implements division with CMOS flip-flops and MUXes; the
//! paper maps the same JK/D-latch state machine onto the *existing* L0/L1
//! write-driver latches: intermediate values stay in the periphery and are
//! forwarded to the bitline as voltages, eliminating intermediate write
//! operations entirely. The computation remains sequential — `O(N)`
//! latency — but each step touches only latch state, never the array.

use sc_core::div::CordivUnit;
use sc_core::{BitStream, ScError};

/// A CORDIV execution unit living in the write-driver latches.
///
/// Wraps the bit-level [`CordivUnit`] with periphery bookkeeping: steps
/// executed and (zero) array writes, making the "no intermediate writes"
/// property checkable.
#[derive(Debug, Clone, Copy, Default)]
pub struct CordivPeriphery {
    steps: u64,
}

impl CordivPeriphery {
    /// Creates an idle unit.
    #[must_use]
    pub fn new() -> Self {
        CordivPeriphery::default()
    }

    /// Latch-state steps executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Runs CORDIV over whole operand streams: `x / y` for correlated
    /// streams with `p_x ≤ p_y`.
    ///
    /// # Errors
    ///
    /// * [`ScError::LengthMismatch`] — operand lengths differ.
    /// * [`ScError::EmptyBitStream`] — operands are empty.
    /// * [`ScError::DivisionByZero`] — all-zero divisor.
    pub fn run(&mut self, dividend: &BitStream, divisor: &BitStream) -> Result<BitStream, ScError> {
        if dividend.len() != divisor.len() {
            return Err(ScError::LengthMismatch {
                left: dividend.len(),
                right: divisor.len(),
            });
        }
        if dividend.is_empty() {
            return Err(ScError::EmptyBitStream);
        }
        if divisor.count_ones() == 0 {
            return Err(ScError::DivisionByZero);
        }
        let mut unit = CordivUnit::new();
        let mut out = BitStream::zeros(dividend.len());
        for i in 0..dividend.len() {
            self.steps += 1;
            let q = unit.step(
                dividend.get(i).unwrap_or(false),
                divisor.get(i).unwrap_or(false),
            );
            if q {
                out.set(i, true);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_cordiv() {
        let x = BitStream::from_fn(64, |i| i % 4 == 0);
        let y = BitStream::from_fn(64, |i| i % 2 == 0);
        let mut p = CordivPeriphery::new();
        let got = p.run(&x, &y).unwrap();
        let want = sc_core::div::cordiv(&x, &y).unwrap();
        assert_eq!(got, want);
        assert_eq!(p.steps(), 64);
    }

    #[test]
    fn errors_propagate() {
        let mut p = CordivPeriphery::new();
        let x = BitStream::zeros(8);
        assert_eq!(p.run(&x, &x), Err(ScError::DivisionByZero));
        let y = BitStream::ones(9);
        assert!(matches!(p.run(&x, &y), Err(ScError::LengthMismatch { .. })));
    }

    #[test]
    fn steps_accumulate_across_runs() {
        let x = BitStream::from_fn(32, |i| i < 8);
        let y = BitStream::from_fn(32, |i| i < 16);
        let mut p = CordivPeriphery::new();
        p.run(&x, &y).unwrap();
        p.run(&x, &y).unwrap();
        assert_eq!(p.steps(), 64);
    }
}
