//! ADC-based stochastic-to-binary conversion (§III-C).
//!
//! The output bit-stream is applied as read voltages to a reference column
//! pre-programmed to LRS; the summed bitline current is proportional to
//! the stream's population count and is digitized in a *single step* by an
//! 8-bit SAR ADC (the ISAAC converter), replacing the `N`-cycle CMOS
//! counter.

use crate::error::ReramError;
use crate::math::GaussianSampler;
use sc_core::BitStream;

/// An `bits`-bit ADC with optional input-referred noise, modeling the
/// bitline population-count digitizer.
///
/// # Example
///
/// ```
/// use reram::adc::Adc;
/// use sc_core::BitStream;
///
/// # fn main() -> Result<(), reram::ReramError> {
/// let mut adc = Adc::ideal(8);
/// let s = BitStream::from_fn(256, |i| i < 192);
/// // 192 ones over a 256-bit full scale map to code ⌊192·255/256⌉ = 191.
/// let code = adc.convert_stream(&s)?;
/// assert_eq!(code, 191);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Adc {
    bits: u32,
    noise_lsb: f64,
    sampler: GaussianSampler,
    samples: u64,
}

impl Adc {
    /// Creates a noiseless converter.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=16`.
    #[must_use]
    pub fn ideal(bits: u32) -> Self {
        Adc::with_noise(bits, 0.0, 0)
    }

    /// Creates a converter with Gaussian input-referred noise of
    /// `noise_lsb` LSBs (a SAR ADC typically sits near 0.3–0.5 LSB).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=16` or `noise_lsb < 0`.
    #[must_use]
    pub fn with_noise(bits: u32, noise_lsb: f64, seed: u64) -> Self {
        assert!((1..=16).contains(&bits), "adc resolution must be 1..=16");
        assert!(noise_lsb >= 0.0, "noise must be non-negative");
        Adc {
            bits,
            noise_lsb,
            sampler: GaussianSampler::new(seed),
            samples: 0,
        }
    }

    /// ADC resolution in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of conversions performed.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Maximum output code.
    #[must_use]
    pub fn max_code(&self) -> u64 {
        (1u64 << self.bits) - 1
    }

    /// Digitizes a raw population count with full-scale `full_scale`
    /// (the stream length), returning the output code in
    /// `0..=max_code()`.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::AdcOverRange`] if `count > full_scale`.
    pub fn convert_count(&mut self, count: u64, full_scale: u64) -> Result<u64, ReramError> {
        if count > full_scale {
            return Err(ReramError::AdcOverRange {
                count,
                max: full_scale,
            });
        }
        self.samples += 1;
        let max_code = self.max_code() as f64;
        let ideal = count as f64 / full_scale.max(1) as f64 * max_code;
        let noisy = if self.noise_lsb > 0.0 {
            self.sampler.normal(ideal, self.noise_lsb)
        } else {
            ideal
        };
        Ok(noisy.round().clamp(0.0, max_code) as u64)
    }

    /// Digitizes a whole bit-stream (bitline current accumulation over a
    /// reference column): one-step stochastic-to-binary conversion.
    ///
    /// # Errors
    ///
    /// Propagates conversion errors (cannot over-range for a valid
    /// stream).
    pub fn convert_stream(&mut self, s: &BitStream) -> Result<u64, ReramError> {
        self.convert_count(s.count_ones(), s.len() as u64)
    }

    /// Converts a stream and rescales the code to a probability estimate.
    ///
    /// # Errors
    ///
    /// Propagates conversion errors.
    pub fn convert_to_prob(&mut self, s: &BitStream) -> Result<f64, ReramError> {
        let code = self.convert_stream(s)?;
        Ok(code as f64 / self.max_code() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_conversion_is_exact_at_matching_resolution() {
        let mut adc = Adc::ideal(8);
        for count in [0u64, 1, 100, 255, 256] {
            let code = adc.convert_count(count, 256).unwrap();
            let expect = (count as f64 / 256.0 * 255.0).round() as u64;
            assert_eq!(code, expect, "count {count}");
        }
        assert_eq!(adc.samples(), 5);
    }

    #[test]
    fn over_range_is_an_error() {
        let mut adc = Adc::ideal(8);
        assert!(matches!(
            adc.convert_count(300, 256),
            Err(ReramError::AdcOverRange { .. })
        ));
    }

    #[test]
    fn noise_perturbs_but_tracks() {
        let mut adc = Adc::with_noise(8, 0.5, 3);
        let mut max_err = 0i64;
        for _ in 0..200 {
            let code = adc.convert_count(128, 256).unwrap() as i64;
            max_err = max_err.max((code - 127).abs());
        }
        assert!(max_err <= 3, "max_err {max_err}");
        assert!(max_err >= 1, "noise should perturb some codes");
    }

    #[test]
    fn short_streams_upscale_to_full_code_range() {
        let mut adc = Adc::ideal(8);
        let s = BitStream::ones(32);
        assert_eq!(adc.convert_stream(&s).unwrap(), 255);
        let h = BitStream::from_fn(32, |i| i < 16);
        assert_eq!(adc.convert_stream(&h).unwrap(), 128);
    }

    #[test]
    fn prob_round_trip() {
        let mut adc = Adc::ideal(8);
        let s = BitStream::from_fn(256, |i| i < 64);
        let p = adc.convert_to_prob(&s).unwrap();
        assert!((p - 0.25).abs() < 0.01);
    }
}
