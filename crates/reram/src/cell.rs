//! Single ReRAM (memristor) cell model.
//!
//! Data is stored as a resistance state: **LRS** (low-resistance state,
//! logic `1`) or **HRS** (high-resistance state, logic `0`). Each cell's
//! actual resistance is drawn from a lognormal distribution on every SET /
//! RESET (cycle-to-cycle variability), and HRS additionally suffers the
//! instability documented for VCM cells (Wiefels et al., TED 2020): the
//! HRS distribution has a pronounced low-resistance tail that collides
//! with the sensing window and causes CIM misreads.

use crate::error::ReramError;
use crate::math::GaussianSampler;

/// The programmed logic state of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellState {
    /// Low-resistance state — logic `1`.
    Lrs,
    /// High-resistance state — logic `0`.
    Hrs,
}

impl CellState {
    /// The logic value this state encodes.
    #[must_use]
    pub fn as_bool(self) -> bool {
        matches!(self, CellState::Lrs)
    }

    /// The state encoding the given logic value.
    #[must_use]
    pub fn from_bool(bit: bool) -> Self {
        if bit {
            CellState::Lrs
        } else {
            CellState::Hrs
        }
    }
}

/// Device-level parameters of the ReRAM technology.
///
/// Defaults follow common HfO₂ VCM numbers: 10 kΩ median LRS, 1 MΩ median
/// HRS, lognormal spreads, 0.2 V read voltage, ~20 ns / ~2 pJ-per-bit SET.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceParams {
    /// Median LRS resistance in ohms.
    pub lrs_median_ohm: f64,
    /// Lognormal sigma of the LRS distribution (log domain).
    pub lrs_sigma: f64,
    /// Median HRS resistance in ohms.
    pub hrs_median_ohm: f64,
    /// Lognormal sigma of the HRS distribution (log domain).
    pub hrs_sigma: f64,
    /// Probability that an HRS cell momentarily presents a tail resistance
    /// (HRS instability); tail reads sample a lowered distribution.
    pub hrs_tail_prob: f64,
    /// Factor by which the HRS median drops in a tail event.
    pub hrs_tail_factor: f64,
    /// Read voltage in volts.
    pub read_voltage: f64,
    /// Gaussian sigma of read-current noise, as a fraction of the nominal
    /// current (models read noise exploited by the TRNG).
    pub read_noise_frac: f64,
}

impl DeviceParams {
    /// Parameters for a well-behaved HfO₂ VCM device.
    #[must_use]
    pub fn hfo2() -> Self {
        DeviceParams {
            lrs_median_ohm: 10e3,
            lrs_sigma: 0.15,
            hrs_median_ohm: 1e6,
            hrs_sigma: 0.45,
            hrs_tail_prob: 0.01,
            hrs_tail_factor: 0.05,
            read_voltage: 0.2,
            read_noise_frac: 0.05,
        }
    }

    /// A deliberately noisy corner (wider spreads, stronger HRS
    /// instability) for worst-case fault studies.
    #[must_use]
    pub fn noisy_corner() -> Self {
        DeviceParams {
            lrs_sigma: 0.25,
            hrs_sigma: 0.6,
            hrs_tail_prob: 0.05,
            ..DeviceParams::hfo2()
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::InvalidParameter`] for non-positive
    /// resistances/voltages or out-of-range probabilities.
    pub fn validate(&self) -> Result<(), ReramError> {
        let checks: [(&'static str, f64, bool); 8] = [
            (
                "lrs_median_ohm",
                self.lrs_median_ohm,
                self.lrs_median_ohm > 0.0,
            ),
            ("lrs_sigma", self.lrs_sigma, self.lrs_sigma >= 0.0),
            (
                "hrs_median_ohm",
                self.hrs_median_ohm,
                self.hrs_median_ohm > 0.0,
            ),
            ("hrs_sigma", self.hrs_sigma, self.hrs_sigma >= 0.0),
            (
                "hrs_tail_prob",
                self.hrs_tail_prob,
                (0.0..=1.0).contains(&self.hrs_tail_prob),
            ),
            (
                "hrs_tail_factor",
                self.hrs_tail_factor,
                self.hrs_tail_factor > 0.0 && self.hrs_tail_factor <= 1.0,
            ),
            ("read_voltage", self.read_voltage, self.read_voltage > 0.0),
            (
                "read_noise_frac",
                self.read_noise_frac,
                self.read_noise_frac >= 0.0,
            ),
        ];
        for (name, value, ok) in checks {
            if !ok {
                return Err(ReramError::InvalidParameter { name, value });
            }
        }
        if self.hrs_median_ohm <= self.lrs_median_ohm {
            return Err(ReramError::InvalidParameter {
                name: "hrs_median_ohm",
                value: self.hrs_median_ohm,
            });
        }
        Ok(())
    }

    /// Nominal LRS read current in amperes.
    #[must_use]
    pub fn lrs_current(&self) -> f64 {
        self.read_voltage / self.lrs_median_ohm
    }

    /// Nominal HRS read current in amperes.
    #[must_use]
    pub fn hrs_current(&self) -> f64 {
        self.read_voltage / self.hrs_median_ohm
    }
}

impl Default for DeviceParams {
    fn default() -> Self {
        DeviceParams::hfo2()
    }
}

/// Draws a fresh resistance for a cell programmed to `state` from the
/// device's lognormal distribution (the per-program cycle-to-cycle
/// variability draw). Shared by [`ReramCell`] and the packed
/// [`crate::array::CrossbarArray`], whose analog state is materialized
/// lazily.
#[must_use]
pub fn sample_resistance(
    state: CellState,
    params: &DeviceParams,
    sampler: &mut GaussianSampler,
) -> f64 {
    match state {
        CellState::Lrs => sampler.lognormal(params.lrs_median_ohm.ln(), params.lrs_sigma),
        CellState::Hrs => sampler.lognormal(params.hrs_median_ohm.ln(), params.hrs_sigma),
    }
}

/// The instantaneous read current in amperes for a cell in `state` with
/// drawn resistance `resistance_ohm`, including read noise and HRS tail
/// instability (Wiefels et al. 2020).
#[must_use]
pub fn read_current_from(
    state: CellState,
    resistance_ohm: f64,
    params: &DeviceParams,
    sampler: &mut GaussianSampler,
) -> f64 {
    let mut r = resistance_ohm;
    if state == CellState::Hrs && sampler.uniform() < params.hrs_tail_prob {
        // HRS instability event: the cell momentarily presents a much
        // lower resistance.
        r *= params.hrs_tail_factor;
    }
    let nominal = params.read_voltage / r;
    let noisy = sampler.normal(nominal, nominal * params.read_noise_frac);
    noisy.max(0.0)
}

/// One ReRAM cell: a programmed state plus the concrete resistance drawn
/// at programming time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReramCell {
    state: CellState,
    resistance_ohm: f64,
    writes: u64,
}

impl ReramCell {
    /// Creates a cell programmed to `state`, drawing its resistance from
    /// the device distribution.
    #[must_use]
    pub fn programmed(
        state: CellState,
        params: &DeviceParams,
        sampler: &mut GaussianSampler,
    ) -> Self {
        let resistance_ohm = Self::draw_resistance(state, params, sampler);
        ReramCell {
            state,
            resistance_ohm,
            writes: 1,
        }
    }

    fn draw_resistance(
        state: CellState,
        params: &DeviceParams,
        sampler: &mut GaussianSampler,
    ) -> f64 {
        sample_resistance(state, params, sampler)
    }

    /// The programmed logic state.
    #[must_use]
    pub fn state(&self) -> CellState {
        self.state
    }

    /// The drawn static resistance in ohms.
    #[must_use]
    pub fn resistance_ohm(&self) -> f64 {
        self.resistance_ohm
    }

    /// Number of program operations this cell has seen (endurance
    /// accounting).
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Reprograms the cell, redrawing its resistance (cycle-to-cycle
    /// variability) and bumping the endurance counter.
    pub fn program(
        &mut self,
        state: CellState,
        params: &DeviceParams,
        sampler: &mut GaussianSampler,
    ) {
        self.state = state;
        self.resistance_ohm = Self::draw_resistance(state, params, sampler);
        self.writes += 1;
    }

    /// The instantaneous read current in amperes, including read noise and
    /// HRS tail instability.
    pub fn read_current(&self, params: &DeviceParams, sampler: &mut GaussianSampler) -> f64 {
        read_current_from(self.state, self.resistance_ohm, params, sampler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_valid() {
        DeviceParams::hfo2().validate().unwrap();
        DeviceParams::noisy_corner().validate().unwrap();
    }

    #[test]
    fn invalid_params_detected() {
        let mut p = DeviceParams::hfo2();
        p.lrs_median_ohm = -1.0;
        assert!(p.validate().is_err());
        let mut p = DeviceParams::hfo2();
        p.hrs_median_ohm = 1e3; // below LRS median
        assert!(p.validate().is_err());
        let mut p = DeviceParams::hfo2();
        p.hrs_tail_prob = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn lrs_current_exceeds_hrs_current() {
        let p = DeviceParams::hfo2();
        assert!(p.lrs_current() > 10.0 * p.hrs_current());
    }

    #[test]
    fn programming_redraws_resistance() {
        let p = DeviceParams::hfo2();
        let mut g = GaussianSampler::new(1);
        let mut cell = ReramCell::programmed(CellState::Lrs, &p, &mut g);
        let r1 = cell.resistance_ohm();
        cell.program(CellState::Lrs, &p, &mut g);
        assert_ne!(cell.resistance_ohm(), r1);
        assert_eq!(cell.writes(), 2);
    }

    #[test]
    fn read_currents_separate_states() {
        let p = DeviceParams::hfo2();
        let mut g = GaussianSampler::new(2);
        let lrs = ReramCell::programmed(CellState::Lrs, &p, &mut g);
        let hrs = ReramCell::programmed(CellState::Hrs, &p, &mut g);
        let mut lrs_min = f64::MAX;
        let mut hrs_max: f64 = 0.0;
        for _ in 0..200 {
            lrs_min = lrs_min.min(lrs.read_current(&p, &mut g));
            hrs_max = hrs_max.max(hrs.read_current(&p, &mut g));
        }
        // Even with noise and tails, single-cell margins hold at these
        // medians (tails matter for multi-row scouting ops, not raw reads).
        assert!(lrs_min > hrs_max, "lrs_min {lrs_min} hrs_max {hrs_max}");
    }

    #[test]
    fn state_round_trips_bool() {
        assert_eq!(CellState::from_bool(true), CellState::Lrs);
        assert_eq!(CellState::from_bool(false), CellState::Hrs);
        assert!(CellState::Lrs.as_bool());
        assert!(!CellState::Hrs.as_bool());
    }
}
