//! Differential property tests: the packed word fast path must be
//! bit-exact against the cell-by-cell reference path.
//!
//! * Ideal mode: `ScoutingLogic::execute_mut` (word path) ≡
//!   `ScoutingLogic::digital_reference` (per-cell truth table) for every
//!   operation and for row widths including non-multiple-of-64 tails.
//! * Array access: packed `read_row` ≡ per-cell `read_bit` loop;
//!   differential `write_row` bookkeeping matches Hamming distances.
//! * FaultInjected mode: a seeded fault-injected engine produces exactly
//!   `digital_reference ⊕ injector(seed)` — i.e. the packed path changes
//!   nothing about where seeded faults land — and is reproducible.

use proptest::prelude::*;
use reram::array::CrossbarArray;
use reram::faults::{FaultInjector, FaultRates};
use reram::scouting::{ScoutingLogic, SlOp};
use sc_core::rng::Xoshiro256;
use sc_core::BitStream;

const ALL_OPS: [SlOp; 8] = [
    SlOp::And,
    SlOp::Or,
    SlOp::Xor,
    SlOp::Nand,
    SlOp::Nor,
    SlOp::Xnor,
    SlOp::Maj,
    SlOp::Not,
];

fn operand_rows(op: SlOp) -> usize {
    match op {
        SlOp::Not => 1,
        SlOp::Maj => 3,
        _ => 2,
    }
}

fn random_stream(n: usize, seed: u64) -> BitStream {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    BitStream::from_fn(n, |_| rng.next_f64() < 0.5)
}

/// An array with `rows` random rows of width `cols`.
fn loaded_array(rows: usize, cols: usize, seed: u64) -> CrossbarArray {
    let mut a = CrossbarArray::pristine(rows, cols, seed);
    for r in 0..rows {
        let s = random_stream(cols, seed ^ (r as u64 + 0x1000));
        a.write_row(r, &s).expect("row in range");
    }
    a
}

proptest! {
    #[test]
    fn packed_digital_equals_per_cell_reference(cols in 1usize..200, seed in any::<u64>()) {
        let a = loaded_array(3, cols, seed);
        let mut sl = ScoutingLogic::ideal();
        let mut arr = a.clone();
        for op in ALL_OPS {
            let rows: Vec<usize> = (0..operand_rows(op)).collect();
            let packed = sl.execute_mut(&mut arr, op, &rows).expect("valid rows");
            let reference = ScoutingLogic::digital_reference(&a, op, &rows)
                .expect("valid rows");
            prop_assert_eq!(&packed, &reference, "{} over {} cols", op.name(), cols);
        }
    }

    #[test]
    fn word_boundary_tails_are_exact(off in 0usize..5, base in 1usize..4, seed in any::<u64>()) {
        // Deliberately straddle the u64 boundaries: 62..=66, 126..=130, …
        let cols = base * 64 + off - 2;
        let a = loaded_array(3, cols, seed);
        let sl = ScoutingLogic::ideal();
        for op in ALL_OPS {
            let rows: Vec<usize> = (0..operand_rows(op)).collect();
            let packed = sl.execute(&a, op, &rows).expect("valid rows");
            let reference = ScoutingLogic::digital_reference(&a, op, &rows)
                .expect("valid rows");
            prop_assert_eq!(&packed, &reference, "{} over {} cols", op.name(), cols);
            // The packed path must never leak set bits into the tail.
            prop_assert_eq!(packed.len(), cols);
            let ones: u64 = packed.iter().filter(|&b| b).count() as u64;
            prop_assert_eq!(packed.count_ones(), ones);
        }
    }

    #[test]
    fn packed_row_io_matches_per_cell_reads(cols in 1usize..300, seed in any::<u64>()) {
        let mut a = CrossbarArray::pristine(2, cols, seed);
        let data = random_stream(cols, seed ^ 1);
        let changed = a.write_row(0, &data).expect("row in range");
        prop_assert_eq!(changed as u64, data.count_ones());
        let row = a.read_row(0).expect("row in range");
        for col in 0..cols {
            prop_assert_eq!(row.get(col), Some(a.read_bit(0, col).expect("in range")));
        }
        // Overwrite: differential count equals the Hamming distance.
        let next = random_stream(cols, seed ^ 2);
        let changed = a.write_row(0, &next).expect("row in range");
        let expect = data.xor(&next).expect("equal lengths").count_ones();
        prop_assert_eq!(changed as u64, expect);
    }

    #[test]
    fn seeded_fault_injection_is_reference_plus_mask(
        cols in 1usize..200,
        p in 0.0f64..0.4,
        seed in any::<u64>(),
    ) {
        let a = loaded_array(2, cols, seed);
        let rates = FaultRates::uniform(p);
        // Packed pipeline: digital word path + in-engine injector.
        let mut faulty = ScoutingLogic::with_faults(rates, seed ^ 0xFA);
        let mut arr = a.clone();
        let got = faulty.execute_mut(&mut arr, SlOp::Xor, &[0, 1]).expect("valid rows");
        // Reference pipeline: per-cell truth table + identically seeded
        // standalone injector.
        let mut reference = ScoutingLogic::digital_reference(&a, SlOp::Xor, &[0, 1])
            .expect("valid rows");
        let mut inj = FaultInjector::new(rates, seed ^ 0xFA);
        inj.corrupt_op_output(SlOp::Xor, &mut reference);
        prop_assert_eq!(&got, &reference);
        prop_assert_eq!(faulty.faults_injected(), inj.injected());
    }

    #[test]
    fn seeded_fault_injection_is_reproducible(
        p in 0.0f64..0.5,
        seed in any::<u64>(),
        ops in 1usize..6,
    ) {
        let run = || {
            let mut a = loaded_array(2, 257, seed);
            let mut sl = ScoutingLogic::with_faults(FaultRates::uniform(p), seed ^ 0xB0);
            let mut outs = Vec::new();
            for i in 0..ops {
                let op = ALL_OPS[i % ALL_OPS.len()];
                let rows: Vec<usize> = (0..operand_rows(op)).collect();
                outs.push(sl.execute_mut(&mut a, op, &rows).expect("valid rows"));
            }
            (outs, sl.faults_injected())
        };
        let (a_outs, a_faults) = run();
        let (b_outs, b_faults) = run();
        prop_assert_eq!(a_outs, b_outs);
        prop_assert_eq!(a_faults, b_faults);
    }

    #[test]
    fn injected_fault_count_matches_flipped_bits(
        n in 1usize..5000,
        p in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let mut inj = FaultInjector::new(FaultRates::uniform(p), seed);
        let mut s = BitStream::zeros(n);
        inj.corrupt_op_output(SlOp::Maj, &mut s);
        prop_assert_eq!(s.count_ones(), inj.injected());
    }
}
