//! Property-based tests for the ReRAM substrate.

use proptest::prelude::*;
use reram::adc::Adc;
use reram::array::CrossbarArray;
use reram::cell::DeviceParams;
use reram::faults::{FaultInjector, FaultRates};
use reram::scouting::{ScoutingLogic, SlOp};
use sc_core::rng::Xoshiro256;
use sc_core::BitStream;

fn random_stream(n: usize, seed: u64) -> BitStream {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    BitStream::from_fn(n, |_| rng.next_f64() < 0.5)
}

proptest! {
    #[test]
    fn array_rows_are_independent(cols in 1usize..200, seed in any::<u64>()) {
        let mut a = CrossbarArray::pristine(3, cols, seed);
        let r0 = random_stream(cols, seed ^ 1);
        let r1 = random_stream(cols, seed ^ 2);
        a.write_row(0, &r0).expect("row in range");
        a.write_row(1, &r1).expect("row in range");
        prop_assert_eq!(a.read_row(0).expect("row in range"), r0);
        prop_assert_eq!(a.read_row(1).expect("row in range"), r1);
        prop_assert_eq!(a.read_row(2).expect("row in range").count_ones(), 0);
    }

    #[test]
    fn differential_writes_count_hamming_distance(cols in 1usize..200, seed in any::<u64>()) {
        let mut a = CrossbarArray::pristine(1, cols, seed);
        let first = random_stream(cols, seed ^ 3);
        let second = random_stream(cols, seed ^ 4);
        a.write_row(0, &first).expect("row in range");
        let changed = a.write_row(0, &second).expect("row in range");
        let expect = first.xor(&second).expect("equal lengths").count_ones();
        prop_assert_eq!(changed as u64, expect);
    }

    #[test]
    fn ideal_scouting_matches_boolean_semantics(cols in 2usize..128, seed in any::<u64>()) {
        let mut a = CrossbarArray::pristine(3, cols, seed);
        let r0 = random_stream(cols, seed ^ 5);
        let r1 = random_stream(cols, seed ^ 6);
        let r2 = random_stream(cols, seed ^ 7);
        a.write_row(0, &r0).expect("row in range");
        a.write_row(1, &r1).expect("row in range");
        a.write_row(2, &r2).expect("row in range");
        let mut sl = ScoutingLogic::ideal();
        prop_assert_eq!(
            sl.execute_mut(&mut a, SlOp::And, &[0, 1]).expect("valid"),
            r0.and(&r1).expect("equal lengths"));
        prop_assert_eq!(
            sl.execute_mut(&mut a, SlOp::Xor, &[0, 1]).expect("valid"),
            r0.xor(&r1).expect("equal lengths"));
        prop_assert_eq!(
            sl.execute_mut(&mut a, SlOp::Maj, &[0, 1, 2]).expect("valid"),
            r0.maj3(&r1, &r2).expect("equal lengths"));
    }

    #[test]
    fn fault_injection_rate_is_statistical(p in 0.0f64..0.3, seed in any::<u64>()) {
        let n = 20_000;
        let mut inj = FaultInjector::new(FaultRates::uniform(p), seed);
        let mut s = BitStream::zeros(n);
        inj.corrupt_op_output(SlOp::And, &mut s);
        let rate = s.count_ones() as f64 / n as f64;
        // 5-sigma binomial bound.
        let sigma = (p * (1.0 - p) / n as f64).sqrt();
        prop_assert!((rate - p).abs() <= 5.0 * sigma + 1e-9,
            "rate {rate} vs p {p}");
    }

    #[test]
    fn adc_code_is_monotone_in_count(full in 1u64..1000, seed in any::<u64>()) {
        let mut adc = Adc::ideal(8);
        let mut last = 0u64;
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut counts: Vec<u64> = (0..20).map(|_| rng.next_below(full + 1)).collect();
        counts.sort_unstable();
        for c in counts {
            let code = adc.convert_count(c, full).expect("in range");
            prop_assert!(code >= last, "code {code} after {last}");
            last = code;
        }
    }

    #[test]
    fn clean_analog_sensing_matches_digital(cols in 2usize..64, seed in any::<u64>()) {
        let mut params = DeviceParams::hfo2();
        params.lrs_sigma = 0.02;
        params.hrs_sigma = 0.05;
        params.hrs_tail_prob = 0.0;
        params.read_noise_frac = 0.005;
        let mut a = CrossbarArray::with_params(2, cols, params, seed);
        let r0 = random_stream(cols, seed ^ 8);
        let r1 = random_stream(cols, seed ^ 9);
        a.write_row(0, &r0).expect("row in range");
        a.write_row(1, &r1).expect("row in range");
        let mut analog = ScoutingLogic::analog();
        let got = analog.execute_mut(&mut a, SlOp::Or, &[0, 1]).expect("valid");
        prop_assert_eq!(got, r0.or(&r1).expect("equal lengths"));
    }

    #[test]
    fn endurance_counters_are_monotone(seed in any::<u64>(), writes in 1usize..20) {
        let mut a = CrossbarArray::pristine(1, 32, seed);
        let mut last = a.max_cell_writes();
        for i in 0..writes {
            let s = random_stream(32, seed ^ (i as u64 + 10));
            a.write_row(0, &s).expect("row in range");
            let now = a.max_cell_writes();
            prop_assert!(now >= last);
            last = now;
        }
        prop_assert_eq!(a.row_writes(), writes as u64);
    }
}
