//! The TCP front door: accept loop, per-connection reader/writer
//! threads, graceful shutdown.
//!
//! Per connection there is one reader thread (parses frames, submits to
//! the [`Service`]) and one writer thread (serializes completions back
//! as they finish — batched requests complete together, so responses
//! can arrive out of submission order; the echoed `id` correlates
//! them). Completions flow from the service's worker threads straight
//! into the connection's writer channel — no per-request thread, no
//! polling.
//!
//! Shutdown is in-band: a frame with the [`proto::SHUTDOWN`] kernel tag
//! acknowledges, stops the accept loop, drains the service (accepted
//! requests still complete), and wakes [`Server::wait`]. CI drives this
//! path to assert a clean exit without process signals.

use crate::proto::{self, Status, WireBody, WireResponse};
use crate::service::{Completed, Outcome, Service, ShedReason};
use imgproc::request::{self, Backend, KernelRequest};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// A running SC-ReRAM service bound to a TCP listener.
pub struct Server {
    addr: SocketAddr,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Starts the service engine and the accept loop on `listener`.
    ///
    /// # Errors
    ///
    /// Engine start-up errors ([`Service::start`]) or listener I/O
    /// errors.
    pub fn start(
        listener: TcpListener,
        cfg: crate::service::ServiceConfig,
    ) -> Result<Self, io::Error> {
        let addr = listener.local_addr()?;
        let service = Arc::new(
            Service::start(cfg).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?,
        );
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &service, &stop))
                .expect("spawn accept loop")
        };
        Ok(Server {
            addr,
            service,
            stop,
            accept_thread: Mutex::new(Some(accept)),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying service engine (stats, config).
    #[must_use]
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Blocks until the server shuts down (an in-band shutdown frame or
    /// a [`Server::shutdown`] call), then drains the service.
    pub fn wait(&self) {
        let handle = self.accept_thread.lock().expect("accept lock").take();
        if let Some(h) = handle {
            let _ = h.join();
        }
        self.service.shutdown();
    }

    /// Initiates shutdown from the host process (equivalent to an
    /// in-band shutdown frame) and drains the service.
    pub fn shutdown(&self) {
        request_stop(&self.stop, self.addr);
        self.wait();
    }
}

/// Flags the accept loop to stop and pokes the listener with a
/// throwaway connection so a blocked `accept` observes the flag.
fn request_stop(stop: &AtomicBool, addr: SocketAddr) {
    stop.store(true, Ordering::SeqCst);
    if let Ok(s) = TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
        drop(s);
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<Service>, stop: &Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => {
                // A persistent accept failure (e.g. EMFILE under fd
                // exhaustion) returns immediately; back off so this
                // thread does not busy-spin while the condition lasts.
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        let service = Arc::clone(service);
        let stop = Arc::clone(stop);
        let addr = listener.local_addr().expect("bound listener");
        let _ = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &service, &stop, addr);
            });
    }
}

fn completed_to_wire(done: Completed) -> WireResponse {
    let (status, pixels, message) = match done.outcome {
        Outcome::Done(resp) => (Status::Ok, Some(resp.pixels), String::new()),
        Outcome::Shed(ShedReason::QueueFull) => (Status::Shed, None, "queue full".into()),
        Outcome::Shed(ShedReason::Deadline) => (Status::Shed, None, "deadline unmeetable".into()),
        Outcome::Failed(msg) => (Status::Error, None, msg),
        Outcome::Bye => (Status::Ok, None, String::new()),
    };
    WireResponse {
        id: done.id,
        status,
        downgraded: done.downgraded,
        effective_n: done.effective_n as u32,
        queue_ns: done.queue_ns,
        service_ns: done.service_ns,
        pixels,
        message,
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &Service,
    stop: &AtomicBool,
    addr: SocketAddr,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = stream;
    let (tx, rx) = mpsc::channel::<Completed>();

    let writer_thread = std::thread::Builder::new()
        .name("serve-writer".into())
        .spawn(move || {
            let mut w = BufWriter::new(writer);
            while let Ok(done) = rx.recv() {
                if proto::write_response(&mut w, &completed_to_wire(done)).is_err() {
                    break; // peer went away; drain silently
                }
            }
        })
        .expect("spawn writer");

    while let Some(frame) = proto::read_request(&mut reader)? {
        match frame.body {
            WireBody::Shutdown => {
                let _ = tx.send(Completed {
                    id: frame.id,
                    outcome: Outcome::Bye,
                    effective_n: 0,
                    downgraded: false,
                    queue_ns: 0,
                    service_ns: 0,
                });
                // Flush the ack before stopping the accept loop: once it
                // stops, `Server::wait` returns and the host process may
                // exit, tearing this connection down mid-write.
                drop(tx);
                let _ = writer_thread.join();
                request_stop(stop, addr);
                return Ok(());
            }
            WireBody::Kernel(req) => {
                dispatch_kernel(
                    service,
                    frame.id,
                    frame.deadline_us,
                    frame.backend,
                    frame.fault_prob,
                    req,
                    &tx,
                );
            }
        }
    }
    drop(tx);
    let _ = writer_thread.join();
    Ok(())
}

/// Routes one kernel frame: SC-ReRAM requests go through the batched
/// service (asynchronous completion); baseline backends run inline on
/// the connection thread — they are cheap reference implementations
/// with no farm to contend for.
fn dispatch_kernel(
    service: &Service,
    id: u64,
    deadline_us: u64,
    backend_byte: u8,
    fault_prob: f64,
    req: KernelRequest,
    tx: &mpsc::Sender<Completed>,
) {
    let engine = &service.config().engine;
    let backend = match proto::backend_of(backend_byte, fault_prob, engine) {
        Ok(b) => b,
        Err(e) => {
            let _ = tx.send(fail(id, e.to_string()));
            return;
        }
    };
    let deadline = (deadline_us > 0).then(|| Duration::from_micros(deadline_us));
    match backend {
        Backend::ScReram => {
            if let Err(e) = service.submit_via(req, deadline, id, tx.clone()) {
                let _ = tx.send(fail(id, e.to_string()));
            }
        }
        other => {
            let t0 = std::time::Instant::now();
            // Same admission validation the batched path gets from
            // `submit_via` — the inline backends must not see a request
            // shape the service would have rejected.
            let done = match req.validate().and_then(|()| request::run_on(&req, &other, engine)) {
                Ok(resp) => Completed {
                    id,
                    outcome: Outcome::Done(resp),
                    effective_n: engine.stream_len,
                    downgraded: false,
                    queue_ns: 0,
                    service_ns: t0.elapsed().as_nanos() as u64,
                },
                Err(e) => fail(id, e.to_string()),
            };
            let _ = tx.send(done);
        }
    }
}

fn fail(id: u64, msg: String) -> Completed {
    Completed {
        id,
        outcome: Outcome::Failed(msg),
        effective_n: 0,
        downgraded: false,
        queue_ns: 0,
        service_ns: 0,
    }
}
