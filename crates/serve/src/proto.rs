//! The wire protocol: a minimal length-delimited binary framing over
//! any byte stream (TCP in practice, `Cursor` in tests).
//!
//! All integers are little-endian. One request frame:
//!
//! ```text
//! 'R' u8 | version u8 | id u64 | kernel u8 | backend u8 | factor u32
//! | fault_prob f64 | deadline_us u64 | image_count u8
//! | image_count × (width u32 | height u32 | width·height pixel bytes)
//! ```
//!
//! `kernel` 0–3 map to edge / bilinear / compositing / matting with 1,
//! 1, 3, 3 images respectively; kernel [`SHUTDOWN`] (0xFF, zero images)
//! asks the server to drain and exit cleanly — the graceful-shutdown
//! signal CI uses instead of process signals. One response frame:
//!
//! ```text
//! 'r' u8 | version u8 | id u64 | status u8 | downgraded u8
//! | effective_n u32 | queue_ns u64 | service_ns u64
//! | Ok:    width u32 | height u32 | pixel bytes
//! | other: message_len u32 | utf-8 message
//! ```
//!
//! Dimensions are capped ([`MAX_DIM`], [`MAX_PIXELS`]) so a corrupt or
//! hostile frame cannot trigger an unbounded allocation. The caps apply
//! to the *output* shape too: a bilinear frame whose `input × factor`
//! dimensions would exceed them is rejected at parse time (with checked
//! arithmetic, so a near-`u32::MAX` factor cannot overflow the check
//! itself).

use imgproc::request::{Backend, KernelRequest};
use imgproc::GrayImage;
use std::io::{self, Read, Write};

/// Protocol version of this codec.
pub const VERSION: u8 = 1;
/// Request-frame magic byte (`'R'`).
pub const REQ_MAGIC: u8 = b'R';
/// Response-frame magic byte (`'r'`).
pub const RESP_MAGIC: u8 = b'r';
/// The kernel tag of a graceful-shutdown request.
pub const SHUTDOWN: u8 = 0xFF;
/// Largest accepted image side length.
pub const MAX_DIM: u32 = 1 << 14;
/// Largest accepted per-image pixel count (16 MiB of payload).
pub const MAX_PIXELS: u64 = 1 << 24;

/// Response status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The request ran; pixels follow.
    Ok,
    /// The request was shed under overload; a reason message follows.
    Shed,
    /// The request failed; an error message follows.
    Error,
}

impl Status {
    fn code(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Shed => 1,
            Status::Error => 2,
        }
    }

    fn from_code(code: u8) -> io::Result<Self> {
        match code {
            0 => Ok(Status::Ok),
            1 => Ok(Status::Shed),
            2 => Ok(Status::Error),
            _ => Err(bad(format!("unknown status code {code}"))),
        }
    }
}

/// A parsed request frame.
#[derive(Debug, Clone)]
pub struct WireRequest {
    /// Client-chosen request id, echoed in the response.
    pub id: u64,
    /// Requested deadline in microseconds; 0 = server default.
    pub deadline_us: u64,
    /// Backend selector byte (see [`backend_of`]).
    pub backend: u8,
    /// BinaryCim fault probability (ignored by other backends).
    pub fault_prob: f64,
    /// The request body.
    pub body: WireBody,
}

/// The body of a request frame.
#[derive(Debug, Clone)]
pub enum WireBody {
    /// An ordinary kernel request.
    Kernel(KernelRequest),
    /// The graceful-shutdown signal.
    Shutdown,
}

/// A parsed response frame.
#[derive(Debug, Clone)]
pub struct WireResponse {
    /// Echoed request id.
    pub id: u64,
    /// Outcome status.
    pub status: Status,
    /// Whether the bitstream length was downgraded to meet the deadline.
    pub downgraded: bool,
    /// The bitstream length the request ran at (0 when shed).
    pub effective_n: u32,
    /// Admission-to-dispatch time, ns.
    pub queue_ns: u64,
    /// Batch execution time, ns.
    pub service_ns: u64,
    /// Pixels on [`Status::Ok`].
    pub pixels: Option<GrayImage>,
    /// Shed reason / error message otherwise.
    pub message: String,
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    Ok(f64::from_bits(read_u64(r)?))
}

fn write_image(w: &mut impl Write, img: &GrayImage) -> io::Result<()> {
    let width = u32::try_from(img.width())
        .map_err(|_| bad(format!("image width {} not representable on the wire", img.width())))?;
    let height = u32::try_from(img.height()).map_err(|_| {
        bad(format!(
            "image height {} not representable on the wire",
            img.height()
        ))
    })?;
    w.write_all(&width.to_le_bytes())?;
    w.write_all(&height.to_le_bytes())?;
    w.write_all(img.pixels())
}

fn read_image(r: &mut impl Read) -> io::Result<GrayImage> {
    let width = read_u32(r)?;
    let height = read_u32(r)?;
    if width == 0 || height == 0 || width > MAX_DIM || height > MAX_DIM {
        return Err(bad(format!(
            "image dimensions {width}x{height} out of range"
        )));
    }
    let pixels = u64::from(width) * u64::from(height);
    if pixels > MAX_PIXELS {
        return Err(bad(format!("image payload {pixels} pixels over cap")));
    }
    let mut data = vec![0u8; pixels as usize];
    r.read_exact(&mut data)?;
    GrayImage::from_pixels(width as usize, height as usize, data).map_err(|e| bad(e.to_string()))
}

/// Writes one request frame.
///
/// # Errors
///
/// I/O errors from the underlying stream.
pub fn write_request(w: &mut impl Write, req: &WireRequest) -> io::Result<()> {
    w.write_all(&[REQ_MAGIC, VERSION])?;
    w.write_all(&req.id.to_le_bytes())?;
    let (tag, factor, images): (u8, u32, Vec<&GrayImage>) = match &req.body {
        WireBody::Shutdown => (SHUTDOWN, 0, vec![]),
        WireBody::Kernel(k) => match k {
            KernelRequest::Edge { image } => (0, 0, vec![image]),
            KernelRequest::Bilinear { src, factor } => (1, *factor as u32, vec![src]),
            KernelRequest::Compositing {
                foreground,
                background,
                alpha,
            } => (2, 0, vec![foreground, background, alpha]),
            KernelRequest::Matting {
                image,
                background,
                foreground,
            } => (3, 0, vec![image, background, foreground]),
        },
    };
    w.write_all(&[tag, req.backend])?;
    w.write_all(&factor.to_le_bytes())?;
    w.write_all(&req.fault_prob.to_bits().to_le_bytes())?;
    w.write_all(&req.deadline_us.to_le_bytes())?;
    w.write_all(&[images.len() as u8])?;
    for img in images {
        write_image(w, img)?;
    }
    w.flush()
}

/// Reads one request frame; `Ok(None)` on clean end-of-stream (the
/// peer closed between frames).
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on malformed frames, plus underlying
/// I/O errors (including truncation mid-frame).
pub fn read_request(r: &mut impl Read) -> io::Result<Option<WireRequest>> {
    let mut magic = [0u8; 1];
    match r.read(&mut magic)? {
        0 => return Ok(None),
        _ => {
            if magic[0] != REQ_MAGIC {
                return Err(bad(format!("bad request magic {:#x}", magic[0])));
            }
        }
    }
    let version = read_u8(r)?;
    if version != VERSION {
        return Err(bad(format!("unsupported protocol version {version}")));
    }
    let id = read_u64(r)?;
    let kernel = read_u8(r)?;
    let backend = read_u8(r)?;
    let factor = read_u32(r)? as usize;
    let fault_prob = read_f64(r)?;
    let deadline_us = read_u64(r)?;
    let count = read_u8(r)? as usize;
    let expected = match kernel {
        SHUTDOWN => 0,
        0 | 1 => 1,
        2 | 3 => 3,
        other => return Err(bad(format!("unknown kernel tag {other}"))),
    };
    if count != expected {
        return Err(bad(format!(
            "kernel tag {kernel} carries {count} images, expected {expected}"
        )));
    }
    let mut images = Vec::with_capacity(count);
    for _ in 0..count {
        images.push(read_image(r)?);
    }
    let body = match kernel {
        SHUTDOWN => WireBody::Shutdown,
        0 => WireBody::Kernel(KernelRequest::Edge {
            image: images.remove(0),
        }),
        1 => {
            let src = images.remove(0);
            // The input caps alone do not bound a bilinear request: its
            // allocation is `input × factor`, so the *output* shape must
            // satisfy the same caps — with checked math, because a
            // near-`u32::MAX` factor would overflow `width * factor`.
            let out_w = (src.width() as u64).checked_mul(factor as u64);
            let out_h = (src.height() as u64).checked_mul(factor as u64);
            match (out_w, out_h) {
                (Some(w), Some(h))
                    if w <= u64::from(MAX_DIM)
                        && h <= u64::from(MAX_DIM)
                        && w * h <= MAX_PIXELS => {}
                _ => {
                    return Err(bad(format!(
                        "bilinear factor {factor} scales {}x{} past the output caps",
                        src.width(),
                        src.height()
                    )))
                }
            }
            WireBody::Kernel(KernelRequest::Bilinear { src, factor })
        }
        2 => {
            let foreground = images.remove(0);
            let background = images.remove(0);
            let alpha = images.remove(0);
            WireBody::Kernel(KernelRequest::Compositing {
                foreground,
                background,
                alpha,
            })
        }
        _ => {
            let image = images.remove(0);
            let background = images.remove(0);
            let foreground = images.remove(0);
            WireBody::Kernel(KernelRequest::Matting {
                image,
                background,
                foreground,
            })
        }
    };
    Ok(Some(WireRequest {
        id,
        deadline_us,
        backend,
        fault_prob,
        body,
    }))
}

/// Writes one response frame.
///
/// # Errors
///
/// I/O errors from the underlying stream.
pub fn write_response(w: &mut impl Write, resp: &WireResponse) -> io::Result<()> {
    w.write_all(&[RESP_MAGIC, VERSION])?;
    w.write_all(&resp.id.to_le_bytes())?;
    w.write_all(&[resp.status.code(), u8::from(resp.downgraded)])?;
    w.write_all(&resp.effective_n.to_le_bytes())?;
    w.write_all(&resp.queue_ns.to_le_bytes())?;
    w.write_all(&resp.service_ns.to_le_bytes())?;
    match (&resp.status, &resp.pixels) {
        (Status::Ok, Some(img)) => write_image(w, img)?,
        (Status::Ok, None) => {
            // An Ok without pixels (the shutdown acknowledgement): a
            // zero-dimension image marker.
            w.write_all(&0u32.to_le_bytes())?;
            w.write_all(&0u32.to_le_bytes())?;
        }
        _ => {
            let msg = resp.message.as_bytes();
            w.write_all(&(msg.len() as u32).to_le_bytes())?;
            w.write_all(msg)?;
        }
    }
    w.flush()
}

/// Reads one response frame.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on malformed frames, plus underlying
/// I/O errors.
pub fn read_response(r: &mut impl Read) -> io::Result<WireResponse> {
    let magic = read_u8(r)?;
    if magic != RESP_MAGIC {
        return Err(bad(format!("bad response magic {magic:#x}")));
    }
    let version = read_u8(r)?;
    if version != VERSION {
        return Err(bad(format!("unsupported protocol version {version}")));
    }
    let id = read_u64(r)?;
    let status = Status::from_code(read_u8(r)?)?;
    let downgraded = read_u8(r)? != 0;
    let effective_n = read_u32(r)?;
    let queue_ns = read_u64(r)?;
    let service_ns = read_u64(r)?;
    let (pixels, message) = match status {
        Status::Ok => {
            let width = read_u32(r)?;
            let height = read_u32(r)?;
            if width == 0 && height == 0 {
                (None, String::new())
            } else {
                if width > MAX_DIM || height > MAX_DIM {
                    return Err(bad(format!(
                        "response dimensions {width}x{height} out of range"
                    )));
                }
                let pixels = u64::from(width) * u64::from(height);
                if pixels > MAX_PIXELS {
                    return Err(bad(format!("response payload {pixels} pixels over cap")));
                }
                let mut data = vec![0u8; pixels as usize];
                r.read_exact(&mut data)?;
                let img = GrayImage::from_pixels(width as usize, height as usize, data)
                    .map_err(|e| bad(e.to_string()))?;
                (Some(img), String::new())
            }
        }
        Status::Shed | Status::Error => {
            let len = read_u32(r)?;
            if u64::from(len) > MAX_PIXELS {
                return Err(bad(format!("message length {len} over cap")));
            }
            let mut data = vec![0u8; len as usize];
            r.read_exact(&mut data)?;
            let msg = String::from_utf8(data).map_err(|e| bad(e.to_string()))?;
            (None, msg)
        }
    };
    Ok(WireResponse {
        id,
        status,
        downgraded,
        effective_n,
        queue_ns,
        service_ns,
        pixels,
        message,
    })
}

/// Maps a backend selector byte to a [`Backend`], deriving the CMOS SNG
/// configuration from the service engine (shared `N` and seed).
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on an unknown selector.
pub fn backend_of(
    byte: u8,
    fault_prob: f64,
    engine: &imgproc::ScReramConfig,
) -> io::Result<Backend> {
    match byte {
        0 => Ok(Backend::ScReram),
        1 => Ok(Backend::Cmos(imgproc::CmosScConfig::new(
            engine.stream_len,
            imgproc::scbackend::CmosSngKind::Sobol,
            engine.seed,
        ))),
        2 => Ok(Backend::BinaryCim { fault_prob }),
        3 => Ok(Backend::Software),
        other => Err(bad(format!("unknown backend selector {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imgproc::synth;
    use std::io::Cursor;

    fn roundtrip_request(req: WireRequest) -> WireRequest {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        read_request(&mut Cursor::new(buf)).unwrap().unwrap()
    }

    #[test]
    fn kernel_request_roundtrips() {
        let img = synth::gradient(8, 6, true);
        let out = roundtrip_request(WireRequest {
            id: 7,
            deadline_us: 12_000,
            backend: 0,
            fault_prob: 0.0,
            body: WireBody::Kernel(KernelRequest::Bilinear {
                src: img.clone(),
                factor: 3,
            }),
        });
        assert_eq!(out.id, 7);
        assert_eq!(out.deadline_us, 12_000);
        let WireBody::Kernel(KernelRequest::Bilinear { src, factor }) = out.body else {
            panic!("wrong body");
        };
        assert_eq!(factor, 3);
        assert_eq!(src, img);
    }

    #[test]
    fn three_image_kernel_roundtrips_in_order() {
        let f = synth::gradient(4, 4, true);
        let b = synth::checkerboard(4, 4, 2);
        let a = synth::gradient(4, 4, false);
        let out = roundtrip_request(WireRequest {
            id: 1,
            deadline_us: 0,
            backend: 0,
            fault_prob: 0.0,
            body: WireBody::Kernel(KernelRequest::Compositing {
                foreground: f.clone(),
                background: b.clone(),
                alpha: a.clone(),
            }),
        });
        let WireBody::Kernel(KernelRequest::Compositing {
            foreground,
            background,
            alpha,
        }) = out.body
        else {
            panic!("wrong body");
        };
        assert_eq!((foreground, background, alpha), (f, b, a));
    }

    #[test]
    fn shutdown_roundtrips() {
        let out = roundtrip_request(WireRequest {
            id: 99,
            deadline_us: 0,
            backend: 0,
            fault_prob: 0.0,
            body: WireBody::Shutdown,
        });
        assert!(matches!(out.body, WireBody::Shutdown));
    }

    #[test]
    fn response_roundtrips_both_shapes() {
        let img = synth::gradient(5, 3, false);
        let ok = WireResponse {
            id: 4,
            status: Status::Ok,
            downgraded: true,
            effective_n: 128,
            queue_ns: 10,
            service_ns: 20,
            pixels: Some(img.clone()),
            message: String::new(),
        };
        let mut buf = Vec::new();
        write_response(&mut buf, &ok).unwrap();
        let out = read_response(&mut Cursor::new(buf)).unwrap();
        assert_eq!(out.status, Status::Ok);
        assert!(out.downgraded);
        assert_eq!(out.effective_n, 128);
        assert_eq!(out.pixels.unwrap(), img);

        let shed = WireResponse {
            id: 5,
            status: Status::Shed,
            downgraded: false,
            effective_n: 0,
            queue_ns: 1,
            service_ns: 0,
            pixels: None,
            message: "queue full".into(),
        };
        let mut buf = Vec::new();
        write_response(&mut buf, &shed).unwrap();
        let out = read_response(&mut Cursor::new(buf)).unwrap();
        assert_eq!(out.status, Status::Shed);
        assert_eq!(out.message, "queue full");
        assert!(out.pixels.is_none());
    }

    #[test]
    fn clean_eof_is_none_truncation_is_error() {
        assert!(read_request(&mut Cursor::new(Vec::new()))
            .unwrap()
            .is_none());
        let img = synth::gradient(4, 4, true);
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            &WireRequest {
                id: 1,
                deadline_us: 0,
                backend: 0,
                fault_prob: 0.0,
                body: WireBody::Kernel(KernelRequest::Edge { image: img }),
            },
        )
        .unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_request(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn hostile_dimensions_are_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&[REQ_MAGIC, VERSION]);
        buf.extend_from_slice(&1u64.to_le_bytes()); // id
        buf.extend_from_slice(&[0, 0]); // edge, screram
        buf.extend_from_slice(&0u32.to_le_bytes()); // factor
        buf.extend_from_slice(&0.0f64.to_bits().to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // deadline
        buf.push(1); // one image
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // width
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // height
        let err = read_request(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn hostile_bilinear_factor_is_rejected_before_allocation() {
        // A cap-compliant input whose scaled output would be enormous
        // (or whose `dim * factor` product overflows) must be rejected
        // at parse time, for factors both huge and merely too large.
        for factor in [u32::MAX, 1000] {
            let img = synth::gradient(64, 64, true);
            let mut buf = Vec::new();
            write_request(
                &mut buf,
                &WireRequest {
                    id: 1,
                    deadline_us: 0,
                    backend: 3,
                    fault_prob: 0.0,
                    body: WireBody::Kernel(KernelRequest::Bilinear {
                        src: img,
                        factor: factor as usize,
                    }),
                },
            )
            .unwrap();
            let err = read_request(&mut Cursor::new(buf)).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        }
        // The largest in-cap output still parses.
        let img = synth::gradient(64, 64, true);
        let out = roundtrip_request(WireRequest {
            id: 1,
            deadline_us: 0,
            backend: 0,
            fault_prob: 0.0,
            body: WireBody::Kernel(KernelRequest::Bilinear {
                src: img,
                factor: 64,
            }),
        });
        assert!(matches!(
            out.body,
            WireBody::Kernel(KernelRequest::Bilinear { factor: 64, .. })
        ));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&[REQ_MAGIC, VERSION]);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&[9, 0]); // unknown kernel tag
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0.0f64.to_bits().to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.push(0);
        assert!(read_request(&mut Cursor::new(buf)).is_err());
        let engine = imgproc::ScReramConfig::new(64, 1);
        assert!(backend_of(9, 0.0, &engine).is_err());
    }
}
