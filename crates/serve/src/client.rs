//! A minimal blocking client: one connection, one in-flight request at
//! a time (the load generator opens one client per concurrent stream).

use crate::proto::{self, WireBody, WireRequest, WireResponse};
use imgproc::request::KernelRequest;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to a serve instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// Connects to a serve instance.
    ///
    /// # Errors
    ///
    /// Connection I/O errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            next_id: 1,
        })
    }

    fn roundtrip(&mut self, req: &WireRequest) -> io::Result<WireResponse> {
        proto::write_request(&mut self.writer, req)?;
        proto::read_response(&mut self.reader)
    }

    /// Runs one kernel request on the default (SC-ReRAM) backend.
    ///
    /// # Errors
    ///
    /// Wire I/O errors; sheds and engine failures come back as regular
    /// [`WireResponse`]s, not errors.
    pub fn call(
        &mut self,
        req: &KernelRequest,
        deadline: Option<Duration>,
    ) -> io::Result<WireResponse> {
        self.call_backend(req, 0, 0.0, deadline)
    }

    /// Runs one kernel request on an explicit backend selector byte
    /// (0 SC-ReRAM, 1 CMOS, 2 binary CIM, 3 software).
    ///
    /// # Errors
    ///
    /// Wire I/O errors.
    pub fn call_backend(
        &mut self,
        req: &KernelRequest,
        backend: u8,
        fault_prob: f64,
        deadline: Option<Duration>,
    ) -> io::Result<WireResponse> {
        let id = self.next_id;
        self.next_id += 1;
        self.roundtrip(&WireRequest {
            id,
            deadline_us: deadline.map_or(0, |d| d.as_micros() as u64),
            backend,
            fault_prob,
            body: WireBody::Kernel(req.clone()),
        })
    }

    /// Sends the in-band shutdown frame and waits for the
    /// acknowledgement: the server drains and exits cleanly.
    ///
    /// # Errors
    ///
    /// Wire I/O errors.
    pub fn shutdown(&mut self) -> io::Result<WireResponse> {
        let id = self.next_id;
        self.next_id += 1;
        self.roundtrip(&WireRequest {
            id,
            deadline_us: 0,
            backend: 0,
            fault_prob: 0.0,
            body: WireBody::Shutdown,
        })
    }
}
