//! The `serve` binary: bind a TCP listener and run the SC-ReRAM
//! service until an in-band shutdown frame arrives.
//!
//! ```text
//! serve [--addr 127.0.0.1:7077] [--n 256] [--seed 42] [--arrays 4]
//!       [--workers N] [--queue-depth 64] [--window-us 2000]
//!       [--max-batch 8] [--deadline-ms 500] [--min-n 32]
//! ```
//!
//! With `--arrays 0` the engine runs the per-tile schedule; any other
//! value selects the pipelined cross-array scheduler with that many
//! arrays. A shared plan cache is always attached so coalesced batches
//! amortize template compilation across requests.

use imgproc::{ScReramConfig, Schedule};
use imsc::PlanCache;
use serve::{Server, ServiceConfig};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr: String = flag(&args, "--addr", "127.0.0.1:7077".to_string());
    let n: usize = flag(&args, "--n", 256);
    let seed: u64 = flag(&args, "--seed", 42);
    let arrays: usize = flag(&args, "--arrays", 4);
    let workers: usize = flag(
        &args,
        "--workers",
        std::thread::available_parallelism().map_or(1, |c| c.get().saturating_sub(1).max(1)),
    );
    let queue_depth: usize = flag(&args, "--queue-depth", 64);
    let window_us: u64 = flag(&args, "--window-us", 2_000);
    let max_batch: usize = flag(&args, "--max-batch", 8);
    let deadline_ms: u64 = flag(&args, "--deadline-ms", 500);
    let min_n: usize = flag(&args, "--min-n", 32);

    let mut engine = ScReramConfig::new(n, seed).with_plan_cache(Arc::new(PlanCache::new()));
    if arrays > 0 {
        engine = engine.with_schedule(Schedule::Pipelined { arrays });
    }
    let cfg = ServiceConfig {
        engine,
        queue_depth,
        batch_window: Duration::from_micros(window_us),
        max_batch,
        workers,
        default_deadline: Duration::from_millis(deadline_ms),
        min_stream_len: min_n,
        ..ServiceConfig::default()
    };
    if let Err(e) = cfg.engine.validate() {
        eprintln!("serve: invalid engine configuration: {e}");
        std::process::exit(2);
    }
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("serve: cannot bind {addr}: {e}");
            std::process::exit(2);
        }
    };
    let server = match Server::start(listener, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: start failed: {e}");
            std::process::exit(2);
        }
    };
    println!("serve: listening on {}", server.addr());
    server.wait();
    let s = server.service().stats();
    println!(
        "serve: shutdown — served {} (downgraded {}), shed {} queue + {} deadline, failed {}, {} batches",
        s.served, s.downgraded, s.shed_queue, s.shed_deadline, s.failed, s.batches
    );
    if s.failed > 0 {
        std::process::exit(1);
    }
}
