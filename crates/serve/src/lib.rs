//! # serve — SC-ReRAM as a service
//!
//! A long-running frontend over the simulated SC-ReRAM shard farm,
//! turning the per-call kernel library into an accelerator *service*:
//! clients submit [`KernelRequest`]s (over TCP or in-process), the
//! frontend coalesces shape-compatible requests into shared scheduling
//! passes over the array pool, enforces admission control and
//! per-request deadlines derived from the calibrated
//! [`PipelineModel`](imsc::pipeline::PipelineModel), and degrades
//! gracefully under overload — downgrading bitstream length `N`
//! (precision for latency) before shedding, and never turning load
//! into an error response.
//!
//! The stack is hand-rolled threads over [`imsc::parallel`]'s bounded
//! queues — no async runtime:
//!
//! * [`service`] — the engine: admission queue, coalescing batcher,
//!   deadline planner, worker pool ([`Service`]).
//! * [`proto`] — the length-delimited wire codec.
//! * [`server`] — the TCP front door ([`Server`]).
//! * [`client`] — a minimal blocking client ([`Client`]).
//!
//! ```no_run
//! use serve::{Client, Server, ServiceConfig};
//! use imgproc::KernelRequest;
//!
//! let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! let server = Server::start(listener, ServiceConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let resp = client
//!     .call(&KernelRequest::Edge { image: imgproc::synth::gradient(32, 32, true) }, None)
//!     .unwrap();
//! assert!(resp.pixels.is_some());
//! client.shutdown().unwrap();
//! server.wait();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;
pub mod service;

pub use client::Client;
pub use imgproc::request::{Backend, KernelRequest, KernelResponse};
pub use proto::{Status, WireRequest, WireResponse};
pub use server::Server;
pub use service::{Completed, Outcome, Service, ServiceConfig, ShedReason, StatsSnapshot, Ticket};
