//! The in-process service engine: admission control, request
//! coalescing, deadline-driven degradation, and a worker pool over the
//! shard farm.
//!
//! The engine is a hand-rolled thread pipeline on
//! [`imsc::parallel::BoundedQueue`] — no async runtime:
//!
//! ```text
//! submit() ──try_push──▶ admission queue ──▶ batcher ──▶ batch queue ──▶ workers
//!    │   (full = shed)                 (coalescing window)          (request::run_batch)
//!    └────────────────────────── completions via per-job channels ◀──────────┘
//! ```
//!
//! * **Admission** is [`BoundedQueue::try_push`]: a full queue sheds the
//!   request *now* with [`ShedReason::QueueFull`] instead of queueing
//!   into a deadline miss. A shed is a first-class response, never an
//!   error.
//! * **Coalescing**: the batcher pops the admission queue with a short
//!   [`pop_timeout`](BoundedQueue::pop_timeout) window and groups
//!   consecutive requests with equal [`KernelRequest::shape_key`]s into
//!   one [`request::run_batch`] call — one scheduling pass over the
//!   array pool, shared compiled templates via the engine's plan cache.
//! * **Deadlines**: each batch's service time is estimated from
//!   [`PipelineModel::makespan_mixed_ns`] over the requests' op mixes,
//!   scaled to host time by an EWMA calibration seeded with a warm-up
//!   run. A batch that would miss its tightest deadline is first
//!   *downgraded* — the bitstream length `N` is halved (down to
//!   [`ServiceConfig::min_stream_len`]) trading precision for latency —
//!   and only requests that would still miss at the floor are shed with
//!   [`ShedReason::Deadline`].

use imgproc::request::{self, KernelRequest, KernelResponse};
use imgproc::{ImgError, ScReramConfig};
use imsc::cost::ScOperation;
use imsc::parallel::{BoundedQueue, PopResult};
use imsc::pipeline::PipelineModel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The SC-ReRAM engine configuration every accepted request runs
    /// under (validated by [`ScReramConfig::validate`] at start-up).
    pub engine: ScReramConfig,
    /// Admission-queue depth; a full queue sheds ([`ShedReason::QueueFull`]).
    pub queue_depth: usize,
    /// How long the batcher waits for more shape-compatible requests
    /// before dispatching what it has.
    pub batch_window: Duration,
    /// Maximum requests coalesced into one scheduling pass.
    pub max_batch: usize,
    /// Execution workers draining the batch queue.
    pub workers: usize,
    /// The pipeline model service-time estimates derive from.
    pub model: PipelineModel,
    /// Deadline for requests that do not carry one.
    pub default_deadline: Duration,
    /// The downgrade floor: `N` is halved from `engine.stream_len`
    /// toward this value (never below) when a batch would miss its
    /// deadline.
    pub min_stream_len: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            engine: ScReramConfig::new(256, 42),
            queue_depth: 64,
            batch_window: Duration::from_millis(2),
            max_batch: 8,
            workers: 1,
            model: PipelineModel::evaluation_default(),
            default_deadline: Duration::from_millis(500),
            min_stream_len: 32,
        }
    }
}

/// Why a request was shed instead of run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission queue was full — back-pressure, shed at the door.
    QueueFull,
    /// The deadline could not be met even at the downgrade floor.
    Deadline,
}

/// The outcome of one submitted request.
///
/// The `Done` variant dominates the enum's size (it owns the output
/// image), but an `Outcome` exists once per request and moves through
/// one channel — it is never held in collections, so boxing the
/// response would only add an allocation per served request.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum Outcome {
    /// The request ran; pixels and stats inside.
    Done(KernelResponse),
    /// The request was shed under overload. Not an error: the service
    /// answered honestly that it could not meet the contract.
    Shed(ShedReason),
    /// The engine failed the request (should not happen for requests
    /// that passed admission validation).
    Failed(String),
    /// The in-band shutdown acknowledgement — produced by the TCP
    /// server when it accepts a shutdown frame, never by the engine.
    Bye,
}

/// A completed request: outcome plus serving telemetry.
#[derive(Debug)]
pub struct Completed {
    /// The id assigned (or supplied) at submission.
    pub id: u64,
    /// What happened.
    pub outcome: Outcome,
    /// The bitstream length the request actually ran at (0 when shed).
    pub effective_n: usize,
    /// Whether `effective_n` was downgraded below the configured
    /// `stream_len` to meet the deadline.
    pub downgraded: bool,
    /// Time from submission to dispatch, ns.
    pub queue_ns: u64,
    /// Time executing the batch the request rode in, ns.
    pub service_ns: u64,
}

/// A handle to one in-flight request; [`Ticket::wait`] blocks for its
/// [`Completed`] record.
#[derive(Debug)]
pub struct Ticket {
    /// The request id.
    pub id: u64,
    rx: mpsc::Receiver<Completed>,
}

impl Ticket {
    /// Blocks until the request completes (runs, sheds, or fails).
    ///
    /// # Panics
    ///
    /// Panics if the service was torn down without completing the
    /// request — a service bug, not a load condition.
    #[must_use]
    pub fn wait(self) -> Completed {
        self.rx
            .recv()
            .expect("service completed every accepted job")
    }
}

/// Monotonic serving counters (all atomically maintained).
#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    served: AtomicU64,
    shed_queue: AtomicU64,
    shed_deadline: AtomicU64,
    downgraded: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
}

/// A point-in-time snapshot of the service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests submitted (accepted or shed).
    pub submitted: u64,
    /// Requests that ran to completion.
    pub served: u64,
    /// Requests shed at admission (queue full).
    pub shed_queue: u64,
    /// Requests shed at dispatch (deadline unmeetable).
    pub shed_deadline: u64,
    /// Requests served at a downgraded bitstream length.
    pub downgraded: u64,
    /// Requests that failed in the engine.
    pub failed: u64,
    /// Coalesced batches dispatched.
    pub batches: u64,
}

struct Job {
    id: u64,
    req: KernelRequest,
    deadline: Instant,
    enqueued: Instant,
    tx: mpsc::Sender<Completed>,
}

struct Shared {
    cfg: ServiceConfig,
    queue: BoundedQueue<Job>,
    batches: BoundedQueue<Vec<Job>>,
    next_id: AtomicU64,
    counters: Counters,
    /// Host ns per model-unit, EWMA-updated after every batch.
    calib: Mutex<f64>,
}

/// The long-running service engine. Start one with [`Service::start`],
/// submit [`KernelRequest`]s from any thread, shut down with
/// [`Service::shutdown`] (drains accepted work) — or just drop it.
pub struct Service {
    shared: Arc<Shared>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// The service's model-unit estimate for running `reqs` at bitstream
/// length `n`: the pipeline-model makespan of the batch's pooled op mix,
/// scaled by `n / 64` so the estimate tracks the host simulator's
/// linear-in-`N` cost (the analytic model's per-op latencies are mostly
/// `N`-invariant — real hardware pipelines the stream — but the *host*
/// simulates every bit).
fn batch_units(model: &PipelineModel, reqs: &[&KernelRequest], n: usize) -> f64 {
    let mut mix: Vec<(ScOperation, usize)> = Vec::new();
    for r in reqs {
        let px = r.output_pixels();
        for &(op, per_px) in r.op_mix_per_pixel() {
            match mix.iter_mut().find(|(o, _)| *o == op) {
                Some((_, c)) => *c += per_px * px,
                None => mix.push((op, per_px * px)),
            }
        }
    }
    model.makespan_mixed_ns(&mix, n) * (n as f64 / 64.0)
}

/// What the dispatcher decided for a batch, given its deadline slack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Plan {
    /// Run at this bitstream length (possibly downgraded).
    Run(usize),
    /// Even the floor misses the deadline: shed.
    Shed,
}

/// Pure dispatch policy: pick the largest `N` in the halving ladder
/// `configured, configured/2, … ≥ floor` whose estimated host time fits
/// the slack; [`Plan::Shed`] when even the floor does not fit.
/// Deterministic in its inputs — unit-tested directly.
pub(crate) fn plan_batch(
    slack_ns: f64,
    configured_n: usize,
    floor_n: usize,
    est_ns_at: impl Fn(usize) -> f64,
) -> Plan {
    let mut n = configured_n;
    loop {
        if est_ns_at(n) <= slack_ns {
            return Plan::Run(n);
        }
        let half = n / 2;
        if half < floor_n.max(1) || half == 0 {
            return Plan::Shed;
        }
        n = half;
    }
}

impl Service {
    /// Validates the engine configuration, runs a calibration warm-up,
    /// and spawns the batcher and worker threads.
    ///
    /// # Errors
    ///
    /// [`ImgError::Config`] from [`ScReramConfig::validate`], or the
    /// warm-up request's engine error.
    pub fn start(cfg: ServiceConfig) -> Result<Self, ImgError> {
        cfg.engine.validate()?;
        // Calibrate host-ns-per-model-unit on a small but real request:
        // the estimator's absolute scale depends on this machine.
        let warm = KernelRequest::Edge {
            image: imgproc::synth::gradient(16, 16, true),
        };
        let units = batch_units(&cfg.model, &[&warm], cfg.engine.stream_len);
        let t0 = Instant::now();
        request::run(&warm, &cfg.engine)?;
        let calib = t0.elapsed().as_nanos() as f64 / units.max(1.0);

        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_depth),
            batches: BoundedQueue::new(cfg.workers.max(1) * 2),
            next_id: AtomicU64::new(1),
            counters: Counters::default(),
            calib: Mutex::new(calib),
            cfg,
        });
        let mut threads = Vec::new();
        {
            let s = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-batcher".into())
                    .spawn(move || batcher_loop(&s))
                    .expect("spawn batcher"),
            );
        }
        for i in 0..shared.cfg.workers.max(1) {
            let s = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&s))
                    .expect("spawn worker"),
            );
        }
        Ok(Service {
            shared,
            threads: Mutex::new(threads),
        })
    }

    /// Submits a request with the default deadline. See
    /// [`Service::submit_with_deadline`].
    ///
    /// # Errors
    ///
    /// The request's own validation error; overload is never an error.
    pub fn submit(&self, req: KernelRequest) -> Result<Ticket, ImgError> {
        self.submit_with_deadline(req, None)
    }

    /// Submits a request, returning a [`Ticket`] for its completion.
    ///
    /// Invalid requests are rejected here (an [`Err`]); a full admission
    /// queue is *not* an error — the ticket resolves immediately to
    /// [`Outcome::Shed`]`(`[`ShedReason::QueueFull`]`)`.
    ///
    /// # Errors
    ///
    /// The request's own validation error ([`KernelRequest::validate`]).
    pub fn submit_with_deadline(
        &self,
        req: KernelRequest,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ImgError> {
        let (tx, rx) = mpsc::channel();
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        self.submit_via(req, deadline, id, tx)?;
        Ok(Ticket { id, rx })
    }

    /// Channel-targeted submission: completions go to `tx` with `id`.
    /// This is the server's path — one channel per connection, the
    /// writer thread on the other end.
    ///
    /// # Errors
    ///
    /// The request's own validation error.
    pub fn submit_via(
        &self,
        req: KernelRequest,
        deadline: Option<Duration>,
        id: u64,
        tx: mpsc::Sender<Completed>,
    ) -> Result<(), ImgError> {
        req.validate()?;
        let c = &self.shared.counters;
        c.submitted.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let job = Job {
            id,
            req,
            deadline: now + deadline.unwrap_or(self.shared.cfg.default_deadline),
            enqueued: now,
            tx,
        };
        if let Err(job) = self.shared.queue.try_push(job) {
            c.shed_queue.fetch_add(1, Ordering::Relaxed);
            let _ = job.tx.send(Completed {
                id: job.id,
                outcome: Outcome::Shed(ShedReason::QueueFull),
                effective_n: 0,
                downgraded: false,
                queue_ns: 0,
                service_ns: 0,
            });
        }
        Ok(())
    }

    /// A snapshot of the serving counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        let c = &self.shared.counters;
        StatsSnapshot {
            submitted: c.submitted.load(Ordering::Relaxed),
            served: c.served.load(Ordering::Relaxed),
            shed_queue: c.shed_queue.load(Ordering::Relaxed),
            shed_deadline: c.shed_deadline.load(Ordering::Relaxed),
            downgraded: c.downgraded.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
        }
    }

    /// The engine configuration the service runs.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.cfg
    }

    /// Graceful shutdown: stops admitting, drains every accepted
    /// request (they still complete — run or shed), joins the threads.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shared.queue.close();
        let threads = std::mem::take(&mut *self.threads.lock().expect("threads lock"));
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Coalesces the admission queue into shape-keyed batches. An
/// incompatible request ends the current batch and seeds the next one
/// (held back, never reordered past its group).
fn batcher_loop(s: &Shared) {
    let mut held: Option<Job> = None;
    loop {
        let first = match held.take() {
            Some(j) => j,
            None => match s.queue.pop() {
                Some(j) => j,
                None => break, // closed and drained
            },
        };
        let key = first.req.shape_key();
        let mut batch = vec![first];
        let window_end = Instant::now() + s.cfg.batch_window;
        while batch.len() < s.cfg.max_batch {
            let now = Instant::now();
            let Some(remaining) = window_end.checked_duration_since(now) else {
                break;
            };
            match s.queue.pop_timeout(remaining) {
                PopResult::Item(j) => {
                    if j.req.shape_key() == key {
                        batch.push(j);
                    } else {
                        held = Some(j);
                        break;
                    }
                }
                PopResult::TimedOut | PopResult::Closed => break,
            }
        }
        s.batches.push(batch);
    }
    // The loop can only exit from the `held.take()` == None && `pop()`
    // == None arm — a held-back job always seeds the next iteration's
    // batch first — so no job can be stranded here.
    debug_assert!(held.is_none(), "batcher exited with a held job");
    s.batches.close();
}

fn worker_loop(s: &Shared) {
    while let Some(batch) = s.batches.pop() {
        execute_batch(s, batch);
    }
}

fn shed(s: &Shared, job: Job, reason: ShedReason, dispatch: Instant) {
    let counter = match reason {
        ShedReason::QueueFull => &s.counters.shed_queue,
        ShedReason::Deadline => &s.counters.shed_deadline,
    };
    counter.fetch_add(1, Ordering::Relaxed);
    let _ = job.tx.send(Completed {
        id: job.id,
        outcome: Outcome::Shed(reason),
        effective_n: 0,
        downgraded: false,
        queue_ns: dispatch.duration_since(job.enqueued).as_nanos() as u64,
        service_ns: 0,
    });
}

/// Dispatches one coalesced batch: shed already-late jobs, pick the
/// bitstream length that fits the tightest remaining deadline (shedding
/// the tightest jobs while even the floor cannot fit), run the rest as
/// one `request::run_batch` pass, deliver completions, refresh the
/// calibration.
fn execute_batch(s: &Shared, batch: Vec<Job>) {
    s.counters.batches.fetch_add(1, Ordering::Relaxed);
    let dispatch = Instant::now();
    // Tightest deadline first, so deadline-driven sheds drop the jobs
    // that constrain the batch most.
    let mut jobs: Vec<Job> = batch;
    jobs.sort_by_key(|j| j.deadline);

    let configured_n = s.cfg.engine.stream_len;
    let floor_n = s.cfg.min_stream_len.min(configured_n);
    let calib = *s.calib.lock().expect("calib lock");

    // Shed jobs whose deadline already passed, then tighten until the
    // plan fits the earliest remaining deadline.
    let mut plan = Plan::Shed;
    while !jobs.is_empty() {
        if jobs[0].deadline <= dispatch {
            shed(s, jobs.remove(0), ShedReason::Deadline, dispatch);
            continue;
        }
        let slack_ns = jobs[0].deadline.duration_since(dispatch).as_nanos() as f64;
        let reqs: Vec<&KernelRequest> = jobs.iter().map(|j| &j.req).collect();
        plan = plan_batch(slack_ns, configured_n, floor_n, |n| {
            calib * batch_units(&s.cfg.model, &reqs, n)
        });
        match plan {
            Plan::Run(_) => break,
            Plan::Shed => shed(s, jobs.remove(0), ShedReason::Deadline, dispatch),
        }
    }
    let Plan::Run(n) = plan else {
        return; // everything shed
    };
    if jobs.is_empty() {
        return;
    }

    let mut engine = s.cfg.engine.clone();
    engine.stream_len = n;
    let downgraded = n < configured_n;
    let reqs: Vec<KernelRequest> = jobs.iter().map(|j| j.req.clone()).collect();
    let units = {
        let refs: Vec<&KernelRequest> = reqs.iter().collect();
        batch_units(&s.cfg.model, &refs, n)
    };
    let t0 = Instant::now();
    let result = request::run_batch(&reqs, &engine);
    let service_ns = t0.elapsed().as_nanos() as u64;

    // EWMA calibration refresh: the estimator tracks this host's
    // current speed, so sustained load or a slow machine tightens
    // future downgrade decisions.
    {
        let mut calib = s.calib.lock().expect("calib lock");
        let observed = service_ns as f64 / units.max(1.0);
        *calib = 0.7 * *calib + 0.3 * observed;
    }

    match result {
        Ok(responses) => {
            for (job, resp) in jobs.into_iter().zip(responses) {
                s.counters.served.fetch_add(1, Ordering::Relaxed);
                if downgraded {
                    s.counters.downgraded.fetch_add(1, Ordering::Relaxed);
                }
                let _ = job.tx.send(Completed {
                    id: job.id,
                    outcome: Outcome::Done(resp),
                    effective_n: n,
                    downgraded,
                    queue_ns: dispatch.duration_since(job.enqueued).as_nanos() as u64,
                    service_ns,
                });
            }
        }
        Err(e) => {
            // Batch-level failure: fall back per job so one bad request
            // cannot poison its neighbours' completions.
            let msg = e.to_string();
            for job in jobs {
                let t0 = Instant::now();
                let outcome = match request::run(&job.req, &engine) {
                    Ok(resp) => {
                        s.counters.served.fetch_add(1, Ordering::Relaxed);
                        Outcome::Done(resp)
                    }
                    Err(e) => {
                        s.counters.failed.fetch_add(1, Ordering::Relaxed);
                        Outcome::Failed(format!("{msg}; retry: {e}"))
                    }
                };
                let _ = job.tx.send(Completed {
                    id: job.id,
                    outcome,
                    effective_n: n,
                    downgraded,
                    queue_ns: dispatch.duration_since(job.enqueued).as_nanos() as u64,
                    service_ns: t0.elapsed().as_nanos() as u64,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_runs_at_configured_n_with_ample_slack() {
        assert_eq!(plan_batch(1e9, 256, 32, |n| n as f64), Plan::Run(256));
    }

    #[test]
    fn plan_downgrades_down_the_halving_ladder() {
        // est(n) = n * 1e6; slack fits 64 but not 128 or 256.
        assert_eq!(plan_batch(70e6, 256, 32, |n| n as f64 * 1e6), Plan::Run(64));
    }

    #[test]
    fn plan_sheds_when_even_the_floor_misses() {
        assert_eq!(plan_batch(1e3, 256, 32, |n| n as f64 * 1e6), Plan::Shed);
    }

    #[test]
    fn plan_never_goes_below_the_floor() {
        // Slack fits n = 16 only, but the floor is 32: shed.
        assert_eq!(plan_batch(20e6, 256, 32, |n| n as f64 * 1e6), Plan::Shed);
    }

    #[test]
    fn batch_units_scale_with_n_and_pixels() {
        let model = PipelineModel::evaluation_default();
        let small = KernelRequest::Edge {
            image: imgproc::synth::gradient(8, 8, true),
        };
        let big = KernelRequest::Edge {
            image: imgproc::synth::gradient(32, 32, true),
        };
        let u_small = batch_units(&model, &[&small], 256);
        let u_big = batch_units(&model, &[&big], 256);
        assert!(u_big > u_small * 8.0);
        let u_half = batch_units(&model, &[&big], 128);
        assert!(u_half < u_big);
    }
}
