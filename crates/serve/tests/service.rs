//! End-to-end service behaviour: parity with the library dispatch,
//! coalescing, overload shedding, shard-retirement degradation, and
//! clean TCP shutdown.

use imgproc::request::{self, KernelRequest};
use imgproc::{synth, ScReramConfig, Schedule};
use imsc::PlanCache;
use serve::{Client, Outcome, Server, Service, ServiceConfig, ShedReason, Status};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn edge_req(n: usize, seed: u64) -> KernelRequest {
    KernelRequest::Edge {
        image: synth::value_noise(n, n, 3, seed),
    }
}

fn quick_service(engine: ScReramConfig) -> Service {
    Service::start(ServiceConfig {
        engine,
        batch_window: Duration::from_millis(1),
        default_deadline: Duration::from_secs(3600),
        ..ServiceConfig::default()
    })
    .expect("service starts")
}

/// Service responses are bit-identical to the library dispatch run
/// standalone — batching and the service plumbing change nothing.
#[test]
fn service_matches_library_dispatch_bit_exactly() {
    let engine = ScReramConfig::new(64, 11);
    let service = quick_service(engine.clone());
    let reqs = [
        edge_req(16, 5),
        KernelRequest::Bilinear {
            src: synth::gradient(8, 8, true),
            factor: 2,
        },
    ];
    for req in reqs {
        let expect = request::run(&req, &engine).expect("library run");
        let done = service.submit(req).expect("valid request").wait();
        let Outcome::Done(resp) = done.outcome else {
            panic!("expected completion, got {:?}", done.outcome);
        };
        assert_eq!(resp.pixels, expect.pixels);
        assert!(!done.downgraded);
        assert_eq!(done.effective_n, 64);
    }
    service.shutdown();
    let stats = service.stats();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.failed, 0);
}

/// Same-shape requests submitted together coalesce into fewer batches
/// than requests, and every response is still per-frame bit-exact.
#[test]
fn same_shape_requests_coalesce_and_stay_bit_exact() {
    let engine = ScReramConfig::new(64, 7).with_plan_cache(Arc::new(PlanCache::new()));
    let service = Service::start(ServiceConfig {
        engine: engine.clone(),
        batch_window: Duration::from_millis(50),
        max_batch: 8,
        default_deadline: Duration::from_secs(3600),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let reqs: Vec<KernelRequest> = (0..6).map(|i| edge_req(16, i)).collect();
    let tickets: Vec<_> = reqs
        .iter()
        .map(|r| service.submit(r.clone()).expect("valid request"))
        .collect();
    for (req, ticket) in reqs.iter().zip(tickets) {
        let done = ticket.wait();
        let Outcome::Done(resp) = done.outcome else {
            panic!("expected completion, got {:?}", done.outcome);
        };
        let expect = request::run(req, &engine).expect("library run");
        assert_eq!(resp.pixels, expect.pixels, "coalescing changed pixels");
    }
    service.shutdown();
    let stats = service.stats();
    assert_eq!(stats.served, 6);
    assert!(
        stats.batches < 6,
        "6 same-shape requests should coalesce, got {} batches",
        stats.batches
    );
}

/// 2× overload with tight deadlines: every request gets an honest
/// response — served (possibly downgraded) or shed — and never an
/// error.
#[test]
fn overload_sheds_or_downgrades_without_errors() {
    let service = Service::start(ServiceConfig {
        engine: ScReramConfig::new(256, 3),
        queue_depth: 4,
        batch_window: Duration::from_micros(200),
        max_batch: 4,
        // Deadlines the 48x48 workload cannot all make on one worker.
        default_deadline: Duration::from_millis(40),
        min_stream_len: 32,
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let tickets: Vec<_> = (0..24)
        .map(|i| service.submit(edge_req(48, i)).expect("valid request"))
        .collect();
    let mut served = 0u32;
    let mut shed = 0u32;
    let mut downgraded = 0u32;
    for t in tickets {
        match t.wait() {
            serve::Completed {
                outcome: Outcome::Done(_),
                downgraded: d,
                ..
            } => {
                served += 1;
                downgraded += u32::from(d);
            }
            serve::Completed {
                outcome: Outcome::Shed(_),
                ..
            } => shed += 1,
            other => panic!("overload must never produce an error: {:?}", other.outcome),
        }
    }
    service.shutdown();
    let stats = service.stats();
    assert_eq!(stats.failed, 0, "no error responses under overload");
    assert_eq!(u64::from(served + shed), stats.submitted);
    assert!(
        shed + downgraded > 0,
        "2x overload must shed or downgrade something (served {served}, shed {shed}, downgraded {downgraded})"
    );
}

/// A shard dying mid-run (pathological fault rates + retirement)
/// degrades the farm but requests still complete successfully.
#[test]
fn shard_retirement_degrades_instead_of_failing() {
    let engine = ScReramConfig::new(64, 9)
        .with_schedule(Schedule::Pipelined { arrays: 3 })
        .with_array_faults(1, reram::faults::FaultRates::uniform(0.05))
        .with_retirement(imsc::RetirementPolicy {
            max_faults_per_op: 0.01,
            min_ops: 1_000,
        });
    let service = quick_service(engine);
    let done = service
        .submit(KernelRequest::Bilinear {
            src: synth::gradient(16, 16, true),
            factor: 2,
        })
        .expect("valid request")
        .wait();
    let Outcome::Done(resp) = done.outcome else {
        panic!("retirement must degrade, not fail: {:?}", done.outcome);
    };
    let report = resp
        .stats
        .expect("sc-reram stats")
        .pipeline
        .expect("pipelined run reports");
    assert!(report.retired_arrays >= 1, "pathological shard retired");
    service.shutdown();
    assert_eq!(service.stats().failed, 0);
}

/// Admission rejects invalid requests and deep-conflict configurations
/// by name, before any work starts.
#[test]
fn admission_validation_rejects_bad_requests_and_configs() {
    let service = quick_service(ScReramConfig::new(64, 1));
    let err = service
        .submit(KernelRequest::Bilinear {
            src: synth::gradient(4, 4, true),
            factor: 1,
        })
        .unwrap_err();
    assert!(err.to_string().contains("invalid parameter"));
    service.shutdown();

    // Config conflicts are caught at service start-up.
    let bad = ScReramConfig::new(64, 1).with_retirement(imsc::RetirementPolicy::default());
    let err = Service::start(ServiceConfig {
        engine: bad,
        ..ServiceConfig::default()
    })
    .unwrap_err();
    assert!(
        err.to_string()
            .contains("retirement policy requires Schedule::Pipelined"),
        "got: {err}"
    );
}

/// Full TCP round trip: kernel requests over the wire match the
/// library, baseline backends dispatch, shutdown is clean and drains.
#[test]
fn tcp_roundtrip_and_clean_shutdown() {
    let engine = ScReramConfig::new(64, 21);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = Server::start(
        listener,
        ServiceConfig {
            engine: engine.clone(),
            batch_window: Duration::from_millis(1),
            default_deadline: Duration::from_secs(3600),
            ..ServiceConfig::default()
        },
    )
    .expect("server starts");

    let mut client = Client::connect(server.addr()).expect("connect");
    let req = edge_req(16, 2);
    let resp = client.call(&req, None).expect("wire call");
    assert_eq!(resp.status, Status::Ok);
    let expect = request::run(&req, &engine).expect("library run");
    assert_eq!(resp.pixels.expect("pixels"), expect.pixels);
    assert_eq!(resp.effective_n, 64);

    // A baseline backend over the same wire (software = exact kernel).
    let img = synth::gradient(12, 12, true);
    let sw = client
        .call_backend(&KernelRequest::Edge { image: img.clone() }, 3, 0.0, None)
        .expect("software call");
    assert_eq!(sw.status, Status::Ok);
    assert_eq!(sw.pixels.expect("pixels"), imgproc::edge::software(&img));

    let bye = client.shutdown().expect("shutdown ack");
    assert_eq!(bye.status, Status::Ok);
    server.wait();
    let stats = server.service().stats();
    assert_eq!(stats.served, 1, "one sc-reram request served");
    assert_eq!(stats.failed, 0);
}

/// Queue-full admission shed resolves the ticket immediately with
/// `ShedReason::QueueFull` (not an error, not a hang).
#[test]
fn queue_full_sheds_at_the_door() {
    let service = Service::start(ServiceConfig {
        engine: ScReramConfig::new(256, 3),
        queue_depth: 1,
        batch_window: Duration::from_millis(200),
        max_batch: 1,
        default_deadline: Duration::from_secs(3600),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    // Flood far past the queue depth; at least one must shed QueueFull.
    let tickets: Vec<_> = (0..16)
        .map(|i| service.submit(edge_req(32, i)).expect("valid request"))
        .collect();
    let mut queue_sheds = 0;
    for t in tickets {
        if let Outcome::Shed(ShedReason::QueueFull) = t.wait().outcome {
            queue_sheds += 1;
        }
    }
    service.shutdown();
    assert!(queue_sheds > 0, "flooding a depth-1 queue must shed");
    assert_eq!(service.stats().shed_queue, queue_sheds);
}
