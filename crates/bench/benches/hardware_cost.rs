//! Timing of the Table III cost model and the end-to-end accelerator
//! flow it describes.

use criterion::{criterion_group, criterion_main, Criterion};
use imsc::cost::{reram_op_cost, ScOperation};
use imsc::engine::Accelerator;
use imsc::imsng::ImsngVariant;
use reram::energy::ReramCosts;
use sc_core::Fixed;
use std::hint::black_box;

fn bench_cost_model(c: &mut Criterion) {
    let costs = ReramCosts::calibrated();
    c.bench_function("table3_cost_model_all_ops", |b| {
        b.iter(|| {
            for op in ScOperation::ALL {
                black_box(reram_op_cost(op, 256, 8, ImsngVariant::Opt, &costs));
            }
        })
    });
}

fn bench_accelerator_flow(c: &mut Criterion) {
    let mut g = c.benchmark_group("accelerator_end_to_end");
    g.sample_size(10);
    for n in [32usize, 256] {
        g.bench_function(format!("multiply_n{n}"), |b| {
            let mut acc = Accelerator::builder()
                .stream_len(n)
                .seed(5)
                .build()
                .expect("valid configuration");
            b.iter(|| {
                let x = acc.encode(Fixed::from_u8(100)).expect("rows available");
                let y = acc.encode(Fixed::from_u8(200)).expect("rows available");
                let p = acc.multiply(x, y).expect("uncorrelated");
                let v = acc.read_value(p).expect("alive");
                for h in [x, y, p] {
                    acc.release(h).expect("alive");
                }
                black_box(v)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cost_model, bench_accelerator_flow);
criterion_main!(benches);
