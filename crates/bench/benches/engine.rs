//! Criterion benchmarks for the packed-word engine fast path: crossbar
//! row I/O, scouting-logic ops (packed vs per-cell reference), and the
//! end-to-end tiled bilinear upscale.
//!
//! Run with `CRITERION_JSON=path` to collect machine-readable results
//! (see `bench_engine` for the committed `BENCH_engine.json` summary).

use criterion::{criterion_group, criterion_main, Criterion};
use imgproc::scbackend::ScReramConfig;
use imgproc::{bilinear, synth};
use reram::array::CrossbarArray;
use reram::scouting::{ScoutingLogic, SlOp};
use sc_core::rng::Xoshiro256;
use sc_core::BitStream;
use std::hint::black_box;

fn loaded_array(rows: usize, cols: usize, seed: u64) -> CrossbarArray {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut a = CrossbarArray::pristine(rows, cols, seed);
    for r in 0..rows {
        let s = BitStream::from_fn(cols, |_| rng.next_f64() < 0.5);
        a.write_row(r, &s).expect("row in range");
    }
    a
}

fn bench_row_io(c: &mut Criterion) {
    let cols = 4096;
    let mut g = c.benchmark_group("crossbar_row_io_4096");
    let mut rng = Xoshiro256::seed_from_u64(1);
    let data_a = BitStream::from_fn(cols, |_| rng.next_f64() < 0.5);
    let data_b = BitStream::from_fn(cols, |_| rng.next_f64() < 0.5);
    let mut array = CrossbarArray::pristine(4, cols, 2);
    let mut toggle = false;
    g.bench_function("write_row", |b| {
        b.iter(|| {
            toggle = !toggle;
            let d = if toggle { &data_a } else { &data_b };
            black_box(array.write_row(0, d).expect("row in range"))
        })
    });
    g.bench_function("read_row", |b| {
        b.iter(|| black_box(array.read_row(0).expect("row in range")))
    });
    g.finish();
}

fn bench_scouting(c: &mut Criterion) {
    let mut array = loaded_array(3, 4096, 3);
    let reference = array.clone();
    let mut sl = ScoutingLogic::ideal();
    let mut g = c.benchmark_group("scouting_4096");
    for (name, op, rows) in [
        ("and2_packed", SlOp::And, &[0usize, 1][..]),
        ("xor2_packed", SlOp::Xor, &[0, 1][..]),
        ("maj3_packed", SlOp::Maj, &[0, 1, 2][..]),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(sl.execute_mut(&mut array, op, rows).expect("valid rows")))
        });
    }
    // The per-cell reference path, for the packed-vs-reference ratio.
    g.sample_size(10);
    g.bench_function("and2_reference", |b| {
        b.iter(|| {
            black_box(
                ScoutingLogic::digital_reference(&reference, SlOp::And, &[0, 1])
                    .expect("valid rows"),
            )
        })
    });
    g.finish();
}

fn bench_bilinear(c: &mut Criterion) {
    let src = synth::value_noise(16, 16, 4, 9);
    let cfg = ScReramConfig::new(256, 42);
    let mut g = c.benchmark_group("bilinear_sc_reram");
    g.sample_size(10);
    g.bench_function("16_to_32_n256", |b| {
        b.iter(|| black_box(bilinear::sc_reram(&src, 2, &cfg).expect("valid input")))
    });
    g.finish();
}

criterion_group!(benches, bench_row_io, bench_scouting, bench_bilinear);
criterion_main!(benches);
