//! Timing of the ReRAM substrate: scouting-logic execution (ideal,
//! fault-injected, analog) and TRNG row generation.

use criterion::{criterion_group, criterion_main, Criterion};
use reram::array::CrossbarArray;
use reram::faults::FaultRates;
use reram::scouting::{ScoutingLogic, SlOp};
use reram::trng::TrngEngine;
use sc_core::BitStream;
use std::hint::black_box;

fn prepared_array(cols: usize) -> CrossbarArray {
    let mut a = CrossbarArray::pristine(4, cols, 11);
    a.write_row(0, &BitStream::from_fn(cols, |i| i % 2 == 0))
        .expect("row in range");
    a.write_row(1, &BitStream::from_fn(cols, |i| i % 3 == 0))
        .expect("row in range");
    a.write_row(2, &BitStream::from_fn(cols, |i| i % 5 == 0))
        .expect("row in range");
    a
}

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("scouting_256_cols");
    g.sample_size(30);
    let mut array = prepared_array(256);
    let mut ideal = ScoutingLogic::ideal();
    g.bench_function("ideal_and", |b| {
        b.iter(|| {
            black_box(
                ideal
                    .execute_mut(&mut array, SlOp::And, &[0, 1])
                    .expect("valid"),
            )
        })
    });
    let mut faulty = ScoutingLogic::with_faults(FaultRates::uniform(0.01), 3);
    g.bench_function("fault_injected_and", |b| {
        b.iter(|| {
            black_box(
                faulty
                    .execute_mut(&mut array, SlOp::And, &[0, 1])
                    .expect("valid"),
            )
        })
    });
    let mut analog = ScoutingLogic::analog();
    g.bench_function("analog_and", |b| {
        b.iter(|| {
            black_box(
                analog
                    .execute_mut(&mut array, SlOp::And, &[0, 1])
                    .expect("valid"),
            )
        })
    });
    g.bench_function("ideal_maj3", |b| {
        b.iter(|| {
            black_box(
                ideal
                    .execute_mut(&mut array, SlOp::Maj, &[0, 1, 2])
                    .expect("valid"),
            )
        })
    });
    g.finish();
}

fn bench_trng(c: &mut Criterion) {
    let mut g = c.benchmark_group("trng");
    g.sample_size(30);
    let mut trng = TrngEngine::new(64, 0.04, 7);
    g.bench_function("generate_row_256", |b| {
        b.iter(|| black_box(trng.generate_row(256)))
    });
    let mut array = CrossbarArray::pristine(2, 256, 9);
    g.bench_function("fill_row_256", |b| {
        b.iter(|| trng.fill_row(&mut array, 0).expect("row in range"))
    });
    g.finish();
}

criterion_group!(benches, bench_modes, bench_trng);
criterion_main!(benches);
