//! Ablation benches for the design choices DESIGN.md calls out:
//! IMSNG-naive vs IMSNG-opt, MAJ vs MUX scaled addition, correlation
//! control via shared vs independent RN rows, and fault-rate derivation.

use criterion::{criterion_group, criterion_main, Criterion};
use imsc::engine::Accelerator;
use imsc::imsng::ImsngVariant;
use reram::cell::DeviceParams;
use reram::vcm::derive_fault_rates;
use sc_core::prelude::*;
use std::hint::black_box;

fn bench_imsng_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("imsng_variants_n256");
    g.sample_size(10);
    for (label, variant) in [
        ("baseline", ImsngVariant::Baseline),
        ("naive", ImsngVariant::Naive),
        ("opt", ImsngVariant::Opt),
    ] {
        g.bench_function(label, |b| {
            let mut acc = Accelerator::builder()
                .stream_len(256)
                .variant(variant)
                .seed(3)
                .build()
                .expect("valid configuration");
            b.iter(|| {
                let h = acc.encode(Fixed::from_u8(77)).expect("rows available");
                acc.release(h).expect("alive");
            });
        });
    }
    g.finish();
}

fn bench_maj_vs_mux(c: &mut Criterion) {
    let n = 4096;
    let mut sa = Sng::new(UniformSource::seed_from_u64(1));
    let mut sb = Sng::new(UniformSource::seed_from_u64(2));
    let mut ss = Sng::new(UniformSource::seed_from_u64(3));
    let x = sa.generate_prob(Prob::saturating(0.7), n);
    let y = sb.generate_prob(Prob::saturating(0.2), n);
    let sel = ss.generate_prob(Prob::saturating(0.5), n);
    let mut g = c.benchmark_group("scaled_addition_n4096");
    g.bench_function("maj", |b| {
        b.iter(|| black_box(ops::scaled_add_maj(&x, &y, &sel).expect("equal lengths")))
    });
    g.bench_function("mux", |b| {
        b.iter(|| black_box(ops::scaled_add_mux(&x, &y, &sel).expect("equal lengths")))
    });
    g.finish();
}

fn bench_correlation_control(c: &mut Criterion) {
    let mut g = c.benchmark_group("correlation_control_n256");
    g.sample_size(10);
    g.bench_function("independent_pair", |b| {
        let mut acc = Accelerator::builder()
            .stream_len(256)
            .seed(4)
            .build()
            .expect("valid configuration");
        b.iter(|| {
            let x = acc.encode(Fixed::from_u8(60)).expect("rows available");
            let y = acc.encode(Fixed::from_u8(180)).expect("rows available");
            for h in [x, y] {
                acc.release(h).expect("alive");
            }
        });
    });
    g.bench_function("correlated_pair", |b| {
        let mut acc = Accelerator::builder()
            .stream_len(256)
            .seed(4)
            .build()
            .expect("valid configuration");
        b.iter(|| {
            let (x, y) = acc
                .encode_correlated(Fixed::from_u8(60), Fixed::from_u8(180))
                .expect("rows available");
            for h in [x, y] {
                acc.release(h).expect("alive");
            }
        });
    });
    g.finish();
}

fn bench_fault_derivation(c: &mut Criterion) {
    let mut g = c.benchmark_group("vcm_fault_derivation");
    g.sample_size(10);
    g.bench_function("mc_2_trials_128_cols", |b| {
        b.iter(|| black_box(derive_fault_rates(&DeviceParams::hfo2(), 2, 128, 5)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_imsng_variants,
    bench_maj_vs_mux,
    bench_correlation_control,
    bench_fault_derivation
);
criterion_main!(benches);
