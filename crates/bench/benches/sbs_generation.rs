//! Timing of stochastic bit-stream generation per RNG source (Table I's
//! compute kernel).

use bench::sources::RngKind;
use criterion::{criterion_group, criterion_main, Criterion};
use sc_core::Fixed;
use std::hint::black_box;

fn bench_sources(c: &mut Criterion) {
    let mut g = c.benchmark_group("sbs_generation_n256");
    g.sample_size(20);
    for kind in [
        RngKind::Imsng { m: 8 },
        RngKind::Software,
        RngKind::Lfsr,
        RngKind::Sobol,
    ] {
        g.bench_function(kind.label(), |b| {
            let mut trial = 0u64;
            b.iter(|| {
                trial += 1;
                black_box(kind.stream(Fixed::from_u8(137), 256, trial, 0))
            });
        });
    }
    g.finish();
}

fn bench_lengths(c: &mut Criterion) {
    let mut g = c.benchmark_group("sbs_generation_imsng_by_length");
    g.sample_size(20);
    for n in [32usize, 64, 128, 256, 512] {
        g.bench_function(format!("n{n}"), |b| {
            let kind = RngKind::Imsng { m: 8 };
            let mut trial = 0u64;
            b.iter(|| {
                trial += 1;
                black_box(kind.stream(Fixed::from_u8(99), n, trial, 0))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sources, bench_lengths);
criterion_main!(benches);
