//! Timing of the image-processing applications per backend (Table IV's
//! compute kernels) on small images.

use criterion::{criterion_group, criterion_main, Criterion};
use imgproc::scbackend::{CmosScConfig, CmosSngKind, ScReramConfig};
use imgproc::{bilinear, compositing, matting, synth};
use std::hint::black_box;

fn bench_compositing(c: &mut Criterion) {
    let set = synth::app_images(12, 12, 5);
    let mut g = c.benchmark_group("compositing_12x12");
    g.sample_size(10);
    g.bench_function("software", |b| {
        b.iter(|| {
            black_box(
                compositing::software(&set.foreground, &set.background, &set.alpha)
                    .expect("consistent dims"),
            )
        })
    });
    g.bench_function("binary_cim", |b| {
        b.iter(|| {
            black_box(
                compositing::binary_cim(&set.foreground, &set.background, &set.alpha, 0.0, 1)
                    .expect("consistent dims"),
            )
        })
    });
    g.bench_function("sc_cmos_n64", |b| {
        let cfg = CmosScConfig::new(64, CmosSngKind::Lfsr, 2);
        b.iter(|| {
            black_box(
                compositing::sc_cmos(&set.foreground, &set.background, &set.alpha, &cfg)
                    .expect("consistent dims"),
            )
        })
    });
    g.bench_function("sc_reram_n64", |b| {
        let cfg = ScReramConfig::new(64, 3);
        b.iter(|| {
            black_box(
                compositing::sc_reram(&set.foreground, &set.background, &set.alpha, &cfg)
                    .expect("substrate ok"),
            )
        })
    });
    g.finish();
}

fn bench_bilinear_and_matting(c: &mut Criterion) {
    let set = synth::app_images(10, 10, 6);
    let composite = compositing::software(&set.foreground, &set.background, &set.alpha)
        .expect("consistent dims");
    let mut g = c.benchmark_group("bilinear_matting_10x10");
    g.sample_size(10);
    g.bench_function("bilinear_sw_x2", |b| {
        b.iter(|| black_box(bilinear::software(&set.background, 2).expect("valid factor")))
    });
    g.bench_function("bilinear_sc_reram_n32", |b| {
        let cfg = ScReramConfig::new(32, 7);
        b.iter(|| black_box(bilinear::sc_reram(&set.background, 2, &cfg).expect("substrate ok")))
    });
    g.bench_function("matting_sw", |b| {
        b.iter(|| {
            black_box(
                matting::software(&composite, &set.background, &set.foreground)
                    .expect("consistent dims"),
            )
        })
    });
    g.bench_function("matting_sc_reram_n32", |b| {
        let cfg = ScReramConfig::new(32, 8);
        b.iter(|| {
            black_box(
                matting::sc_reram(&composite, &set.background, &set.foreground, &cfg)
                    .expect("substrate ok"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_compositing, bench_bilinear_and_matting);
criterion_main!(benches);
