//! Timing of the bulk-bitwise SC operations (Table II's compute kernel).

use criterion::{criterion_group, criterion_main, Criterion};
use sc_core::div::cordiv;
use sc_core::prelude::*;
use std::hint::black_box;

fn streams(n: usize) -> (BitStream, BitStream, BitStream) {
    let mut a = Sng::new(UniformSource::seed_from_u64(1));
    let mut b = Sng::new(UniformSource::seed_from_u64(2));
    let mut s = Sng::new(UniformSource::seed_from_u64(3));
    (
        a.generate_prob(Prob::saturating(0.3), n),
        b.generate_prob(Prob::saturating(0.6), n),
        s.generate_prob(Prob::saturating(0.5), n),
    )
}

fn bench_ops(c: &mut Criterion) {
    let n = 4096;
    let (x, y, sel) = streams(n);
    let mut g = c.benchmark_group("sc_ops_n4096");
    g.bench_function("multiply_and", |b| {
        b.iter(|| black_box(ops::multiply(&x, &y).expect("equal lengths")))
    });
    g.bench_function("scaled_add_maj", |b| {
        b.iter(|| black_box(ops::scaled_add_maj(&x, &y, &sel).expect("equal lengths")))
    });
    g.bench_function("scaled_add_mux", |b| {
        b.iter(|| black_box(ops::scaled_add_mux(&x, &y, &sel).expect("equal lengths")))
    });
    g.bench_function("abs_subtract_xor", |b| {
        b.iter(|| black_box(ops::abs_subtract(&x, &y).expect("equal lengths")))
    });
    g.bench_function("cordiv", |b| {
        b.iter(|| black_box(cordiv(&x, &y).expect("nonzero divisor")))
    });
    g.finish();
}

fn bench_conversion(c: &mut Criterion) {
    let (x, _, _) = streams(4096);
    c.bench_function("popcount_value_n4096", |b| b.iter(|| black_box(x.value())));
}

criterion_group!(benches, bench_ops, bench_conversion);
criterion_main!(benches);
