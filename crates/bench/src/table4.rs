//! Table IV — SSIM(%)/PSNR(dB) of the three applications, fault-free (✗)
//! and under CIM faults (✓), for binary CIM and the ReRAM SC design
//! across stream lengths.
//!
//! Fault rates are *derived from the device model* exactly as in the
//! paper (§IV): Monte-Carlo analog scouting vs digital truth over the
//! VCM-style distributions ([`reram::vcm::derive_fault_rates`]); the
//! binary CIM design is injected with the mean sensing-fault probability
//! since its bit-serial ops use the same sensing path.

use imgproc::scbackend::ScReramConfig;
use imgproc::{bilinear, compositing, matting, metrics, synth, GrayImage};
use reram::cell::DeviceParams;
use reram::faults::FaultRates;
use reram::vcm::derive_fault_rates;

/// The stream lengths of Table IV.
pub const LENGTHS: [usize; 4] = [32, 64, 128, 256];

/// The three applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// Image compositing.
    Compositing,
    /// Bilinear interpolation (2× up-scaling).
    Bilinear,
    /// Image matting (α estimation, evaluated via recompositing).
    Matting,
}

impl App {
    /// All applications in Table IV order.
    pub const ALL: [App; 3] = [App::Compositing, App::Bilinear, App::Matting];

    /// Column label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            App::Compositing => "Image Compositing",
            App::Bilinear => "Bilinear Interpolation",
            App::Matting => "Image Matting",
        }
    }
}

/// One quality measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality {
    /// SSIM in percent.
    pub ssim_pct: f64,
    /// PSNR in dB.
    pub psnr_db: f64,
}

/// Experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Square image side length.
    pub size: usize,
    /// Fault-injection trials to average (paper: 1000).
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// Per-op CIM fault rates for the SC design.
    pub sc_faults: FaultRates,
    /// Per-intermediate-bit fault probability for binary CIM.
    pub bincim_fault_prob: f64,
}

impl Config {
    /// Default configuration: derives fault rates from the default HfO₂
    /// device (small trials/size for turnaround; CLI-overridable).
    #[must_use]
    pub fn derive(size: usize, trials: usize, seed: u64) -> Self {
        let rates = derive_fault_rates(&DeviceParams::hfo2(), 4, 512, seed ^ 0xFA);
        let mean = (rates.and + rates.or + rates.xor + rates.maj) / 4.0;
        Config {
            size,
            trials,
            seed,
            sc_faults: rates,
            // Binary CIM's bit-serial gates ride the same sensing path;
            // floor at 1% — the regime the paper's Table IV explores.
            bincim_fault_prob: mean.max(0.01),
        }
    }
}

fn quality(reference: &GrayImage, output: &GrayImage) -> Quality {
    Quality {
        ssim_pct: metrics::ssim_percent(reference, output).expect("matching dims"),
        psnr_db: metrics::psnr(reference, output).expect("matching dims"),
    }
}

fn average(samples: &[Quality]) -> Quality {
    let n = samples.len().max(1) as f64;
    Quality {
        ssim_pct: samples.iter().map(|q| q.ssim_pct).sum::<f64>() / n,
        psnr_db: samples
            .iter()
            .map(|q| {
                if q.psnr_db.is_finite() {
                    q.psnr_db
                } else {
                    99.0
                }
            })
            .sum::<f64>()
            / n,
    }
}

/// Runs one application on the binary CIM design.
///
/// # Panics
///
/// Panics on internal dimension errors (inputs are constructed
/// consistently).
#[must_use]
pub fn run_bincim(app: App, cfg: &Config, faulty: bool) -> Quality {
    let set = synth::app_images(cfg.size, cfg.size, cfg.seed);
    let p = if faulty { cfg.bincim_fault_prob } else { 0.0 };
    let trials = if faulty { cfg.trials } else { 1 };
    let mut qs = Vec::with_capacity(trials);
    for t in 0..trials {
        let seed = cfg.seed ^ (t as u64) << 16;
        let q = match app {
            App::Compositing => {
                let reference = compositing::software(&set.foreground, &set.background, &set.alpha)
                    .expect("consistent dims");
                let out =
                    compositing::binary_cim(&set.foreground, &set.background, &set.alpha, p, seed)
                        .expect("consistent dims");
                quality(&reference, &out)
            }
            App::Bilinear => {
                let src = set.background.clone();
                let reference = bilinear::software(&src, 2).expect("valid factor");
                let out = bilinear::binary_cim(&src, 2, p, seed).expect("valid factor");
                quality(&reference, &out)
            }
            App::Matting => {
                let i = compositing::software(&set.foreground, &set.background, &set.alpha)
                    .expect("consistent dims");
                let est = matting::binary_cim(&i, &set.background, &set.foreground, p, seed)
                    .expect("consistent dims");
                let rec_true = matting::recomposite(&set.foreground, &set.background, &set.alpha)
                    .expect("consistent dims");
                let rec_est = matting::recomposite(&set.foreground, &set.background, &est)
                    .expect("consistent dims");
                quality(&rec_true, &rec_est)
            }
        };
        qs.push(q);
    }
    average(&qs)
}

/// Runs one application on the ReRAM SC design at stream length `n`.
///
/// # Panics
///
/// Panics on internal dimension errors.
#[must_use]
pub fn run_sc_reram(app: App, cfg: &Config, n: usize, faulty: bool) -> Quality {
    let set = synth::app_images(cfg.size, cfg.size, cfg.seed);
    let trials = if faulty { cfg.trials } else { 1 };
    let mut qs = Vec::with_capacity(trials);
    for t in 0..trials {
        let mut sc = ScReramConfig::new(n, cfg.seed ^ (t as u64) << 24);
        if faulty {
            sc = sc.with_faults(cfg.sc_faults);
        }
        let q = match app {
            App::Compositing => {
                let reference = compositing::software(&set.foreground, &set.background, &set.alpha)
                    .expect("consistent dims");
                let out = compositing::sc_reram(&set.foreground, &set.background, &set.alpha, &sc)
                    .expect("substrate ok");
                quality(&reference, &out)
            }
            App::Bilinear => {
                let src = set.background.clone();
                let reference = bilinear::software(&src, 2).expect("valid factor");
                let out = bilinear::sc_reram(&src, 2, &sc).expect("substrate ok");
                quality(&reference, &out)
            }
            App::Matting => {
                let i = compositing::software(&set.foreground, &set.background, &set.alpha)
                    .expect("consistent dims");
                let est = matting::sc_reram(&i, &set.background, &set.foreground, &sc)
                    .expect("substrate ok");
                let rec_true = matting::recomposite(&set.foreground, &set.background, &set.alpha)
                    .expect("consistent dims");
                let rec_est = matting::recomposite(&set.foreground, &set.background, &est)
                    .expect("consistent dims");
                quality(&rec_true, &rec_est)
            }
        };
        qs.push(q);
    }
    average(&qs)
}

/// Renders the full table.
#[must_use]
pub fn render(cfg: &Config) -> String {
    let mut out = format!(
        "Table IV: SSIM(%)/PSNR(dB), fault-free (x) vs CIM faults (ok), {}x{} images, {} trials\n",
        cfg.size, cfg.size, cfg.trials
    );
    out.push_str(&format!(
        "derived fault rates: and={:.4} or={:.4} xor={:.4} maj={:.4}; bincim p={:.4}\n\n",
        cfg.sc_faults.and,
        cfg.sc_faults.or,
        cfg.sc_faults.xor,
        cfg.sc_faults.maj,
        cfg.bincim_fault_prob
    ));
    out.push_str(&format!("{:<14}", "Design"));
    for app in App::ALL {
        out.push_str(&format!("{:>32}", app.label()));
    }
    out.push('\n');
    out.push_str(&format!("{:<14}", ""));
    for _ in App::ALL {
        out.push_str(&format!("{:>16}{:>16}", "fault-free", "faulty"));
    }
    out.push('\n');

    let fmt = |q: Quality| format!("{:.1}/{:.1}", q.ssim_pct, q.psnr_db);
    let mut line = format!("{:<14}", "BinaryCIM");
    for app in App::ALL {
        line.push_str(&format!(
            "{:>16}{:>16}",
            fmt(run_bincim(app, cfg, false)),
            fmt(run_bincim(app, cfg, true))
        ));
    }
    out.push_str(&line);
    out.push('\n');
    for n in LENGTHS {
        let mut line = format!("{:<14}", format!("ReRAM-SC {n}"));
        for app in App::ALL {
            line.push_str(&format!(
                "{:>16}{:>16}",
                fmt(run_sc_reram(app, cfg, n, false)),
                fmt(run_sc_reram(app, cfg, n, true))
            ));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            size: 12,
            trials: 2,
            seed: 9,
            sc_faults: FaultRates::uniform(0.01),
            bincim_fault_prob: 0.01,
        }
    }

    #[test]
    fn bincim_compositing_is_near_perfect_fault_free() {
        let q = run_bincim(App::Compositing, &tiny(), false);
        assert!(q.ssim_pct > 99.0, "{q:?}");
        assert!(q.psnr_db > 45.0, "{q:?}");
    }

    #[test]
    fn faults_hit_bincim_harder_than_sc() {
        let cfg = tiny();
        let app = App::Compositing;
        let bin_clean = run_bincim(app, &cfg, false);
        let bin_faulty = run_bincim(app, &cfg, true);
        let sc_clean = run_sc_reram(app, &cfg, 64, false);
        let sc_faulty = run_sc_reram(app, &cfg, 64, true);
        let bin_drop = bin_clean.ssim_pct - bin_faulty.ssim_pct;
        let sc_drop = sc_clean.ssim_pct - sc_faulty.ssim_pct;
        assert!(
            bin_drop > sc_drop,
            "bin drop {bin_drop:.2} vs sc drop {sc_drop:.2}"
        );
    }

    #[test]
    fn sc_quality_improves_with_stream_length() {
        let cfg = tiny();
        let q32 = run_sc_reram(App::Compositing, &cfg, 32, false);
        let q256 = run_sc_reram(App::Compositing, &cfg, 256, false);
        assert!(
            q256.psnr_db > q32.psnr_db,
            "psnr 32={:.1} 256={:.1}",
            q32.psnr_db,
            q256.psnr_db
        );
    }

    #[test]
    fn derived_config_is_sane() {
        let cfg = Config::derive(16, 1, 3);
        assert!(cfg.bincim_fault_prob >= 0.01);
        assert!(cfg.sc_faults.xor < 0.2);
    }
}
