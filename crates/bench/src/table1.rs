//! Table I — MSE(%) of SBS generation across RNG sources.
//!
//! Protocol (paper §III-A): draw uniform targets, quantize to the 8-bit
//! operand format, generate an `N`-bit stream with each source, and
//! report `100·mean((popcount/N − x)²)` against the *continuous* target.
//! The paper uses 1,000,000 samples; the default here is smaller for
//! turnaround and is CLI-configurable (`--samples`).

use crate::sources::{table1_sources, RngKind};
use sc_core::prelude::*;
use sc_core::rng::Xoshiro256;

/// The stream lengths of Table I.
pub const LENGTHS: [usize; 5] = [32, 64, 128, 256, 512];

/// One row of the table: a source and its MSE per stream length.
#[derive(Debug, Clone)]
pub struct Row {
    /// Source label.
    pub label: String,
    /// MSE(%) per entry of [`LENGTHS`].
    pub mse: Vec<f64>,
}

/// Computes the full table.
#[must_use]
pub fn compute(samples: usize, seed: u64) -> Vec<Row> {
    table1_sources()
        .into_iter()
        .map(|kind| compute_row(kind, samples, seed))
        .collect()
}

/// Computes one source's row.
#[must_use]
pub fn compute_row(kind: RngKind, samples: usize, seed: u64) -> Row {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut sums = [0.0f64; LENGTHS.len()];
    for trial in 0..samples {
        let x = rng.next_f64();
        let x8 = Prob::saturating(x).to_fixed(8).expect("valid width");
        for (i, &n) in LENGTHS.iter().enumerate() {
            let s = kind.stream(x8, n, trial as u64, i as u64);
            let err = s.value() - x;
            sums[i] += err * err;
        }
    }
    Row {
        label: kind.label(),
        mse: sums.iter().map(|s| 100.0 * s / samples as f64).collect(),
    }
}

/// Renders the table to a string.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut out =
        String::from("Table I: MSE(%) of SBS generation (uniform targets, 8-bit operands)\n");
    out.push_str(&crate::format_row(
        "RNG Source \\ N",
        &LENGTHS.map(|n| n as f64),
        0,
    ));
    out.push('\n');
    for row in rows {
        out.push_str(&crate::format_row(&row.label, &row.mse, 3));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_matches_binomial_theory() {
        let row = compute_row(RngKind::Software, 4000, 1);
        for (i, &n) in LENGTHS.iter().enumerate() {
            let theory = 100.0 / (6.0 * n as f64);
            assert!(
                (row.mse[i] - theory).abs() < theory * 0.25,
                "n={n}: {} vs {theory}",
                row.mse[i]
            );
        }
    }

    #[test]
    fn qrng_beats_everything_and_prng_is_worst_at_short_n() {
        let rows = compute(2000, 2);
        let find = |label: &str| {
            rows.iter()
                .find(|r| r.label.contains(label))
                .expect("row exists")
        };
        let sobol = find("Sobol");
        let lfsr = find("LFSR");
        let sw = find("Software");
        let imsng8 = find("M=8");
        // Orderings of the paper's Table I at N = 32.
        assert!(sobol.mse[0] < 0.1 * sw.mse[0], "sobol {}", sobol.mse[0]);
        assert!(lfsr.mse[0] > 1.3 * sw.mse[0], "lfsr {}", lfsr.mse[0]);
        // IMSNG is comparable to software (within ~35%).
        assert!(
            imsng8.mse[0] < 1.35 * sw.mse[0],
            "imsng {} vs sw {}",
            imsng8.mse[0],
            sw.mse[0]
        );
    }

    #[test]
    fn mse_decreases_with_stream_length() {
        let row = compute_row(RngKind::Imsng { m: 8 }, 1500, 3);
        for w in row.mse.windows(2) {
            assert!(w[1] < w[0], "{:?}", row.mse);
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = compute(50, 4);
        let text = render(&rows);
        assert!(text.contains("IMSNG (M=5)"));
        assert!(text.contains("QRNG (8-bit Sobol)"));
        assert_eq!(text.lines().count(), 2 + rows.len());
    }
}
