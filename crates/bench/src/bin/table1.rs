//! Regenerates Table I. Usage: `table1 [--samples 20000] [--seed 1]`.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let samples = bench::arg_or(&args, "--samples", 20_000usize);
    let seed = bench::arg_or(&args, "--seed", 1u64);
    eprintln!("computing Table I with {samples} samples (paper: 1,000,000)…");
    let rows = bench::table1::compute(samples, seed);
    println!("{}", bench::table1::render(&rows));
}
