//! Closed-loop load generator for a serve instance.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--requests 64] [--concurrency 2]
//!         [--size 32] [--deadline-ms 0] [--n 256] [--arrays 4]
//!         [--expect-all-ok] [--shutdown-after]
//! ```
//!
//! Without `--addr` an in-process server is started on a loopback port
//! (engine: `--n`, `--arrays`, shared plan cache) and shut down cleanly
//! after the run — the self-contained smoke mode CI uses. With
//! `--addr` an external server is driven; `--shutdown-after`
//! additionally sends the in-band shutdown frame when done, and
//! `--expect-all-ok` exits nonzero unless every request was served.

use bench::load::{run_against, run_in_process, LoadConfig};
use imgproc::{ScReramConfig, Schedule};
use imsc::PlanCache;
use serve::{Client, ServiceConfig, Status};
use std::net::ToSocketAddrs;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr: String = bench::arg_or(&args, "--addr", String::new());
    let deadline_ms: u64 = bench::arg_or(&args, "--deadline-ms", 0);
    let cfg = LoadConfig {
        requests: bench::arg_or(&args, "--requests", 64),
        concurrency: bench::arg_or(&args, "--concurrency", 2),
        size: bench::arg_or(&args, "--size", 32),
        deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
    };
    let expect_all_ok = args.iter().any(|a| a == "--expect-all-ok");
    let shutdown_after = args.iter().any(|a| a == "--shutdown-after");

    let report = if addr.is_empty() {
        let n: usize = bench::arg_or(&args, "--n", 256);
        let arrays: usize = bench::arg_or(&args, "--arrays", 4);
        let mut engine = ScReramConfig::new(n, 42).with_plan_cache(Arc::new(PlanCache::new()));
        if arrays > 0 {
            engine = engine.with_schedule(Schedule::Pipelined { arrays });
        }
        run_in_process(
            ServiceConfig {
                engine,
                ..ServiceConfig::default()
            },
            &cfg,
        )
    } else {
        let sock = addr
            .to_socket_addrs()
            .ok()
            .and_then(|mut a| a.next())
            .unwrap_or_else(|| {
                eprintln!("loadgen: cannot resolve {addr}");
                std::process::exit(2);
            });
        let report = run_against(sock, &cfg);
        if shutdown_after {
            let mut c = Client::connect(sock).expect("shutdown connection");
            let bye = c.shutdown().expect("shutdown frame");
            assert_eq!(bye.status, Status::Ok, "shutdown must acknowledge");
        }
        report
    };

    println!(
        "loadgen: {} requests, {} clients, {}x{} edge inputs",
        cfg.requests, cfg.concurrency, cfg.size, cfg.size
    );
    println!(
        "  served {} (downgraded {}), shed {}, errors {}",
        report.served, report.downgraded, report.shed, report.errors
    );
    println!(
        "  sustained {:.1} req/s | latency p50 {:.3} ms, p99 {:.3} ms, mean {:.3} ms",
        report.req_per_s(),
        report.percentile_ns(50.0) as f64 / 1e6,
        report.percentile_ns(99.0) as f64 / 1e6,
        report.mean_ns() / 1e6
    );
    if report.errors > 0 {
        eprintln!("loadgen: FAIL — {} error responses", report.errors);
        std::process::exit(1);
    }
    if expect_all_ok && report.served != cfg.requests {
        eprintln!(
            "loadgen: FAIL — expected all {} requests served, got {} (shed {})",
            cfg.requests, report.served, report.shed
        );
        std::process::exit(1);
    }
}
