//! Regenerates Fig. 5 (normalized throughput improvement).

fn main() {
    let rows = bench::figures::fig5();
    println!(
        "{}",
        bench::figures::render("Fig. 5: normalized throughput improvement", &rows)
    );
}
