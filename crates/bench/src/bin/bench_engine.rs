//! Engine fast-path benchmark: times the crossbar/scouting substrate,
//! the end-to-end bilinear upscale through the unified
//! `imgproc::request::run` API, and the serve frontend's steady-state
//! latency, writing a machine-readable summary to `BENCH_engine.json`.
//!
//! Usage:
//! `cargo run --release -p bench --bin bench_engine [-- --out PATH]
//!  [--check BASELINE] [--check-threshold PCT]`
//!
//! With `--check`, the freshly measured anchors are compared against the
//! committed baseline file and the process exits nonzero when any anchor
//! regresses — the bench-regression gate `scripts/bench_check.sh` wires
//! into CI. Three gate families run:
//!
//! * wall-clock `"ns"` anchors, failed beyond the threshold (default
//!   25%) — except the pipelined anchor, whose absolute time flapped
//!   with runner load and is gated by ratio instead;
//! * the `"vs_per_tile"` same-run A/B ratio (pipelined vs per-tile
//!   wall-clock, measured in one process so load cancels), failed
//!   beyond the same threshold;
//! * `"ops"` anchors (`scout_ops_per_pixel` of the program optimizer at
//!   Off/Full), deterministic counts failed on any real increase;
//! * `"energy_nj"` / `"busy_ns"` replay anchors (nvsim replay of each
//!   kernel's real pipelined schedule), deterministic simulated values
//!   failed on any real increase;
//! * the `"compile_cache"` counters (`miss_rate`, `lookups`, `misses`
//!   of the multi-frame cached run), deterministic and exact-gated like
//!   the ops anchors — the hit rate is gated through its complement
//!   because the gate direction is increase-is-bad, and `hit_rate ≥ 0.9`
//!   is additionally hard-asserted in the harness itself;
//! * the `"vs_uncached"` same-run A/B ratio of the cached anchor
//!   (cached vs uncached multi-frame wall-clock, load-invariant), failed
//!   beyond the wall-clock threshold;
//! * the serve anchors (`serve_edge32_p50`/`p99`/`mean` latencies of an
//!   in-process serving run), gated as ordinary wall-clock `"ns"`
//!   anchors — the overload run's shed/downgrade counts are reported
//!   ungated context, but its errors-free shedding contract is
//!   hard-asserted by the harness.

use bench::load::{run_in_process, LoadConfig};
use imgproc::request::{self, KernelRequest};
use imgproc::{bilinear, synth, ScReramConfig, Schedule};
use imsc::{CompileStats, Optimize, PlanCache};
use reram::array::CrossbarArray;
use reram::scouting::{ScoutingLogic, SlOp};
use reram::trng::TrngEngine;
use sc_core::rng::{BitSource, Xoshiro256};
use sc_core::BitStream;
use serve::ServiceConfig;
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pre-PR reference timings (nanoseconds) of the identical workloads,
/// measured on the per-cell seed implementation (one `ReramCell` struct
/// per bit, per-pixel unbatched image kernels, single-threaded) on the
/// benchmark container, immediately before the packed-word fast path
/// landed. Committed so every future run of this harness reports the
/// trajectory against the same anchor.
const PRE_PR_BASELINE_NS: [(&str, f64); 6] = [
    ("write_row_4096", 117_612.3),
    ("read_row_4096", 5_999.8),
    ("scout_and2_4096", 69_068.3),
    ("scout_xor2_4096", 75_438.8),
    ("scout_maj3_4096", 101_473.1),
    ("bilinear_sc_reram_64_to_128_n256", 10_641_851_936.0),
];

/// The end-to-end anchor committed by the packed-word PR (`1.19 s`):
/// the word-level TRNG + RN-refresh-policy work is measured against it.
const PACKED_PR_BILINEAR_NS: f64 = 1_186_652_682.0;

/// The end-to-end anchor committed by the TRNG/refresh-policy PR
/// (`0.21 s`), measured on the *eager* per-pixel kernel immediately
/// before the program-IR refactor. Today's bilinear path emits a
/// `Program` per tile and runs it through the planner, so the ratio
/// against this anchor is the program-vs-eager overhead (IR emission,
/// last-use analysis, handle indirection) — it should stay within a few
/// percent of 1.0.
const EAGER_PR_BILINEAR_NS: f64 = 211_299_800.0;

fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // One warm-up call, then the mean of `reps` timed calls.
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_nanos() as f64 / reps as f64
}

/// The deterministic `compile_cache` counters, qualified per field so
/// each gets its own exact gate (`compile_cache.miss_rate`, …) — the
/// same 0.01% convention as the ops anchors. `hit_rate` is deliberately
/// absent: the gate direction is increase-is-bad, so the hit rate is
/// gated through its complement (`miss_rate`) and hard-asserted ≥ 0.9
/// by the harness.
fn parse_cache_counters(json: &str) -> Vec<(String, f64)> {
    let mut counters = Vec::new();
    for field in ["miss_rate", "lookups", "misses"] {
        for (name, value) in bench::regress::parse_anchor_field(json, field) {
            counters.push((format!("{name}.{field}"), value));
        }
    }
    counters
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let explicit_out = args.iter().any(|a| a == "--out");
    let mut out = bench::arg_or(&args, "--out", "BENCH_engine.json".to_string());
    // Parse (and hard-fail) the regression-gate flags up front, before
    // minutes of measurement: a bare `--check`, a flag-shaped operand,
    // an unreadable/empty baseline, or a malformed threshold is an
    // error — a gating tool must never silently skip or reinterpret its
    // comparison. The baseline is read *now*, before `--out` can
    // overwrite the very file it points at (the default out path and
    // the committed baseline are the same file, and a self-comparison
    // would always pass). The gate itself runs after the measurements.
    let baseline = args.iter().position(|a| a == "--check").map(|i| {
        let path = match args.get(i + 1) {
            Some(path) if !path.starts_with("--") => path.clone(),
            _ => {
                eprintln!("bench-check: --check requires a baseline path");
                std::process::exit(2);
            }
        };
        let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("bench-check: cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let anchors = bench::regress::parse_anchor_ns(&json);
        if anchors.is_empty() {
            eprintln!("bench-check: baseline {path} contains no anchors — wrong file?");
            std::process::exit(2);
        }
        let ops = bench::regress::parse_anchor_field(&json, "ops");
        let ratios = bench::regress::parse_anchor_field(&json, "vs_per_tile");
        let energy = bench::regress::parse_anchor_field(&json, "energy_nj");
        let busy = bench::regress::parse_anchor_field(&json, "busy_ns");
        let cache_exact = parse_cache_counters(&json);
        let cache_ratio = bench::regress::parse_anchor_field(&json, "vs_uncached");
        // Never clobber the baseline being checked against: an explicit
        // matching --out is an error; the default out path is redirected
        // to a sibling .check.json (the same convention bench_check.sh
        // uses), so a failing gate leaves the committed baseline intact.
        if out == path {
            if explicit_out {
                eprintln!("bench-check: --out must not overwrite the --check baseline {path}");
                std::process::exit(2);
            }
            out = format!("{}.check.json", path.trim_end_matches(".json"));
            println!("bench-check: writing measurements to {out} (baseline preserved)");
        }
        (
            path,
            anchors,
            ops,
            ratios,
            energy,
            busy,
            cache_exact,
            cache_ratio,
        )
    });
    let threshold: f64 = match args.iter().position(|a| a == "--check-threshold") {
        None => 25.0,
        Some(_) if baseline.is_none() => {
            eprintln!("bench-check: --check-threshold is meaningless without --check");
            std::process::exit(2);
        }
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(pct) => pct,
            None => {
                eprintln!("bench-check: --check-threshold requires a numeric percentage");
                std::process::exit(2);
            }
        },
    };
    let mut results: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, ns: f64| {
        println!("{name:<44} {:>14.1} ns", ns);
        results.push((name.to_string(), ns));
    };

    // --- Substrate: row write/read and scouting ops, 4096-bit rows -----
    let cols = 4096;
    let mut rng = Xoshiro256::seed_from_u64(1);
    let data_a = BitStream::from_fn(cols, |_| rng.next_f64() < 0.5);
    let data_b = BitStream::from_fn(cols, |_| rng.next_f64() < 0.5);
    let mut array = CrossbarArray::pristine(8, cols, 7);
    array.write_row(0, &data_a).expect("row in range");
    array.write_row(1, &data_b).expect("row in range");

    let mut toggle = false;
    record(
        "write_row_4096",
        time_ns(2000, || {
            toggle = !toggle;
            let d = if toggle { &data_a } else { &data_b };
            black_box(array.write_row(2, d).expect("row in range"));
        }),
    );
    record(
        "read_row_4096",
        time_ns(2000, || {
            black_box(array.read_row(0).expect("row in range"));
        }),
    );
    let mut sl = ScoutingLogic::ideal();
    for (name, op, rows) in [
        ("scout_and2_4096", SlOp::And, &[0usize, 1][..]),
        ("scout_xor2_4096", SlOp::Xor, &[0, 1][..]),
        ("scout_maj3_4096", SlOp::Maj, &[0, 1, 2][..]),
    ] {
        record(
            name,
            time_ns(2000, || {
                black_box(sl.execute_mut(&mut array, op, rows).expect("valid rows"));
            }),
        );
    }

    // --- TRNG row fill: word-parallel vs per-bit reference -------------
    // Same engine model (4096 cells, device-bias sigma 0.04); the word
    // path bit-slices 64 Bernoulli draws per comparison, the per-bit path
    // is the reference semantics it is differential-tested against.
    let mut trng_word = TrngEngine::new(cols, 0.04, 21);
    let word_ns = time_ns(2000, || {
        black_box(trng_word.generate_row(cols));
    });
    let mut trng_bit = TrngEngine::new(cols, 0.04, 21);
    let bit_ns = time_ns(200, || {
        black_box(BitStream::from_fn(cols, |_| trng_bit.next_bit()));
    });
    println!(
        "trng_fill_word_4096                          {:>10.1}x vs per-bit path",
        bit_ns / word_ns
    );
    record("trng_fill_per_bit_4096", bit_ns);
    record("trng_fill_word_4096", word_ns);

    // --- Program IR: emission + planning overhead, one 8-row tile ------
    // The planner's own cost (op emission, last-use analysis, release
    // scheduling) for one 128-wide bilinear tile — the pure-software
    // overhead the program path adds per tile before any simulated
    // hardware work happens.
    let src = synth::value_noise(64, 64, 4, 9);
    // All end-to-end kernel runs below go through the unified request
    // API — the same dispatch surface the serve frontend uses — built
    // once here so the timed closures measure execution, not request
    // construction.
    let up_req = KernelRequest::Bilinear {
        src: src.clone(),
        factor: 2,
    };
    let run_stats = |req: &KernelRequest, c: &ScReramConfig| {
        let r = request::run(req, c).expect("valid input");
        (r.pixels, r.stats.expect("sc backend reports stats"))
    };
    record(
        "bilinear_program_emit_plan_tile128x8",
        time_ns(200, || {
            let program = bilinear::emit_program(&src, 2, 0..8);
            black_box(program.plan().expect("well-formed program"));
        }),
    );

    // --- End to end: bilinear upscale 64x64 -> 128x128, N = 256 --------
    // Since the program-IR refactor this runs emit → plan → execute per
    // tile; the eager-PR anchor below pins the program-vs-eager ratio.
    // The optimizer is pinned Off here so the anchor means the same
    // thing regardless of the caller's IMSC_OPTIMIZE environment; the
    // optimized run is its own anchor below.
    let cfg = ScReramConfig::new(256, 42).with_optimize(Optimize::Off);
    record(
        "bilinear_sc_reram_64_to_128_n256",
        time_ns(1, || {
            black_box(request::run(&up_req, &cfg).expect("valid input"));
        }),
    );

    // --- Same workload through the cross-array pipeline scheduler ------
    // Bit-identical pixels/ledgers to the per-tile run; this anchor
    // guards the pipelined path's host-side overhead (one logical
    // program, output-aligned slicing, stage workers + bounded queues)
    // from day one.
    let cfg_pipelined = cfg.with_schedule(Schedule::Pipelined { arrays: 3 });
    record(
        "bilinear_sc_reram_pipelined_64_to_128_n256",
        time_ns(1, || {
            black_box(request::run(&up_req, &cfg_pipelined).expect("valid input"));
        }),
    );

    // --- Program optimizer: optimized e2e run + ops/pixel anchors ------
    // Same workload at `Optimize::Full`: bit-identical pixels, fewer
    // scouting ops, and the wall-clock win the tentpole targets. The
    // unoptimized reference is re-measured here, interleaved best-of-2,
    // so the `vs_unoptimized` ratio compares *adjacent* runs — this
    // container drifts far more over a whole bench run than the
    // optimizer saves, which is the same flap the pipelined anchor's
    // same-run ratio fixes.
    let cfg_opt = cfg.with_optimize(Optimize::Full);
    let mut plain_adjacent_ns = f64::MAX;
    let mut opt_ns = f64::MAX;
    for _ in 0..2 {
        plain_adjacent_ns = plain_adjacent_ns.min(time_ns(1, || {
            black_box(request::run(&up_req, &cfg).expect("valid input"));
        }));
        opt_ns = opt_ns.min(time_ns(1, || {
            black_box(request::run(&up_req, &cfg_opt).expect("valid input"));
        }));
    }
    record("bilinear_sc_reram_opt_64_to_128_n256", opt_ns);

    // --- Template cache: multi-frame amortization ----------------------
    // The same Full-optimized upscale over a 32-frame "video": geometry
    // and pixel values repeat exactly frame to frame, so every tile's
    // template key recurs — frame 1 compiles the 16 tile templates,
    // frames 2..32 take the fully-bound digest fast path. 512 lookups,
    // 16 misses, hit rate 0.96875, all deterministic and exact-gated. The wall-clock anchor and the
    // same-run cached/uncached ratio guard the amortization win itself.
    const CACHED_ANCHOR: &str = "bilinear_sc_reram_cached_32f_64_to_128_n256";
    const FRAMES: usize = 32;
    let mut uncached_compile = CompileStats::default();
    let t0 = Instant::now();
    for _ in 0..FRAMES {
        let (img, s) = run_stats(&up_req, &cfg_opt);
        black_box(img);
        uncached_compile.merge(&s.compile);
    }
    let uncached_mf_ns = t0.elapsed().as_nanos() as f64;
    let cfg_cached = cfg_opt.with_plan_cache(Arc::new(PlanCache::new()));
    let mut cached_compile = CompileStats::default();
    let (mut hits, mut misses, mut fallbacks) = (0u64, 0u64, 0u64);
    let t0 = Instant::now();
    for _ in 0..FRAMES {
        let (img, s) = run_stats(&up_req, &cfg_cached);
        black_box(img);
        cached_compile.merge(&s.compile);
        let run = s.plan_cache.expect("plan cache configured");
        hits += run.hits;
        misses += run.misses;
        fallbacks += run.fallbacks;
    }
    let cached_mf_ns = t0.elapsed().as_nanos() as f64;
    let lookups = hits + misses + fallbacks;
    let hit_rate = hits as f64 / lookups as f64;
    let miss_rate = 1.0 - hit_rate;
    let vs_uncached = cached_mf_ns / uncached_mf_ns;
    let compile_vs_uncached = cached_compile.total_ns() as f64 / uncached_compile.total_ns() as f64;
    for (tag, c) in [("uncached", &uncached_compile), ("cached", &cached_compile)] {
        println!(
            "compile_breakdown_{tag:<26} emit {:>11} + optimize {:>11} + plan {:>11} + bind {:>11} = {:>12} ns",
            c.emit_ns, c.optimize_ns, c.plan_ns, c.bind_ns, c.total_ns()
        );
    }
    assert_eq!(
        fallbacks, 0,
        "identical frames must never take the collision-fallback path"
    );
    assert!(
        hit_rate >= 0.9,
        "multi-frame hit rate {hit_rate:.4} below the 0.9 contract ({hits}/{lookups})"
    );
    assert!(
        compile_vs_uncached < 0.1,
        "cached compile cost must amortize below 10% of uncached: {:.1}% \
         (cached {} ns vs uncached {} ns over {FRAMES} frames)",
        compile_vs_uncached * 100.0,
        cached_compile.total_ns(),
        uncached_compile.total_ns()
    );
    record(CACHED_ANCHOR, cached_mf_ns / FRAMES as f64);
    println!(
        "{CACHED_ANCHOR:<44} {:>10.3}x cached vs uncached 32-frame run (hit rate {hit_rate:.4})",
        vs_uncached
    );

    // --- Opportunistic multicore wall-clock (informational) ------------
    // Only on runners with ≥ 4 cores: pin 4 tile workers and record
    // pipelined-vs-per-tile and cached-vs-uncached wall-clock. The
    // fields are informational, never gated — multicore timing depends
    // on runner load, and single-core CI never emits them at all — so
    // none of the field names collide with a gated key.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut multicore: Option<String> = None;
    if cores >= 4 {
        std::env::set_var("IMGPROC_TILE_THREADS", "4");
        let mc_per_tile = time_ns(1, || {
            black_box(request::run(&up_req, &cfg).expect("valid input"));
        });
        let mc_pipelined = time_ns(1, || {
            black_box(request::run(&up_req, &cfg_pipelined).expect("valid input"));
        });
        let mc_uncached = time_ns(1, || {
            for _ in 0..4 {
                black_box(request::run(&up_req, &cfg_opt).expect("valid input"));
            }
        });
        let mc_cached = time_ns(1, || {
            let cfg_mc = cfg_opt.with_plan_cache(Arc::new(PlanCache::new()));
            for _ in 0..4 {
                black_box(request::run(&up_req, &cfg_mc).expect("valid input"));
            }
        });
        std::env::remove_var("IMGPROC_TILE_THREADS");
        println!(
            "multicore_4_workers                          {:>10.3}x pipelined vs per-tile, {:.3}x cached vs uncached",
            mc_pipelined / mc_per_tile,
            mc_cached / mc_uncached
        );
        multicore = Some(format!(
            "\"multicore_informational\": {{\"workers\": 4, \"cores\": {cores}, \
             \"wall_per_tile\": {mc_per_tile:.1}, \"wall_pipelined\": {mc_pipelined:.1}, \
             \"ratio_pipelined\": {:.3}, \"wall_uncached_4f\": {mc_uncached:.1}, \
             \"wall_cached_4f\": {mc_cached:.1}, \"ratio_cached\": {:.3}}}",
            mc_pipelined / mc_per_tile,
            mc_cached / mc_uncached
        ));
    }

    // Deterministic scouting-ops-per-pixel anchors at Off and Full for
    // the two kernels the acceptance criterion names. These are exact
    // counts, not timings — the regression gate fails any increase.
    let mut ops_results: Vec<(String, f64)> = Vec::new();
    let app = synth::app_images(64, 64, 42);
    let comp_req = KernelRequest::Compositing {
        foreground: app.foreground.clone(),
        background: app.background.clone(),
        alpha: app.alpha.clone(),
    };
    for (level, tag) in [(Optimize::Off, "off"), (Optimize::Full, "full")] {
        let c = cfg.with_optimize(level);
        let (_, s) = run_stats(&up_req, &c);
        ops_results.push((
            format!("bilinear_scout_ops_per_pixel_{tag}"),
            s.scout_ops_per_pixel,
        ));
        let (_, s) = run_stats(&comp_req, &c);
        ops_results.push((
            format!("compositing_scout_ops_per_pixel_{tag}"),
            s.scout_ops_per_pixel,
        ));
    }
    // --- Wear leveling: hottest-row write counts on the e2e anchor -----
    // Deterministic counts (the substrate is seeded and faults are off),
    // gated like the ops anchors: any increase fails. The ≥2× drop and
    // the bit-identical-pixels guarantee are hard-asserted here so the
    // bench harness itself enforces the wear-leveling contract on the
    // real workload, not just on unit-test loops.
    let (img_lifo, s_lifo) = run_stats(&up_req, &cfg);
    let (img_wl, s_wl) = run_stats(&up_req, &cfg.with_wear_leveling(true));
    assert_eq!(
        img_lifo, img_wl,
        "wear-leveling must not change fault-free pixels"
    );
    assert!(
        s_lifo.stream_wear.max >= 2 * s_wl.stream_wear.max,
        "wear-leveling must at least halve the hottest row: lifo max {} vs leveled max {}",
        s_lifo.stream_wear.max,
        s_wl.stream_wear.max
    );
    println!(
        "bilinear_row_wear                            {:>10.2}x hottest-row reduction (max/mean {:.2} -> {:.2})",
        s_lifo.stream_wear.max as f64 / s_wl.stream_wear.max as f64,
        s_lifo.stream_wear.max_mean_ratio(),
        s_wl.stream_wear.max_mean_ratio()
    );
    ops_results.push((
        "bilinear_row_wear_max_unleveled".to_string(),
        s_lifo.stream_wear.max as f64,
    ));
    ops_results.push((
        "bilinear_row_wear_max_leveled".to_string(),
        s_wl.stream_wear.max as f64,
    ));

    // --- Fault-domain retirement: deterministic overhead anchors -------
    // Three arrays, one pathological (heavy uniform fault rates on array
    // 1): the scheduler must retire it and reschedule its slices onto
    // the survivors. Retired-array and rescheduled-slice counts are
    // deterministic for the fixed seed, so the regression gate fails any
    // increase in retirement overhead.
    let cfg_retire = cfg
        .with_schedule(Schedule::Pipelined { arrays: 3 })
        .with_array_faults(1, reram::faults::FaultRates::uniform(0.05))
        .with_retirement(imsc::RetirementPolicy {
            max_faults_per_op: 0.01,
            min_ops: 1_000,
        });
    let (_, s_retire) = run_stats(&up_req, &cfg_retire);
    let report = s_retire.pipeline.expect("pipelined run reports");
    assert!(
        report.retired_arrays >= 1,
        "the pathological array must be retired"
    );
    println!(
        "bilinear_retirement                          {:>10} retired, {} slices rescheduled",
        report.retired_arrays, report.rescheduled_slices
    );
    ops_results.push((
        "bilinear_retired_arrays".to_string(),
        report.retired_arrays as f64,
    ));
    ops_results.push((
        "bilinear_rescheduled_slices".to_string(),
        report.rescheduled_slices as f64,
    ));

    for (name, ops) in &ops_results {
        println!("{name:<44} {ops:>14.3} ops");
    }

    // --- Energy ground truth: nvsim replay of real schedules -----------
    // Each kernel runs small pipelined workloads with trace replay on:
    // the dispatch-ordered, bank-mapped command stream every slice emits
    // is replayed through `nvsim::Simulator`, and the resulting joules
    // and serial busy nanoseconds are anchored per kernel. The replay is
    // an exact simulation of a deterministic schedule, so the anchors
    // are gated like the ops counters — any real increase in a kernel's
    // replayed energy or latency fails the check.
    let cfg_replay = ScReramConfig::new(64, 9)
        .with_optimize(Optimize::Off)
        .with_trace_replay(true)
        .with_schedule(Schedule::Pipelined { arrays: 3 });
    let mut replay_results: Vec<(String, imsc::instrument::ReplaySummary)> = Vec::new();
    {
        let costs = reram::energy::ReramCosts::calibrated();
        let edge_src = synth::value_noise(16, 32, 3, 11);
        let up_src = synth::gradient(8, 16, true);
        let rapp = synth::app_images(16, 32, 42);
        let composite =
            imgproc::compositing::software(&rapp.foreground, &rapp.background, &rapp.alpha)
                .expect("matched dimensions");
        // One request per kernel, all executed through the same
        // `request::run` dispatch the serve frontend uses.
        let replay_reqs = [
            ("edge", KernelRequest::Edge { image: edge_src }),
            (
                "bilinear",
                KernelRequest::Bilinear {
                    src: up_src,
                    factor: 2,
                },
            ),
            (
                "compositing",
                KernelRequest::Compositing {
                    foreground: rapp.foreground.clone(),
                    background: rapp.background.clone(),
                    alpha: rapp.alpha.clone(),
                },
            ),
            (
                "matting",
                KernelRequest::Matting {
                    image: composite,
                    background: rapp.background.clone(),
                    foreground: rapp.foreground.clone(),
                },
            ),
        ];
        let runs = replay_reqs
            .iter()
            .map(|(kernel, req)| (*kernel, run_stats(req, &cfg_replay).1));
        for (kernel, stats) in runs {
            let replay = stats.replay.expect("trace replay enabled");
            // The replayed stream must account for every recorded op —
            // a mismatch means the instrumentation dropped or invented
            // commands, which no tolerance band should forgive.
            assert_eq!(
                replay.commands,
                stats.ledger.replay_commands(),
                "{kernel}: replayed command count diverged from the ledger"
            );
            let analytic_nj = stats.ledger.energy_nj(&costs, 64);
            println!(
                "{:<44} {:>14.3} nJ replayed ({} cmds, {:.1} busy-ns, analytic/replay {:.3})",
                format!("{kernel}_replay"),
                replay.energy_nj,
                replay.commands,
                replay.busy_ns,
                analytic_nj / replay.energy_nj
            );
            replay_results.push((format!("{kernel}_replay"), replay));
        }
    }

    // --- Serving: steady-state latency + overload shedding contract ----
    // An in-process serve instance (pipelined shards + shared plan
    // cache) driven by the closed-loop loadgen core over real loopback
    // TCP. The steady run must serve every request without a single
    // error; its p50/p99/mean latencies are gated wall-clock anchors and
    // the sustained req/s rides along as ungated context. The overload
    // run then doubles the offered concurrency into a shallow admission
    // queue with a deadline that is provably unmeetable on any host —
    // 1 µs is below the batcher's own coalescing window, let alone a
    // floor-N service-time estimate — so the graceful-degradation
    // contract (shed, never answer Error) is hard-asserted here, on the
    // real service, every bench run, without depending on host speed.
    let serve_steady = run_in_process(
        ServiceConfig {
            engine: ScReramConfig::new(64, 42)
                .with_schedule(Schedule::Pipelined { arrays: 4 })
                .with_plan_cache(Arc::new(PlanCache::new())),
            ..ServiceConfig::default()
        },
        &LoadConfig {
            requests: 32,
            concurrency: 2,
            size: 32,
            deadline: None,
        },
    );
    assert_eq!(
        serve_steady.errors, 0,
        "steady-state serving must not error"
    );
    assert_eq!(
        serve_steady.served, 32,
        "steady-state serving must answer every request Ok"
    );
    let serve_req_per_s = serve_steady.req_per_s();
    record("serve_edge32_p50", serve_steady.percentile_ns(50.0) as f64);
    record("serve_edge32_p99", serve_steady.percentile_ns(99.0) as f64);
    record("serve_edge32_mean", serve_steady.mean_ns());
    println!(
        "serve_steady_32req_2conn                     {serve_req_per_s:>10.1} req/s sustained"
    );

    let serve_overload = run_in_process(
        ServiceConfig {
            engine: ScReramConfig::new(256, 42)
                .with_schedule(Schedule::Pipelined { arrays: 4 })
                .with_plan_cache(Arc::new(PlanCache::new())),
            queue_depth: 4,
            ..ServiceConfig::default()
        },
        &LoadConfig {
            requests: 24,
            concurrency: 4,
            size: 48,
            deadline: Some(Duration::from_micros(1)),
        },
    );
    assert_eq!(
        serve_overload.errors, 0,
        "overload must shed or downgrade, never answer Error"
    );
    assert!(
        serve_overload.shed > 0,
        "an unmeetable deadline under 2x overload must shed"
    );
    println!(
        "serve_overload_24req_4conn                   {:>10} served ({} downgraded), {} shed, 0 errors",
        serve_overload.served, serve_overload.downgraded, serve_overload.shed
    );

    let mut json = String::from("{\n");
    for (name, ns) in &results {
        let baseline = PRE_PR_BASELINE_NS
            .iter()
            .find(|(b, _)| b == name)
            .map(|&(_, ns)| ns);
        let comma = ","; // the ops entries below close the object
                         // Extra per-entry anchors beyond the seed baseline.
        let mut extra = String::new();
        if name == "bilinear_sc_reram_64_to_128_n256" {
            let _ = write!(
                extra,
                ", \"packed_pr_anchor_ns\": {PACKED_PR_BILINEAR_NS:.1}, \"speedup_vs_packed_pr\": {:.2}",
                PACKED_PR_BILINEAR_NS / ns
            );
            println!(
                "{name:<44} {:>10.1}x vs packed-word PR anchor",
                PACKED_PR_BILINEAR_NS / ns
            );
            let _ = write!(
                extra,
                ", \"eager_pr_anchor_ns\": {EAGER_PR_BILINEAR_NS:.1}, \"program_vs_eager\": {:.3}",
                ns / EAGER_PR_BILINEAR_NS
            );
            println!(
                "{name:<44} {:>10.3}x program path vs eager PR anchor",
                ns / EAGER_PR_BILINEAR_NS
            );
        }
        if name == "bilinear_sc_reram_pipelined_64_to_128_n256" {
            if let Some(per_tile) = results
                .iter()
                .find(|(n, _)| n.as_str() == "bilinear_sc_reram_64_to_128_n256")
                .map(|(_, reference)| *reference)
            {
                let _ = write!(
                    extra,
                    ", \"per_tile_ns\": {per_tile:.1}, \"vs_per_tile\": {:.3}",
                    ns / per_tile
                );
                println!(
                    "{name:<44} {:>10.3}x pipelined vs per-tile schedule",
                    ns / per_tile
                );
            }
        }
        if name == "bilinear_sc_reram_opt_64_to_128_n256" {
            let _ = write!(
                extra,
                ", \"unoptimized_adjacent_ns\": {plain_adjacent_ns:.1}, \"vs_unoptimized\": {:.3}",
                ns / plain_adjacent_ns
            );
            println!(
                "{name:<44} {:>10.3}x optimized vs adjacent unoptimized run",
                ns / plain_adjacent_ns
            );
        }
        if name == CACHED_ANCHOR {
            // Per-frame wall plus the same-run 32-frame A/B ratio; the
            // ratio is load-invariant and gated, the raw walls are
            // context. (`_wall` naming keeps the uncached total out of
            // the `"ns"` wall-clock gate family.)
            let _ = write!(
                extra,
                ", \"uncached_32f_wall\": {uncached_mf_ns:.1}, \"cached_32f_wall\": {cached_mf_ns:.1}, \"vs_uncached\": {vs_uncached:.3}"
            );
        }
        if name == "serve_edge32_p50" {
            // Throughput is context, not a gate: req/s on this 1-core
            // container tracks runner load far more than code changes.
            let _ = write!(extra, ", \"req_per_s\": {serve_req_per_s:.1}");
        }
        if name == "trng_fill_word_4096" {
            if let Some(per_bit) = results
                .iter()
                .find(|(n, _)| n.as_str() == "trng_fill_per_bit_4096")
                .map(|(_, reference)| *reference)
            {
                let _ = write!(extra, ", \"speedup_vs_per_bit\": {:.2}", per_bit / ns);
            }
        }
        match baseline {
            Some(base) => {
                let speedup = base / ns;
                println!("{name:<44} {speedup:>10.1}x vs pre-PR baseline");
                let _ = writeln!(
                    json,
                    "  \"{name}\": {{\"ns\": {ns:.1}, \"pre_pr_baseline_ns\": {base:.1}, \"speedup\": {speedup:.2}{extra}}}{comma}"
                );
            }
            None => {
                let _ = writeln!(json, "  \"{name}\": {{\"ns\": {ns:.1}{extra}}}{comma}");
            }
        }
    }
    for (name, ops) in ops_results.iter() {
        let _ = writeln!(json, "  \"{name}\": {{\"ops\": {ops:.3}}},");
    }
    let _ = writeln!(
        json,
        // Six decimals so the deterministic rates round-trip exactly
        // through the 0.01% gate (1/512-grain values need > 4 digits).
        "  \"compile_cache\": {{\"hit_rate\": {hit_rate:.6}, \"miss_rate\": {miss_rate:.6}, \
         \"lookups\": {lookups}, \"misses\": {misses}, \"fallbacks\": {fallbacks}, \
         \"compile_cost_vs_uncached\": {compile_vs_uncached:.4}}},"
    );
    if let Some(mc) = &multicore {
        let _ = writeln!(json, "  {mc},");
    }
    // Ungated serving context: how the overload run degraded. The
    // errors-free contract is asserted above; the split between shed
    // and downgraded depends on runner speed, so no gate reads it.
    let _ = writeln!(
        json,
        "  \"serve_overload\": {{\"requests\": 24, \"served\": {}, \"downgraded\": {}, \
         \"shed\": {}, \"errors\": {}}},",
        serve_overload.served,
        serve_overload.downgraded,
        serve_overload.shed,
        serve_overload.errors
    );
    for (i, (name, replay)) in replay_results.iter().enumerate() {
        let comma = if i + 1 == replay_results.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "  \"{name}\": {{\"energy_nj\": {:.3}, \"busy_ns\": {:.3}, \"commands\": {}}}{comma}",
            replay.energy_nj, replay.busy_ns, replay.commands
        );
    }
    json.push_str("}\n");
    std::fs::write(&out, json).expect("writable output path");
    println!("wrote {out}");

    if let Some((
        path,
        anchors,
        base_ops,
        base_ratios,
        base_energy,
        base_busy,
        base_cache,
        base_cache_ratio,
    )) = baseline
    {
        // The pipelined anchor's absolute time is gated through the
        // same-run ratio below, not through wall-clock: its ns flapped
        // with runner load while the A/B ratio is load-invariant.
        const PIPELINED_ANCHOR: &str = "bilinear_sc_reram_pipelined_64_to_128_n256";
        let ns_anchors: Vec<(String, f64)> = anchors
            .iter()
            .filter(|(n, _)| n != PIPELINED_ANCHOR)
            .cloned()
            .collect();
        let mut failed = false;
        let found = bench::regress::regressions(&ns_anchors, &results, threshold);
        for r in &found {
            eprintln!("  wall-clock: {r}");
        }
        failed |= !found.is_empty();

        let lookup = |set: &[(String, f64)], name: &str| {
            set.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
        };
        let measured_ratio = match (
            lookup(&results, PIPELINED_ANCHOR),
            lookup(&results, "bilinear_sc_reram_64_to_128_n256"),
        ) {
            (Some(pipelined), Some(per_tile)) => {
                vec![(PIPELINED_ANCHOR.to_string(), pipelined / per_tile)]
            }
            _ => Vec::new(),
        };
        let found = bench::regress::regressions(&base_ratios, &measured_ratio, threshold);
        for r in &found {
            match r.measured_ns {
                Some(ratio) => eprintln!(
                    "  vs_per_tile ratio: {}: {ratio:.3} vs baseline {:.3} (+{:.1}%)",
                    r.name, r.baseline_ns, r.slowdown_pct
                ),
                None => eprintln!("  vs_per_tile ratio: {}: no longer measured", r.name),
            }
        }
        failed |= !found.is_empty();

        // Deterministic counters: only float-formatting slack allowed.
        let found = bench::regress::regressions(&base_ops, &ops_results, 0.01);
        for r in &found {
            match r.measured_ns {
                Some(ops) => eprintln!(
                    "  ops/pixel: {}: {ops:.3} vs baseline {:.3} (+{:.2}%)",
                    r.name, r.baseline_ns, r.slowdown_pct
                ),
                None => eprintln!("  ops/pixel: {}: no longer measured", r.name),
            }
        }
        failed |= !found.is_empty();

        // Template-cache counters: deterministic, exact-gated — a
        // workload or keying change that costs hits shows up as a
        // miss-rate/lookup increase and fails here.
        let measured_cache = vec![
            ("compile_cache.miss_rate".to_string(), miss_rate),
            ("compile_cache.lookups".to_string(), lookups as f64),
            ("compile_cache.misses".to_string(), misses as f64),
        ];
        let found = bench::regress::regressions(&base_cache, &measured_cache, 0.01);
        for r in &found {
            match r.measured_ns {
                Some(v) => eprintln!(
                    "  compile cache: {}: {v:.4} vs baseline {:.4} (+{:.2}%)",
                    r.name, r.baseline_ns, r.slowdown_pct
                ),
                None => eprintln!("  compile cache: {}: no longer measured", r.name),
            }
        }
        failed |= !found.is_empty();

        // The cached/uncached same-run ratio: load-invariant like
        // vs_per_tile, gated at the wall-clock threshold.
        let measured_cache_ratio = vec![(CACHED_ANCHOR.to_string(), vs_uncached)];
        let found =
            bench::regress::regressions(&base_cache_ratio, &measured_cache_ratio, threshold);
        for r in &found {
            match r.measured_ns {
                Some(v) => eprintln!(
                    "  vs_uncached ratio: {}: {v:.3} vs baseline {:.3} (+{:.1}%)",
                    r.name, r.baseline_ns, r.slowdown_pct
                ),
                None => eprintln!("  vs_uncached ratio: {}: no longer measured", r.name),
            }
        }
        failed |= !found.is_empty();

        // Replayed energy/latency: deterministic simulation, same
        // tolerance band as the counters — any real increase fails.
        let measured_energy: Vec<(String, f64)> = replay_results
            .iter()
            .map(|(n, r)| (n.clone(), r.energy_nj))
            .collect();
        let measured_busy: Vec<(String, f64)> = replay_results
            .iter()
            .map(|(n, r)| (n.clone(), r.busy_ns))
            .collect();
        for (family, base, measured) in [
            ("replay energy_nj", &base_energy, &measured_energy),
            ("replay busy_ns", &base_busy, &measured_busy),
        ] {
            let found = bench::regress::regressions(base, measured, 0.01);
            for r in &found {
                match r.measured_ns {
                    Some(v) => eprintln!(
                        "  {family}: {}: {v:.3} vs baseline {:.3} (+{:.2}%)",
                        r.name, r.baseline_ns, r.slowdown_pct
                    ),
                    None => eprintln!("  {family}: {}: no longer measured", r.name),
                }
            }
            failed |= !found.is_empty();
        }

        if failed {
            eprintln!("bench-check: anchors regressed (see above)");
            std::process::exit(1);
        }
        println!(
            "bench-check: OK ({} ns anchors within {threshold}%, {} ratio + {} ops + {} replay + {} cache anchors, vs {path})",
            ns_anchors.len(),
            base_ratios.len() + base_cache_ratio.len(),
            base_ops.len(),
            base_energy.len() + base_busy.len(),
            base_cache.len()
        );
    }
}
