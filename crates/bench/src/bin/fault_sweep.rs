//! Extension experiment: fault-rate sensitivity sweep.
//!
//! The paper evaluates one derived fault rate; this sweep varies the
//! uniform per-op flip probability across decades and reports compositing
//! quality for the SC design (N = 64) and binary CIM, exposing where each
//! collapses. Usage: `fault_sweep [--size 24] [--seed 3]`.

use imgproc::scbackend::ScReramConfig;
use imgproc::{compositing, metrics, synth};
use reram::faults::FaultRates;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let size = bench::arg_or(&args, "--size", 24usize);
    let seed = bench::arg_or(&args, "--seed", 3u64);
    let set = synth::app_images(size, size, seed);
    let reference = compositing::software(&set.foreground, &set.background, &set.alpha)
        .expect("consistent dims");

    println!("Fault-rate sensitivity, compositing, {size}x{size}, SC at N = 64");
    println!(
        "{:<12}{:>16}{:>16}{:>16}{:>16}",
        "fault rate", "SC SSIM (%)", "SC PSNR (dB)", "CIM SSIM (%)", "CIM PSNR (dB)"
    );
    for &p in &[0.0, 1e-4, 1e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1] {
        let sc_cfg = ScReramConfig::new(64, seed).with_faults(FaultRates::uniform(p));
        let sc_img = compositing::sc_reram(&set.foreground, &set.background, &set.alpha, &sc_cfg)
            .expect("substrate ok");
        let cim_img =
            compositing::binary_cim(&set.foreground, &set.background, &set.alpha, p, seed)
                .expect("consistent dims");
        println!(
            "{:<12}{:>16.1}{:>16.1}{:>16.1}{:>16.1}",
            format!("{p:.0e}"),
            metrics::ssim_percent(&reference, &sc_img).expect("matching dims"),
            metrics::psnr(&reference, &sc_img).expect("matching dims"),
            metrics::ssim_percent(&reference, &cim_img).expect("matching dims"),
            metrics::psnr(&reference, &cim_img).expect("matching dims"),
        );
    }
}
