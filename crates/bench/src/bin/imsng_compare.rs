//! IMSNG naive-vs-opt ablation (§IV-B anchors): analytic costs plus a
//! live run of both variants on the accelerator, confirming the write
//! counts the latch optimization eliminates.

use imsc::engine::Accelerator;
use imsc::imsng::ImsngVariant;
use sc_core::Fixed;

fn run_variant(variant: ImsngVariant) -> (u64, u64, f64) {
    let mut acc = Accelerator::builder()
        .stream_len(256)
        .variant(variant)
        .seed(7)
        .build()
        .expect("valid configuration");
    let h = acc.encode(Fixed::from_u8(173)).expect("rows available");
    let v = acc.read_value(h).expect("handle alive");
    let ledger = acc.ledger();
    (ledger.imsng.sense_ops, ledger.imsng.intermediate_writes, v)
}

fn main() {
    let (naive, opt) = bench::table3::imsng_anchors();
    println!("IMSNG variant comparison (M = 8, N = 256, per conversion)");
    println!(
        "{:<14}{:>14}{:>14}{:>16}{:>16}",
        "variant", "latency (ns)", "energy (nJ)", "sense steps", "array writes"
    );
    for (label, cost, variant) in [
        ("naive", naive, ImsngVariant::Naive),
        ("opt", opt, ImsngVariant::Opt),
    ] {
        let (senses, writes, value) = run_variant(variant);
        println!(
            "{label:<14}{:>14.1}{:>14.2}{:>16}{:>16}   (encoded 173/256 -> read {value:.3})",
            cost.latency_ns, cost.energy_nj, senses, writes
        );
    }
    println!("\npaper anchors: naive 395.4 ns / 10.23 nJ, opt 78.2 ns / 3.42 nJ");
    println!(
        "speedup {:.2}x, energy reduction {:.2}x",
        naive.latency_ns / opt.latency_ns,
        naive.energy_nj / opt.energy_nj
    );
}
