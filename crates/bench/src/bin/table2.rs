//! Regenerates Table II. Usage: `table2 [--samples 3000] [--seed 1]`.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let samples = bench::arg_or(&args, "--samples", 3_000usize);
    let seed = bench::arg_or(&args, "--seed", 1u64);
    eprintln!("computing Table II with {samples} samples (paper: 1,000,000)…");
    let rows = bench::table2::compute(samples, seed);
    println!("{}", bench::table2::render(&rows));
}
