//! Monte-Carlo endurance sweep: PSNR vs frames-to-wear-out for the
//! ReRAM SC bilinear kernel across fault rates × RN refresh policies ×
//! wear-leveling, written to `BENCH_endurance.json`.
//!
//! Usage:
//! `cargo run --release -p bench --bin endurance_sweep
//!  [-- --size 32 --trials 3 --seed 42 --out BENCH_endurance.json]`

use bench::endurance;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = endurance::Config {
        size: bench::arg_or(&args, "--size", 32),
        trials: bench::arg_or(&args, "--trials", 3),
        seed: bench::arg_or(&args, "--seed", 42),
        stream_len: bench::arg_or(&args, "--len", 256),
    };
    let out = bench::arg_or(&args, "--out", "BENCH_endurance.json".to_string());
    let points = endurance::sweep(&cfg);
    print!("{}", endurance::render(&cfg, &points));
    std::fs::write(&out, endurance::to_json(&points)).expect("writable output path");
    println!("wrote {out}");
}
