//! Regenerates Table III plus an NVMain cross-check of the ReRAM rows.

fn main() {
    println!("{}", bench::table3::render());
    match bench::table3::nvmain_crosscheck() {
        Ok((analytic, simulated)) => {
            println!(
                "NVMain cross-check (multiply, incl. TRNG refills & result write):\n  \
                 analytic model: {:.1} ns, {:.2} nJ\n  \
                 trace simulation: {:.1} ns, {:.2} nJ",
                analytic.latency_ns, analytic.energy_nj, simulated.latency_ns, simulated.energy_nj
            );
        }
        Err(e) => eprintln!("cross-check failed: {e}"),
    }
}
