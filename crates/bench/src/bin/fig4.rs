//! Regenerates Fig. 4 (normalized energy savings).

fn main() {
    let rows = bench::figures::fig4();
    println!(
        "{}",
        bench::figures::render("Fig. 4: normalized energy savings", &rows)
    );
}
