//! Regenerates Table IV.
//! Usage: `table4 [--size 32] [--trials 5] [--seed 42]`.
//! The paper uses 1000 fault trials; raise `--trials` to match.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let size = bench::arg_or(&args, "--size", 32usize);
    let trials = bench::arg_or(&args, "--trials", 5usize);
    let seed = bench::arg_or(&args, "--seed", 42u64);
    eprintln!("computing Table IV on {size}x{size} images, {trials} fault trials…");
    let cfg = bench::table4::Config::derive(size, trials, seed);
    println!("{}", bench::table4::render(&cfg));
}
