//! The four RNG-source families of Tables I–II, and stream helpers.

use reram::trng::TrngEngine;
use sc_core::prelude::*;

/// An RNG-source family under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RngKind {
    /// In-memory SNG: M-bit segments of a biased true-random bit row.
    Imsng {
        /// Segment size `M`.
        m: u32,
    },
    /// Full-precision software uniform (the MATLAB `rand` stand-in).
    Software,
    /// 8-bit maximal-length LFSR (paper polynomial).
    Lfsr,
    /// Sobol low-discrepancy sequence.
    Sobol,
}

impl RngKind {
    /// Row label matching the paper's tables.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            RngKind::Imsng { m } => format!("IMSNG (M={m})"),
            RngKind::Software => "Software".to_string(),
            RngKind::Lfsr => "PRNG (8-bit LFSR)".to_string(),
            RngKind::Sobol => "QRNG (8-bit Sobol)".to_string(),
        }
    }

    /// Builds a fresh random source for `(trial, domain)`; different
    /// domains are mutually independent (different seeds / Sobol
    /// dimensions), matching how hardware instantiates separate RNGs for
    /// uncorrelated streams.
    ///
    /// # Panics
    ///
    /// Panics only on internal construction errors (table-backed
    /// parameters are always valid).
    #[must_use]
    pub fn source(&self, trial: u64, domain: u64) -> Box<dyn RandomSource> {
        let seed = trial
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(domain.wrapping_mul(0xD1B5_4A32_D192_ED03))
            | 1;
        match self {
            RngKind::Imsng { m } => {
                let trng = TrngEngine::new(64, 0.04, seed);
                Box::new(SegmentedSource::new(trng, *m).expect("m validated"))
            }
            RngKind::Software => Box::new(UniformSource::seed_from_u64(seed)),
            RngKind::Lfsr => Box::new(Lfsr::maximal(8, (seed % 255) + 1).expect("nonzero seed")),
            RngKind::Sobol => {
                let dim = (domain as usize) % Sobol::max_dimensions();
                Box::new(Sobol::new(dim, 16).expect("dimension validated"))
            }
        }
    }

    /// Generates one stream for `x` in the given independence domain.
    #[must_use]
    pub fn stream(&self, x: Fixed, n: usize, trial: u64, domain: u64) -> BitStream {
        let mut sng = Sng::new(self.source(trial, domain));
        sng.generate_fixed(x, n)
    }

    /// Generates maximally correlated streams for several operands by
    /// sharing one random-number sequence.
    #[must_use]
    pub fn streams_correlated(&self, operands: &[Fixed], n: usize, trial: u64) -> Vec<BitStream> {
        let mut source = self.source(trial, 0);
        let m = source.bits();
        let mut streams = vec![BitStream::zeros(n); operands.len()];
        for i in 0..n {
            let rn = source.next_value();
            for (s, &op) in streams.iter_mut().zip(operands) {
                if (u128::from(rn) << op.bits()) < (u128::from(op.value()) << m) {
                    s.set(i, true);
                }
            }
        }
        streams
    }
}

/// The source set of Table I (IMSNG sweep + references).
#[must_use]
pub fn table1_sources() -> Vec<RngKind> {
    let mut v: Vec<RngKind> = (5..=9).map(|m| RngKind::Imsng { m }).collect();
    v.push(RngKind::Software);
    v.push(RngKind::Lfsr);
    v.push(RngKind::Sobol);
    v
}

/// The source set of Table II (M = 8).
#[must_use]
pub fn table2_sources() -> Vec<RngKind> {
    vec![
        RngKind::Imsng { m: 8 },
        RngKind::Software,
        RngKind::Lfsr,
        RngKind::Sobol,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::correlation::scc;

    #[test]
    fn labels_match_paper() {
        assert_eq!(RngKind::Imsng { m: 7 }.label(), "IMSNG (M=7)");
        assert_eq!(RngKind::Sobol.label(), "QRNG (8-bit Sobol)");
    }

    #[test]
    fn all_sources_track_targets() {
        for kind in table1_sources() {
            let s = kind.stream(Fixed::from_u8(64), 512, 3, 0);
            assert!(
                (s.value() - 0.25).abs() < 0.08,
                "{}: {}",
                kind.label(),
                s.value()
            );
        }
    }

    #[test]
    fn correlated_streams_are_nested() {
        for kind in table2_sources() {
            let streams =
                kind.streams_correlated(&[Fixed::from_u8(50), Fixed::from_u8(150)], 1024, 7);
            let c = scc(&streams[0], &streams[1]).unwrap();
            assert!(c > 0.95, "{}: scc {c}", kind.label());
        }
    }

    #[test]
    fn domains_are_independent() {
        for kind in [RngKind::Imsng { m: 8 }, RngKind::Software, RngKind::Sobol] {
            let a = kind.stream(Fixed::from_u8(128), 4096, 5, 0);
            let b = kind.stream(Fixed::from_u8(128), 4096, 5, 1);
            let c = scc(&a, &b).unwrap();
            assert!(c.abs() < 0.12, "{}: scc {c}", kind.label());
        }
    }
}
