//! Bench-regression checking against a committed `BENCH_engine.json`.
//!
//! The bench harness emits its own minimal JSON (one anchor per line,
//! each with an `"ns"` field); this module parses that shape back —
//! hermetically, no serde in this environment — and compares a fresh
//! measurement against the committed baseline so CI can fail when an
//! anchor regresses beyond a threshold (`scripts/bench_check.sh`).

/// One anchor regression beyond the allowed threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Anchor name.
    pub name: String,
    /// Committed baseline, ns.
    pub baseline_ns: f64,
    /// Fresh measurement, ns (`None` when the anchor disappeared from
    /// the harness without updating the baseline).
    pub measured_ns: Option<f64>,
    /// Slowdown in percent over the baseline.
    pub slowdown_pct: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.measured_ns {
            Some(ns) => write!(
                f,
                "{}: {:.1} ns vs baseline {:.1} ns (+{:.1}%)",
                self.name, ns, self.baseline_ns, self.slowdown_pct
            ),
            None => write!(
                f,
                "{}: present in baseline but no longer measured",
                self.name
            ),
        }
    }
}

/// Extracts `(anchor, ns)` pairs from the harness's own JSON shape:
/// one `"name": {"ns": <number>, …}` entry per line. Lines that do not
/// match (braces, malformed text) are skipped.
#[must_use]
pub fn parse_anchor_ns(json: &str) -> Vec<(String, f64)> {
    parse_anchor_field(json, "ns")
}

/// Like [`parse_anchor_ns`] for any numeric per-anchor field — the
/// harness also gates `"ops"` (deterministic scouting ops per pixel)
/// and `"vs_per_tile"` (same-run pipelined/per-tile wall-clock ratio).
/// Lines without the field are skipped.
#[must_use]
pub fn parse_anchor_field(json: &str, field: &str) -> Vec<(String, f64)> {
    let key = format!("\"{field}\":");
    let mut anchors = Vec::new();
    for line in json.lines() {
        let Some(name) = quoted_prefix(line) else {
            continue;
        };
        let Some(value) = field_value(line, &key) else {
            continue;
        };
        anchors.push((name.to_string(), value));
    }
    anchors
}

fn quoted_prefix(line: &str) -> Option<&str> {
    let rest = line.trim_start().strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

fn field_value(line: &str, key: &str) -> Option<f64> {
    let at = line.find(key)? + key.len();
    let rest = line[at..].trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares fresh measurements against a baseline: an anchor regresses
/// when it is more than `threshold_pct` percent slower than its
/// committed value, or when a committed anchor is no longer measured at
/// all (removing an anchor must be an explicit baseline update, not a
/// silent drop). Anchors new to the harness pass — they simply have no
/// baseline yet.
#[must_use]
pub fn regressions(
    baseline: &[(String, f64)],
    measured: &[(String, f64)],
    threshold_pct: f64,
) -> Vec<Regression> {
    let mut found = Vec::new();
    for (name, base_ns) in baseline {
        let fresh = measured.iter().find(|(n, _)| n == name).map(|&(_, ns)| ns);
        match fresh {
            Some(ns) => {
                let slowdown_pct = (ns / base_ns - 1.0) * 100.0;
                if slowdown_pct > threshold_pct {
                    found.push(Regression {
                        name: name.clone(),
                        baseline_ns: *base_ns,
                        measured_ns: Some(ns),
                        slowdown_pct,
                    });
                }
            }
            None => found.push(Regression {
                name: name.clone(),
                baseline_ns: *base_ns,
                measured_ns: None,
                slowdown_pct: f64::INFINITY,
            }),
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "write_row_4096": {"ns": 1853.7, "pre_pr_baseline_ns": 117612.3, "speedup": 63.45},
  "trng_fill_word_4096": {"ns": 1889.2, "speedup_vs_per_bit": 21.43},
  "bilinear": {"ns": 252638219.0, "eager_pr_anchor_ns": 211299800.0},
  "bilinear_pipelined": {"ns": 260000000.0, "vs_per_tile": 1.031},
  "bilinear_scout_ops_per_pixel_full": {"ops": 206.506}
}
"#;

    #[test]
    fn parses_anchor_ns_per_line() {
        let anchors = parse_anchor_ns(SAMPLE);
        assert_eq!(anchors.len(), 4, "ops-only entries carry no ns");
        assert_eq!(anchors[0].0, "write_row_4096");
        assert!((anchors[0].1 - 1853.7).abs() < 1e-9);
        assert!((anchors[2].1 - 252_638_219.0).abs() < 1e-3);
    }

    #[test]
    fn parses_named_fields_independently() {
        let ratios = parse_anchor_field(SAMPLE, "vs_per_tile");
        assert_eq!(ratios, vec![("bilinear_pipelined".to_string(), 1.031)]);
        let ops = parse_anchor_field(SAMPLE, "ops");
        assert_eq!(
            ops,
            vec![("bilinear_scout_ops_per_pixel_full".to_string(), 206.506)]
        );
    }

    #[test]
    fn near_zero_threshold_gates_deterministic_counters() {
        // The ops anchors are exact counts; the gate allows only float
        // formatting slack, so any real increase fails.
        let baseline = vec![("ops_a".to_string(), 206.506)];
        let same = vec![("ops_a".to_string(), 206.5061)];
        assert!(regressions(&baseline, &same, 0.01).is_empty());
        let grown = vec![("ops_a".to_string(), 207.0)];
        let r = regressions(&baseline, &grown, 0.01);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].name, "ops_a");
    }

    #[test]
    fn flags_only_regressions_beyond_threshold() {
        let baseline = vec![("a".to_string(), 100.0), ("b".to_string(), 100.0)];
        let measured = vec![
            ("a".to_string(), 120.0),
            ("b".to_string(), 130.0),
            ("new".to_string(), 5.0),
        ];
        let r = regressions(&baseline, &measured, 25.0);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].name, "b");
        assert!((r[0].slowdown_pct - 30.0).abs() < 1e-9);
    }

    #[test]
    fn missing_anchor_is_a_regression() {
        let baseline = vec![("gone".to_string(), 10.0)];
        let r = regressions(&baseline, &[], 25.0);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].measured_ns, None);
    }

    #[test]
    fn faster_runs_pass() {
        let baseline = vec![("a".to_string(), 100.0)];
        let measured = vec![("a".to_string(), 50.0)];
        assert!(regressions(&baseline, &measured, 25.0).is_empty());
    }
}
