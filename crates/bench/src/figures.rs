//! Figs. 4 and 5 — per-pixel energy savings and throughput of the CMOS
//! (✛) and ReRAM (✦) SC designs, normalized to the binary-CIM reference.
//!
//! Kernel compositions (per output pixel):
//!
//! | App | ReRAM SC | CMOS SC | Binary CIM |
//! |---|---|---|---|
//! | Compositing | 3 conversions + 1 MAJ + 1 ADC | 1 addition-class op + 4 byte transfers | 2 mul + 1 add |
//! | Bilinear | 7 conversions + 3 MAJ + 1 ADC | 3 addition-class ops + 7 byte transfers | 4 weight-mul + 3 add (weights phase-amortized) |
//! | Matting | 3 conversions + 2 XOR + CORDIV + 1 ADC | 2 sub + 1 div + 4 byte transfers | 2 sub + 1 div |
//!
//! Division latency is batch-parallel across bitline latches (the paper's
//! "offset by increased throughput enabled by SIMD parallelism"), so its
//! per-word initiation interval is one CORDIV step.

use baselines::bincim::BinCimCosts;
use baselines::cmos::{CmosDesign, CmosSng};
use imsc::cost::ScOperation;
use reram::energy::ReramCosts;

/// The applications (shared with Table IV).
pub use crate::table4::App;

/// The stream lengths of Figs. 4–5.
pub const LENGTHS: [usize; 4] = [32, 64, 128, 256];

/// Per-pixel kernel composition on the ReRAM SC design.
#[derive(Debug, Clone, Copy)]
pub struct ReramKernel {
    /// IMSNG conversions per output pixel.
    pub conversions: usize,
    /// Single-cycle scouting ops (AND/OR/MAJ).
    pub single_ops: usize,
    /// XOR ops.
    pub xor_ops: usize,
    /// Whether the kernel runs a CORDIV division.
    pub divides: bool,
    /// Result-stream writes.
    pub result_writes: usize,
}

/// The kernel composition of an application.
#[must_use]
pub fn reram_kernel(app: App) -> ReramKernel {
    match app {
        App::Compositing => ReramKernel {
            conversions: 3,
            single_ops: 1,
            xor_ops: 0,
            divides: false,
            result_writes: 1,
        },
        App::Bilinear => ReramKernel {
            conversions: 7,
            single_ops: 3,
            xor_ops: 0,
            divides: false,
            result_writes: 3,
        },
        App::Matting => ReramKernel {
            conversions: 3,
            single_ops: 0,
            xor_ops: 2,
            divides: true,
            result_writes: 3,
        },
    }
}

/// ReRAM SC energy per output pixel (nJ) at stream length `n`.
#[must_use]
pub fn reram_energy_nj(app: App, n: usize, costs: &ReramCosts) -> f64 {
    let k = reram_kernel(app);
    let e = &costs.energies;
    let nf = n as f64;
    let conv = (5.0 * 8.0 * nf * e.e_sense_bit_pj + nf * e.e_write_bit_pj) / 1000.0;
    let mut total = k.conversions as f64 * conv;
    total += k.single_ops as f64 * nf * e.e_slop_bit_pj / 1000.0;
    total += k.xor_ops as f64 * nf * e.e_slop_bit_pj * 1.25 / 1000.0;
    if k.divides {
        total += nf * e.e_cordiv_step_pj / 1000.0;
    }
    total += k.result_writes as f64 * nf * e.e_write_bit_pj / 1000.0;
    total += e.e_adc_sample_nj;
    total
}

/// ReRAM SC per-pixel initiation interval (ns): conversions serialize in
/// a mat, simple ops are single senses, and CORDIV is batch-parallel
/// (one step per word).
#[must_use]
pub fn reram_latency_ns(app: App, n: usize, costs: &ReramCosts) -> f64 {
    let k = reram_kernel(app);
    let t = &costs.timings;
    let conv = 5.0 * 8.0 * t.t_sense_ns;
    let mut total = k.conversions as f64 * conv;
    total += k.single_ops as f64 * t.t_sense_ns;
    total += k.xor_ops as f64 * (t.t_sense_ns + t.t_xor_extra_ns);
    if k.divides {
        // N CORDIV steps amortized over an N-word batch in the bitline
        // latches: one step per word.
        total += t.t_cordiv_step_ns * (n as f64) / (n as f64);
    }
    total += t.t_adc_ns;
    total
}

/// CMOS SC per-pixel cost: Table III op energies (which include the SNG
/// and counter) plus byte-granular data movement.
#[must_use]
pub fn cmos_cost(app: App, n: usize) -> (f64, f64) {
    let d = CmosDesign::new(CmosSng::Lfsr);
    let (ops, words): (Vec<ScOperation>, usize) = match app {
        App::Compositing => (vec![ScOperation::Addition], 3),
        App::Bilinear => (vec![ScOperation::Addition; 3], 6),
        App::Matting => (
            vec![
                ScOperation::Subtraction,
                ScOperation::Subtraction,
                ScOperation::Division,
            ],
            3,
        ),
    };
    let mut latency = 0.0;
    let mut energy = 0.0;
    for op in &ops {
        let c = d.op_cost(*op, n);
        latency += c.latency_ns;
        energy += c.energy_nj;
    }
    let movement = d.transfer_cost(words + 1, 8);
    (latency + movement.latency_ns, energy + movement.energy_nj)
}

/// Binary-CIM per-pixel cycles for an application kernel.
#[must_use]
pub fn bincim_cycles(app: App, costs: &BinCimCosts) -> f64 {
    match app {
        App::Compositing => 2.0 * costs.mul_cycles(8) + costs.add_cycles(16),
        // Four weight multiplies (weights phase-amortized for integer
        // factors) + accumulation adds.
        App::Bilinear => 4.0 * costs.mul_cycles(8) + 3.0 * costs.add_cycles(16),
        App::Matting => 2.0 * costs.add_cycles(9) + costs.div_cycles(8),
    }
}

/// Binary-CIM per-pixel (energy nJ, latency ns).
#[must_use]
pub fn bincim_cost(app: App, costs: &BinCimCosts) -> (f64, f64) {
    let cycles = bincim_cycles(app, costs);
    (
        costs.energy_per_word_nj(cycles),
        costs.latency_per_word_ns(cycles),
    )
}

/// One figure cell: normalized improvement of a design vs binary CIM.
#[derive(Debug, Clone)]
pub struct FigureRow {
    /// Application.
    pub app: App,
    /// Design label.
    pub design: &'static str,
    /// Improvement factor per entry of [`LENGTHS`].
    pub factors: Vec<f64>,
}

/// Computes Fig. 4 (energy savings, higher = design is better).
#[must_use]
pub fn fig4() -> Vec<FigureRow> {
    let reram_costs = ReramCosts::calibrated();
    let bin_costs = BinCimCosts::calibrated();
    let mut rows = Vec::new();
    for app in App::ALL {
        let (e_bin, _) = bincim_cost(app, &bin_costs);
        rows.push(FigureRow {
            app,
            design: "CMOS SC",
            factors: LENGTHS
                .iter()
                .map(|&n| e_bin / cmos_cost(app, n).1)
                .collect(),
        });
        rows.push(FigureRow {
            app,
            design: "ReRAM SC",
            factors: LENGTHS
                .iter()
                .map(|&n| e_bin / reram_energy_nj(app, n, &reram_costs))
                .collect(),
        });
    }
    rows
}

/// Independent ReRAM mats pipelining the SC stages (shared with the
/// binary-CIM chip, which occupies the same array budget).
pub const CIM_ARRAYS: usize = 8;
/// Parallel lanes of the synthesized CMOS SC datapath.
pub const CMOS_LANES: usize = 4;

/// Per-pixel steady-state initiation interval (ns) of the CMOS design:
/// the larger of the *serial* off-chip link time (binary words share one
/// link) and the serial stream-processing time spread over the lanes.
#[must_use]
pub fn cmos_interval_ns(app: App, n: usize) -> f64 {
    let d = CmosDesign::new(CmosSng::Lfsr);
    let (ops, words): (Vec<ScOperation>, usize) = match app {
        App::Compositing => (vec![ScOperation::Addition], 3),
        App::Bilinear => (vec![ScOperation::Addition; 3], 6),
        App::Matting => (
            vec![
                ScOperation::Subtraction,
                ScOperation::Subtraction,
                ScOperation::Division,
            ],
            3,
        ),
    };
    let compute: f64 = ops.iter().map(|&op| d.op_cost(op, n).latency_ns).sum();
    let movement = d.transfer_cost(words + 1, 8).latency_ns;
    movement.max(compute / CMOS_LANES as f64)
}

/// Computes Fig. 5 (throughput improvement, higher = design is better).
///
/// Per-pixel initiation intervals: the ReRAM kernel pipelines over
/// [`CIM_ARRAYS`] mats; binary CIM amortizes over the same array count;
/// CMOS is bounded by its serial off-chip link or its lanes.
#[must_use]
pub fn fig5() -> Vec<FigureRow> {
    let reram_costs = ReramCosts::calibrated();
    let bin_costs = BinCimCosts::calibrated();
    let mut rows = Vec::new();
    for app in App::ALL {
        let (_, t_word) = bincim_cost(app, &bin_costs);
        let t_bin = t_word / CIM_ARRAYS as f64;
        rows.push(FigureRow {
            app,
            design: "CMOS SC",
            factors: LENGTHS
                .iter()
                .map(|&n| t_bin / cmos_interval_ns(app, n))
                .collect(),
        });
        rows.push(FigureRow {
            app,
            design: "ReRAM SC",
            factors: LENGTHS
                .iter()
                .map(|&n| t_bin / (reram_latency_ns(app, n, &reram_costs) / CIM_ARRAYS as f64))
                .collect(),
        });
    }
    rows
}

/// The grand averages the paper headlines: (ReRAM vs binary CIM,
/// ReRAM vs CMOS) improvement factors over all apps and lengths.
#[must_use]
pub fn averages(rows: &[FigureRow]) -> (f64, f64) {
    let mean = |design: &str| {
        let vals: Vec<f64> = rows
            .iter()
            .filter(|r| r.design == design)
            .flat_map(|r| r.factors.iter().copied())
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let reram = mean("ReRAM SC");
    let cmos = mean("CMOS SC");
    (reram, reram / cmos)
}

/// Renders a figure's rows.
#[must_use]
pub fn render(title: &str, rows: &[FigureRow]) -> String {
    let mut out = format!("{title} (normalized to binary CIM = 1.0)\n");
    out.push_str(&crate::format_row(
        "App / Design \\ N",
        &LENGTHS.map(|n| n as f64),
        0,
    ));
    out.push('\n');
    for row in rows {
        out.push_str(&crate::format_row(
            &format!("{} / {}", row.app.label(), row.design),
            &row.factors,
            2,
        ));
        out.push('\n');
    }
    let (vs_bin, vs_cmos) = averages(rows);
    out.push_str(&format!(
        "average ReRAM improvement: {vs_bin:.2}x vs binary CIM, {vs_cmos:.2}x vs CMOS\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reram_energy_grows_with_stream_length() {
        let costs = ReramCosts::calibrated();
        for app in App::ALL {
            assert!(
                reram_energy_nj(app, 256, &costs) > 4.0 * reram_energy_nj(app, 32, &costs),
                "{app:?}"
            );
        }
    }

    #[test]
    fn fig4_shape_matches_paper() {
        let rows = fig4();
        // ReRAM beats binary CIM at short streams for every app…
        for row in rows.iter().filter(|r| r.design == "ReRAM SC") {
            assert!(
                row.factors[0] > 1.0,
                "{:?} at N=32: {:?}",
                row.app,
                row.factors
            );
            // …and its advantage decays with N.
            assert!(row.factors[0] > row.factors[3], "{:?}", row.factors);
        }
        let (vs_bin, vs_cmos) = averages(&rows);
        // Paper: 2.8x vs binary CIM, 1.15x vs CMOS on average.
        assert!(vs_bin > 1.5 && vs_bin < 6.0, "vs binary CIM {vs_bin}");
        assert!(vs_cmos > 0.7 && vs_cmos < 2.0, "vs CMOS {vs_cmos}");
    }

    #[test]
    fn fig4_reram_loses_to_cmos_at_long_streams() {
        let rows = fig4();
        for app in App::ALL {
            let reram = rows
                .iter()
                .find(|r| r.app == app && r.design == "ReRAM SC")
                .unwrap();
            let cmos = rows
                .iter()
                .find(|r| r.app == app && r.design == "CMOS SC")
                .unwrap();
            // Crossover: ReRAM ahead at N=32, CMOS ahead by N=256.
            assert!(reram.factors[0] > cmos.factors[0], "{app:?} at 32");
            assert!(reram.factors[3] < cmos.factors[3], "{app:?} at 256");
        }
    }

    #[test]
    fn fig5_reram_beats_binary_cim() {
        let rows = fig5();
        let (vs_bin, vs_cmos) = averages(&rows);
        // Paper: 2.16x vs binary CIM, 1.39x vs CMOS on average.
        assert!(vs_bin > 1.2 && vs_bin < 5.0, "vs binary CIM {vs_bin}");
        assert!(vs_cmos > 0.8, "vs CMOS {vs_cmos}");
    }

    #[test]
    fn division_kernel_is_batch_amortized() {
        let costs = ReramCosts::calibrated();
        let t = reram_latency_ns(App::Matting, 256, &costs);
        // Far below the 12.5 µs serial Table III division latency.
        assert!(t < 1000.0, "{t}");
    }

    #[test]
    fn render_includes_averages() {
        let text = render("Fig. 4: energy savings", &fig4());
        assert!(text.contains("average ReRAM improvement"));
        assert!(text.contains("Image Matting"));
    }
}
