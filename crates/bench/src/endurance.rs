//! Endurance sweep (extension) — Monte-Carlo PSNR-vs-endurance curves
//! for the ReRAM SC bilinear kernel.
//!
//! The paper evaluates fidelity under CIM faults (Table IV) but treats
//! the crossbar as write-unlimited; real ReRAM cells wear out after
//! ~10⁷–10⁸ SET/RESET cycles. This sweep joins the two axes: for every
//! (per-op fault rate × RN refresh policy × wear-leveling) point it
//! measures
//!
//! * mean PSNR/SSIM against the exact software kernel over `trials`
//!   fault-injection seeds (Monte Carlo), and
//! * the hottest stream-row write count per frame
//!   ([`imgproc::ScRunStats::stream_wear`]), converted into *frames to
//!   wear-out* under a nominal cell endurance.
//!
//! Refresh policy matters on both axes at once — eager RN refresh buys
//! accuracy but rewrites the RN region every batch — and wear-leveling
//! moves the endurance axis without touching fault-free pixels, which is
//! exactly the trade-off the curve exposes.

use imgproc::scbackend::ScReramConfig;
use imgproc::{bilinear, metrics, synth};
use imsc::RnRefreshPolicy;
use reram::faults::FaultRates;
use std::fmt::Write as _;

/// Nominal ReRAM cell endurance (SET/RESET cycles before stuck-at
/// failure) used to convert per-frame row wear into frames-to-wear-out.
/// 10⁸ is the usual HfO₂ figure of merit; the conversion is linear, so
/// rescaling to a different device is a multiplication on the reader's
/// side.
pub const ENDURANCE_CYCLES: f64 = 1e8;

/// Per-op fault rates swept (uniform across the scouting ops).
pub const FAULT_RATES: [f64; 4] = [0.0, 1e-4, 1e-3, 1e-2];

/// RN refresh policies swept: the bilinear kernel's own default
/// (`Explicit` — RN reuse across the whole tile) against the eager and
/// batched policies.
pub const POLICIES: [(&str, Option<RnRefreshPolicy>); 3] = [
    ("kernel-default", None),
    ("every8", Some(RnRefreshPolicy::EveryN(8))),
    ("per-encode", Some(RnRefreshPolicy::PerEncode)),
];

/// Sweep configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Square source image side; the kernel upscales 2×.
    pub size: usize,
    /// Monte-Carlo trials (seeds) per point.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// SC stream length.
    pub stream_len: usize,
}

impl Config {
    /// Default sweep: 32×32 → 64×64 at N = 256, 3 trials.
    #[must_use]
    pub fn default_sweep(seed: u64) -> Self {
        Config {
            size: 32,
            trials: 3,
            seed,
            stream_len: 256,
        }
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct Point {
    /// Uniform per-op fault rate.
    pub fault_rate: f64,
    /// Refresh-policy label (see [`POLICIES`]).
    pub policy: &'static str,
    /// Whether wear-leveling row allocation was on.
    pub wear_leveling: bool,
    /// Mean PSNR (dB) vs the software kernel across trials.
    pub psnr_db: f64,
    /// Mean SSIM (%) vs the software kernel across trials.
    pub ssim_pct: f64,
    /// Hottest stream-row write count per frame (max across trials —
    /// the conservative, first-cell-to-die number).
    pub max_row_writes: u64,
    /// Max/mean stream-row wear ratio (1.0 = perfectly level), worst
    /// across trials.
    pub max_mean_ratio: f64,
    /// `ENDURANCE_CYCLES / max_row_writes`: frames until the hottest
    /// cell exhausts nominal endurance.
    pub frames_to_wearout: f64,
}

impl Point {
    /// Stable anchor name for this point, e.g.
    /// `endurance_f1e-3_every8_wl`.
    #[must_use]
    pub fn name(&self) -> String {
        format!(
            "endurance_f{:.0e}_{}_{}",
            self.fault_rate,
            self.policy,
            if self.wear_leveling { "wl" } else { "lifo" }
        )
    }
}

/// Runs the full sweep.
///
/// # Panics
///
/// Panics on substrate errors (the configurations are valid by
/// construction).
#[must_use]
pub fn sweep(cfg: &Config) -> Vec<Point> {
    let src = synth::value_noise(cfg.size, cfg.size, 4, cfg.seed ^ 0xE7);
    let reference = bilinear::software(&src, 2).expect("valid factor");
    let mut points = Vec::new();
    for &rate in &FAULT_RATES {
        for &(policy_label, policy) in &POLICIES {
            for wear_leveling in [false, true] {
                let trials = if rate == 0.0 { 1 } else { cfg.trials };
                let mut psnr = 0.0;
                let mut ssim = 0.0;
                let mut max_row_writes = 0u64;
                let mut max_mean_ratio = 0.0f64;
                for t in 0..trials {
                    let mut sc = ScReramConfig::new(cfg.stream_len, cfg.seed ^ ((t as u64) << 24))
                        .with_faults(FaultRates::uniform(rate))
                        .with_wear_leveling(wear_leveling);
                    if let Some(p) = policy {
                        sc = sc.with_refresh_policy(p);
                    }
                    let (out, stats) =
                        bilinear::sc_reram_with_stats(&src, 2, &sc).expect("substrate ok");
                    let p = metrics::psnr(&reference, &out).expect("matching dims");
                    psnr += if p.is_finite() { p } else { 99.0 };
                    ssim += metrics::ssim_percent(&reference, &out).expect("matching dims");
                    max_row_writes = max_row_writes.max(stats.stream_wear.max);
                    max_mean_ratio = max_mean_ratio.max(stats.stream_wear.max_mean_ratio());
                }
                let n = trials as f64;
                points.push(Point {
                    fault_rate: rate,
                    policy: policy_label,
                    wear_leveling,
                    psnr_db: psnr / n,
                    ssim_pct: ssim / n,
                    max_row_writes,
                    max_mean_ratio,
                    frames_to_wearout: ENDURANCE_CYCLES / max_row_writes.max(1) as f64,
                });
            }
        }
    }
    points
}

/// Renders the sweep as the harness's one-anchor-per-line JSON (the
/// shape `bench::regress` parses back).
#[must_use]
pub fn to_json(points: &[Point]) -> String {
    let mut json = String::from("{\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "  \"{}\": {{\"psnr_db\": {:.2}, \"ssim_pct\": {:.2}, \"max_row_writes\": {}, \
             \"max_mean_ratio\": {:.3}, \"frames_to_wearout\": {:.1}}}{comma}",
            p.name(),
            p.psnr_db,
            p.ssim_pct,
            p.max_row_writes,
            p.max_mean_ratio,
            p.frames_to_wearout,
        );
    }
    json.push_str("}\n");
    json
}

/// Renders the human-readable table.
#[must_use]
pub fn render(cfg: &Config, points: &[Point]) -> String {
    let mut out = format!(
        "Endurance sweep: bilinear {0}x{0} -> {1}x{1}, N = {2}, {3} trials, \
         endurance {4:.0e} cycles\n\n",
        cfg.size,
        cfg.size * 2,
        cfg.stream_len,
        cfg.trials,
        ENDURANCE_CYCLES
    );
    out.push_str(&format!(
        "{:<36}{:>10}{:>10}{:>16}{:>10}{:>16}\n",
        "point", "psnr", "ssim%", "max row writes", "max/mean", "frames-to-wear"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<36}{:>10.2}{:>10.2}{:>16}{:>10.2}{:>16.0}\n",
            p.name(),
            p.psnr_db,
            p.ssim_pct,
            p.max_row_writes,
            p.max_mean_ratio,
            p.frames_to_wearout
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            size: 8,
            trials: 1,
            seed: 5,
            stream_len: 64,
        }
    }

    #[test]
    fn sweep_covers_the_grid_and_levels_wear() {
        let cfg = tiny();
        let points = sweep(&cfg);
        assert_eq!(points.len(), FAULT_RATES.len() * POLICIES.len() * 2);
        for pair in points.chunks(2) {
            let (lifo, wl) = (&pair[0], &pair[1]);
            assert!(!lifo.wear_leveling && wl.wear_leveling);
            // Leveling never worsens the hottest row, and therefore
            // never shortens endurance.
            assert!(wl.max_row_writes <= lifo.max_row_writes, "{wl:?} {lifo:?}");
            assert!(wl.frames_to_wearout >= lifo.frames_to_wearout);
        }
    }

    #[test]
    fn json_round_trips_through_the_regress_parser() {
        let points = sweep(&tiny());
        let json = to_json(&points);
        let parsed = crate::regress::parse_anchor_field(&json, "psnr_db");
        assert_eq!(parsed.len(), points.len());
        assert_eq!(parsed[0].0, points[0].name());
    }

    #[test]
    fn point_names_are_stable() {
        let p = Point {
            fault_rate: 1e-3,
            policy: "every8",
            wear_leveling: true,
            psnr_db: 0.0,
            ssim_pct: 0.0,
            max_row_writes: 1,
            max_mean_ratio: 1.0,
            frames_to_wearout: 1.0,
        };
        assert_eq!(p.name(), "endurance_f1e-3_every8_wl");
    }
}
