//! Closed-loop load generation against a serve instance.
//!
//! The measurement core shared by the `loadgen` binary and the
//! `bench_engine` serving anchors: start (or target) a serve instance,
//! drive it with `concurrency` closed-loop TCP clients, and report
//! sustained throughput plus the per-request latency distribution.

use imgproc::request::KernelRequest;
use imgproc::synth;
use serve::{Client, Server, ServiceConfig, Status};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Total requests to issue.
    pub requests: usize,
    /// Closed-loop client connections driving them.
    pub concurrency: usize,
    /// Square edge-kernel input size per request.
    pub size: usize,
    /// Per-request deadline carried on the wire (None = server default).
    pub deadline: Option<Duration>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            requests: 32,
            concurrency: 2,
            size: 32,
            deadline: None,
        }
    }
}

/// What a load run observed.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// End-to-end wall clock of the whole run, ns.
    pub wall_ns: u64,
    /// Per-request client-observed latencies, ns, sorted ascending.
    pub latencies_ns: Vec<u64>,
    /// Requests answered [`Status::Ok`].
    pub served: usize,
    /// Requests answered [`Status::Ok`] at a downgraded `N`.
    pub downgraded: usize,
    /// Requests answered [`Status::Shed`].
    pub shed: usize,
    /// Requests answered [`Status::Error`].
    pub errors: usize,
}

impl LoadReport {
    /// Sustained request throughput over the run, requests per second.
    #[must_use]
    pub fn req_per_s(&self) -> f64 {
        let total = self.served + self.shed + self.errors;
        total as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// The `p`-th percentile latency, ns (`p` in 0..=100; nearest-rank).
    #[must_use]
    pub fn percentile_ns(&self, p: f64) -> u64 {
        percentile(&self.latencies_ns, p)
    }

    /// Mean per-request latency, ns.
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        self.latencies_ns.iter().map(|&l| l as f64).sum::<f64>() / self.latencies_ns.len() as f64
    }
}

/// Nearest-rank percentile over an ascending-sorted sample.
#[must_use]
pub fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted_ns.len() as f64).ceil() as usize;
    sorted_ns[rank.clamp(1, sorted_ns.len()) - 1]
}

/// Drives `cfg.requests` edge-kernel requests at `addr` from
/// `cfg.concurrency` closed-loop clients. Every request uses a
/// deterministic per-index input (value noise seeded by the request
/// index), so two runs issue identical work.
///
/// # Panics
///
/// Panics when a client cannot connect or a wire call fails — load
/// generation against a dead server is a harness error, not a result.
#[must_use]
pub fn run_against(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    let per_client: Vec<(Vec<u64>, usize, usize, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.concurrency.max(1))
            .map(|_| {
                scope.spawn(|| {
                    let mut client = Client::connect(addr).expect("loadgen connect");
                    let mut lat = Vec::new();
                    let (mut served, mut downgraded, mut shed, mut errors) = (0, 0, 0, 0);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cfg.requests {
                            break;
                        }
                        let req = KernelRequest::Edge {
                            image: synth::value_noise(cfg.size, cfg.size, 3, i as u64),
                        };
                        let r0 = Instant::now();
                        let resp = client.call(&req, cfg.deadline).expect("loadgen call");
                        lat.push(r0.elapsed().as_nanos() as u64);
                        match resp.status {
                            Status::Ok => {
                                served += 1;
                                downgraded += usize::from(resp.downgraded);
                            }
                            Status::Shed => shed += 1,
                            Status::Error => errors += 1,
                        }
                    }
                    (lat, served, downgraded, shed, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen client thread"))
            .collect()
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let mut report = LoadReport {
        wall_ns,
        latencies_ns: Vec::new(),
        served: 0,
        downgraded: 0,
        shed: 0,
        errors: 0,
    };
    for (lat, served, downgraded, shed, errors) in per_client {
        report.latencies_ns.extend(lat);
        report.served += served;
        report.downgraded += downgraded;
        report.shed += shed;
        report.errors += errors;
    }
    report.latencies_ns.sort_unstable();
    report
}

/// Starts an in-process server on a loopback port, runs
/// [`run_against`], and shuts the server down cleanly.
///
/// # Panics
///
/// Panics when the server cannot start (harness error).
#[must_use]
pub fn run_in_process(service: ServiceConfig, cfg: &LoadConfig) -> LoadReport {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let server = Server::start(listener, service).expect("server starts");
    let report = run_against(server.addr(), cfg);
    server.shutdown();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[42], 50.0), 42);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn small_load_run_serves_everything() {
        let service = ServiceConfig {
            engine: imgproc::ScReramConfig::new(32, 5),
            default_deadline: Duration::from_secs(3600),
            ..ServiceConfig::default()
        };
        let cfg = LoadConfig {
            requests: 6,
            concurrency: 2,
            size: 12,
            deadline: None,
        };
        let report = run_in_process(service, &cfg);
        assert_eq!(report.served, 6);
        assert_eq!(report.errors, 0);
        assert_eq!(report.latencies_ns.len(), 6);
        assert!(report.req_per_s() > 0.0);
        assert!(report.percentile_ns(99.0) >= report.percentile_ns(50.0));
    }
}
