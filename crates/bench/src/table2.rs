//! Table II — MSE(%) of SC arithmetic operations across RNG sources
//! (M = 8).
//!
//! Correlation discipline follows Fig. 2: multiplication, scaled
//! addition, and approximate addition take independent streams
//! (approximate addition restricted to `[0, 0.5]` operands); absolute
//! subtraction, division (CORDIV, `x ≤ y`), minimum and maximum take
//! correlated streams from a shared random-number sequence.

use crate::sources::{table2_sources, RngKind};
use sc_core::div::cordiv;
use sc_core::prelude::*;
use sc_core::rng::Xoshiro256;

/// The stream lengths of Table II.
pub const LENGTHS: [usize; 5] = [32, 64, 128, 256, 512];

/// The seven SC operations of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// AND multiplication.
    Multiplication,
    /// MAJ scaled addition (0.5 select).
    ScaledAddition,
    /// OR approximate addition (`x, y ∈ [0, 0.5]`).
    ApproxAddition,
    /// XOR absolute subtraction.
    AbsSubtraction,
    /// CORDIV division (`x ≤ y`).
    Division,
    /// AND minimum.
    Minimum,
    /// OR maximum.
    Maximum,
}

impl Op {
    /// All operations in Table II order.
    pub const ALL: [Op; 7] = [
        Op::Multiplication,
        Op::ScaledAddition,
        Op::ApproxAddition,
        Op::AbsSubtraction,
        Op::Division,
        Op::Minimum,
        Op::Maximum,
    ];

    /// Row label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Op::Multiplication => "Multiplication",
            Op::ScaledAddition => "Scaled Addition",
            Op::ApproxAddition => "Approx. Addition",
            Op::AbsSubtraction => "Abs. Subtraction",
            Op::Division => "Division",
            Op::Minimum => "Minimum",
            Op::Maximum => "Maximum",
        }
    }
}

/// One (operation, source) row of MSE values per stream length.
#[derive(Debug, Clone)]
pub struct Row {
    /// Operation.
    pub op: Op,
    /// Source label.
    pub source: String,
    /// MSE(%) per entry of [`LENGTHS`].
    pub mse: Vec<f64>,
}

fn quant8(x: f64) -> Fixed {
    Prob::saturating(x).to_fixed(8).expect("valid width")
}

/// Computes the MSE of `op` under `kind` at every stream length.
#[must_use]
pub fn compute_cell(op: Op, kind: RngKind, samples: usize, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut sums = vec![0.0f64; LENGTHS.len()];
    for trial in 0..samples {
        let (mut x, mut y) = (rng.next_f64(), rng.next_f64());
        if op == Op::ApproxAddition {
            x *= 0.5;
            y *= 0.5;
        }
        if op == Op::Division {
            // CORDIV requires x ≤ y; avoid near-zero divisors where the
            // ratio is numerically unstable for every implementation.
            if x > y {
                std::mem::swap(&mut x, &mut y);
            }
            if y < 0.05 {
                y += 0.05;
            }
        }
        let exact = match op {
            Op::Multiplication => x * y,
            Op::ScaledAddition => (x + y) / 2.0,
            Op::ApproxAddition => x + y,
            Op::AbsSubtraction => (x - y).abs(),
            Op::Division => x / y,
            Op::Minimum => x.min(y),
            Op::Maximum => x.max(y),
        };
        for (i, &n) in LENGTHS.iter().enumerate() {
            let t = trial as u64;
            let estimate = match op {
                Op::Multiplication => {
                    let sx = kind.stream(quant8(x), n, t, 2 * i as u64);
                    let sy = kind.stream(quant8(y), n, t, 2 * i as u64 + 1);
                    ops::multiply(&sx, &sy).expect("equal lengths").value()
                }
                Op::ScaledAddition => {
                    let sx = kind.stream(quant8(x), n, t, 3 * i as u64);
                    let sy = kind.stream(quant8(y), n, t, 3 * i as u64 + 1);
                    let sel = kind.stream(quant8(0.5), n, t, 3 * i as u64 + 2);
                    ops::scaled_add_maj(&sx, &sy, &sel)
                        .expect("equal lengths")
                        .value()
                }
                Op::ApproxAddition => {
                    let sx = kind.stream(quant8(x), n, t, 2 * i as u64);
                    let sy = kind.stream(quant8(y), n, t, 2 * i as u64 + 1);
                    ops::approx_add(&sx, &sy).expect("equal lengths").value()
                }
                Op::AbsSubtraction | Op::Minimum | Op::Maximum | Op::Division => {
                    let streams =
                        kind.streams_correlated(&[quant8(x), quant8(y)], n, t ^ (i as u64) << 32);
                    match op {
                        Op::AbsSubtraction => ops::abs_subtract(&streams[0], &streams[1])
                            .expect("equal lengths")
                            .value(),
                        Op::Minimum => ops::minimum(&streams[0], &streams[1])
                            .expect("equal lengths")
                            .value(),
                        Op::Maximum => ops::maximum(&streams[0], &streams[1])
                            .expect("equal lengths")
                            .value(),
                        Op::Division => cordiv(&streams[0], &streams[1])
                            .map(|q| q.value())
                            .unwrap_or(0.0),
                        _ => unreachable!("covered above"),
                    }
                }
            };
            let err = estimate - exact;
            sums[i] += err * err;
        }
    }
    sums.iter().map(|s| 100.0 * s / samples as f64).collect()
}

/// Computes the full table.
#[must_use]
pub fn compute(samples: usize, seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for op in Op::ALL {
        for kind in table2_sources() {
            rows.push(Row {
                op,
                source: kind.label(),
                mse: compute_cell(op, kind, samples, seed ^ op as u64),
            });
        }
    }
    rows
}

/// Renders the table grouped by operation.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut out = String::from("Table II: MSE(%) of SC operations across RNG sources (M = 8)\n");
    for op in Op::ALL {
        out.push_str(&format!("\n{}\n", op.label()));
        out.push_str(&crate::format_row(
            "  Source \\ N",
            &LENGTHS.map(|n| n as f64),
            0,
        ));
        out.push('\n');
        for row in rows.iter().filter(|r| r.op == op) {
            out.push_str(&crate::format_row(
                &format!("  {}", row.source),
                &row.mse,
                3,
            ));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplication_sobol_is_most_accurate() {
        let sobol = compute_cell(Op::Multiplication, RngKind::Sobol, 400, 1);
        let lfsr = compute_cell(Op::Multiplication, RngKind::Lfsr, 400, 1);
        let sw = compute_cell(Op::Multiplication, RngKind::Software, 400, 1);
        assert!(sobol[0] < sw[0], "sobol {} sw {}", sobol[0], sw[0]);
        assert!(lfsr[0] > sw[0], "lfsr {} sw {}", lfsr[0], sw[0]);
    }

    #[test]
    fn approx_addition_has_an_error_floor() {
        // OR addition's x·y bias does not vanish with stream length.
        let sw = compute_cell(Op::ApproxAddition, RngKind::Software, 400, 2);
        assert!(sw[4] > 0.3, "floor {:?}", sw);
    }

    #[test]
    fn correlated_ops_are_accurate_with_shared_sources() {
        for op in [Op::AbsSubtraction, Op::Minimum, Op::Maximum] {
            let mse = compute_cell(op, RngKind::Imsng { m: 8 }, 300, 3);
            assert!(mse[4] < 0.5, "{op:?}: {:?}", mse);
        }
    }

    #[test]
    fn division_error_decreases_with_length() {
        let mse = compute_cell(Op::Division, RngKind::Software, 300, 4);
        assert!(mse[0] > mse[4], "{mse:?}");
    }

    #[test]
    fn full_table_has_28_rows() {
        let rows = compute(20, 5);
        assert_eq!(rows.len(), 7 * 4);
        let text = render(&rows);
        assert!(text.contains("Division"));
        assert!(text.contains("IMSNG (M=8)"));
    }
}
