//! Table III — hardware cost of CMOS vs ReRAM SC designs (N = 256),
//! plus the IMSNG-naive/IMSNG-opt anchor comparison (§IV-B) with an
//! NVMain cross-check of the ReRAM numbers.

use baselines::cmos::{CmosDesign, CmosSng};
use imsc::cost::{imsng_cost, reram_op_cost, DesignCost, ScOperation};
use imsc::engine::Accelerator;
use imsc::imsng::ImsngVariant;
use nvsim::{MemoryConfig, Simulator};
use reram::energy::ReramCosts;
use sc_core::Fixed;

/// The table's stream length.
pub const N: usize = 256;

/// One design row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Design label (SNG family or ReRAM variant).
    pub design: String,
    /// Operation label.
    pub op: &'static str,
    /// End-to-end cost.
    pub cost: DesignCost,
}

/// Computes every row of Table III.
#[must_use]
pub fn compute() -> Vec<Row> {
    let costs = ReramCosts::calibrated();
    let mut rows = Vec::new();
    for sng in [CmosSng::Lfsr, CmosSng::Sobol] {
        let design = CmosDesign::new(sng);
        for op in ScOperation::ALL {
            rows.push(Row {
                design: sng.name().to_string(),
                op: op.name(),
                cost: design.op_cost(op, N),
            });
        }
    }
    for op in ScOperation::ALL {
        rows.push(Row {
            design: "ReRAM IMSNG-opt + 8-bit ADC".to_string(),
            op: op.name(),
            cost: reram_op_cost(op, N, 8, ImsngVariant::Opt, &costs),
        });
    }
    rows
}

/// The §IV-B IMSNG variant anchors: (latency ns, energy nJ) per
/// conversion for naive and opt.
#[must_use]
pub fn imsng_anchors() -> (DesignCost, DesignCost) {
    let costs = ReramCosts::calibrated();
    let naive = imsng_cost(8, ImsngVariant::Naive);
    let opt = imsng_cost(8, ImsngVariant::Opt);
    (
        DesignCost {
            latency_ns: naive.latency_ns(&costs),
            energy_nj: naive.energy_nj(&costs, N),
        },
        DesignCost {
            latency_ns: opt.latency_ns(&costs),
            energy_nj: opt.energy_nj(&costs, N),
        },
    )
}

/// Cross-checks the analytic ReRAM multiply cost against an NVMain
/// simulation of the accelerator's recorded command trace. Returns
/// `(analytic, simulated)` latency/energy.
///
/// # Errors
///
/// Propagates accelerator or simulator errors as strings (diagnostic
/// context only).
pub fn nvmain_crosscheck() -> Result<(DesignCost, DesignCost), String> {
    let mut acc = Accelerator::builder()
        .stream_len(N)
        .seed(0xC0FFEE)
        .record_trace(true)
        .build()
        .map_err(|e| e.to_string())?;
    let x = acc.encode(Fixed::from_u8(100)).map_err(|e| e.to_string())?;
    let y = acc.encode(Fixed::from_u8(200)).map_err(|e| e.to_string())?;
    let p = acc.multiply(x, y).map_err(|e| e.to_string())?;
    let _ = acc.read_value(p).map_err(|e| e.to_string())?;
    let trace = acc.trace().expect("tracing enabled").clone();
    let mut sim = Simulator::new(MemoryConfig::reram_default());
    let stats = sim.run(&trace).map_err(|e| e.to_string())?;
    let analytic = reram_op_cost(
        ScOperation::Multiply,
        N,
        8,
        ImsngVariant::Opt,
        &ReramCosts::calibrated(),
    );
    Ok((
        analytic,
        DesignCost {
            latency_ns: stats.total_time_ns,
            energy_nj: stats.total_energy_nj,
        },
    ))
}

/// Renders the full table (plus anchors) to a string.
#[must_use]
pub fn render() -> String {
    let mut out =
        String::from("Table III: hardware cost, CMOS (LFSR/Sobol) vs ReRAM designs, N = 256\n");
    out.push_str(&format!(
        "{:<30}{:<16}{:>14}{:>14}\n",
        "Design", "Operation", "Latency (ns)", "Energy (nJ)"
    ));
    for row in compute() {
        out.push_str(&format!(
            "{:<30}{:<16}{:>14.2}{:>14.2}\n",
            row.design, row.op, row.cost.latency_ns, row.cost.energy_nj
        ));
    }
    let (naive, opt) = imsng_anchors();
    out.push_str(&format!(
        "\nIMSNG-naive per conversion: {:.1} ns, {:.2} nJ (paper: 395.4 ns, 10.23 nJ)\n",
        naive.latency_ns, naive.energy_nj
    ));
    out.push_str(&format!(
        "IMSNG-opt   per conversion: {:.1} ns, {:.2} nJ (paper: 78.2 ns, 3.42 nJ)\n",
        opt.latency_ns, opt.energy_nj
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_12_rows() {
        let rows = compute();
        assert_eq!(rows.len(), 12);
        // Division dominates ReRAM latency.
        let div = rows
            .iter()
            .find(|r| r.design.contains("ReRAM") && r.op == "Division")
            .unwrap();
        assert!((div.cost.latency_ns - 12544.0).abs() < 1.0);
    }

    #[test]
    fn anchors_match_paper() {
        let (naive, opt) = imsng_anchors();
        assert!((naive.latency_ns - 395.4).abs() < 0.1);
        assert!((naive.energy_nj - 10.23).abs() < 0.1);
        assert!((opt.latency_ns - 78.2).abs() < 0.1);
        assert!((opt.energy_nj - 3.42).abs() < 0.05);
    }

    #[test]
    fn nvmain_simulation_is_consistent_with_the_model() {
        let (analytic, simulated) = nvmain_crosscheck().unwrap();
        // The trace includes TRNG refills and the result write that
        // Table III's per-op accounting excludes, so the simulated run
        // is moderately more expensive but the same order.
        assert!(simulated.latency_ns >= analytic.latency_ns * 0.8);
        assert!(simulated.latency_ns < analytic.latency_ns * 20.0);
        assert!(simulated.energy_nj >= analytic.energy_nj * 0.5);
        assert!(simulated.energy_nj < analytic.energy_nj * 20.0);
    }

    #[test]
    fn render_mentions_all_designs() {
        let text = render();
        assert!(text.contains("LFSR + Comparator"));
        assert!(text.contains("Sobol + Comparator"));
        assert!(text.contains("ReRAM IMSNG-opt"));
        assert!(text.contains("IMSNG-naive per conversion"));
    }
}
