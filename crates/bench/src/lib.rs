//! # bench — regeneration harness for every table and figure
//!
//! One module per experiment; the `src/bin/*` binaries are thin wrappers.
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table I (SBS-generation MSE) | [`table1`] | `table1` |
//! | Table II (SC-operation MSE) | [`table2`] | `table2` |
//! | Table III (hardware cost) | [`table3`] | `table3` |
//! | IMSNG naive-vs-opt anchors | [`table3`] | `imsng_compare` |
//! | Table IV (SSIM/PSNR under faults) | [`table4`] | `table4` |
//! | Fig. 4 (energy savings) | [`figures`] | `fig4` |
//! | Fig. 5 (throughput) | [`figures`] | `fig5` |
//! | Fault-rate sensitivity (extension) | [`table4`] | `fault_sweep` |
//! | PSNR-vs-endurance curves (extension) | [`endurance`] | `endurance_sweep` |

pub mod endurance;
pub mod figures;
pub mod load;
pub mod regress;
pub mod sources;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

/// Reads a `--key value` style CLI argument, falling back to a default.
#[must_use]
pub fn arg_or<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    args.windows(2)
        .find(|w| w[0] == key)
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

/// Formats one numeric table row with a fixed label column.
#[must_use]
pub fn format_row(label: &str, values: &[f64], precision: usize) -> String {
    let mut s = format!("{label:<28}");
    for v in values {
        if *v == 0.0 {
            s.push_str(&format!("{:>12}", "0"));
        } else if v.abs() < 1e-3 {
            s.push_str(&format!("{v:>12.2e}"));
        } else {
            s.push_str(&format!("{v:>12.prec$}", prec = precision));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--samples", "500", "--size", "32"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_or(&args, "--samples", 10usize), 500);
        assert_eq!(arg_or(&args, "--size", 10usize), 32);
        assert_eq!(arg_or(&args, "--missing", 7usize), 7);
    }

    #[test]
    fn row_formatting() {
        let row = format_row("IMSNG", &[0.5, 0.000012], 3);
        assert!(row.contains("IMSNG"));
        assert!(row.contains("0.500"));
        assert!(row.contains("e-5") || row.contains("1.20e-5"));
    }
}
