//! IMSNG — in-memory stochastic number generation (§III-A).
//!
//! The paper decouples random-number generation from bit-stream
//! generation: an in-ReRAM TRNG fills `M` rows with 50%-ones random bits
//! (row `i` holding bit `i` of `N` column-parallel random numbers), and
//! the greater-than network of [`crate::comparator`] compares a binary
//! operand against all `N` random numbers simultaneously, producing the
//! whole `N`-bit stochastic stream in `5·M` sensing steps.
//!
//! Three implementation variants differ only in where intermediate
//! signals live:
//!
//! | Variant | Intermediate writes | Mechanism |
//! |---|---|---|
//! | [`ImsngVariant::Baseline`] | `4·M` | write every intermediate row back |
//! | [`ImsngVariant::Naive`] | `2·M` | sensed values fed back as bitline voltages |
//! | [`ImsngVariant::Opt`] | `0` | running flag/result kept in the L0/L1 write-driver latches |

use crate::comparator::ComparatorSchedule;
use crate::error::ImscError;
use reram::array::CrossbarArray;
use reram::energy::ReramCosts;
use reram::latch::WriteDriverLatches;
use reram::scouting::{ScoutingLogic, SlOp};
use sc_core::{BitStream, Fixed};

/// The IMSNG implementation variant (write-overhead strategy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImsngVariant {
    /// Write every intermediate signal back to the array (4·M writes).
    Baseline,
    /// Bitline-voltage feedback for combinational intermediates
    /// (2·M writes) — "IMSNG-naive" in the paper.
    Naive,
    /// Latch-predicated sensing, no intermediate writes — "IMSNG-opt".
    Opt,
}

/// Cost record of one IMSNG conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImsngCost {
    /// Scouting-logic sensing steps executed (5·M).
    pub sense_ops: u64,
    /// Intermediate array writes (variant dependent).
    pub intermediate_writes: u64,
    /// Final stochastic-bit-stream row writes (always 1 per conversion).
    pub sbs_writes: u64,
    /// TRNG rows consumed (M rows of fresh entropy).
    pub trng_rows: u64,
}

impl ImsngCost {
    /// Latency of this conversion in nanoseconds under the substrate
    /// timing constants (sensing is row-parallel; writes serialize).
    #[must_use]
    pub fn latency_ns(&self, costs: &ReramCosts) -> f64 {
        self.sense_ops as f64 * costs.timings.t_sense_ns
            + self.intermediate_writes as f64 * costs.timings.t_write_ns
    }

    /// Energy of this conversion in nanojoules for `width`-bit rows.
    #[must_use]
    pub fn energy_nj(&self, costs: &ReramCosts, width: usize) -> f64 {
        let w = width as f64;
        (self.sense_ops as f64 * w * costs.energies.e_sense_bit_pj
            + (self.intermediate_writes + self.sbs_writes) as f64
                * w
                * costs.energies.e_write_bit_pj)
            / 1000.0
    }

    /// Accumulates another conversion's cost.
    pub fn accumulate(&mut self, other: &ImsngCost) {
        self.sense_ops += other.sense_ops;
        self.intermediate_writes += other.intermediate_writes;
        self.sbs_writes += other.sbs_writes;
        self.trng_rows += other.trng_rows;
    }
}

/// The IMSNG conversion engine.
///
/// # Example
///
/// ```
/// use imsc::imsng::{Imsng, ImsngVariant};
/// use reram::array::CrossbarArray;
/// use reram::scouting::ScoutingLogic;
/// use reram::trng::TrngEngine;
/// use sc_core::Fixed;
///
/// # fn main() -> Result<(), imsc::ImscError> {
/// let mut array = CrossbarArray::pristine(16, 256, 3);
/// let mut trng = TrngEngine::ideal(64, 4);
/// let mut sl = ScoutingLogic::ideal();
/// let imsng = Imsng::new(ImsngVariant::Opt, 8)?;
///
/// // Fill rows 0..8 with random bits and convert 0.5 into row 8.
/// let rn_rows: Vec<usize> = (0..8).collect();
/// for &r in &rn_rows {
///     trng.fill_row(&mut array, r)?;
/// }
/// let cost = imsng.generate(&mut array, &mut sl, &rn_rows, Fixed::from_u8(128), 8)?;
/// assert_eq!(cost.sense_ops, 40); // 5·M
/// let sbs = array.read_row(8).map_err(imsc::ImscError::from)?;
/// assert!((sbs.value() - 0.5).abs() < 0.15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Imsng {
    variant: ImsngVariant,
    segment_bits: u32,
}

impl Imsng {
    /// Creates an engine with segment size `segment_bits` (the paper's
    /// `M`, swept over 5..=9 in Table I).
    ///
    /// # Errors
    ///
    /// Returns [`ImscError::InvalidConfig`] if `segment_bits` is not in
    /// `1..=16`.
    pub fn new(variant: ImsngVariant, segment_bits: u32) -> Result<Self, ImscError> {
        if segment_bits == 0 || segment_bits > 16 {
            return Err(ImscError::InvalidConfig("segment_bits must be in 1..=16"));
        }
        Ok(Imsng {
            variant,
            segment_bits,
        })
    }

    /// The configured variant.
    #[must_use]
    pub fn variant(&self) -> ImsngVariant {
        self.variant
    }

    /// The comparator segment width `M`.
    #[must_use]
    pub fn segment_bits(&self) -> u32 {
        self.segment_bits
    }

    /// Converts `operand` into a stochastic bit-stream using the random
    /// bits stored in `rn_rows` (row `i` = bit `i`, MSB first, of the
    /// column-parallel random numbers), storing the result in `dest_row`.
    ///
    /// The stream width equals the array width; bit `j` of the result is
    /// `operand > RN_j`, so `P(1) = ⌈operand·2^M⌉ / 2^M` up to the
    /// randomness of the TRNG rows.
    ///
    /// # Errors
    ///
    /// * [`ImscError::InvalidConfig`] — `rn_rows.len() != segment_bits`.
    /// * [`ImscError::Device`] — array access failures.
    /// * [`ImscError::Stochastic`] — operand re-quantization failures.
    pub fn generate(
        &self,
        array: &mut CrossbarArray,
        sl: &mut ScoutingLogic,
        rn_rows: &[usize],
        operand: Fixed,
        dest_row: usize,
    ) -> Result<ImsngCost, ImscError> {
        if rn_rows.len() != self.segment_bits as usize {
            return Err(ImscError::InvalidConfig(
                "rn_rows must supply exactly segment_bits rows",
            ));
        }
        let m = self.segment_bits;
        let operand_m = operand.requantize(m)?;
        let cols = array.cols();
        let mut latches = WriteDriverLatches::new(cols);
        // L0 accumulates GT; L1 holds FFlag (starts all-ones via new()).

        for (i, &rn_row) in rn_rows.iter().enumerate() {
            let a_bit = (operand_m.value() >> (m - 1 - i as u32)) & 1 == 1;
            // Sense the RN bit row. A NOT read is one scouting step and
            // carries the injected fault behaviour of the sensing path.
            let rn_not = sl.execute_mut(array, SlOp::Not, &[rn_row])?;
            let rn = rn_not.not();
            // win = A_i AND NOT RN_i (all-zero when A_i = 0).
            let win = if a_bit {
                rn_not
            } else {
                BitStream::zeros(cols)
            };
            // GT ← GT OR (FFlag AND win)   [predicated accumulate]
            latches.accumulate(&win)?;
            // FFlag ← FFlag AND NOT diff; diff = A_i XOR RN_i.
            let eq = if a_bit { rn } else { rn.not() };
            latches.mask_flags(&eq)?;
        }

        let sbs = latches.data().clone();
        array.write_row(dest_row, &sbs)?;

        let schedule = ComparatorSchedule::new(m, self.variant);
        Ok(ImsngCost {
            sense_ops: schedule.sense_ops() as u64,
            intermediate_writes: schedule.array_writes() as u64,
            sbs_writes: 1,
            trng_rows: u64::from(m),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram::faults::FaultRates;
    use reram::trng::TrngEngine;

    fn setup(m: u32, cols: usize, seed: u64) -> (CrossbarArray, TrngEngine, Vec<usize>) {
        let mut array = CrossbarArray::pristine(m as usize + 4, cols, seed);
        let mut trng = TrngEngine::ideal(64, seed ^ 0xABCD);
        let rn_rows: Vec<usize> = (0..m as usize).collect();
        for &r in &rn_rows {
            trng.fill_row(&mut array, r).unwrap();
        }
        (array, trng, rn_rows)
    }

    #[test]
    fn generated_stream_tracks_target_probability() {
        let (mut array, _trng, rn_rows) = setup(8, 4096, 10);
        let mut sl = ScoutingLogic::ideal();
        let imsng = Imsng::new(ImsngVariant::Opt, 8).unwrap();
        for &x in &[32u8, 128, 224] {
            let cost = imsng
                .generate(&mut array, &mut sl, &rn_rows, Fixed::from_u8(x), 10)
                .unwrap();
            assert_eq!(cost.sense_ops, 40);
            let sbs = array.read_row(10).unwrap();
            let expect = f64::from(x) / 256.0;
            assert!(
                (sbs.value() - expect).abs() < 0.03,
                "x={x}: {} vs {expect}",
                sbs.value()
            );
        }
    }

    #[test]
    fn extreme_operands() {
        let (mut array, _trng, rn_rows) = setup(8, 512, 11);
        let mut sl = ScoutingLogic::ideal();
        let imsng = Imsng::new(ImsngVariant::Opt, 8).unwrap();
        imsng
            .generate(&mut array, &mut sl, &rn_rows, Fixed::from_u8(0), 9)
            .unwrap();
        assert_eq!(array.read_row(9).unwrap().count_ones(), 0);
        imsng
            .generate(&mut array, &mut sl, &rn_rows, Fixed::from_u8(255), 9)
            .unwrap();
        // 255/256 ≈ 1: nearly every random number is below the operand.
        assert!(array.read_row(9).unwrap().value() > 0.95);
    }

    #[test]
    fn shared_rn_rows_produce_correlated_streams() {
        let (mut array, _trng, rn_rows) = setup(8, 2048, 12);
        let mut sl = ScoutingLogic::ideal();
        let imsng = Imsng::new(ImsngVariant::Opt, 8).unwrap();
        imsng
            .generate(&mut array, &mut sl, &rn_rows, Fixed::from_u8(80), 9)
            .unwrap();
        let sx = array.read_row(9).unwrap();
        imsng
            .generate(&mut array, &mut sl, &rn_rows, Fixed::from_u8(160), 10)
            .unwrap();
        let sy = array.read_row(10).unwrap();
        // x < y with shared randomness: every x-one is a y-one.
        let both = sx.and(&sy).unwrap();
        assert_eq!(both.count_ones(), sx.count_ones());
        assert!(sc_core::correlation::scc(&sx, &sy).unwrap() > 0.99);
    }

    #[test]
    fn cost_model_matches_variant_write_counts() {
        for (variant, writes) in [
            (ImsngVariant::Baseline, 32),
            (ImsngVariant::Naive, 16),
            (ImsngVariant::Opt, 0),
        ] {
            let (mut array, _trng, rn_rows) = setup(8, 64, 13);
            let mut sl = ScoutingLogic::ideal();
            let imsng = Imsng::new(variant, 8).unwrap();
            let cost = imsng
                .generate(&mut array, &mut sl, &rn_rows, Fixed::from_u8(99), 9)
                .unwrap();
            assert_eq!(cost.intermediate_writes, writes, "{variant:?}");
            assert_eq!(cost.sbs_writes, 1);
            assert_eq!(cost.trng_rows, 8);
        }
    }

    #[test]
    fn opt_anchor_costs_reproduced() {
        let costs = ReramCosts::calibrated();
        let c = ImsngCost {
            sense_ops: 40,
            intermediate_writes: 0,
            sbs_writes: 1,
            trng_rows: 8,
        };
        assert!((c.latency_ns(&costs) - 78.2).abs() < 0.01);
        assert!((c.energy_nj(&costs, 256) - 3.42).abs() < 0.03);
        let naive = ImsngCost {
            sense_ops: 40,
            intermediate_writes: 16,
            sbs_writes: 1,
            trng_rows: 8,
        };
        assert!((naive.latency_ns(&costs) - 395.4).abs() < 0.1);
        assert!((naive.energy_nj(&costs, 256) - 10.23).abs() < 0.1);
    }

    #[test]
    fn narrow_segments_quantize() {
        let (mut array, _trng, rn_rows) = setup(5, 4096, 14);
        let mut sl = ScoutingLogic::ideal();
        let imsng = Imsng::new(ImsngVariant::Opt, 5).unwrap();
        imsng
            .generate(&mut array, &mut sl, &rn_rows, Fixed::from_u8(100), 6)
            .unwrap();
        let sbs = array.read_row(6).unwrap();
        // 100/256 requantized to 5 bits: round(100/8)/32 = 13/32 ≈ 0.406.
        assert!((sbs.value() - 13.0 / 32.0).abs() < 0.03, "{}", sbs.value());
    }

    #[test]
    fn faults_perturb_generation() {
        let (mut array, _trng, rn_rows) = setup(8, 1024, 15);
        let mut sl = ScoutingLogic::with_faults(FaultRates::uniform(0.05), 9);
        let imsng = Imsng::new(ImsngVariant::Opt, 8).unwrap();
        imsng
            .generate(&mut array, &mut sl, &rn_rows, Fixed::from_u8(128), 9)
            .unwrap();
        let noisy = array.read_row(9).unwrap();
        // Value still roughly tracks under 5% sensing faults (SC
        // robustness) but the stream differs from the fault-free one.
        assert!((noisy.value() - 0.5).abs() < 0.1, "{}", noisy.value());
        assert!(sl.faults_injected() > 0);
    }

    #[test]
    fn wrong_row_count_rejected() {
        let (mut array, _trng, _) = setup(8, 64, 16);
        let mut sl = ScoutingLogic::ideal();
        let imsng = Imsng::new(ImsngVariant::Opt, 8).unwrap();
        let e = imsng.generate(&mut array, &mut sl, &[0, 1, 2], Fixed::from_u8(1), 9);
        assert!(matches!(e, Err(ImscError::InvalidConfig(_))));
    }

    #[test]
    fn invalid_segment_bits_rejected() {
        assert!(Imsng::new(ImsngVariant::Opt, 0).is_err());
        assert!(Imsng::new(ImsngVariant::Opt, 17).is_err());
    }
}
