//! Program IR and planner: declarative SC kernels over virtual registers.
//!
//! The imperative [`Accelerator`] API forces every caller to re-implement
//! the same cross-cutting concerns — row lifetimes (`release` at the
//! right moment or hit [`ImscError::OutOfRows`]), RN-refresh scheduling
//! (`refresh_rn_rows` at exactly the independence points), batching, and
//! tile dispatch. [`Program`] lifts a kernel into an explicit op graph
//! over *virtual registers*, and [`Plan`] lowers it back onto an
//! accelerator:
//!
//! * **Register allocation.** The planner computes the last use of every
//!   virtual register and releases its crossbar row eagerly, immediately
//!   after the op that consumes it last. Callers never call `release`,
//!   and programs whose *naive* row demand (every stream kept live to the
//!   end) exceeds the array fit whenever their lifetime-aware peak does
//!   ([`Plan::peak_rows`] vs [`Plan::naive_peak_rows`]).
//! * **Refresh groups.** Every encode op carries the program's current
//!   [`RefreshGroup`] tag. Under [`RnRefreshPolicy::Explicit`] the
//!   planner calls [`Accelerator::refresh_rn_rows`] exactly where two
//!   consecutive encode ops carry *different* tags — the declarative form
//!   of the explicit within-pixel refresh points the image kernels used
//!   to hand-plumb. Under the automatic policies (`PerEncode`,
//!   `EveryN`) the tags are inert and the accelerator schedules its own
//!   refreshes, so one program runs bit-identically to the imperative
//!   call sequence under every policy.
//! * **Encode coalescing.** Runs of consecutive single-value encodes in
//!   one refresh group lower to one [`Accelerator::encode_many`] batch.
//! * **Data-dependent division.** [`Program::divide_or`] gives CORDIV a
//!   fallback constant: a stochastic all-zero divisor poisons the
//!   destination register with the constant instead of aborting the
//!   whole program, matching the per-pixel error handling of the matting
//!   kernel (the failed division's sense reads stay charged, nothing
//!   else is).
//!
//! Lowering preserves the accelerator's observable behaviour exactly:
//! values, cost ledger, command trace, and RN epoch all match the
//! equivalent imperative call sequence (differential-tested per kernel in
//! `imgproc/tests/program_vs_eager.rs` and per op in
//! `tests/program.rs`). Programs are reusable: one `Program` can be
//! planned once and executed on many accelerators (e.g. one per tile).
//!
//! # Example
//!
//! ```
//! use imsc::engine::Accelerator;
//! use imsc::program::Program;
//! use sc_core::Fixed;
//!
//! # fn main() -> Result<(), imsc::ImscError> {
//! let mut p = Program::new();
//! let x = p.encode(Fixed::from_u8(192));
//! let y = p.encode(Fixed::from_u8(128));
//! let prod = p.multiply(x, y);
//! p.read(prod);
//! let mut acc = Accelerator::builder().stream_len(4096).seed(1).build()?;
//! let out = p.run_on(&mut acc)?;
//! assert!((out[0] - 0.375).abs() < 0.05);
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod opt;
pub mod sched;

use crate::engine::{Accelerator, StreamHandle};
use crate::error::ImscError;
use crate::layout::RnRefreshPolicy;
use sc_core::{Fixed, ScError};

/// Allocates a fresh process-unique program id (shared with
/// [`cache::ValueTape`], whose fake registers must never collide with a
/// real program's).
pub(crate) fn next_program_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_PROGRAM_ID: AtomicU64 = AtomicU64::new(0);
    NEXT_PROGRAM_ID.fetch_add(1, Ordering::Relaxed)
}

/// A virtual register naming one stochastic stream in a [`Program`].
///
/// Registers are created by the program's emitter methods in definition
/// order and are in SSA form: each is defined by exactly one op. The
/// planner maps live registers onto crossbar rows and recycles the rows
/// as registers die. A register also remembers which program defined it
/// (programs carry process-unique ids), so feeding a register to a
/// different program's emitter is caught at emission time instead of
/// silently aliasing another stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VReg {
    program: u64,
    index: usize,
}

impl VReg {
    /// The register's dense index in definition order (within its
    /// defining program).
    #[must_use]
    pub fn index(self) -> usize {
        self.index
    }
}

/// A caller-chosen RN-realization tag.
///
/// Encode ops tagged with the *same* group may share one random-number
/// realization; a tag change between consecutive encode ops declares an
/// independence point, where the planner schedules a
/// [`Accelerator::refresh_rn_rows`] (under [`RnRefreshPolicy::Explicit`];
/// the automatic policies ignore tags and schedule their own refreshes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RefreshGroup(pub u64);

/// One SC operation of a [`Program`], over virtual registers.
///
/// Compute variants mirror the corresponding [`Accelerator`] methods;
/// `Read` / `ReadConst` append to the program's output vector.
#[derive(Debug, Clone)]
pub enum Op {
    /// IMSNG-encode `value` into `dst` (fresh correlation domain).
    Encode {
        /// Destination register.
        dst: VReg,
        /// Binary operand.
        value: Fixed,
    },
    /// Encode all `values` against one shared RN realization (one
    /// correlation domain, as the correlated-input ops require).
    EncodeCorrelated {
        /// Destination registers, one per operand.
        dsts: Vec<VReg>,
        /// Binary operands.
        values: Vec<Fixed>,
    },
    /// Single-step ~0.5 TRNG select row (own correlation domain,
    /// independent of every RN realization).
    TrngSelect {
        /// Destination register.
        dst: VReg,
    },
    /// SC multiplication (AND over uncorrelated streams).
    Multiply {
        /// Destination register.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// MAJ scaled addition over uncorrelated streams.
    ScaledAdd {
        /// Destination register.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// OR approximate addition over uncorrelated streams.
    ApproxAdd {
        /// Destination register.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// XOR absolute subtraction over correlated streams.
    AbsSub {
        /// Destination register.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// AND minimum over correlated streams.
    Minimum {
        /// Destination register.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// OR maximum over correlated streams.
    Maximum {
        /// Destination register.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// CORDIV division over correlated streams. With `on_zero` set, a
    /// stochastic all-zero divisor poisons `dst` with the constant
    /// instead of failing the program; `dst` may then only be `Read`.
    Divide {
        /// Destination register.
        dst: VReg,
        /// Dividend.
        a: VReg,
        /// Divisor.
        b: VReg,
        /// Fallback output value for an all-zero divisor stream.
        on_zero: Option<f64>,
    },
    /// Inverted-read complement (stays in the operand's domain).
    Complement {
        /// Destination register.
        dst: VReg,
        /// Operand.
        a: VReg,
    },
    /// Directed MAJ blend of two correlated streams with an independent
    /// select.
    Blend {
        /// Destination register.
        dst: VReg,
        /// First correlated operand.
        a: VReg,
        /// Second correlated operand.
        b: VReg,
        /// Independent select stream.
        sel: VReg,
    },
    /// ADC read-out of `src`, appended to the program outputs.
    Read {
        /// Source register.
        src: VReg,
    },
    /// A constant program output (no hardware activity) — e.g. a pixel
    /// the emitter resolves at program-build time.
    ReadConst {
        /// The output value.
        value: f64,
    },
}

impl Op {
    /// Registers this op defines.
    fn defs(&self) -> &[VReg] {
        match self {
            Op::Encode { dst, .. }
            | Op::TrngSelect { dst }
            | Op::Multiply { dst, .. }
            | Op::ScaledAdd { dst, .. }
            | Op::ApproxAdd { dst, .. }
            | Op::AbsSub { dst, .. }
            | Op::Minimum { dst, .. }
            | Op::Maximum { dst, .. }
            | Op::Divide { dst, .. }
            | Op::Complement { dst, .. }
            | Op::Blend { dst, .. } => std::slice::from_ref(dst),
            Op::EncodeCorrelated { dsts, .. } => dsts,
            Op::Read { .. } | Op::ReadConst { .. } => &[],
        }
    }

    /// Registers this op consumes.
    fn uses(&self) -> [Option<VReg>; 3] {
        match *self {
            Op::Multiply { a, b, .. }
            | Op::ScaledAdd { a, b, .. }
            | Op::ApproxAdd { a, b, .. }
            | Op::AbsSub { a, b, .. }
            | Op::Minimum { a, b, .. }
            | Op::Maximum { a, b, .. }
            | Op::Divide { a, b, .. } => [Some(a), Some(b), None],
            Op::Complement { a, .. } => [Some(a), None, None],
            Op::Blend { a, b, sel, .. } => [Some(a), Some(b), Some(sel)],
            Op::Read { src } => [Some(src), None, None],
            Op::Encode { .. }
            | Op::EncodeCorrelated { .. }
            | Op::TrngSelect { .. }
            | Op::ReadConst { .. } => [None, None, None],
        }
    }

    /// Whether this op encodes against the RN rows (and therefore
    /// participates in refresh-group boundaries).
    fn is_encode(&self) -> bool {
        matches!(self, Op::Encode { .. } | Op::EncodeCorrelated { .. })
    }

    /// Clones the op with every register (defs and uses) mapped through
    /// `f` — the per-variant register shape lives here, next to
    /// [`Op::defs`] / [`Op::uses`], so re-indexing passes (the slice
    /// partitioner) never enumerate variants themselves.
    fn map_regs(&self, f: impl Fn(&VReg) -> VReg) -> Op {
        match self {
            Op::Encode { dst, value } => Op::Encode {
                dst: f(dst),
                value: *value,
            },
            Op::EncodeCorrelated { dsts, values } => Op::EncodeCorrelated {
                dsts: dsts.iter().map(&f).collect(),
                values: values.clone(),
            },
            Op::TrngSelect { dst } => Op::TrngSelect { dst: f(dst) },
            Op::Multiply { dst, a, b } => Op::Multiply {
                dst: f(dst),
                a: f(a),
                b: f(b),
            },
            Op::ScaledAdd { dst, a, b } => Op::ScaledAdd {
                dst: f(dst),
                a: f(a),
                b: f(b),
            },
            Op::ApproxAdd { dst, a, b } => Op::ApproxAdd {
                dst: f(dst),
                a: f(a),
                b: f(b),
            },
            Op::AbsSub { dst, a, b } => Op::AbsSub {
                dst: f(dst),
                a: f(a),
                b: f(b),
            },
            Op::Minimum { dst, a, b } => Op::Minimum {
                dst: f(dst),
                a: f(a),
                b: f(b),
            },
            Op::Maximum { dst, a, b } => Op::Maximum {
                dst: f(dst),
                a: f(a),
                b: f(b),
            },
            Op::Divide { dst, a, b, on_zero } => Op::Divide {
                dst: f(dst),
                a: f(a),
                b: f(b),
                on_zero: *on_zero,
            },
            Op::Complement { dst, a } => Op::Complement {
                dst: f(dst),
                a: f(a),
            },
            Op::Blend { dst, a, b, sel } => Op::Blend {
                dst: f(dst),
                a: f(a),
                b: f(b),
                sel: f(sel),
            },
            Op::Read { src } => Op::Read { src: f(src) },
            Op::ReadConst { value } => Op::ReadConst { value: *value },
        }
    }
}

/// Last-using op index per register over the dense SSA space (a
/// never-used register dies at its defining op), validating
/// def-before-use. The single source of truth for register liveness:
/// both the planner's release schedule ([`Plan::of`]) and the slice
/// partitioner's wavefront cuts ([`sched::wavefronts`]) consume it, so
/// the two can never disagree about where a register is live.
fn op_last_uses(program: &Program) -> Result<Vec<usize>, ImscError> {
    // Emitters define registers in order, so a register is live at op
    // `i` iff its index is below the def-count before `i`.
    let mut defined = 0usize;
    let mut last_use: Vec<usize> = Vec::with_capacity(program.regs);
    for (i, op) in program.ops.iter().enumerate() {
        for r in op.uses().into_iter().flatten() {
            if r.index >= defined {
                return Err(ImscError::InvalidConfig(
                    "program uses a register before its defining op",
                ));
            }
            last_use[r.index] = i;
        }
        for &d in op.defs() {
            debug_assert_eq!(d.index, defined, "emitters define registers densely");
            defined += 1;
            // A never-used register dies right after its def.
            last_use.push(i);
        }
    }
    debug_assert_eq!(defined, program.regs);
    Ok(last_use)
}

/// A declarative SC kernel: an op graph over virtual registers with
/// refresh-group tags. Built by the emitter methods, lowered by
/// [`Program::plan`] / [`Program::run_on`]. See the [module docs]
/// (self).
#[derive(Debug, Clone)]
pub struct Program {
    /// Process-unique id stamped into this program's [`VReg`]s, so a
    /// register handed to a *different* program's emitter is rejected
    /// instead of silently aliasing that program's same-index stream.
    /// Clones share the id (their register spaces are identical).
    id: u64,
    ops: Vec<Op>,
    /// Refresh-group tag per op (recorded for every op; only encode ops
    /// consult it).
    groups: Vec<RefreshGroup>,
    regs: usize,
    outputs: usize,
    group: RefreshGroup,
}

impl Default for Program {
    fn default() -> Self {
        Program::new()
    }
}

impl Program {
    /// An empty program (current refresh group 0).
    #[must_use]
    pub fn new() -> Self {
        Program {
            id: next_program_id(),
            ops: Vec::new(),
            groups: Vec::new(),
            regs: 0,
            outputs: 0,
            group: RefreshGroup::default(),
        }
    }

    /// Number of ops emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no ops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of virtual registers defined.
    #[must_use]
    pub fn regs(&self) -> usize {
        self.regs
    }

    /// Number of output values (`read` + `read_const` ops).
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// The ops in emission order.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The current refresh group (applied to subsequently emitted ops).
    #[must_use]
    pub fn current_group(&self) -> RefreshGroup {
        self.group
    }

    /// Starts a new refresh group and returns it. Subsequent encode ops
    /// carry the new tag, so the planner schedules a refresh between the
    /// previous encode and the next (under
    /// [`RnRefreshPolicy::Explicit`]).
    pub fn next_group(&mut self) -> RefreshGroup {
        self.group = RefreshGroup(self.group.0 + 1);
        self.group
    }

    /// Sets the current refresh group to an arbitrary caller-chosen tag.
    pub fn set_group(&mut self, group: RefreshGroup) {
        self.group = group;
    }

    fn fresh_reg(&mut self) -> VReg {
        let r = VReg {
            program: self.id,
            index: self.regs,
        };
        self.regs += 1;
        r
    }

    fn check_reg(&self, r: VReg) {
        assert!(
            r.program == self.id && r.index < self.regs,
            "virtual register {} does not belong to this program",
            r.index
        );
    }

    fn push(&mut self, op: Op) {
        self.groups.push(self.group);
        self.ops.push(op);
    }

    /// Emits an IMSNG encode of `value` (fresh correlation domain).
    pub fn encode(&mut self, value: Fixed) -> VReg {
        let dst = self.fresh_reg();
        self.push(Op::Encode { dst, value });
        dst
    }

    /// Emits a correlated encode batch: all `values` share one RN
    /// realization and one correlation domain.
    ///
    /// # Panics
    ///
    /// Panics on an empty operand list.
    pub fn encode_correlated(&mut self, values: &[Fixed]) -> Vec<VReg> {
        assert!(
            !values.is_empty(),
            "encode_correlated needs at least one operand"
        );
        let dsts: Vec<VReg> = values.iter().map(|_| self.fresh_reg()).collect();
        self.push(Op::EncodeCorrelated {
            dsts: dsts.clone(),
            values: values.to_vec(),
        });
        dsts
    }

    /// Emits a single-step ~0.5 TRNG select row.
    pub fn trng_select(&mut self) -> VReg {
        let dst = self.fresh_reg();
        self.push(Op::TrngSelect { dst });
        dst
    }

    fn binary(&mut self, a: VReg, b: VReg, make: impl FnOnce(VReg, VReg, VReg) -> Op) -> VReg {
        self.check_reg(a);
        self.check_reg(b);
        let dst = self.fresh_reg();
        self.push(make(dst, a, b));
        dst
    }

    /// Emits an SC multiplication `a·b` (uncorrelated operands).
    pub fn multiply(&mut self, a: VReg, b: VReg) -> VReg {
        self.binary(a, b, |dst, a, b| Op::Multiply { dst, a, b })
    }

    /// Emits a MAJ scaled addition `(a+b)/2` (uncorrelated operands).
    pub fn scaled_add(&mut self, a: VReg, b: VReg) -> VReg {
        self.binary(a, b, |dst, a, b| Op::ScaledAdd { dst, a, b })
    }

    /// Emits an OR approximate addition (uncorrelated operands).
    pub fn approx_add(&mut self, a: VReg, b: VReg) -> VReg {
        self.binary(a, b, |dst, a, b| Op::ApproxAdd { dst, a, b })
    }

    /// Emits an XOR absolute subtraction `|a−b|` (correlated operands).
    pub fn abs_subtract(&mut self, a: VReg, b: VReg) -> VReg {
        self.binary(a, b, |dst, a, b| Op::AbsSub { dst, a, b })
    }

    /// Emits an AND minimum (correlated operands).
    pub fn minimum(&mut self, a: VReg, b: VReg) -> VReg {
        self.binary(a, b, |dst, a, b| Op::Minimum { dst, a, b })
    }

    /// Emits an OR maximum (correlated operands).
    pub fn maximum(&mut self, a: VReg, b: VReg) -> VReg {
        self.binary(a, b, |dst, a, b| Op::Maximum { dst, a, b })
    }

    /// Emits a CORDIV division `a/b` (correlated operands, `a ≤ b`); an
    /// all-zero divisor stream fails the program.
    pub fn divide(&mut self, a: VReg, b: VReg) -> VReg {
        self.binary(a, b, |dst, a, b| Op::Divide {
            dst,
            a,
            b,
            on_zero: None,
        })
    }

    /// Emits a CORDIV division with a fallback: an all-zero divisor
    /// stream poisons the destination with `on_zero` instead of failing.
    /// A poisoned register may only be consumed by [`Program::read`].
    pub fn divide_or(&mut self, a: VReg, b: VReg, on_zero: f64) -> VReg {
        self.binary(a, b, |dst, a, b| Op::Divide {
            dst,
            a,
            b,
            on_zero: Some(on_zero),
        })
    }

    /// Emits an inverted-read complement `1−a`.
    pub fn complement(&mut self, a: VReg) -> VReg {
        self.check_reg(a);
        let dst = self.fresh_reg();
        self.push(Op::Complement { dst, a });
        dst
    }

    /// Emits a directed MAJ blend of correlated `a`, `b` with the
    /// independent select `sel`.
    pub fn blend(&mut self, a: VReg, b: VReg, sel: VReg) -> VReg {
        self.check_reg(a);
        self.check_reg(b);
        self.check_reg(sel);
        let dst = self.fresh_reg();
        self.push(Op::Blend { dst, a, b, sel });
        dst
    }

    /// Emits an ADC read-out of `src`, returning the output's index in
    /// the result vector of [`Plan::execute`].
    pub fn read(&mut self, src: VReg) -> usize {
        self.check_reg(src);
        let idx = self.outputs;
        self.outputs += 1;
        self.push(Op::Read { src });
        idx
    }

    /// Emits a constant output value (no hardware activity), returning
    /// its output index.
    pub fn read_const(&mut self, value: f64) -> usize {
        let idx = self.outputs;
        self.outputs += 1;
        self.push(Op::ReadConst { value });
        idx
    }

    /// Plans the program: last-use analysis, eager-release schedule,
    /// refresh-group boundaries, encode coalescing, and row-demand
    /// accounting.
    ///
    /// # Errors
    ///
    /// [`ImscError::InvalidConfig`] for a malformed program (a register
    /// used before its defining op).
    pub fn plan(&self) -> Result<Plan<'_>, ImscError> {
        Plan::of(self)
    }

    /// Plans and executes the program on `acc` — see [`Plan::execute`].
    ///
    /// # Errors
    ///
    /// Planning or execution errors.
    pub fn run_on(&self, acc: &mut Accelerator) -> Result<Vec<f64>, ImscError> {
        self.plan()?.execute(acc)
    }
}

/// The emitter surface of [`Program`], abstracted so one generic kernel
/// emitter can drive either a real program or a lightweight recorder
/// ([`cache::ValueTape`], which captures only the op *shape* and the
/// value stream — the template cache's key and bindings — without
/// allocating any ops). Statically dispatched; `Program` implements it
/// by delegating to its inherent methods.
pub trait ProgramSink {
    /// See [`Program::encode`].
    fn encode(&mut self, value: Fixed) -> VReg;
    /// See [`Program::encode_correlated`].
    fn encode_correlated(&mut self, values: &[Fixed]) -> Vec<VReg>;
    /// See [`Program::trng_select`].
    fn trng_select(&mut self) -> VReg;
    /// See [`Program::multiply`].
    fn multiply(&mut self, a: VReg, b: VReg) -> VReg;
    /// See [`Program::scaled_add`].
    fn scaled_add(&mut self, a: VReg, b: VReg) -> VReg;
    /// See [`Program::approx_add`].
    fn approx_add(&mut self, a: VReg, b: VReg) -> VReg;
    /// See [`Program::abs_subtract`].
    fn abs_subtract(&mut self, a: VReg, b: VReg) -> VReg;
    /// See [`Program::minimum`].
    fn minimum(&mut self, a: VReg, b: VReg) -> VReg;
    /// See [`Program::maximum`].
    fn maximum(&mut self, a: VReg, b: VReg) -> VReg;
    /// See [`Program::divide`].
    fn divide(&mut self, a: VReg, b: VReg) -> VReg;
    /// See [`Program::divide_or`].
    fn divide_or(&mut self, a: VReg, b: VReg, on_zero: f64) -> VReg;
    /// See [`Program::complement`].
    fn complement(&mut self, a: VReg) -> VReg;
    /// See [`Program::blend`].
    fn blend(&mut self, a: VReg, b: VReg, sel: VReg) -> VReg;
    /// See [`Program::read`].
    fn read(&mut self, src: VReg) -> usize;
    /// See [`Program::read_const`].
    fn read_const(&mut self, value: f64) -> usize;
    /// See [`Program::next_group`].
    fn next_group(&mut self) -> RefreshGroup;
    /// See [`Program::set_group`].
    fn set_group(&mut self, group: RefreshGroup);
}

impl ProgramSink for Program {
    fn encode(&mut self, value: Fixed) -> VReg {
        Program::encode(self, value)
    }
    fn encode_correlated(&mut self, values: &[Fixed]) -> Vec<VReg> {
        Program::encode_correlated(self, values)
    }
    fn trng_select(&mut self) -> VReg {
        Program::trng_select(self)
    }
    fn multiply(&mut self, a: VReg, b: VReg) -> VReg {
        Program::multiply(self, a, b)
    }
    fn scaled_add(&mut self, a: VReg, b: VReg) -> VReg {
        Program::scaled_add(self, a, b)
    }
    fn approx_add(&mut self, a: VReg, b: VReg) -> VReg {
        Program::approx_add(self, a, b)
    }
    fn abs_subtract(&mut self, a: VReg, b: VReg) -> VReg {
        Program::abs_subtract(self, a, b)
    }
    fn minimum(&mut self, a: VReg, b: VReg) -> VReg {
        Program::minimum(self, a, b)
    }
    fn maximum(&mut self, a: VReg, b: VReg) -> VReg {
        Program::maximum(self, a, b)
    }
    fn divide(&mut self, a: VReg, b: VReg) -> VReg {
        Program::divide(self, a, b)
    }
    fn divide_or(&mut self, a: VReg, b: VReg, on_zero: f64) -> VReg {
        Program::divide_or(self, a, b, on_zero)
    }
    fn complement(&mut self, a: VReg) -> VReg {
        Program::complement(self, a)
    }
    fn blend(&mut self, a: VReg, b: VReg, sel: VReg) -> VReg {
        Program::blend(self, a, b, sel)
    }
    fn read(&mut self, src: VReg) -> usize {
        Program::read(self, src)
    }
    fn read_const(&mut self, value: f64) -> usize {
        Program::read_const(self, value)
    }
    fn next_group(&mut self) -> RefreshGroup {
        Program::next_group(self)
    }
    fn set_group(&mut self, group: RefreshGroup) {
        Program::set_group(self, group);
    }
}

/// One lowering step: either a single op or a coalesced run of
/// consecutive single-value encodes (lowered to one `encode_many`).
#[derive(Debug, Clone, Copy)]
enum Step {
    Single(usize),
    /// `ops[start..start + len]` are all `Op::Encode` in one refresh
    /// group.
    EncodeRun {
        start: usize,
        len: usize,
    },
}

impl Step {
    fn op_range(self) -> std::ops::Range<usize> {
        match self {
            Step::Single(i) => i..i + 1,
            Step::EncodeRun { start, len } => start..start + len,
        }
    }
}

/// Execution-time state of a virtual register.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Slot {
    Handle(StreamHandle),
    /// Poisoned by a `divide_or` fallback: reads yield the constant.
    Const(f64),
}

/// A reusable register-file scratch buffer for [`Plan::execute_in`].
///
/// Executing a plan needs one dense register→handle slot per virtual
/// register. Callers that execute many plans in a row (one per tile or
/// per pipeline slice) keep one arena per worker and hand it to
/// [`Plan::execute_in`], so re-planning stops reallocating the slot
/// vector on every execution — the arena's capacity persists across
/// runs. A fresh arena behaves identically to the internal allocation
/// [`Plan::execute`] performs.
#[derive(Debug, Default)]
pub struct ExecArena {
    slots: Vec<Option<Slot>>,
}

impl ExecArena {
    /// An empty arena (capacity grows on first use and is then reused).
    #[must_use]
    pub fn new() -> Self {
        ExecArena::default()
    }

    /// Clears the arena and sizes it for `regs` registers, keeping the
    /// allocation.
    fn reset(&mut self, regs: usize) -> &mut [Option<Slot>] {
        self.slots.clear();
        self.slots.resize(regs, None);
        &mut self.slots
    }
}

/// The program-independent payload of a lowering schedule: everything
/// [`Plan`] computes, minus the borrow of the program it was computed
/// from. Owning this separately lets [`cache::Template`] bundle a
/// program *and* its schedule in one shareable value (the borrow in
/// `Plan<'p>` forbids that).
#[derive(Debug, Clone)]
pub(crate) struct PlanData {
    steps: Vec<Step>,
    /// Step indices preceded by a refresh-group boundary.
    boundary: Vec<bool>,
    /// Registers to release after each step (their last use).
    releases: Vec<Vec<VReg>>,
    peak_rows: usize,
    naive_peak_rows: usize,
}

impl PlanData {
    pub(crate) fn of(program: &Program) -> Result<Self, ImscError> {
        let last_use = op_last_uses(program)?;

        // Coalesce runs of consecutive single-value encodes within one
        // refresh group into `encode_many` steps.
        let mut steps = Vec::new();
        let mut i = 0;
        while i < program.ops.len() {
            if matches!(program.ops[i], Op::Encode { .. }) {
                let g = program.groups[i];
                let mut len = 1;
                while i + len < program.ops.len()
                    && matches!(program.ops[i + len], Op::Encode { .. })
                    && program.groups[i + len] == g
                {
                    len += 1;
                }
                steps.push(if len == 1 {
                    Step::Single(i)
                } else {
                    Step::EncodeRun { start: i, len }
                });
                i += len;
            } else {
                steps.push(Step::Single(i));
                i += 1;
            }
        }

        // Refresh-group boundaries: an encode step whose tag differs from
        // the previous encode step's tag.
        let mut boundary = vec![false; steps.len()];
        let mut prev_group: Option<RefreshGroup> = None;
        for (s, step) in steps.iter().enumerate() {
            let first = step.op_range().start;
            if program.ops[first].is_encode() {
                let g = program.groups[first];
                boundary[s] = prev_group.is_some_and(|p| p != g);
                prev_group = Some(g);
            }
        }

        // Eager-release schedule: a register is released after the *step*
        // containing its last-using op.
        let mut releases: Vec<Vec<VReg>> = vec![Vec::new(); steps.len()];
        let step_of_op = {
            let mut map = vec![0usize; program.ops.len()];
            for (s, step) in steps.iter().enumerate() {
                for o in step.op_range() {
                    map[o] = s;
                }
            }
            map
        };
        for r in 0..program.regs {
            releases[step_of_op[last_use[r]]].push(VReg {
                program: program.id,
                index: r,
            });
        }

        // Row demand: planned (eager release) vs naive (all streams live
        // to the end). Destinations allocate before operands release, so
        // a step's transient demand is live + its defs.
        let mut live = 0usize;
        let mut peak_rows = 0usize;
        for (s, step) in steps.iter().enumerate() {
            let defs: usize = step.op_range().map(|o| program.ops[o].defs().len()).sum();
            live += defs;
            peak_rows = peak_rows.max(live);
            live -= releases[s].len();
        }
        let naive_peak_rows = program.regs;

        Ok(PlanData {
            steps,
            boundary,
            releases,
            peak_rows,
            naive_peak_rows,
        })
    }
}

/// The lowering schedule of one [`Program`]: last-use releases, refresh
/// boundaries, coalesced encode batches, and row-demand bounds. Produced
/// by [`Program::plan`]; executable any number of times via
/// [`Plan::execute`] (e.g. once per tile accelerator).
#[derive(Debug)]
pub struct Plan<'p> {
    program: &'p Program,
    data: PlanData,
}

impl<'p> Plan<'p> {
    fn of(program: &'p Program) -> Result<Self, ImscError> {
        Ok(Plan {
            program,
            data: PlanData::of(program)?,
        })
    }

    /// The program this plan lowers.
    #[must_use]
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Peak crossbar-row demand under the plan's eager-release schedule.
    #[must_use]
    pub fn peak_rows(&self) -> usize {
        self.data.peak_rows
    }

    /// Row demand with every stream held to the end of the program (what
    /// an imperative caller without early releases would need).
    #[must_use]
    pub fn naive_peak_rows(&self) -> usize {
        self.data.naive_peak_rows
    }

    /// Number of lowering steps (coalesced encode runs count as one).
    #[must_use]
    pub fn steps(&self) -> usize {
        self.data.steps.len()
    }

    /// Number of single-value encodes folded into `encode_many` batches.
    #[must_use]
    pub fn coalesced_encodes(&self) -> usize {
        self.data
            .steps
            .iter()
            .map(|s| match s {
                Step::EncodeRun { len, .. } => *len,
                Step::Single(_) => 0,
            })
            .sum()
    }

    /// The unbound execution view over this plan's program and schedule.
    pub(crate) fn view(&self) -> ExecView<'_> {
        ExecView {
            program: self.program,
            data: &self.data,
            binds: None,
        }
    }

    /// Executes the program on `acc`, returning its outputs in emission
    /// order. Rows are released eagerly per the plan; after a successful
    /// run every row the program allocated has been returned to the
    /// accelerator.
    ///
    /// # Errors
    ///
    /// The first failing operation's error. The accelerator keeps the
    /// costs charged up to that point, exactly as the imperative API
    /// does, but every row still held by the program is released before
    /// returning (the planner owns the handles, so leaving them live
    /// would leak the rows irrecoverably). Consuming a
    /// `divide_or`-poisoned register with anything but a read is
    /// [`ImscError::InvalidConfig`].
    pub fn execute(&self, acc: &mut Accelerator) -> Result<Vec<f64>, ImscError> {
        self.execute_in(acc, &mut ExecArena::new())
    }

    /// [`Plan::execute`] with a caller-pooled register arena: identical
    /// behaviour, but the dense register→handle scratch vector is
    /// borrowed from `arena` instead of freshly allocated, so executing
    /// many plans in a row (one per tile, one per pipeline slice) reuses
    /// one allocation.
    ///
    /// # Errors
    ///
    /// Same as [`Plan::execute`].
    pub fn execute_in(
        &self,
        acc: &mut Accelerator,
        arena: &mut ExecArena,
    ) -> Result<Vec<f64>, ImscError> {
        self.view().execute_in(acc, arena)
    }
}

/// Per-execution value substitutions for a holes-mode template (see
/// [`cache::Template`]): op `i`'s encode immediates are
/// `values[fixed_base[i]..]` and its constant output / divide fallback
/// is `consts[const_base[i]]`. The base arrays are prefix sums over the
/// template's ops, so substitution is stateless per step and works for
/// the pipeline scheduler's out-of-order stage phases too.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BindRef<'a> {
    pub(crate) values: &'a [Fixed],
    pub(crate) consts: &'a [f64],
    pub(crate) fixed_base: &'a [u32],
    pub(crate) const_base: &'a [u32],
}

/// A borrowed execution view — a program, its lowering schedule, and
/// optional value bindings. The single execution core shared by
/// [`Plan`] (no bindings), [`cache::Template`] (bindings for the
/// template's value holes), and the pipeline scheduler's stage workers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExecView<'a> {
    pub(crate) program: &'a Program,
    pub(crate) data: &'a PlanData,
    pub(crate) binds: Option<BindRef<'a>>,
}

impl ExecView<'_> {
    /// Executes every step in order — see [`Plan::execute_in`].
    pub(crate) fn execute_in(
        &self,
        acc: &mut Accelerator,
        arena: &mut ExecArena,
    ) -> Result<Vec<f64>, ImscError> {
        let slots = arena.reset(self.program.regs);
        let mut out = Vec::with_capacity(self.program.outputs);
        let run =
            (0..self.data.steps.len()).try_for_each(|s| self.exec_step(s, acc, slots, &mut out));
        match run {
            Ok(()) => Ok(out),
            Err(e) => {
                release_live_slots(acc, slots);
                Err(e)
            }
        }
    }

    /// The encode immediate of op `i` (an `Op::Encode`), after binding.
    fn fixed_at(&self, i: usize, value: Fixed) -> Fixed {
        match self.binds {
            Some(b) => b.values[b.fixed_base[i] as usize],
            None => value,
        }
    }

    /// The constant of op `i` (`ReadConst` value or `Divide` fallback),
    /// after binding.
    fn const_at(&self, i: usize, value: f64) -> f64 {
        match self.binds {
            Some(b) => b.consts[b.const_base[i] as usize],
            None => value,
        }
    }

    /// Executes one lowering step: the refresh-group boundary (if any),
    /// the step's operations, and the step's eager releases. `slots`
    /// must span the program's registers and carry the state left by the
    /// preceding steps. On error, live rows are *not* released here —
    /// callers owning the slot state decide (see [`release_live_slots`]).
    pub(crate) fn exec_step(
        &self,
        s: usize,
        acc: &mut Accelerator,
        slots: &mut [Option<Slot>],
        out: &mut Vec<f64>,
    ) -> Result<(), ImscError> {
        let prog = self.program;
        let handle = |slots: &[Option<Slot>], r: VReg| -> Result<StreamHandle, ImscError> {
            match slots[r.index] {
                Some(Slot::Handle(h)) => Ok(h),
                Some(Slot::Const(_)) => Err(ImscError::InvalidConfig(
                    "a divide_or fallback register can only be read",
                )),
                None => Err(ImscError::InvalidConfig("register is not live")),
            }
        };
        {
            let step = self.data.steps[s];
            if self.data.boundary[s] && acc.refresh_policy() == RnRefreshPolicy::Explicit {
                acc.refresh_rn_rows()?;
            }
            match step {
                Step::EncodeRun { start, len } => {
                    let values: Vec<Fixed> = prog.ops[start..start + len]
                        .iter()
                        .enumerate()
                        .map(|(o, op)| match op {
                            Op::Encode { value, .. } => self.fixed_at(start + o, *value),
                            _ => unreachable!("encode runs hold only Encode ops"),
                        })
                        .collect();
                    let handles = acc.encode_many(&values)?;
                    for (op, h) in prog.ops[start..start + len].iter().zip(handles) {
                        if let Op::Encode { dst, .. } = op {
                            slots[dst.index] = Some(Slot::Handle(h));
                        }
                    }
                }
                Step::Single(i) => match prog.ops[i] {
                    Op::Encode { dst, value } => {
                        slots[dst.index] = Some(Slot::Handle(acc.encode(self.fixed_at(i, value))?));
                    }
                    Op::EncodeCorrelated {
                        ref dsts,
                        ref values,
                    } => {
                        let handles = match self.binds {
                            Some(b) => {
                                let base = b.fixed_base[i] as usize;
                                acc.encode_correlated_many(&b.values[base..base + values.len()])?
                            }
                            None => acc.encode_correlated_many(values)?,
                        };
                        for (d, h) in dsts.iter().zip(handles) {
                            slots[d.index] = Some(Slot::Handle(h));
                        }
                    }
                    Op::TrngSelect { dst } => {
                        slots[dst.index] = Some(Slot::Handle(acc.trng_select()?));
                    }
                    Op::Multiply { dst, a, b } => {
                        let (ha, hb) = (handle(slots, a)?, handle(slots, b)?);
                        slots[dst.index] = Some(Slot::Handle(acc.multiply(ha, hb)?));
                    }
                    Op::ScaledAdd { dst, a, b } => {
                        let (ha, hb) = (handle(slots, a)?, handle(slots, b)?);
                        slots[dst.index] = Some(Slot::Handle(acc.scaled_add(ha, hb)?));
                    }
                    Op::ApproxAdd { dst, a, b } => {
                        let (ha, hb) = (handle(slots, a)?, handle(slots, b)?);
                        slots[dst.index] = Some(Slot::Handle(acc.approx_add(ha, hb)?));
                    }
                    Op::AbsSub { dst, a, b } => {
                        let (ha, hb) = (handle(slots, a)?, handle(slots, b)?);
                        slots[dst.index] = Some(Slot::Handle(acc.abs_subtract(ha, hb)?));
                    }
                    Op::Minimum { dst, a, b } => {
                        let (ha, hb) = (handle(slots, a)?, handle(slots, b)?);
                        slots[dst.index] = Some(Slot::Handle(acc.minimum(ha, hb)?));
                    }
                    Op::Maximum { dst, a, b } => {
                        let (ha, hb) = (handle(slots, a)?, handle(slots, b)?);
                        slots[dst.index] = Some(Slot::Handle(acc.maximum(ha, hb)?));
                    }
                    Op::Divide { dst, a, b, on_zero } => {
                        let (ha, hb) = (handle(slots, a)?, handle(slots, b)?);
                        slots[dst.index] = Some(match (acc.divide(ha, hb), on_zero) {
                            (Ok(h), _) => Slot::Handle(h),
                            (
                                Err(ImscError::Stochastic(ScError::DivisionByZero)),
                                Some(fallback),
                            ) => Slot::Const(self.const_at(i, fallback)),
                            (Err(e), _) => return Err(e),
                        });
                    }
                    Op::Complement { dst, a } => {
                        let ha = handle(slots, a)?;
                        slots[dst.index] = Some(Slot::Handle(acc.complement(ha)?));
                    }
                    Op::Blend { dst, a, b, sel } => {
                        let (ha, hb, hs) =
                            (handle(slots, a)?, handle(slots, b)?, handle(slots, sel)?);
                        slots[dst.index] = Some(Slot::Handle(acc.blend(ha, hb, hs)?));
                    }
                    Op::Read { src } => match slots[src.index] {
                        Some(Slot::Handle(h)) => out.push(acc.read_value(h)?),
                        Some(Slot::Const(c)) => out.push(c),
                        None => return Err(ImscError::InvalidConfig("register is not live")),
                    },
                    Op::ReadConst { value } => out.push(self.const_at(i, value)),
                },
            }
            for &r in &self.data.releases[s] {
                if let Some(Slot::Handle(h)) = slots[r.index].take() {
                    acc.release(h)?;
                }
            }
        }
        Ok(())
    }
}

/// Releases every row still held in `slots` — called after a failed
/// execution so a retained accelerator stays usable (the program's
/// registers are unreachable to the caller, so leaving them live would
/// leak the rows irrecoverably).
fn release_live_slots(acc: &mut Accelerator, slots: &mut [Option<Slot>]) {
    for slot in slots {
        if let Some(Slot::Handle(h)) = slot.take() {
            let _ = acc.release(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_are_dense_and_ssa() {
        let mut p = Program::new();
        let a = p.encode(Fixed::from_u8(10));
        let pair = p.encode_correlated(&[Fixed::from_u8(1), Fixed::from_u8(2)]);
        let s = p.trng_select();
        assert_eq!(a.index(), 0);
        assert_eq!(pair[0].index(), 1);
        assert_eq!(pair[1].index(), 2);
        assert_eq!(s.index(), 3);
        assert_eq!(p.regs(), 4);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn plan_counts_rows_and_coalesces() {
        let mut p = Program::new();
        // Four consecutive encodes in one group coalesce into one batch.
        let regs: Vec<VReg> = (0..4).map(|i| p.encode(Fixed::from_u8(i))).collect();
        let m1 = p.multiply(regs[0], regs[1]);
        let m2 = p.multiply(regs[2], regs[3]);
        let sum = p.scaled_add(m1, m2);
        p.read(sum);
        let plan = p.plan().unwrap();
        assert_eq!(plan.coalesced_encodes(), 4);
        assert_eq!(plan.naive_peak_rows(), 7);
        // 4 encodes live + m1 makes 5; by m2 one pair is released.
        assert_eq!(plan.peak_rows(), 5);
        assert_eq!(plan.steps(), 5);
    }

    #[test]
    fn boundary_only_between_differing_groups() {
        let mut p = Program::new();
        let _ = p.encode(Fixed::from_u8(1));
        p.next_group();
        let _ = p.encode(Fixed::from_u8(2));
        let _ = p.encode(Fixed::from_u8(3)); // same group: coalesces, no boundary
        let plan = p.plan().unwrap();
        assert_eq!(plan.steps(), 2);
        assert!(!plan.data.boundary[0]);
        assert!(plan.data.boundary[1]);
        assert_eq!(plan.coalesced_encodes(), 2);
    }

    #[test]
    fn group_change_blocks_coalescing() {
        let mut p = Program::new();
        let _ = p.encode(Fixed::from_u8(1));
        let _ = p.encode(Fixed::from_u8(2));
        p.next_group();
        let _ = p.encode(Fixed::from_u8(3));
        let plan = p.plan().unwrap();
        assert_eq!(plan.steps(), 2);
        assert_eq!(plan.coalesced_encodes(), 2);
        assert!(plan.data.boundary[1]);
    }

    #[test]
    #[should_panic(expected = "does not belong to this program")]
    fn foreign_register_is_rejected_at_emission() {
        // The foreign register's *index* is valid in `p` — only the
        // program-id stamp distinguishes it from `p`'s own register 0.
        let mut other = Program::new();
        let foreign = other.encode(Fixed::from_u8(1));
        let mut p = Program::new();
        let own = p.encode(Fixed::from_u8(2));
        let _ = p.multiply(own, foreign);
    }

    #[test]
    #[should_panic(expected = "at least one operand")]
    fn empty_correlated_encode_panics() {
        let mut p = Program::new();
        let _ = p.encode_correlated(&[]);
    }
}
