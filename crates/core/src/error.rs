//! Accelerator error types.

use std::fmt;

/// Errors produced by the in-memory SC accelerator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ImscError {
    /// The substrate (array / scouting logic / ADC) reported an error.
    Device(reram::ReramError),
    /// A stochastic-computing primitive reported an error.
    Stochastic(sc_core::ScError),
    /// A stream handle did not belong to this accelerator or was already
    /// released.
    InvalidHandle(usize),
    /// Two operands live in incompatible correlation domains for the
    /// requested operation (e.g. XOR subtraction over uncorrelated
    /// streams).
    CorrelationMismatch {
        /// The operation that was requested.
        op: &'static str,
        /// Whether the operation requires correlated operands.
        requires_correlated: bool,
    },
    /// A configuration value was invalid.
    InvalidConfig(&'static str),
    /// The accelerator ran out of array rows.
    OutOfRows,
}

impl fmt::Display for ImscError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImscError::Device(e) => write!(f, "device error: {e}"),
            ImscError::Stochastic(e) => write!(f, "stochastic-computing error: {e}"),
            ImscError::InvalidHandle(h) => write!(f, "invalid stream handle {h}"),
            ImscError::CorrelationMismatch {
                op,
                requires_correlated,
            } => {
                if *requires_correlated {
                    write!(f, "{op} requires correlated operand streams")
                } else {
                    write!(f, "{op} requires uncorrelated operand streams")
                }
            }
            ImscError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            ImscError::OutOfRows => write!(f, "accelerator arrays are out of rows"),
        }
    }
}

impl std::error::Error for ImscError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImscError::Device(e) => Some(e),
            ImscError::Stochastic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<reram::ReramError> for ImscError {
    fn from(e: reram::ReramError) -> Self {
        ImscError::Device(e)
    }
}

impl From<sc_core::ScError> for ImscError {
    fn from(e: sc_core::ScError) -> Self {
        ImscError::Stochastic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_work_with_question_mark() {
        fn device() -> Result<(), ImscError> {
            Err(reram::ReramError::RowOutOfRange { row: 1, rows: 1 })?
        }
        fn stochastic() -> Result<(), ImscError> {
            Err(sc_core::ScError::EmptyBitStream)?
        }
        assert!(matches!(device(), Err(ImscError::Device(_))));
        assert!(matches!(stochastic(), Err(ImscError::Stochastic(_))));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e = ImscError::Device(reram::ReramError::RowOutOfRange { row: 2, rows: 1 });
        assert!(e.source().is_some());
        let e = ImscError::OutOfRows;
        assert!(e.source().is_none());
    }
}
