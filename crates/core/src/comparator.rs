//! The in-memory greater-than comparator (Fig. 1b).
//!
//! To convert a random row into a stochastic bit, the accelerator decides
//! `A > RN` bit-serially from MSB to LSB: a running flag (`FFlag`) marks
//! columns whose comparison is still undecided, and the first unequal bit
//! position decides the outcome. Per bit position the network costs five
//! gates:
//!
//! ```text
//! diff  = A_i XOR RN_i              (1 XOR)
//! win   = A_i AND NOT RN_i          (1 AND)
//! take  = FFlag AND win             (1 AND — predicated in IMSNG-opt)
//! GT    = GT XOR take               (1 XOR — disjoint OR)
//! FFlag = FFlag AND NOT diff        (1 AND — predicated in IMSNG-opt)
//! ```
//!
//! i.e. exactly the `5n` scouting-logic sensing steps the paper reports.
//! [`greater_than_xag`] builds the network as an optimizable [`Xag`];
//! [`ComparatorSchedule`] turns it into a per-cycle scouting-logic
//! schedule with the write behaviour of the three implementation
//! variants (baseline write-back, IMSNG-naive bitline feedback,
//! IMSNG-opt latch predication).

use crate::imsng::ImsngVariant;
use crate::xag::{Signal, Xag};

/// Builds the `A > B` comparator over two `bits`-bit operands (MSB first)
/// as an XAG. Inputs are interleaved: `a_{n-1}, b_{n-1}, …, a_0, b_0`.
///
/// # Panics
///
/// Panics if `bits == 0`.
#[must_use]
pub fn greater_than_xag(bits: u32) -> Xag {
    assert!(bits > 0, "comparator needs at least one bit");
    let mut g = Xag::new();
    let mut gt = g.constant(false);
    let mut flag = g.constant(true);
    let mut pairs: Vec<(Signal, Signal)> = Vec::new();
    for _ in 0..bits {
        let a = g.input();
        let b = g.input();
        pairs.push((a, b));
    }
    for &(a, b) in &pairs {
        let diff = g.xor(a, b);
        let win = g.and(a, b.not());
        let take = g.and(flag, win);
        gt = g.xor(gt, take);
        flag = g.and(flag, diff.not());
    }
    g.set_outputs(vec![gt]);
    g
}

/// One scheduled scouting-logic step of the comparator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlStep {
    /// The bit position (0 = MSB) this step belongs to.
    pub bit: u32,
    /// Mnemonic of the micro-operation.
    pub op: &'static str,
    /// Whether this step writes its intermediate result back to the array.
    pub writes_array: bool,
}

/// A fully expanded per-cycle schedule of the comparator for a given
/// implementation variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComparatorSchedule {
    steps: Vec<SlStep>,
    variant: ImsngVariant,
    bits: u32,
}

impl ComparatorSchedule {
    /// Builds the schedule for a `bits`-bit comparison under the given
    /// variant.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    #[must_use]
    pub fn new(bits: u32, variant: ImsngVariant) -> Self {
        assert!(bits > 0, "comparator needs at least one bit");
        let mut steps = Vec::with_capacity(5 * bits as usize);
        for bit in 0..bits {
            // The five micro-ops per bit position; which of them write to
            // the array depends on the variant.
            let per_bit: [(&'static str, bool); 5] = match variant {
                // Straightforward write-back of every intermediate signal
                // that feeds a later array-side gate (diff, win, take,
                // flag — 4 writes; the gt accumulation stays latched).
                ImsngVariant::Baseline => [
                    ("XOR diff", true),
                    ("AND win", true),
                    ("AND take", true),
                    ("XOR gt", false),
                    ("AND flag", true),
                ],
                // Bitline feedback: the sensed value is re-applied as a
                // bitline voltage, eliminating the diff/win write-backs;
                // the running take/flag state still lands in the array
                // (2 writes per bit).
                ImsngVariant::Naive => [
                    ("XOR diff", false),
                    ("AND win", false),
                    ("AND take", true),
                    ("XOR gt", false),
                    ("AND flag", true),
                ],
                // Latch predication: take/flag live in the L0/L1 write
                // drivers; nothing intermediate is written.
                ImsngVariant::Opt => [
                    ("XOR diff", false),
                    ("AND win", false),
                    ("AND take", false),
                    ("XOR gt", false),
                    ("AND flag", false),
                ],
            };
            for (op, writes_array) in per_bit {
                steps.push(SlStep {
                    bit,
                    op,
                    writes_array,
                });
            }
        }
        ComparatorSchedule {
            steps,
            variant,
            bits,
        }
    }

    /// The variant this schedule implements.
    #[must_use]
    pub fn variant(&self) -> ImsngVariant {
        self.variant
    }

    /// Operand width in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// All steps in execution order.
    #[must_use]
    pub fn steps(&self) -> &[SlStep] {
        &self.steps
    }

    /// Total sensing steps (always `5 · bits`).
    #[must_use]
    pub fn sense_ops(&self) -> usize {
        self.steps.len()
    }

    /// Intermediate array writes (`4 · bits`, `2 · bits`, or `0`).
    #[must_use]
    pub fn array_writes(&self) -> usize {
        self.steps.iter().filter(|s| s.writes_array).count()
    }
}

/// Software-exact greater-than over two fixed-width integers, used as the
/// functional reference for the network.
#[must_use]
pub fn greater_than_reference(a: u64, b: u64) -> bool {
    a > b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_comparator(bits: u32, a: u64, b: u64) -> bool {
        let g = greater_than_xag(bits);
        let mut inputs = Vec::with_capacity(2 * bits as usize);
        for i in (0..bits).rev() {
            inputs.push((a >> i) & 1 == 1);
            inputs.push((b >> i) & 1 == 1);
        }
        g.eval(&inputs)[0]
    }

    #[test]
    fn exhaustive_4bit_comparison() {
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(run_comparator(4, a, b), a > b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn random_8bit_spot_checks() {
        for &(a, b) in &[(0u64, 0u64), (255, 0), (0, 255), (128, 127), (200, 201)] {
            assert_eq!(run_comparator(8, a, b), a > b, "a={a} b={b}");
        }
    }

    #[test]
    fn network_costs_five_gates_per_bit() {
        for bits in [1u32, 4, 8] {
            let mut g = greater_than_xag(bits);
            g.cleanup();
            let stats = g.stats();
            // First bit position folds against the constant flag/gt, so
            // the count is ≤ 5·bits but grows by exactly 5 per extra bit.
            assert!(stats.gates() <= 5 * bits as usize, "bits={bits}");
            if bits > 1 {
                let mut smaller = greater_than_xag(bits - 1);
                smaller.cleanup();
                assert_eq!(stats.gates() - smaller.stats().gates(), 5);
            }
        }
    }

    #[test]
    fn schedules_match_paper_counts() {
        let n = 8;
        let baseline = ComparatorSchedule::new(n, ImsngVariant::Baseline);
        assert_eq!(baseline.sense_ops(), 5 * n as usize);
        assert_eq!(baseline.array_writes(), 4 * n as usize);

        let naive = ComparatorSchedule::new(n, ImsngVariant::Naive);
        assert_eq!(naive.sense_ops(), 5 * n as usize);
        assert_eq!(naive.array_writes(), 2 * n as usize);

        let opt = ComparatorSchedule::new(n, ImsngVariant::Opt);
        assert_eq!(opt.sense_ops(), 5 * n as usize);
        assert_eq!(opt.array_writes(), 0);
    }

    #[test]
    fn schedule_steps_cover_every_bit() {
        let s = ComparatorSchedule::new(3, ImsngVariant::Opt);
        for bit in 0..3 {
            assert_eq!(s.steps().iter().filter(|x| x.bit == bit).count(), 5);
        }
    }
}
