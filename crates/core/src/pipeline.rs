//! Multi-array pipelining and the throughput model behind Fig. 5.
//!
//! "In practice, we use multiple arrays to parallelize and pipeline the
//! different stages" (§III). The three SC stages — ❶ SBS generation,
//! ❷ arithmetic, ❸ ADC conversion — run in different arrays/mats, so in
//! steady state a new operation retires every `max(stage latency)` and
//! `arrays` independent mats multiply throughput linearly (word-level
//! SIMD across bitlines is already inside the per-stage costs).

use crate::cost::ScOperation;
use crate::imsng::ImsngVariant;
use reram::energy::ReramCosts;

/// Stage latencies of one pipelined SC operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageLatencies {
    /// ❶ SBS generation latency, ns.
    pub sng_ns: f64,
    /// ❷ arithmetic latency, ns.
    pub op_ns: f64,
    /// ❸ conversion latency, ns.
    pub s2b_ns: f64,
}

impl StageLatencies {
    /// The pipeline bottleneck (steady-state initiation interval), ns.
    #[must_use]
    pub fn bottleneck_ns(&self) -> f64 {
        self.sng_ns.max(self.op_ns).max(self.s2b_ns)
    }

    /// Fill latency of one operation traversing all stages, ns.
    #[must_use]
    pub fn total_ns(&self) -> f64 {
        self.sng_ns + self.op_ns + self.s2b_ns
    }
}

/// The multi-array pipeline throughput model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineModel {
    arrays: usize,
    m: u32,
    variant: ImsngVariant,
    costs: ReramCosts,
}

impl PipelineModel {
    /// Creates a model with `arrays` independent mats, comparator width
    /// `m`, and an IMSNG variant.
    ///
    /// # Panics
    ///
    /// Panics if `arrays == 0` or `m == 0`.
    #[must_use]
    pub fn new(arrays: usize, m: u32, variant: ImsngVariant, costs: ReramCosts) -> Self {
        assert!(arrays > 0, "at least one array required");
        assert!(m > 0, "comparator width must be nonzero");
        PipelineModel {
            arrays,
            m,
            variant,
            costs,
        }
    }

    /// The default configuration used in the evaluation: 8 mats, M = 8,
    /// IMSNG-opt.
    #[must_use]
    pub fn evaluation_default() -> Self {
        PipelineModel::new(8, 8, ImsngVariant::Opt, ReramCosts::calibrated())
    }

    /// Number of arrays.
    #[must_use]
    pub fn arrays(&self) -> usize {
        self.arrays
    }

    /// Stage latencies for one operation at stream length `n`.
    #[must_use]
    pub fn stages(&self, op: ScOperation, n: usize) -> StageLatencies {
        let t = &self.costs.timings;
        let m = f64::from(self.m);
        let sng_ns = match self.variant {
            ImsngVariant::Baseline => 5.0 * m * t.t_sense_ns + 4.0 * m * t.t_write_ns,
            ImsngVariant::Naive => 5.0 * m * t.t_sense_ns + 2.0 * m * t.t_write_ns,
            ImsngVariant::Opt => 5.0 * m * t.t_sense_ns,
        };
        let op_ns = match op {
            ScOperation::Multiply | ScOperation::Addition => t.t_sense_ns,
            ScOperation::Subtraction => t.t_sense_ns + t.t_xor_extra_ns,
            ScOperation::Division => n as f64 * t.t_cordiv_step_ns,
        };
        StageLatencies {
            sng_ns,
            op_ns,
            s2b_ns: t.t_adc_ns,
        }
    }

    /// Steady-state throughput in operations per microsecond.
    #[must_use]
    pub fn throughput_ops_per_us(&self, op: ScOperation, n: usize) -> f64 {
        let ii = self.stages(op, n).bottleneck_ns();
        self.arrays as f64 * 1000.0 / ii
    }

    /// End-to-end latency of a mixed operation bag through the pipeline,
    /// ns.
    ///
    /// `mix` is a list of `(op, count)` pairs — e.g. a kernel's per-frame
    /// operation census. The model sums the per-family makespans, which
    /// slightly over-counts fill latency (each family pays its own fill)
    /// but preserves the steady-state term exactly; this is the service
    /// frontend's deadline estimator, where a small conservative bias is
    /// the right direction to err.
    #[must_use]
    pub fn makespan_mixed_ns(&self, mix: &[(ScOperation, usize)], n: usize) -> f64 {
        mix.iter()
            .map(|&(op, count)| self.makespan_ns(op, n, count))
            .sum()
    }

    /// End-to-end latency of `count` operations through the pipeline, ns.
    #[must_use]
    pub fn makespan_ns(&self, op: ScOperation, n: usize, count: usize) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let stages = self.stages(op, n);
        let waves = count.div_ceil(self.arrays);
        stages.total_ns() + (waves.saturating_sub(1)) as f64 * stages.bottleneck_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sng_is_the_bottleneck_for_simple_ops() {
        let p = PipelineModel::evaluation_default();
        let s = p.stages(ScOperation::Multiply, 256);
        assert_eq!(s.bottleneck_ns(), s.sng_ns);
        assert!((s.sng_ns - 78.2).abs() < 0.1);
    }

    #[test]
    fn division_is_op_bound() {
        let p = PipelineModel::evaluation_default();
        let s = p.stages(ScOperation::Division, 256);
        assert_eq!(s.bottleneck_ns(), s.op_ns);
        assert!(s.op_ns > 10_000.0);
    }

    #[test]
    fn throughput_scales_with_arrays() {
        let one = PipelineModel::new(1, 8, ImsngVariant::Opt, ReramCosts::calibrated());
        let eight = PipelineModel::evaluation_default();
        let t1 = one.throughput_ops_per_us(ScOperation::Multiply, 256);
        let t8 = eight.throughput_ops_per_us(ScOperation::Multiply, 256);
        assert!((t8 / t1 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn opt_outpaces_naive() {
        let opt = PipelineModel::evaluation_default();
        let naive = PipelineModel::new(8, 8, ImsngVariant::Naive, ReramCosts::calibrated());
        let t_opt = opt.throughput_ops_per_us(ScOperation::Multiply, 256);
        let t_naive = naive.throughput_ops_per_us(ScOperation::Multiply, 256);
        assert!(
            (t_opt / t_naive - 395.4 / 78.2).abs() < 0.1,
            "{}",
            t_opt / t_naive
        );
    }

    #[test]
    fn makespan_reduces_to_total_for_single_op() {
        let p = PipelineModel::evaluation_default();
        let s = p.stages(ScOperation::Multiply, 256);
        assert_eq!(p.makespan_ns(ScOperation::Multiply, 256, 1), s.total_ns());
        assert_eq!(p.makespan_ns(ScOperation::Multiply, 256, 0), 0.0);
    }

    #[test]
    fn makespan_grows_by_initiation_interval() {
        let p = PipelineModel::new(1, 8, ImsngVariant::Opt, ReramCosts::calibrated());
        let s = p.stages(ScOperation::Multiply, 256);
        let m1 = p.makespan_ns(ScOperation::Multiply, 256, 1);
        let m2 = p.makespan_ns(ScOperation::Multiply, 256, 2);
        assert!((m2 - m1 - s.bottleneck_ns()).abs() < 1e-9);
    }

    #[test]
    fn mixed_makespan_sums_per_family_makespans() {
        let p = PipelineModel::evaluation_default();
        let mix = [
            (ScOperation::Addition, 100),
            (ScOperation::Subtraction, 50),
            (ScOperation::Division, 10),
        ];
        let expected: f64 = mix.iter().map(|&(op, c)| p.makespan_ns(op, 256, c)).sum();
        assert_eq!(p.makespan_mixed_ns(&mix, 256), expected);
        assert_eq!(p.makespan_mixed_ns(&[], 256), 0.0);
        // Zero-count entries contribute nothing.
        assert_eq!(p.makespan_mixed_ns(&[(ScOperation::Multiply, 0)], 256), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one array")]
    fn zero_arrays_panics() {
        let _ = PipelineModel::new(0, 8, ImsngVariant::Opt, ReramCosts::calibrated());
    }

    #[test]
    #[should_panic(expected = "comparator width")]
    fn zero_comparator_width_panics() {
        let _ = PipelineModel::new(8, 0, ImsngVariant::Opt, ReramCosts::calibrated());
    }

    /// Costs with every latency zeroed except the chosen knobs, for
    /// constructing single-stage-dominant pipelines.
    fn costs_with(sense_ns: f64, adc_ns: f64) -> ReramCosts {
        let mut costs = ReramCosts::calibrated();
        costs.timings.t_sense_ns = sense_ns;
        costs.timings.t_write_ns = 0.0;
        costs.timings.t_adc_ns = adc_ns;
        costs.timings.t_xor_extra_ns = 0.0;
        costs.timings.t_cordiv_step_ns = 0.0;
        costs
    }

    #[test]
    fn conversion_dominant_latencies_bound_the_pipeline() {
        // An (artificially) slow ADC makes ❸ the bottleneck for every op.
        let p = PipelineModel::new(4, 8, ImsngVariant::Opt, costs_with(0.1, 1e6));
        for op in ScOperation::ALL {
            let s = p.stages(op, 256);
            assert_eq!(s.bottleneck_ns(), s.s2b_ns, "{op:?}");
            assert!(s.s2b_ns > s.sng_ns && s.s2b_ns > s.op_ns);
        }
    }

    #[test]
    fn single_nonzero_stage_collapses_total_onto_bottleneck() {
        // Only the ADC stage has latency: fill time and initiation
        // interval coincide, so makespan is count · bottleneck exactly.
        let p = PipelineModel::new(1, 8, ImsngVariant::Opt, costs_with(0.0, 50.0));
        let s = p.stages(ScOperation::Multiply, 256);
        assert_eq!(s.total_ns(), s.bottleneck_ns());
        assert_eq!(p.makespan_ns(ScOperation::Multiply, 256, 7), 7.0 * 50.0);
    }

    #[test]
    fn degenerate_one_op_programs_agree_across_total_and_bottleneck() {
        let p = PipelineModel::evaluation_default();
        for op in ScOperation::ALL {
            let s = p.stages(op, 256);
            // A one-op "program" has no steady state: its makespan is the
            // fill latency, which always dominates the bottleneck.
            assert_eq!(p.makespan_ns(op, 256, 1), s.total_ns(), "{op:?}");
            assert!(s.total_ns() >= s.bottleneck_ns(), "{op:?}");
            // And the stage split reconstructs the total exactly.
            assert!((s.sng_ns + s.op_ns + s.s2b_ns - s.total_ns()).abs() < 1e-12);
        }
    }
}
