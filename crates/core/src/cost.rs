//! The hardware-cost model behind Table III and Figs. 4–5.
//!
//! Costs are composed from the substrate constants of `reram::energy`
//! (themselves calibrated to the paper's IMSNG anchor numbers) following
//! the per-stage structure of Table III: Binary→SC conversion ❶, SC
//! arithmetic ❷, and SC→Binary conversion ❸. The same constants drive
//! the [`CostLedger`] that the [`crate::engine::Accelerator`] accumulates
//! while actually executing workloads, so reported cost and simulated
//! behaviour cannot drift apart.

use crate::imsng::{ImsngCost, ImsngVariant};
use reram::energy::ReramCosts;

/// The four SC arithmetic operations of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScOperation {
    /// AND multiplication.
    Multiply,
    /// MAJ scaled addition.
    Addition,
    /// XOR absolute subtraction.
    Subtraction,
    /// CORDIV division.
    Division,
}

impl ScOperation {
    /// All four operations in Table III order.
    pub const ALL: [ScOperation; 4] = [
        ScOperation::Multiply,
        ScOperation::Addition,
        ScOperation::Subtraction,
        ScOperation::Division,
    ];

    /// Table-row label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScOperation::Multiply => "Multiplication",
            ScOperation::Addition => "Addition",
            ScOperation::Subtraction => "Subtraction",
            ScOperation::Division => "Division",
        }
    }
}

/// A latency/energy pair for one end-to-end operation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DesignCost {
    /// Total latency in nanoseconds.
    pub latency_ns: f64,
    /// Total energy in nanojoules.
    pub energy_nj: f64,
}

/// End-to-end ReRAM-design cost of one SC operation at stream length `n`
/// and comparator width `m` (Table III ✦ rows count one operand
/// conversion ❶, the arithmetic step ❷, and one ADC sample ❸).
#[must_use]
pub fn reram_op_cost(
    op: ScOperation,
    n: usize,
    m: u32,
    variant: ImsngVariant,
    costs: &ReramCosts,
) -> DesignCost {
    let sng = imsng_cost(m, variant);
    let sng_latency = sng.latency_ns(costs);
    let sng_energy = sng.energy_nj(costs, n);
    let t = &costs.timings;
    let e = &costs.energies;
    let nf = n as f64;
    let (op_latency, op_energy) = match op {
        ScOperation::Multiply | ScOperation::Addition => {
            (t.t_sense_ns, nf * e.e_slop_bit_pj / 1000.0)
        }
        ScOperation::Subtraction => (
            t.t_sense_ns + t.t_xor_extra_ns,
            nf * e.e_slop_bit_pj * 1.25 / 1000.0,
        ),
        ScOperation::Division => (nf * t.t_cordiv_step_ns, nf * e.e_cordiv_step_pj / 1000.0),
    };
    DesignCost {
        latency_ns: sng_latency + op_latency + t.t_adc_ns,
        energy_nj: sng_energy + op_energy + e.e_adc_sample_nj,
    }
}

/// The per-conversion IMSNG cost record for a comparator width and
/// variant (without executing a conversion).
#[must_use]
pub fn imsng_cost(m: u32, variant: ImsngVariant) -> ImsngCost {
    let writes = match variant {
        ImsngVariant::Baseline => 4 * u64::from(m),
        ImsngVariant::Naive => 2 * u64::from(m),
        ImsngVariant::Opt => 0,
    };
    ImsngCost {
        sense_ops: 5 * u64::from(m),
        intermediate_writes: writes,
        sbs_writes: 1,
        trng_rows: u64::from(m),
    }
}

/// Running cost totals accumulated by the accelerator during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostLedger {
    /// Accumulated IMSNG conversion costs.
    pub imsng: ImsngCost,
    /// Single-cycle scouting ops (AND/OR/MAJ/NOT).
    pub sl_single_ops: u64,
    /// XOR scouting ops (dual-reference window sensing).
    pub sl_xor_ops: u64,
    /// CORDIV periphery steps.
    pub cordiv_steps: u64,
    /// Result-stream row writes.
    pub stream_writes: u64,
    /// Diagnostic stream reads.
    pub stream_reads: u64,
    /// ADC samples (stochastic→binary conversions).
    pub adc_samples: u64,
    /// TRNG row refills (background entropy supply; excluded from the
    /// per-op latency/energy totals, as in the paper's accounting).
    pub trng_fills: u64,
}

impl CostLedger {
    /// Accumulates another ledger into this one — the deterministic merge
    /// used when a workload is executed over per-tile accelerators
    /// (tiles merge in tile order, so totals are independent of thread
    /// scheduling).
    pub fn merge(&mut self, other: &CostLedger) {
        self.imsng.accumulate(&other.imsng);
        self.sl_single_ops += other.sl_single_ops;
        self.sl_xor_ops += other.sl_xor_ops;
        self.cordiv_steps += other.cordiv_steps;
        self.stream_writes += other.stream_writes;
        self.stream_reads += other.stream_reads;
        self.adc_samples += other.adc_samples;
        self.trng_fills += other.trng_fills;
    }

    /// Total scouting operations: the IMSNG comparison-schedule sense
    /// ops plus the single-cycle and XOR scouting-logic ops — the
    /// paper's dominant per-pixel cost term and the metric the program
    /// optimizer minimizes.
    #[must_use]
    pub fn scout_ops(&self) -> u64 {
        self.imsng.sense_ops + self.sl_single_ops + self.sl_xor_ops
    }

    /// Sequential-execution makespan in nanoseconds.
    #[must_use]
    pub fn latency_ns(&self, costs: &ReramCosts) -> f64 {
        let t = &costs.timings;
        self.imsng.latency_ns(costs)
            + self.sl_single_ops as f64 * t.t_sense_ns
            + self.sl_xor_ops as f64 * (t.t_sense_ns + t.t_xor_extra_ns)
            + self.cordiv_steps as f64 * t.t_cordiv_step_ns
            + self.stream_writes as f64 * t.t_write_ns
            + self.adc_samples as f64 * t.t_adc_ns
    }

    /// Total energy in nanojoules for `width`-bit stream rows.
    #[must_use]
    pub fn energy_nj(&self, costs: &ReramCosts, width: usize) -> f64 {
        let e = &costs.energies;
        let w = width as f64;
        self.imsng.energy_nj(costs, width)
            + self.sl_single_ops as f64 * w * e.e_slop_bit_pj / 1000.0
            + self.sl_xor_ops as f64 * w * e.e_slop_bit_pj * 1.25 / 1000.0
            + self.cordiv_steps as f64 * e.e_cordiv_step_pj / 1000.0
            + self.stream_writes as f64 * w * e.e_write_bit_pj / 1000.0
            + self.adc_samples as f64 * e.e_adc_sample_nj
    }

    /// Row writes this ledger dispatches to the command stream: IMSNG
    /// intermediates and SBS writes, result-stream writes, and TRNG row
    /// fills. Diagnostic `stream_reads` never issue commands.
    #[must_use]
    pub fn replay_writes(&self) -> u64 {
        self.imsng.intermediate_writes
            + self.imsng.sbs_writes
            + self.stream_writes
            + self.trng_fills
    }

    /// Total commands this ledger dispatches to the command stream.
    #[must_use]
    pub fn replay_commands(&self) -> u64 {
        self.scout_ops() + self.replay_writes() + self.cordiv_steps + self.adc_samples
    }

    /// Exact analytic mirror of a banked nvsim replay of this ledger's
    /// command stream: every scout (IMSNG sensing, single-cycle, XOR)
    /// takes one `t_sense` step, every dispatched write (including the
    /// TRNG fills and SBS writes that [`CostLedger::latency_ns`] excludes
    /// per the paper's Table III accounting, and without the XOR
    /// dual-reference surcharge the replay's single scout command cannot
    /// carry) takes `t_write`, plus CORDIV/ADC step costs. Agrees with
    /// the replay's serial busy time to machine precision — divergence
    /// means the trace plumbing dropped or invented commands.
    #[must_use]
    pub fn replay_latency_ns(&self, costs: &ReramCosts) -> f64 {
        let t = &costs.timings;
        self.scout_ops() as f64 * t.t_sense_ns
            + self.replay_writes() as f64 * t.t_write_ns
            + self.cordiv_steps as f64 * t.t_cordiv_step_ns
            + self.adc_samples as f64 * t.t_adc_ns
    }

    /// Exact analytic mirror of the banked replay's energy for
    /// `width`-bit rows: all scouts at the sensing energy, all dispatched
    /// writes at the write energy (the replay charges one command class
    /// each; the analytic model's `e_slop` arithmetic-op rate is a
    /// different, coarser split of the same calibration).
    #[must_use]
    pub fn replay_energy_nj(&self, costs: &ReramCosts, width: usize) -> f64 {
        let e = &costs.energies;
        let w = width as f64;
        self.scout_ops() as f64 * w * e.e_sense_bit_pj / 1000.0
            + self.replay_writes() as f64 * w * e.e_write_bit_pj / 1000.0
            + self.cordiv_steps as f64 * e.e_cordiv_step_pj / 1000.0
            + self.adc_samples as f64 * e.e_adc_sample_nj
    }
}

/// Endurance summary of one array region's per-row write counts (the wear
/// map): the hotspot, the total, and the region size. Integer-only so the
/// summary stays `Eq`-comparable in determinism tests; the derived
/// max/mean ratio is computed on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WearSummary {
    /// Highest per-row write count in the region (the endurance hotspot).
    pub max: u64,
    /// Sum of all per-row write counts in the region.
    pub total: u64,
    /// Number of rows summarized.
    pub rows: usize,
}

impl WearSummary {
    /// Summarizes a per-row write-count slice.
    #[must_use]
    pub fn from_rows(wear: &[u64]) -> Self {
        WearSummary {
            max: wear.iter().copied().max().unwrap_or(0),
            total: wear.iter().sum(),
            rows: wear.len(),
        }
    }

    /// Mean writes per row (0 for an empty region).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.total as f64 / self.rows as f64
        }
    }

    /// Hotspot-to-mean ratio — 1.0 is perfectly level wear; large values
    /// mean the allocator is hammering a few rows. 0 for an unused region.
    #[must_use]
    pub fn max_mean_ratio(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            0.0
        } else {
            self.max as f64 / mean
        }
    }

    /// Merges another region's summary: per-array maps never overlap, so
    /// the farm-wide hotspot is the max of maxes and totals/rows add.
    pub fn merge(&mut self, other: &WearSummary) {
        self.max = self.max.max(other.max);
        self.total += other.total;
        self.rows += other.rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 256;
    const M: u32 = 8;

    fn cost(op: ScOperation) -> DesignCost {
        reram_op_cost(op, N, M, ImsngVariant::Opt, &ReramCosts::calibrated())
    }

    #[test]
    fn table3_reram_latencies() {
        assert!((cost(ScOperation::Multiply).latency_ns - 80.8).abs() < 0.1);
        assert!((cost(ScOperation::Addition).latency_ns - 80.8).abs() < 0.1);
        assert!((cost(ScOperation::Subtraction).latency_ns - 81.6).abs() < 0.1);
        assert!((cost(ScOperation::Division).latency_ns - 12544.0).abs() < 1.0);
    }

    #[test]
    fn table3_reram_energies() {
        assert!((cost(ScOperation::Multiply).energy_nj - 3.50).abs() < 0.02);
        assert!((cost(ScOperation::Addition).energy_nj - 3.50).abs() < 0.02);
        assert!((cost(ScOperation::Subtraction).energy_nj - 3.51).abs() < 0.02);
        assert!((cost(ScOperation::Division).energy_nj - 4.48).abs() < 0.02);
    }

    #[test]
    fn naive_vs_opt_ratio_matches_paper() {
        let costs = ReramCosts::calibrated();
        let naive = imsng_cost(M, ImsngVariant::Naive);
        let opt = imsng_cost(M, ImsngVariant::Opt);
        let lat_ratio = naive.latency_ns(&costs) / opt.latency_ns(&costs);
        assert!((lat_ratio - 395.4 / 78.2).abs() < 0.05, "{lat_ratio}");
        let e_ratio = naive.energy_nj(&costs, N) / opt.energy_nj(&costs, N);
        assert!((e_ratio - 10.23 / 3.42).abs() < 0.1, "{e_ratio}");
    }

    #[test]
    fn ledger_composes_linearly() {
        let costs = ReramCosts::calibrated();
        let ledger = CostLedger {
            imsng: imsng_cost(M, ImsngVariant::Opt),
            sl_single_ops: 1,
            adc_samples: 1,
            ..CostLedger::default()
        };
        let lat = ledger.latency_ns(&costs);
        // Matches the multiply row minus the result write the ledger does
        // not include in Table III accounting.
        assert!((lat - 80.8).abs() < 0.1, "{lat}");
    }

    #[test]
    fn energy_scales_with_stream_length() {
        let c32 = reram_op_cost(
            ScOperation::Multiply,
            32,
            M,
            ImsngVariant::Opt,
            &ReramCosts::calibrated(),
        );
        let c256 = cost(ScOperation::Multiply);
        assert!(c256.energy_nj > 4.0 * c32.energy_nj);
        // Latency of the sensing path is width-independent (row parallel).
        assert!((c256.latency_ns - c32.latency_ns).abs() < 1e-9);
    }

    #[test]
    fn replay_estimators_mirror_command_classes() {
        let costs = ReramCosts::calibrated();
        let ledger = CostLedger {
            imsng: imsng_cost(M, ImsngVariant::Naive),
            sl_single_ops: 2,
            sl_xor_ops: 1,
            cordiv_steps: 4,
            stream_writes: 3,
            stream_reads: 7, // must not appear anywhere below
            adc_samples: 2,
            trng_fills: 8,
        };
        assert_eq!(ledger.replay_writes(), 16 + 1 + 3 + 8);
        assert_eq!(ledger.replay_commands(), 43 + 28 + 4 + 2);
        let t = &costs.timings;
        let expect_ns =
            43.0 * t.t_sense_ns + 28.0 * t.t_write_ns + 4.0 * t.t_cordiv_step_ns + 2.0 * t.t_adc_ns;
        assert!((ledger.replay_latency_ns(&costs) - expect_ns).abs() < 1e-9);
        let e = &costs.energies;
        let expect_nj = (43.0 * 256.0 * e.e_sense_bit_pj
            + 28.0 * 256.0 * e.e_write_bit_pj
            + 4.0 * e.e_cordiv_step_pj)
            / 1000.0
            + 2.0 * e.e_adc_sample_nj;
        assert!((ledger.replay_energy_nj(&costs, 256) - expect_nj).abs() < 1e-9);
    }

    #[test]
    fn wear_summary_math() {
        let w = WearSummary::from_rows(&[4, 0, 2, 2]);
        assert_eq!(
            w,
            WearSummary {
                max: 4,
                total: 8,
                rows: 4
            }
        );
        assert!((w.mean() - 2.0).abs() < 1e-12);
        assert!((w.max_mean_ratio() - 2.0).abs() < 1e-12);
        let mut merged = w;
        merged.merge(&WearSummary::from_rows(&[6, 0]));
        assert_eq!(merged.max, 6);
        assert_eq!(merged.total, 14);
        assert_eq!(merged.rows, 6);
        assert_eq!(WearSummary::default().max_mean_ratio(), 0.0);
    }

    #[test]
    fn operation_names() {
        assert_eq!(ScOperation::Multiply.name(), "Multiplication");
        assert_eq!(ScOperation::ALL.len(), 4);
    }
}
