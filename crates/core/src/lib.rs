//! # imsc — the all-in-memory stochastic-computing accelerator
//!
//! This crate is the paper's primary contribution (§III): a ReRAM
//! compute-in-memory accelerator that executes the *entire* SC flow in
//! place:
//!
//! 1. **❶ Stochastic number generation** ([`imsng`]): true-random rows are
//!    compared against binary operands with an in-memory greater-than
//!    network (built and scheduled as an XOR-AND graph, [`xag`] /
//!    [`comparator`]), in the IMSNG-naive (bitline feedback, 2n writes)
//!    or IMSNG-opt (latch-predicated sensing, no intermediate writes)
//!    variants.
//! 2. **❷ SC arithmetic** ([`engine`]): bulk-bitwise scouting-logic
//!    operations over stream rows — AND multiplication, MAJ scaled
//!    addition, OR approximate addition, XOR absolute subtraction, AND/OR
//!    min/max, and periphery-latch CORDIV division.
//! 3. **❸ Stochastic→binary conversion** ([`s2b`]): bitline
//!    current accumulation over a reference column into an 8-bit ADC.
//!
//! [`cost`] reproduces the paper's Table III hardware-cost model and
//! [`pipeline`] the multi-array pipelining that underlies the throughput
//! comparison (Fig. 5); [`program::sched`] turns that analytic model into
//! executable cross-array scheduling, with [`parallel`] providing the
//! deterministic work-queue machinery.
//!
//! On top of the imperative engine, [`program`] provides a declarative
//! layer: kernels are emitted as [`program::Program`]s of SC ops over
//! virtual registers (optionally tagged with RN
//! [`program::RefreshGroup`]s), and the planner lowers them onto an
//! accelerator with lifetime-based row allocation, coalesced encode
//! batches, and refresh scheduling at group boundaries.
//!
//! # Example
//!
//! ```
//! use imsc::engine::Accelerator;
//! use sc_core::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut acc = Accelerator::builder().stream_len(256).seed(1).build()?;
//! let x = acc.encode(Fixed::from_u8(128))?;
//! let y = acc.encode(Fixed::from_u8(192))?;
//! let p = acc.multiply(x, y)?;
//! let v = acc.read_value(p)?;
//! assert!((v - 0.375).abs() < 0.1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod comparator;
pub mod cost;
pub mod engine;
pub mod error;
pub mod fxhash;
pub mod imsng;
pub mod instrument;
pub mod layout;
pub mod parallel;
pub mod pipeline;
pub mod program;
pub mod s2b;
pub mod xag;

pub use cost::WearSummary;
pub use engine::{Accelerator, AcceleratorBuilder, StreamHandle};
pub use error::ImscError;
pub use imsng::{Imsng, ImsngCost, ImsngVariant};
pub use instrument::{replay_config, ReplaySummary, SinkHandle, TraceSink};
pub use layout::RnRefreshPolicy;
pub use program::cache::{
    Bindings, BoundEntry, BoundKey, CompileStats, PlanCache, PlanCacheStats, Template, TemplateKey,
    ValueTape,
};
pub use program::opt::{optimize, OptStats, Optimize};
pub use program::sched::{
    ArrayHealth, DomainRun, PipelineReport, PipelineRun, PipelineScheduler, RetirementPolicy,
    SliceExec, SliceOut, StageKind,
};
pub use program::{ExecArena, Plan, Program, ProgramSink, RefreshGroup, VReg};
