//! Multiply-rotate hashing for the optimizer's hot maps.
//!
//! The structural-hashing map in [`crate::xag`] and the rewrite maps in
//! [`crate::program::opt`] probe millions of tiny `Copy` keys per run.
//! SipHash's DoS resistance buys nothing there — the keys are derived
//! from op indices and pixel constants, not attacker input — and costs
//! several times more per probe than the whole rest of the lookup. This
//! is the classic rustc-style multiply-rotate mix, std-only.

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Multiply-rotate hasher for small fixed-size keys.
#[derive(Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<(u64, u32), usize> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert((i, i as u32), i as usize);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i, i as u32)), Some(&(i as usize)));
        }
        assert_eq!(m.get(&(1000, 0)), None);
    }

    #[test]
    fn distinct_small_keys_hash_apart() {
        use std::hash::{BuildHasher, Hash};
        let b = BuildHasherDefault::<FxHasher>::default();
        let hash = |k: &dyn Fn(&mut FxHasher)| {
            let mut h = b.build_hasher();
            k(&mut h);
            h.finish()
        };
        let a = hash(&|h| 1u32.hash(h));
        let c = hash(&|h| 2u32.hash(h));
        assert_ne!(a, c);
    }
}
