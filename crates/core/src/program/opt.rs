//! XAG-backed program optimizer: whole-program CSE + algebraic rewriting.
//!
//! The planner coalesces encode runs but never touches the op graph
//! itself; this pass sits between program emission and planning and
//! minimizes the *pure combinational* slice of a [`Program`] — the
//! scouting AND/XOR/MAJ ops and the encodes feeding them — while
//! keeping the result **bit-identical** to the unoptimized run (same
//! output values, same RN-epoch count). The RN-dependent steps
//! ([`Op::TrngSelect`], [`Op::ScaledAdd`]) and the stateful CORDIV
//! divide keep their schedule untouched: their random draws and
//! zero-divisor behaviour depend on execution order, so they act as
//! barriers the rewriter never crosses or elides.
//!
//! The pass lowers combinational ops into [`Xag`] signals (structural
//! hashing gives CSE and the classic constant/double-negation folds for
//! free), layers *threshold-stream* value tracking on top — correlated
//! encodes of one RN realization are nested, so AND is exactly the
//! smaller operand's stream and OR the larger's — and emits back a
//! minimized op sequence with densely re-indexed [`VReg`]s and the
//! original [`RefreshGroup`] tags. A correlation-group legality
//! simulation mirrors the engine's runtime checks; any rewrite the
//! engine would reject is rolled back through a blocked-register
//! fixpoint, so `optimize` never turns a valid program into an invalid
//! one.
//!
//! What each level does:
//!
//! * [`Optimize::Off`] — returns the program unchanged.
//! * [`Optimize::Cse`] — structural-hash CSE over combinational ops
//!   (identical signals collapse, `a ⊕ a`, double complement, …) plus
//!   dead combinational-op removal.
//! * [`Optimize::Full`] — adds the value-level rewrites: threshold
//!   folds (`min`/`max`/`blend` with constant or equal selects),
//!   duplicate-operand pruning inside correlated encode batches,
//!   same-realization encode dedup and dead-encode removal (under
//!   [`RnRefreshPolicy::Explicit`], keeping at least one encode per
//!   refresh segment so the epoch count is preserved), folding reads of
//!   all-zero/all-one streams to [`Op::ReadConst`], fusing a single
//!   encode into the next correlated batch of its refresh segment (one
//!   conversion dispatch instead of two — the shared realization makes
//!   the fused batch bit-identical), and the stage-reordering peephole
//!   that hoists encodes into the leading ❶ SBS run of each pixel.

use super::{Op, Program, RefreshGroup, VReg};
use crate::fxhash::FxHashMap;
use crate::layout::RnRefreshPolicy;
use crate::xag::{Signal, Xag};
use sc_core::Fixed;

/// Optimization level threaded from the backend configuration into
/// [`optimize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Optimize {
    /// No rewriting; the emitted program runs as-is (the default).
    #[default]
    Off,
    /// Structural-hashing CSE and dead combinational-op removal only.
    Cse,
    /// CSE plus the threshold-stream algebraic rewrites, encode
    /// dedup/pruning, read folding, and the encode-hoisting peephole.
    Full,
}

impl Optimize {
    /// Whether this level's rewrites inspect operand *values* (zero-value
    /// lowering to constant-false signals, encode dedup over equal
    /// immediates, threshold-value min/max folding, read folding). A
    /// value-dependent level can change a program's shape when only its
    /// immediates change, so the template cache must key on the full
    /// value pattern instead of binding values into holes — see
    /// `program::cache`.
    #[must_use]
    pub fn value_dependent(self) -> bool {
        !matches!(self, Optimize::Off)
    }
}

impl std::str::FromStr for Optimize {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" => Ok(Optimize::Off),
            "cse" => Ok(Optimize::Cse),
            "full" => Ok(Optimize::Full),
            other => Err(format!("unknown optimize level `{other}` (off|cse|full)")),
        }
    }
}

/// What [`optimize`] did to a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Ops in the input program.
    pub ops_before: usize,
    /// Ops in the optimized program.
    pub ops_after: usize,
    /// Encode conversions removed: elided single encodes plus pruned
    /// correlated-batch operands (each saves a full `M`-segment
    /// comparison schedule).
    pub encodes_elided: usize,
    /// Combinational scouting ops removed (CSE'd or dead).
    pub comb_elided: usize,
    /// ADC reads folded to compile-time constants.
    pub reads_folded: usize,
    /// Encode ops hoisted into an earlier position of their pixel's
    /// leading encode run.
    pub hoisted: usize,
    /// Single encodes fused into the next correlated batch of their
    /// refresh segment (each saves one engine dispatch and one planned
    /// step; streams stay bit-identical because the segment shares one
    /// RN realization).
    pub encodes_merged: usize,
    /// Registers the legality fixpoint had to pin to their original
    /// definitions because an alias would have changed correlation
    /// groups illegally.
    pub aliases_blocked: usize,
}

/// Rewrites `program` at the given level, assuming it will execute under
/// `policy`. Returns the optimized program and what was done.
///
/// The optimized program is observationally equivalent on a fault-free
/// accelerator: identical output values bit-for-bit and an identical
/// RN-epoch count (refresh segments never lose their last encode).
/// Ledger totals drop — that is the point. Fault-injection runs perturb
/// streams row-locally, so callers must pass [`Optimize::Off`] when
/// faults are enabled (the imgproc backend does this automatically).
#[must_use]
pub fn optimize(
    program: &Program,
    level: Optimize,
    policy: RnRefreshPolicy,
) -> (Program, OptStats) {
    let unchanged = |p: &Program| {
        let n = p.ops.len();
        (
            p.clone(),
            OptStats {
                ops_before: n,
                ops_after: n,
                ..OptStats::default()
            },
        )
    };
    if level == Optimize::Off || program.ops.is_empty() {
        return unchanged(program);
    }
    let realz = realizations(program, policy);
    let def_op = def_ops(program);
    let mut blocked = vec![false; program.regs];
    let mut blocked_count = 0usize;
    let mut allow_merge = true;
    // Fixpoint over the blocked set: every round either passes the
    // legality simulation or pins at least one more register, so this
    // terminates within `regs` rounds (in practice one or two).
    loop {
        let mut cand = rewrite(program, level, policy, &realz, &blocked);
        dce(program, level, policy, &realz, &mut cand);
        if allow_merge {
            merge_batches(program, level, &realz, &mut cand);
        }
        match check_groups(program, &cand, &def_op, &mut blocked) {
            Verdict::Legal => {
                cand.stats.aliases_blocked = blocked_count;
                return emit(program, &cand, level);
            }
            Verdict::Retry(grown) => blocked_count += grown,
            Verdict::Stuck => {
                // Batch fusion merges correlation groups, which no
                // alias is to blame for; drop the merges and retry
                // before giving up on the whole rewrite.
                if allow_merge && cand.stats.encodes_merged > 0 {
                    allow_merge = false;
                } else {
                    return unchanged(program);
                }
            }
        }
    }
}

/// Assigns each encode op the id of the RN realization its conversion
/// compares against. Under [`RnRefreshPolicy::Explicit`] a refresh runs
/// exactly at refresh-group boundaries, so consecutive encode ops with
/// one tag share a realization (one *segment*). Under the other
/// policies the refresh counter is engine state the rewriter does not
/// model, so every encode event conservatively gets its own id (batch
/// operands still share theirs — one realization per batch by
/// construction).
fn realizations(p: &Program, policy: RnRefreshPolicy) -> Vec<u64> {
    let mut ids = vec![0u64; p.ops.len()];
    let mut next = 0u64;
    let mut prev_tag: Option<RefreshGroup> = None;
    for (i, op) in p.ops.iter().enumerate() {
        if !op.is_encode() {
            continue;
        }
        let fresh = match policy {
            RnRefreshPolicy::Explicit => prev_tag != Some(p.groups[i]),
            _ => true,
        };
        if fresh {
            next += 1;
        }
        prev_tag = Some(p.groups[i]);
        ids[i] = next;
    }
    ids
}

/// Maps each register to the index of its defining op.
fn def_ops(p: &Program) -> Vec<usize> {
    let mut def = vec![usize::MAX; p.regs];
    for (i, op) in p.ops.iter().enumerate() {
        for d in op.defs() {
            def[d.index] = i;
        }
    }
    def
}

/// Follows alias links to the representative register. Aliases always
/// point at registers that were kept (never re-aliased later), so the
/// chain is one hop; the loop is belt-and-braces.
fn resolve(alias: &[usize], mut r: usize) -> usize {
    while alias[r] != r {
        r = alias[r];
    }
    r
}

/// Dense signal → earliest-register map (structural-hash CSE). Signal
/// ids are small and allocated in lowering order, so a flat vector
/// beats a hash map on the per-op hot path; `usize::MAX` marks a
/// vacant slot.
fn rep_id(s: Signal) -> usize {
    ((s.node() as usize) << 1) | usize::from(s.is_inverted())
}

/// Packs a signal into 33 bits for composite-node memo keys.
fn sig_key(s: Signal) -> u64 {
    (u64::from(s.node()) << 1) | u64::from(s.is_inverted())
}

/// `(realization, value)` key of the encode-dedup map. Equality is on
/// the full fields; the manual [`std::hash::Hash`] folds each key into
/// two words (the derived impl would feed five through the hasher —
/// measurable on the optimizer's hot loop, which probes this map for
/// every encode slot).
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
struct EncKey(u64, Fixed);

impl std::hash::Hash for EncKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.0);
        state.write_u64(self.1.value() ^ (u64::from(self.1.bits()) << 58));
    }
}

fn rep_get(rep: &[usize], s: Signal) -> Option<usize> {
    match rep.get(rep_id(s)) {
        Some(&r) if r != usize::MAX => Some(r),
        _ => None,
    }
}

/// Records `s → d` unless an earlier register already computes `s`
/// (first definition wins, like `entry().or_insert`).
fn rep_put(rep: &mut Vec<usize>, s: Signal, d: usize) {
    let id = rep_id(s);
    if rep.len() <= id {
        rep.resize(id + 1, usize::MAX);
    }
    if rep[id] == usize::MAX {
        rep[id] = d;
    }
}

/// One rewrite attempt: alias decisions, removals, and fold results,
/// later validated by [`check_groups`].
struct Candidate {
    /// Register → representative register (identity when kept).
    alias: Vec<usize>,
    /// Fully removed ops.
    removed: Vec<bool>,
    /// Per [`Op::EncodeCorrelated`]: which operand slots survive
    /// pruning (`None` keeps all).
    batch_keep: Vec<Option<Vec<bool>>>,
    /// Per [`Op::Read`]: the constant it folds to, when its source is a
    /// provably all-zero or all-one stream.
    read_fold: Vec<Option<f64>>,
    /// Per single [`Op::Encode`]: the same-segment correlated batch it
    /// fuses into (see [`merge_batches`]).
    merge: Vec<Option<usize>>,
    /// Per [`Op::EncodeCorrelated`]: emitted as part of an earlier fused
    /// single instead of at its own position.
    merged_away: Vec<bool>,
    stats: OptStats,
}

/// Forward lowering pass: computes an XAG signal per register (bitwise
/// semantics of the scouting ops), tracks which registers hold nested
/// threshold streams of a known value/realization, and aliases any
/// register whose stream is provably bit-identical to an earlier one.
#[allow(clippy::too_many_lines)]
fn rewrite(
    p: &Program,
    level: Optimize,
    policy: RnRefreshPolicy,
    realz: &[u64],
    blocked: &[bool],
) -> Candidate {
    let full = level == Optimize::Full;
    let explicit = policy == RnRefreshPolicy::Explicit;
    let nregs = p.regs;
    let mut cand = Candidate {
        alias: (0..nregs).collect(),
        removed: vec![false; p.ops.len()],
        batch_keep: vec![None; p.ops.len()],
        read_fold: vec![None; p.ops.len()],
        merge: vec![None; p.ops.len()],
        merged_away: vec![false; p.ops.len()],
        stats: OptStats {
            ops_before: p.ops.len(),
            ..OptStats::default()
        },
    };
    // With blends memoized to composite nodes, the graph holds about
    // one node per op (inputs dominate); reserving that up front keeps
    // the hot loop free of node-vector reallocation.
    let mut g = Xag::with_capacity(p.ops.len());
    // Bitwise function of each register's stream (over fresh inputs, one
    // per surviving encode).
    let mut sig: Vec<Signal> = vec![Signal::FALSE; nregs];
    // `Some((r, v))`: the register's stream is exactly the nested
    // threshold stream of value `v` under RN realization `r`.
    let mut val: Vec<Option<(u64, Fixed)>> = vec![None; nregs];
    // CORDIV destinations may be poisoned by `divide_or`; aliasing
    // another register onto one would change observable error behaviour.
    let mut divide_dst = vec![false; nregs];
    // Signal → earliest register computing it (structural-hash CSE).
    let mut rep: Vec<usize> = Vec::new();
    // (realization, value) → earliest register holding that exact
    // threshold stream (encode dedup, Explicit only).
    let mut enc_map: FxHashMap<EncKey, usize> = FxHashMap::default();
    // Sorted operand triple → composite blend node. MAJ is symmetric in
    // all three operands, so one canonical probe here replaces the
    // four-gate XAG expansion on the hottest op of the image kernels;
    // identical blends still CSE through the shared signal.
    let mut blend_memo: FxHashMap<u128, Signal> = FxHashMap::default();
    // Scratch for duplicate scanning inside one correlated batch,
    // reused across batches.
    let mut seen: Vec<(Fixed, usize)> = Vec::new();

    // Picks which operand an AND (min) or OR (max) of two nested
    // threshold streams collapses to; `None` when the operands are not
    // provably nested in one realization.
    let pick = |va: Option<(u64, Fixed)>, vb: Option<(u64, Fixed)>, want_min: bool| {
        let (ra, xa) = va?;
        let (rb, xb) = vb?;
        if ra != rb {
            return None;
        }
        let a_is_min = !xa.gt_fraction(xb);
        Some(if want_min { a_is_min } else { !a_is_min })
    };

    for (i, op) in p.ops.iter().enumerate() {
        // Registers a new combinational result may alias to, in
        // preference order: a value-equivalent operand (threshold fold)
        // ahead of a signal-equivalent earlier op (CSE).
        match op {
            Op::Encode { dst, value } => {
                let d = dst.index;
                if full && explicit {
                    // One probe covers both the dedup lookup and the
                    // first-definition insert.
                    match enc_map.entry(EncKey(realz[i], *value)) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            let r = *e.get();
                            if !blocked[d] && !divide_dst[r] {
                                cand.alias[d] = r;
                                cand.removed[i] = true;
                                cand.stats.encodes_elided += 1;
                                continue;
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(d);
                        }
                    }
                }
                let s = if value.value() == 0 {
                    Signal::FALSE
                } else {
                    g.input()
                };
                sig[d] = s;
                if full {
                    val[d] = Some((realz[i], *value));
                }
                rep_put(&mut rep, s, d);
            }
            Op::EncodeCorrelated { dsts, values } => {
                // Duplicate operands inside one batch share a stream by
                // construction; alias them to the first occurrence so
                // DCE can prune the slots. Cross-op aliasing is left to
                // the singles path — batch destinations share one
                // correlation group, which an outside alias would break.
                // Batches are a handful of operands; a linear scan beats
                // a hash map here.
                seen.clear();
                for (dv, vv) in dsts.iter().zip(values) {
                    let d = dv.index;
                    let dup = seen.iter().find(|&&(v, _)| v == *vv).map(|&(_, r)| r);
                    if full && !blocked[d] {
                        if let Some(first) = dup {
                            cand.alias[d] = first;
                            continue;
                        }
                    }
                    if dup.is_none() {
                        seen.push((*vv, d));
                    }
                    let s = if vv.value() == 0 {
                        Signal::FALSE
                    } else {
                        g.input()
                    };
                    sig[d] = s;
                    if full {
                        val[d] = Some((realz[i], *vv));
                    }
                    rep_put(&mut rep, s, d);
                }
            }
            Op::TrngSelect { dst } | Op::ScaledAdd { dst, .. } => {
                // Opaque: consumes TRNG draws; never rewritten, result
                // stream unknown to the rewriter.
                let d = dst.index;
                sig[d] = g.input();
                rep_put(&mut rep, sig[d], d);
            }
            Op::Divide { dst, .. } => {
                let d = dst.index;
                sig[d] = g.input();
                divide_dst[d] = true;
            }
            Op::Complement { dst, a } => {
                let ra = resolve(&cand.alias, a.index);
                // Bitwise NOT of a threshold stream is not itself a
                // threshold stream, so no value survives — but the
                // signal does (double complements cancel in the XAG).
                finish_comb(
                    FinishComb {
                        i,
                        d: dst.index,
                        s: sig[ra].not(),
                        equiv: None,
                        value: None,
                    },
                    level,
                    explicit,
                    blocked,
                    &divide_dst,
                    &mut sig,
                    &mut val,
                    &mut rep,
                    &mut enc_map,
                    &mut cand,
                );
            }
            Op::Multiply { dst, a, b }
            | Op::Minimum { dst, a, b }
            | Op::ApproxAdd { dst, a, b }
            | Op::Maximum { dst, a, b }
            | Op::AbsSub { dst, a, b } => {
                let (ra, rb) = (resolve(&cand.alias, a.index), resolve(&cand.alias, b.index));
                let (sa, sb) = (sig[ra], sig[rb]);
                let want_min = matches!(op, Op::Multiply { .. } | Op::Minimum { .. });
                let is_xor = matches!(op, Op::AbsSub { .. });
                let s = if is_xor {
                    g.xor(sa, sb)
                } else if want_min {
                    g.and(sa, sb)
                } else {
                    g.or(sa, sb)
                };
                // AND of nested streams is exactly the min stream and OR
                // the max stream (XOR's pattern is not a threshold
                // stream, so it carries no value).
                let (equiv, value) = if is_xor || !full {
                    (None, None)
                } else {
                    match pick(val[ra], val[rb], want_min) {
                        Some(true) => (Some(ra), val[ra]),
                        Some(false) => (Some(rb), val[rb]),
                        None => (None, None),
                    }
                };
                finish_comb(
                    FinishComb {
                        i,
                        d: dst.index,
                        s,
                        equiv,
                        value,
                    },
                    level,
                    explicit,
                    blocked,
                    &divide_dst,
                    &mut sig,
                    &mut val,
                    &mut rep,
                    &mut enc_map,
                    &mut cand,
                );
            }
            Op::Blend { dst, a, b, sel } => {
                let ra = resolve(&cand.alias, a.index);
                let rb = resolve(&cand.alias, b.index);
                let rs = resolve(&cand.alias, sel.index);
                let (sa, sb, ss) = (sig[ra], sig[rb], sig[rs]);
                // Bitwise MAJ: out = (a ∧ b) ⊕ (sel ∧ (a ⊕ b)), fully
                // symmetric in its three operands. The constant and
                // equal-operand cases fold to existing signals; every
                // other blend lowers to one memoized composite node.
                let s = if sa == sb {
                    // MAJ(x, x, s) = x.
                    sa
                } else if ss == Signal::FALSE {
                    g.and(sa, sb)
                } else if ss == Signal::TRUE {
                    g.or(sa, sb)
                } else if (sa == Signal::FALSE && sb == Signal::TRUE)
                    || (sa == Signal::TRUE && sb == Signal::FALSE)
                {
                    // MAJ(0, 1, s) = s.
                    ss
                } else {
                    let mut k = [sig_key(sa), sig_key(sb), sig_key(ss)];
                    k.sort_unstable();
                    let key =
                        u128::from(k[0]) | (u128::from(k[1]) << 33) | (u128::from(k[2]) << 66);
                    *blend_memo.entry(key).or_insert_with(|| g.input())
                };
                let (equiv, value) = if !full {
                    (None, None)
                } else if ss == Signal::FALSE {
                    // sel ≡ 0: out = a ∧ b = min of nested operands.
                    match pick(val[ra], val[rb], true) {
                        Some(true) => (Some(ra), val[ra]),
                        Some(false) => (Some(rb), val[rb]),
                        None => (None, None),
                    }
                } else if ss == Signal::TRUE {
                    match pick(val[ra], val[rb], false) {
                        Some(true) => (Some(ra), val[ra]),
                        Some(false) => (Some(rb), val[rb]),
                        None => (None, None),
                    }
                } else {
                    (None, None)
                };
                finish_comb(
                    FinishComb {
                        i,
                        d: dst.index,
                        s,
                        equiv,
                        value,
                    },
                    level,
                    explicit,
                    blocked,
                    &divide_dst,
                    &mut sig,
                    &mut val,
                    &mut rep,
                    &mut enc_map,
                    &mut cand,
                );
            }
            Op::Read { src } => {
                if full {
                    let r = resolve(&cand.alias, src.index);
                    // An all-zero stream reads exactly 0.0 through the
                    // ideal 8-bit ADC (code 0), an all-one stream
                    // exactly 1.0 (the saturated code) — but a poisoned
                    // CORDIV fallback must still go through `Read`.
                    if !divide_dst[r] {
                        if sig[r] == Signal::FALSE {
                            cand.read_fold[i] = Some(0.0);
                            cand.stats.reads_folded += 1;
                        } else if sig[r] == Signal::TRUE {
                            cand.read_fold[i] = Some(1.0);
                            cand.stats.reads_folded += 1;
                        }
                    }
                }
            }
            Op::ReadConst { .. } => {}
        }
    }

    cand
}

/// Arguments of [`finish_comb`] that vary per call site.
struct FinishComb {
    /// Op index.
    i: usize,
    /// Destination register.
    d: usize,
    /// The op's bitwise signal.
    s: Signal,
    /// A register this result is stream-identical to (threshold fold),
    /// if any.
    equiv: Option<usize>,
    /// The threshold-stream value the result carries, if known.
    value: Option<(u64, Fixed)>,
}

/// Shared tail of every combinational op: alias the destination to a
/// value-equivalent operand or a signal-equivalent earlier register
/// when allowed, otherwise record its signal/value for later folds.
#[allow(clippy::too_many_arguments)]
#[inline]
fn finish_comb(
    f: FinishComb,
    level: Optimize,
    explicit: bool,
    blocked: &[bool],
    divide_dst: &[bool],
    sig: &mut [Signal],
    val: &mut [Option<(u64, Fixed)>],
    rep: &mut Vec<usize>,
    enc_map: &mut FxHashMap<EncKey, usize>,
    cand: &mut Candidate,
) {
    let full = level == Optimize::Full;
    if !blocked[f.d] {
        let target = f
            .equiv
            .or_else(|| rep_get(rep, f.s))
            .filter(|&r| r != f.d && !divide_dst[r]);
        if let Some(r) = target {
            cand.alias[f.d] = r;
            cand.removed[f.i] = true;
            cand.stats.comb_elided += 1;
            return;
        }
    }
    sig[f.d] = f.s;
    val[f.d] = f.value;
    rep_put(rep, f.s, f.d);
    if full && explicit {
        if let Some((r, v)) = f.value {
            enc_map.entry(EncKey(r, v)).or_insert(f.d);
        }
    }
}

/// Backward dead-code elimination over the rewritten program. Reads and
/// the RN-consuming ops are roots; unused combinational ops disappear at
/// every level; unused encodes disappear only at [`Optimize::Full`]
/// under [`RnRefreshPolicy::Explicit`] (other policies count encode
/// events for their refresh cadence), and a forward repair pass restores
/// the first encode of any refresh segment that lost all of its encodes
/// so the boundary — and therefore the RN-epoch count — is preserved.
/// Correlated batches are never removed (each is one refresh event) but
/// their unused operand slots are pruned.
fn dce(p: &Program, level: Optimize, policy: RnRefreshPolicy, realz: &[u64], cand: &mut Candidate) {
    let full = level == Optimize::Full;
    let explicit = policy == RnRefreshPolicy::Explicit;
    let mut used = vec![false; p.regs];
    for i in (0..p.ops.len()).rev() {
        if cand.removed[i] {
            continue;
        }
        let op = &p.ops[i];
        match op {
            Op::Read { src } => {
                if cand.read_fold[i].is_none() {
                    used[resolve(&cand.alias, src.index)] = true;
                }
            }
            Op::ReadConst { .. } | Op::TrngSelect { .. } => {}
            Op::ScaledAdd { a, b, .. } | Op::Divide { a, b, .. } => {
                used[resolve(&cand.alias, a.index)] = true;
                used[resolve(&cand.alias, b.index)] = true;
            }
            Op::Encode { dst, .. } => {
                if full && explicit && !used[dst.index] {
                    cand.removed[i] = true;
                    cand.stats.encodes_elided += 1;
                }
            }
            Op::EncodeCorrelated { dsts, .. } => {
                if full {
                    let mut keep: Vec<bool> = dsts.iter().map(|d| used[d.index]).collect();
                    if keep.iter().all(|&k| !k) {
                        keep[0] = true;
                    }
                    cand.stats.encodes_elided += keep.iter().filter(|&&k| !k).count();
                    cand.batch_keep[i] = Some(keep);
                }
            }
            Op::Multiply { dst, a, b }
            | Op::ApproxAdd { dst, a, b }
            | Op::AbsSub { dst, a, b }
            | Op::Minimum { dst, a, b }
            | Op::Maximum { dst, a, b } => {
                if used[dst.index] {
                    used[resolve(&cand.alias, a.index)] = true;
                    used[resolve(&cand.alias, b.index)] = true;
                } else {
                    cand.removed[i] = true;
                    cand.stats.comb_elided += 1;
                }
            }
            Op::Complement { dst, a } => {
                if used[dst.index] {
                    used[resolve(&cand.alias, a.index)] = true;
                } else {
                    cand.removed[i] = true;
                    cand.stats.comb_elided += 1;
                }
            }
            Op::Blend { dst, a, b, sel } => {
                if used[dst.index] {
                    used[resolve(&cand.alias, a.index)] = true;
                    used[resolve(&cand.alias, b.index)] = true;
                    used[resolve(&cand.alias, sel.index)] = true;
                } else {
                    cand.removed[i] = true;
                    cand.stats.comb_elided += 1;
                }
            }
        }
    }
    if full && explicit {
        // Segment repair: a refresh segment whose encodes all vanished
        // would drop its boundary refresh and shift every later RN
        // realization. Restore the segment's first encode (and sever
        // its alias — the restored definition is the one consumers may
        // legitimately keep using, but nothing does; it is a dead def
        // that exists purely to carry the refresh).
        // Realization ids are small sequential integers, so dense
        // vectors beat hash maps here.
        let nseg = realz.iter().max().map_or(0, |&m| m as usize + 1);
        let mut first_of: Vec<usize> = vec![usize::MAX; nseg];
        let mut kept = vec![false; nseg];
        for (i, op) in p.ops.iter().enumerate() {
            if !op.is_encode() {
                continue;
            }
            let seg = realz[i] as usize;
            if first_of[seg] == usize::MAX {
                first_of[seg] = i;
            }
            kept[seg] |= !cand.removed[i];
        }
        for seg in 0..nseg {
            let i = first_of[seg];
            if kept[seg] || i == usize::MAX {
                continue;
            }
            cand.removed[i] = false;
            cand.stats.encodes_elided -= 1;
            if let Op::Encode { dst, .. } = &p.ops[i] {
                cand.alias[dst.index] = dst.index;
            }
        }
    }
}

/// Batch-fusion peephole (Full only): a surviving single encode whose
/// *next* encode event is a correlated batch of the same refresh segment
/// fuses into that batch — one `encode_many` dispatch and one planned
/// step instead of two. Bilinear hits this once per pixel: the vertical
/// select shares its segment with the next pixel's tap batch by
/// construction.
///
/// Bit-identity: equal realization ids guarantee
/// [`RnRefreshPolicy::Explicit`] and no refresh between the two ops, so
/// every fused value compares against exactly the RN rows it did before,
/// and the fused op sits at the single's position, keeping the boundary
/// (and the TRNG draw schedule) where it was. Only ops with no RN/TRNG
/// state may stand between the pair — another encode, a TRNG-drawing op,
/// or a divide resets the window. The fusion does move the single into
/// the batch's correlation *group*; [`check_groups`] validates that like
/// any other rewrite, and [`optimize`] retries without merges if it is
/// ever the culprit.
fn merge_batches(p: &Program, level: Optimize, realz: &[u64], cand: &mut Candidate) {
    if level != Optimize::Full {
        return;
    }
    let mut pending: Option<usize> = None;
    for i in 0..p.ops.len() {
        if cand.removed[i] {
            continue;
        }
        match &p.ops[i] {
            Op::Encode { .. } => pending = Some(i),
            Op::EncodeCorrelated { .. } => {
                if let Some(s) = pending.take() {
                    if realz[s] == realz[i] {
                        cand.merge[s] = Some(i);
                        cand.merged_away[i] = true;
                        cand.stats.encodes_merged += 1;
                    }
                }
            }
            Op::TrngSelect { .. } | Op::ScaledAdd { .. } | Op::Divide { .. } => pending = None,
            _ => {}
        }
    }
}

/// Outcome of one legality round.
enum Verdict {
    /// The candidate passes the engine's correlation-group rules.
    Legal,
    /// `n` more registers were pinned; re-run the rewrite.
    Retry(usize),
    /// A violation with no alias left to blame — give up and keep the
    /// original program (cannot happen for programs the engine accepts,
    /// kept as a safety net).
    Stuck,
}

/// Simulates the engine's correlation-group assignment over the kept
/// ops with aliases resolved, mirroring `Accelerator`'s runtime checks:
/// uncorrelated ops (multiply, adds) require distinct groups, correlated
/// ops (abs-sub, min/max, divide, blend operands) one group, and a blend
/// select a group distinct from its operands'. On a violation, every
/// aliased register in the failing op's input cone is pinned and the
/// rewrite retried.
fn check_groups(p: &Program, cand: &Candidate, def_op: &[usize], blocked: &mut [bool]) -> Verdict {
    let mut group = vec![0u64; p.regs];
    // Fused batches share the group their merged single was assigned.
    let mut fused_group = vec![0u64; p.ops.len()];
    let mut next = 0u64;
    for i in 0..p.ops.len() {
        if cand.removed[i] {
            continue;
        }
        let op = &p.ops[i];
        let r = |x: &VReg| resolve(&cand.alias, x.index);
        let ok = match op {
            Op::Encode { dst, .. } => {
                next += 1;
                group[dst.index] = next;
                if let Some(t) = cand.merge[i] {
                    fused_group[t] = next;
                }
                true
            }
            Op::EncodeCorrelated { dsts, .. } => {
                let gid = if cand.merged_away[i] {
                    fused_group[i]
                } else {
                    next += 1;
                    next
                };
                for (j, d) in dsts.iter().enumerate() {
                    let kept = cand.batch_keep[i].as_ref().is_none_or(|k| k[j]);
                    if kept && cand.alias[d.index] == d.index {
                        group[d.index] = gid;
                    }
                }
                true
            }
            Op::TrngSelect { dst } => {
                next += 1;
                group[dst.index] = next;
                true
            }
            Op::Multiply { dst, a, b }
            | Op::ScaledAdd { dst, a, b }
            | Op::ApproxAdd { dst, a, b } => {
                if group[r(a)] == group[r(b)] {
                    false
                } else {
                    next += 1;
                    group[dst.index] = next;
                    true
                }
            }
            Op::AbsSub { dst, a, b } | Op::Minimum { dst, a, b } | Op::Maximum { dst, a, b } => {
                if group[r(a)] == group[r(b)] {
                    group[dst.index] = group[r(a)];
                    true
                } else {
                    false
                }
            }
            Op::Divide { dst, a, b, .. } => {
                if group[r(a)] == group[r(b)] {
                    next += 1;
                    group[dst.index] = next;
                    true
                } else {
                    false
                }
            }
            Op::Complement { dst, a } => {
                group[dst.index] = group[r(a)];
                true
            }
            Op::Blend { dst, a, b, sel } => {
                if group[r(a)] == group[r(b)] && group[r(sel)] != group[r(a)] {
                    group[dst.index] = group[r(a)];
                    true
                } else {
                    false
                }
            }
            Op::Read { .. } | Op::ReadConst { .. } => true,
        };
        if ok {
            continue;
        }
        // Blame the cone: pin every aliased register feeding the failing
        // op. Blocking is monotone, so the fixpoint terminates.
        let mut grown = 0usize;
        let mut queue: Vec<usize> = op.uses().iter().flatten().map(|u| u.index).collect();
        let mut seen = vec![false; p.regs];
        while let Some(x) = queue.pop() {
            if seen[x] {
                continue;
            }
            seen[x] = true;
            if cand.alias[x] != x {
                if !blocked[x] {
                    blocked[x] = true;
                    grown += 1;
                }
            } else if def_op[x] != usize::MAX {
                for u in p.ops[def_op[x]].uses().iter().flatten() {
                    queue.push(u.index);
                }
            }
        }
        return if grown > 0 {
            Verdict::Retry(grown)
        } else {
            Verdict::Stuck
        };
    }
    Verdict::Legal
}

/// Whether an op pins a hoisting encode in place. Encodes never cross
/// other encodes (so segment boundaries and `EveryN` counters keep
/// their order) and never cross the TRNG-drawing ops. Reads are
/// barriers too — not for RN correctness (the ADC touches no RN state)
/// but to stop the hoist at the pixel boundary: without them every
/// pixel's conversions would cascade leftward past the previous pixel's
/// hoisted encodes and pile the whole program's rows up front,
/// exhausting the register file. With them, an encode rises exactly
/// into its own pixel's leading ❶ SBS run.
fn is_hoist_barrier(op: &Op) -> bool {
    matches!(
        op,
        Op::Encode { .. }
            | Op::EncodeCorrelated { .. }
            | Op::TrngSelect { .. }
            | Op::ScaledAdd { .. }
            | Op::Read { .. }
            | Op::ReadConst { .. }
    )
}

/// Materializes the surviving ops: prunes batch slots, applies read
/// folds, hoists encodes into their pixel's leading ❶ SBS run (Full
/// only), then renumbers registers densely in definition order.
fn emit(p: &Program, cand: &Candidate, level: Optimize) -> (Program, OptStats) {
    let mut stats = cand.stats;
    // Stage on op *indices* — the surviving ops are only materialized
    // once, with batch pruning, read folds, and register remapping fused
    // into that single clone.
    let mut order: Vec<usize> = Vec::with_capacity(p.ops.len());
    if level == Optimize::Full {
        // Stage-reordering peephole, fused with survivor collection:
        // move each encode leftward to the nearest barrier so every
        // pixel's conversions form one leading run (model attribution
        // matches execution order; bit-identical because nothing
        // crossed consumes RN state). One linear pass: combinational
        // ops buffer until the next barrier, encodes jump ahead of the
        // buffer — equivalent to bubbling each encode left (encodes are
        // barriers themselves, so hoisted encodes stack in program
        // order), without the quadratic tail shifting. A read fold
        // swaps `Read` for `ReadConst`, both barriers, so the
        // classification can look at the original ops.
        let mut combs: Vec<usize> = Vec::new();
        for i in 0..p.ops.len() {
            if cand.removed[i] || cand.merged_away[i] {
                continue;
            }
            if p.ops[i].is_encode() {
                if !combs.is_empty() {
                    stats.hoisted += 1;
                }
                order.push(i);
            } else if is_hoist_barrier(&p.ops[i]) {
                order.append(&mut combs);
                order.push(i);
            } else {
                combs.push(i);
            }
        }
        order.append(&mut combs);
    } else {
        for i in 0..p.ops.len() {
            if !cand.removed[i] && !cand.merged_away[i] {
                order.push(i);
            }
        }
    }
    let mut out = Program::new();
    out.group = p.group;
    out.outputs = p.outputs;
    out.ops.reserve(order.len());
    out.groups.reserve(order.len());
    let mut remap: Vec<usize> = vec![usize::MAX; p.regs];
    let mut next = 0usize;
    for &i in &order {
        // A fused batch defines its slots at the merged single's
        // position, right after the single's own register.
        for t in std::iter::once(i).chain(cand.merge[i]) {
            for (j, d) in p.ops[t].defs().iter().enumerate() {
                // Pruned batch slots define nothing in the output
                // program.
                if cand.batch_keep[t].as_ref().is_none_or(|k| k[j]) {
                    remap[d.index] = next;
                    next += 1;
                }
            }
        }
    }
    out.regs = next;
    let id = out.id;
    let map = |x: &VReg| VReg {
        program: id,
        index: remap[resolve(&cand.alias, x.index)],
    };
    for i in order {
        if let (Some(t), Op::Encode { dst, value }) = (cand.merge[i], &p.ops[i]) {
            // Fused single + batch: one correlated encode with the
            // single's value leading, at the single's position (the
            // shared-segment realization makes this bit-identical; see
            // [`merge_batches`]).
            let (bd, bv) = match &p.ops[t] {
                Op::EncodeCorrelated { dsts, values } => (dsts, values),
                _ => unreachable!("merge targets are correlated batches"),
            };
            let keep = cand.batch_keep[t].as_ref();
            let mut dsts = Vec::with_capacity(1 + bd.len());
            let mut values = Vec::with_capacity(1 + bv.len());
            dsts.push(map(dst));
            values.push(*value);
            for (j, (d, v)) in bd.iter().zip(bv).enumerate() {
                if keep.is_none_or(|k| k[j]) {
                    dsts.push(map(d));
                    values.push(*v);
                }
            }
            out.ops.push(Op::EncodeCorrelated { dsts, values });
            out.groups.push(p.groups[i]);
            continue;
        }
        let mapped = match (&p.ops[i], &cand.batch_keep[i], cand.read_fold[i]) {
            (Op::EncodeCorrelated { dsts, values }, Some(keep), _) => Op::EncodeCorrelated {
                dsts: dsts
                    .iter()
                    .zip(keep)
                    .filter_map(|(d, &k)| k.then_some(map(d)))
                    .collect(),
                values: values
                    .iter()
                    .zip(keep)
                    .filter_map(|(v, &k)| k.then_some(*v))
                    .collect(),
            },
            (Op::Read { .. }, _, Some(value)) => Op::ReadConst { value },
            (op, _, _) => op.map_regs(map),
        };
        out.ops.push(mapped);
        out.groups.push(p.groups[i]);
    }
    stats.ops_after = out.ops.len();
    debug_assert!(
        super::op_last_uses(&out).is_ok(),
        "optimizer emitted a program with use-before-def"
    );
    (out, stats)
}
