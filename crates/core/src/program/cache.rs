//! Compiled-template cache: emit/optimize/plan once, bind and run many.
//!
//! Every tile of a kernel run used to re-emit, re-optimize (~1 ms at
//! [`Optimize::Full`]) and re-plan a [`Program`] whose *structure* is
//! identical across same-shaped tiles — only the encode immediates and
//! output constants differ. This module caches the compiled artifact:
//!
//! * [`ValueTape`] is a [`ProgramSink`] that records an emitter's op
//!   *shape* (a running structure hash plus op/register/output counts)
//!   and its value stream (encode immediates, `read_const` / `divide_or`
//!   constants) without building any ops. Taping a tile costs a few
//!   microseconds where emission costs hundreds.
//! * [`Template`] owns a program together with its [`PlanData`] lowering
//!   schedule and, in *holes* mode, prefix tables mapping each op to its
//!   slice of a [`Bindings`] value stream. Executing a template binds a
//!   tile's values at the accelerator-call boundary — no program is
//!   cloned or patched.
//! * [`PlanCache`] is a bounded, thread-safe map from [`TemplateKey`] to
//!   shared templates with least-recently-used eviction. It also keeps a
//!   *fast path*: a second LRU map from [`BoundKey`] — kernel, row range
//!   and an emitter-supplied frame digest of all inputs — to
//!   [`BoundEntry`] (template, bindings) pairs, so a tile of a repeated
//!   frame executes without even re-taping.
//!
//! # Value safety
//!
//! A template may only be reused where compilation would have produced
//! the same artifact. [`Optimize::Off`] never inspects values, so one
//! template serves every value pattern of a structure — the key's
//! `values` field is 0 and execution binds the tile's values into the
//! template's holes. The rewriting levels are value-dependent
//! ([`Optimize::value_dependent`]): encode dedup, zero-value lowering
//! and threshold folding change the *shape* of the optimized program
//! when immediates change. There the key carries the full value-pattern
//! hash and the template runs its baked-in values verbatim (a hit means
//! the tile's values are identical), so cached execution is bit-identical
//! to uncached at every level.
//!
//! # Fallback
//!
//! A lookup that finds a key match whose recorded source shape (op,
//! register, output and value-slot counts — and at value-dependent
//! levels the exact source values) disagrees with the tape is a hash
//! collision: the caller compiles the tile from scratch and does *not*
//! replace the entry. Surfaced as the `fallbacks` count in run stats.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use super::opt::{optimize, Optimize};
use super::{
    next_program_id, BindRef, ExecArena, ExecView, Op, PlanData, Program, ProgramSink,
    RefreshGroup, VReg,
};
use crate::engine::Accelerator;
use crate::error::ImscError;
use crate::fxhash::FxHashMap;
use crate::layout::RnRefreshPolicy;
use sc_core::Fixed;

/// One round of the splitmix64 finalizer folding `v` into `h` — the
/// hash combiner behind the tape's structure/value hashes and the
/// backend's substrate signature.
#[must_use]
pub fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Where compile time went, in nanoseconds. Additive across tiles and
/// runs via [`CompileStats::merge`]; `bind_ns` is the cached path's
/// tape-record cost (the only per-tile "compilation" a cache hit pays).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Building `Program` ops from the kernel emitter.
    pub emit_ns: u64,
    /// The optimizer rewrite fixpoint.
    pub optimize_ns: u64,
    /// Planning (last-use analysis, coalescing, boundary schedule).
    pub plan_ns: u64,
    /// Recording the per-tile [`ValueTape`] (cached path only).
    pub bind_ns: u64,
}

impl CompileStats {
    /// Sum of all phases.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.emit_ns + self.optimize_ns + self.plan_ns + self.bind_ns
    }

    /// Accumulates another breakdown into this one.
    pub fn merge(&mut self, other: &CompileStats) {
        self.emit_ns += other.emit_ns;
        self.optimize_ns += other.optimize_ns;
        self.plan_ns += other.plan_ns;
        self.bind_ns += other.bind_ns;
    }
}

/// Per-op structure tags folded into the tape hash. Distinct per op
/// kind (and per `divide` / `divide_or`, whose lowering differs).
mod tag {
    pub const ENCODE: u64 = 1;
    pub const ENCODE_CORRELATED: u64 = 2;
    pub const TRNG_SELECT: u64 = 3;
    pub const MULTIPLY: u64 = 4;
    pub const SCALED_ADD: u64 = 5;
    pub const APPROX_ADD: u64 = 6;
    pub const ABS_SUB: u64 = 7;
    pub const MINIMUM: u64 = 8;
    pub const MAXIMUM: u64 = 9;
    pub const DIVIDE: u64 = 10;
    pub const DIVIDE_OR: u64 = 11;
    pub const COMPLEMENT: u64 = 12;
    pub const BLEND: u64 = 13;
    pub const READ: u64 = 14;
    pub const READ_CONST: u64 = 15;
}

/// The shape of an emitted (pre-optimization) program: the exact counts
/// a [`ValueTape`] must reproduce for a template to accept its
/// bindings. Checked on every cache hit as the collision guard behind
/// the 64-bit structure hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SrcShape {
    ops: u32,
    regs: u32,
    outputs: u32,
    fixed: u32,
    consts: u32,
}

/// A [`ProgramSink`] that records only what the template cache needs:
/// a structure hash over the op shapes, the exact counts, and the value
/// stream in emission order. Registers are fake (stamped with the
/// tape's own program id, so cross-feeding a real program is caught the
/// same way foreign registers are).
#[derive(Debug)]
pub struct ValueTape {
    id: u64,
    ops: u32,
    regs: u32,
    outputs: u32,
    group: RefreshGroup,
    structure: u64,
    values: Vec<Fixed>,
    consts: Vec<f64>,
}

impl Default for ValueTape {
    fn default() -> Self {
        ValueTape::new()
    }
}

impl ValueTape {
    /// An empty tape (current refresh group 0).
    #[must_use]
    pub fn new() -> Self {
        ValueTape {
            id: next_program_id(),
            ops: 0,
            regs: 0,
            outputs: 0,
            group: RefreshGroup::default(),
            structure: 0x243F_6A88_85A3_08D3,
            values: Vec::new(),
            consts: Vec::new(),
        }
    }

    /// Hash of the recorded op shapes, operand wiring, refresh-group
    /// tags and counts — equal tapes ⇒ equal emitted programs modulo
    /// values.
    #[must_use]
    pub fn structure_hash(&self) -> u64 {
        let mut h = mix(self.structure, u64::from(self.ops));
        h = mix(h, u64::from(self.regs));
        h = mix(h, u64::from(self.outputs));
        mix(h, u64::from(self.values.len() as u32))
    }

    /// Hash of the recorded value stream (encode immediates and output
    /// constants), independent of the structure hash.
    #[must_use]
    pub fn value_hash(&self) -> u64 {
        let mut h = 0x9E37_79B9_7F4A_7C15;
        for v in &self.values {
            h = mix(h, v.value());
            h = mix(h, u64::from(v.bits()));
        }
        for c in &self.consts {
            h = mix(h, c.to_bits());
        }
        h
    }

    /// Consumes the tape into the value stream a template binds at
    /// execution time.
    #[must_use]
    pub fn into_bindings(self) -> Bindings {
        Bindings {
            values: self.values,
            consts: self.consts,
        }
    }

    fn shape(&self) -> SrcShape {
        SrcShape {
            ops: self.ops,
            regs: self.regs,
            outputs: self.outputs,
            fixed: self.values.len() as u32,
            consts: self.consts.len() as u32,
        }
    }

    fn check_reg(&self, r: VReg) {
        assert!(
            r.program == self.id && r.index < self.regs as usize,
            "virtual register {} does not belong to this tape",
            r.index
        );
    }

    fn note(&mut self, kind: u64, uses: &[VReg]) {
        self.structure = mix(self.structure, kind);
        self.structure = mix(self.structure, self.group.0);
        for &r in uses {
            self.check_reg(r);
            self.structure = mix(self.structure, r.index as u64);
        }
        self.ops += 1;
    }

    fn def(&mut self) -> VReg {
        let r = VReg {
            program: self.id,
            index: self.regs as usize,
        };
        self.regs += 1;
        r
    }

    fn out(&mut self) -> usize {
        let idx = self.outputs as usize;
        self.outputs += 1;
        idx
    }
}

impl ProgramSink for ValueTape {
    fn encode(&mut self, value: Fixed) -> VReg {
        self.note(tag::ENCODE, &[]);
        self.values.push(value);
        self.def()
    }
    fn encode_correlated(&mut self, values: &[Fixed]) -> Vec<VReg> {
        assert!(
            !values.is_empty(),
            "encode_correlated needs at least one operand"
        );
        self.note(tag::ENCODE_CORRELATED, &[]);
        self.structure = mix(self.structure, values.len() as u64);
        self.values.extend_from_slice(values);
        (0..values.len()).map(|_| self.def()).collect()
    }
    fn trng_select(&mut self) -> VReg {
        self.note(tag::TRNG_SELECT, &[]);
        self.def()
    }
    fn multiply(&mut self, a: VReg, b: VReg) -> VReg {
        self.note(tag::MULTIPLY, &[a, b]);
        self.def()
    }
    fn scaled_add(&mut self, a: VReg, b: VReg) -> VReg {
        self.note(tag::SCALED_ADD, &[a, b]);
        self.def()
    }
    fn approx_add(&mut self, a: VReg, b: VReg) -> VReg {
        self.note(tag::APPROX_ADD, &[a, b]);
        self.def()
    }
    fn abs_subtract(&mut self, a: VReg, b: VReg) -> VReg {
        self.note(tag::ABS_SUB, &[a, b]);
        self.def()
    }
    fn minimum(&mut self, a: VReg, b: VReg) -> VReg {
        self.note(tag::MINIMUM, &[a, b]);
        self.def()
    }
    fn maximum(&mut self, a: VReg, b: VReg) -> VReg {
        self.note(tag::MAXIMUM, &[a, b]);
        self.def()
    }
    fn divide(&mut self, a: VReg, b: VReg) -> VReg {
        self.note(tag::DIVIDE, &[a, b]);
        self.def()
    }
    fn divide_or(&mut self, a: VReg, b: VReg, on_zero: f64) -> VReg {
        self.note(tag::DIVIDE_OR, &[a, b]);
        self.consts.push(on_zero);
        self.def()
    }
    fn complement(&mut self, a: VReg) -> VReg {
        self.note(tag::COMPLEMENT, &[a]);
        self.def()
    }
    fn blend(&mut self, a: VReg, b: VReg, sel: VReg) -> VReg {
        self.note(tag::BLEND, &[a, b, sel]);
        self.def()
    }
    fn read(&mut self, src: VReg) -> usize {
        self.note(tag::READ, &[src]);
        self.out()
    }
    fn read_const(&mut self, value: f64) -> usize {
        self.note(tag::READ_CONST, &[]);
        self.consts.push(value);
        self.out()
    }
    fn next_group(&mut self) -> RefreshGroup {
        self.group = RefreshGroup(self.group.0 + 1);
        self.group
    }
    fn set_group(&mut self, group: RefreshGroup) {
        self.group = group;
    }
}

/// A tile's value stream in emission order, recorded by [`ValueTape`]
/// and bound into a holes-mode [`Template`] at execution time.
#[derive(Debug, Clone, PartialEq)]
pub struct Bindings {
    values: Vec<Fixed>,
    consts: Vec<f64>,
}

/// The identity of a compiled template. Everything compilation depends
/// on is in here; everything execution-side (seed, schedule, thread
/// count) is deliberately *not*, so per-tile and pipelined runs share
/// templates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TemplateKey {
    /// Stable kernel identity (e.g. `"bilinear"`).
    pub kernel: &'static str,
    /// [`ValueTape::structure_hash`] of the emitted shape — covers the
    /// tile's row-range width and every structurally value-dependent
    /// emitter branch (e.g. matting's degenerate-pixel fallback).
    pub structure: u64,
    /// Optimization level the template was compiled at.
    pub level: Optimize,
    /// Refresh policy the template was planned for.
    pub policy: RnRefreshPolicy,
    /// Substrate signature: stream length, segment bits, variant,
    /// fault/wear configuration (the backend's
    /// `template_substrate_sig`).
    pub substrate: u64,
    /// [`ValueTape::value_hash`] at value-dependent levels; 0 at
    /// [`Optimize::Off`], where one template serves every value
    /// pattern.
    pub values: u64,
}

/// The identity of a fully-bound fast-path entry: a tile whose frame
/// digest matches executed exactly this (template, bindings) pair
/// before, so a hit skips even the [`ValueTape`] re-emission. The
/// `digest` must cover *everything* emission depends on besides the row
/// range — input image bytes and kernel parameters — because there is
/// no tape to cross-check against; an under-covering digest breaks the
/// cached ≡ uncached contract silently. (A 64-bit digest collision is
/// the same accepted risk class as the value-hash key at
/// value-dependent levels.)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BoundKey {
    /// Stable kernel identity (e.g. `"bilinear"`).
    pub kernel: &'static str,
    /// Output row range of the tile (`start`, `end`).
    pub rows: (u32, u32),
    /// Frame digest: the emitter's hash of its inputs and parameters.
    pub digest: u64,
    /// Optimization level the entry was compiled at.
    pub level: Optimize,
    /// Refresh policy the entry was planned for.
    pub policy: RnRefreshPolicy,
    /// Substrate signature (same field as [`TemplateKey::substrate`]).
    pub substrate: u64,
}

/// A template paired with the exact [`Bindings`] one digest-keyed tile
/// executes — the value of the [`PlanCache`]'s fast path. Validated
/// once at construction, shared by `Arc` after.
#[derive(Debug)]
pub struct BoundEntry {
    template: Arc<Template>,
    binds: Bindings,
}

impl BoundEntry {
    /// Pairs a template with bindings, validating them up front.
    ///
    /// # Errors
    ///
    /// [`ImscError::InvalidConfig`] when the bindings do not fit the
    /// template (see [`Template::check_binds`]).
    pub fn new(template: Arc<Template>, binds: Bindings) -> Result<BoundEntry, ImscError> {
        template.check_binds(&binds)?;
        Ok(BoundEntry { template, binds })
    }

    /// The shared template.
    #[must_use]
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// The tile's recorded value stream.
    #[must_use]
    pub fn bindings(&self) -> &Bindings {
        &self.binds
    }
}

/// An owned, pre-optimized, pre-planned program with value holes —
/// the unit the [`PlanCache`] shares across tiles, frames and threads.
#[derive(Debug)]
pub struct Template {
    program: Program,
    data: PlanData,
    /// Prefix counts of encode immediates / output constants per op of
    /// `program`, mapping each op to its [`Bindings`] slice (holes mode).
    fixed_base: Vec<u32>,
    const_base: Vec<u32>,
    /// Shape of the *source* (pre-optimization) program, compared
    /// against a tape on every hit as the hash-collision guard.
    src: SrcShape,
    /// Exact source values at value-dependent levels (`None` in holes
    /// mode): a hit must match them verbatim, because the compiled
    /// program bakes them in.
    src_values: Option<Bindings>,
    /// Whether execution substitutes bindings (true iff compiled at a
    /// value-independent level).
    holes: bool,
}

impl Template {
    /// Compiles `program` into a template: optimize (at `level`), plan,
    /// and build the binding tables.
    ///
    /// # Errors
    ///
    /// Planning errors for a malformed program.
    pub fn compile(
        program: Program,
        level: Optimize,
        policy: RnRefreshPolicy,
    ) -> Result<Template, ImscError> {
        Template::compile_timed(program, level, policy, &mut CompileStats::default())
    }

    /// [`Template::compile`], accumulating optimize/plan time into
    /// `stats`.
    ///
    /// # Errors
    ///
    /// Planning errors for a malformed program.
    pub fn compile_timed(
        program: Program,
        level: Optimize,
        policy: RnRefreshPolicy,
        stats: &mut CompileStats,
    ) -> Result<Template, ImscError> {
        let src = SrcShape::of(&program);
        let holes = !level.value_dependent();
        let src_values = (!holes).then(|| Bindings::of(&program));
        let program = if level == Optimize::Off {
            program
        } else {
            let t0 = Instant::now();
            let (optimized, _) = optimize(&program, level, policy);
            stats.optimize_ns += t0.elapsed().as_nanos() as u64;
            optimized
        };
        let t0 = Instant::now();
        let data = PlanData::of(&program)?;
        stats.plan_ns += t0.elapsed().as_nanos() as u64;
        let (fixed_base, const_base) = value_bases(&program);
        Ok(Template {
            program,
            data,
            fixed_base,
            const_base,
            src,
            src_values,
            holes,
        })
    }

    /// The compiled (post-optimization) program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Whether execution substitutes a tile's [`Bindings`] (holes mode,
    /// value-independent levels) or runs the baked-in values.
    #[must_use]
    pub fn binds_values(&self) -> bool {
        self.holes
    }

    /// The hash-collision guard: whether a tape that produced this
    /// template's key is genuinely the same compilation input — same
    /// shape counts, and at value-dependent levels the same values
    /// verbatim. A `false` here means the caller must fall back to
    /// per-tile compilation (and must not replace the entry).
    #[must_use]
    pub fn accepts(&self, tape: &ValueTape) -> bool {
        if tape.shape() != self.src {
            return false;
        }
        match &self.src_values {
            Some(src) => {
                src.values == tape.values
                    && src.consts.len() == tape.consts.len()
                    && src
                        .consts
                        .iter()
                        .zip(&tape.consts)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
            }
            None => true,
        }
    }

    /// Validates `binds` against the template's holes.
    ///
    /// # Errors
    ///
    /// [`ImscError::InvalidConfig`] when the binding lengths don't match
    /// the template's value slots (holes mode only).
    pub fn check_binds(&self, binds: &Bindings) -> Result<(), ImscError> {
        if self.holes
            && (binds.values.len() != self.src.fixed as usize
                || binds.consts.len() != self.src.consts as usize)
        {
            return Err(ImscError::InvalidConfig(
                "bindings do not match the template's value holes",
            ));
        }
        Ok(())
    }

    /// The execution view binding `binds` into the holes (or ignoring
    /// them at value-dependent levels). Callers must have validated via
    /// [`Template::check_binds`].
    pub(crate) fn view<'a>(&'a self, binds: &'a Bindings) -> ExecView<'a> {
        debug_assert!(self.check_binds(binds).is_ok());
        ExecView {
            program: &self.program,
            data: &self.data,
            binds: self.holes.then_some(BindRef {
                values: &binds.values,
                consts: &binds.consts,
                fixed_base: &self.fixed_base,
                const_base: &self.const_base,
            }),
        }
    }

    /// Executes the template on `acc` with the tile's `binds`,
    /// returning outputs in emission order — behaviourally identical to
    /// planning and executing the tile's own program.
    ///
    /// # Errors
    ///
    /// Binding-shape mismatch, or any planning/execution error of the
    /// underlying program.
    pub fn execute_in(
        &self,
        acc: &mut Accelerator,
        binds: &Bindings,
        arena: &mut ExecArena,
    ) -> Result<Vec<f64>, ImscError> {
        self.check_binds(binds)?;
        self.view(binds).execute_in(acc, arena)
    }
}

impl SrcShape {
    fn of(program: &Program) -> SrcShape {
        let (fixed, consts) = value_slot_counts(program);
        SrcShape {
            ops: program.ops.len() as u32,
            regs: program.regs as u32,
            outputs: program.outputs as u32,
            fixed,
            consts,
        }
    }
}

impl Bindings {
    /// The value stream a program would tape — used to snapshot source
    /// values for exact-mode templates.
    fn of(program: &Program) -> Bindings {
        let mut values = Vec::new();
        let mut consts = Vec::new();
        for op in &program.ops {
            match op {
                Op::Encode { value, .. } => values.push(*value),
                Op::EncodeCorrelated { values: vs, .. } => values.extend_from_slice(vs),
                Op::ReadConst { value } => consts.push(*value),
                Op::Divide {
                    on_zero: Some(c), ..
                } => consts.push(*c),
                _ => {}
            }
        }
        Bindings { values, consts }
    }
}

/// Per-op prefix counts of (encode immediates, output constants) —
/// the stateless index from an op to its bindings slice.
fn value_bases(program: &Program) -> (Vec<u32>, Vec<u32>) {
    let mut fixed_base = Vec::with_capacity(program.ops.len());
    let mut const_base = Vec::with_capacity(program.ops.len());
    let (mut nf, mut nc) = (0u32, 0u32);
    for op in &program.ops {
        fixed_base.push(nf);
        const_base.push(nc);
        match op {
            Op::Encode { .. } => nf += 1,
            Op::EncodeCorrelated { values, .. } => nf += values.len() as u32,
            Op::ReadConst { .. } => nc += 1,
            Op::Divide {
                on_zero: Some(_), ..
            } => nc += 1,
            _ => {}
        }
    }
    (fixed_base, const_base)
}

fn value_slot_counts(program: &Program) -> (u32, u32) {
    let (mut nf, mut nc) = (0u32, 0u32);
    for op in &program.ops {
        match op {
            Op::Encode { .. } => nf += 1,
            Op::EncodeCorrelated { values, .. } => nf += values.len() as u32,
            Op::ReadConst { .. } => nc += 1,
            Op::Divide {
                on_zero: Some(_), ..
            } => nc += 1,
            _ => {}
        }
    }
    (nf, nc)
}

/// Observability counters of one [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Eviction threshold.
    pub capacity: usize,
}

struct Entry {
    template: Arc<Template>,
    /// Tick of the last lookup or insert touching this entry (the LRU
    /// ordering).
    used: u64,
}

struct BoundSlot {
    entry: Arc<BoundEntry>,
    used: u64,
}

struct CacheInner {
    map: FxHashMap<TemplateKey, Entry>,
    bound: FxHashMap<BoundKey, BoundSlot>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded, thread-safe map from [`TemplateKey`] to shared
/// [`Template`]s with least-recently-used eviction. Share one instance
/// across tiles, frames, worker threads and runs (the backend's
/// `with_plan_cache`); all methods take `&self`.
pub struct PlanCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanCache")
            .field("len", &stats.len)
            .field("capacity", &stats.capacity)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish_non_exhaustive()
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    /// Default eviction threshold — comfortably above one frame's worth
    /// of distinct tile shapes for every kernel in the workspace.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// A cache with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        PlanCache::with_capacity(PlanCache::DEFAULT_CAPACITY)
    }

    /// A cache evicting least-recently-used entries beyond `capacity`
    /// (clamped to ≥ 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(CacheInner {
                map: FxHashMap::default(),
                bound: FxHashMap::default(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// The eviction threshold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached templates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache holds no templates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters and occupancy.
    #[must_use]
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.lock();
        PlanCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.map.len(),
            capacity: self.capacity,
        }
    }

    /// Looks up a template, refreshing its LRU position.
    #[must_use]
    pub fn lookup(&self, key: &TemplateKey) -> Option<Arc<Template>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.used = tick;
                let t = Arc::clone(&entry.template);
                inner.hits += 1;
                Some(t)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) a template, evicting the least-recently
    /// used entry if the cache is full.
    pub fn insert(&self, key: TemplateKey, template: Arc<Template>) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            key,
            Entry {
                template,
                used: tick,
            },
        );
    }

    /// Looks up a fully-bound fast-path entry, refreshing its LRU
    /// position. A hit counts as a cache hit; a miss is *not* counted
    /// here — the [`PlanCache::lookup`] the caller falls back to is the
    /// lookup of record, so each tile contributes exactly one counted
    /// outcome.
    #[must_use]
    pub fn lookup_bound(&self, key: &BoundKey) -> Option<Arc<BoundEntry>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let slot = inner.bound.get_mut(key)?;
        slot.used = tick;
        let entry = Arc::clone(&slot.entry);
        inner.hits += 1;
        Some(entry)
    }

    /// Inserts (or replaces) a fast-path entry. The bound map has its
    /// own LRU at the same capacity as the template map (bound entries
    /// reference templates by `Arc`, so evicting one never invalidates
    /// the other).
    pub fn insert_bound(&self, key: BoundKey, entry: Arc<BoundEntry>) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.bound.contains_key(&key) && inner.bound.len() >= self.capacity {
            if let Some(victim) = inner
                .bound
                .iter()
                .min_by_key(|(_, s)| s.used)
                .map(|(k, _)| k.clone())
            {
                inner.bound.remove(&victim);
                inner.evictions += 1;
            }
        }
        inner.bound.insert(key, BoundSlot { entry, used: tick });
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // A panicking holder can only have been mid-read or mid-insert
        // of independent entries; the map itself is never left torn.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Accelerator;

    fn emit_demo<S: ProgramSink>(sink: &mut S, a: u8, b: u8, c: f64) {
        let x = sink.encode(Fixed::from_u8(a));
        let y = sink.encode(Fixed::from_u8(b));
        let m = sink.multiply(x, y);
        sink.read(m);
        sink.next_group();
        let pair = sink.encode_correlated(&[Fixed::from_u8(a), Fixed::from_u8(b)]);
        let d = sink.abs_subtract(pair[0], pair[1]);
        sink.read(d);
        sink.read_const(c);
    }

    fn acc() -> Accelerator {
        Accelerator::builder()
            .stream_len(1024)
            .seed(7)
            .build()
            .unwrap()
    }

    #[test]
    fn tape_matches_program_shape_and_values() {
        let mut p = Program::new();
        emit_demo(&mut p, 10, 200, 0.5);
        let mut tape = ValueTape::new();
        emit_demo(&mut tape, 10, 200, 0.5);
        let tpl = Template::compile(p, Optimize::Off, RnRefreshPolicy::PerEncode).unwrap();
        assert!(tpl.accepts(&tape));
        let binds = tape.into_bindings();
        assert!(tpl.check_binds(&binds).is_ok());
    }

    #[test]
    fn tape_structure_hash_ignores_values_but_not_shape() {
        let mut a = ValueTape::new();
        emit_demo(&mut a, 10, 200, 0.5);
        let mut b = ValueTape::new();
        emit_demo(&mut b, 99, 3, 0.25);
        assert_eq!(a.structure_hash(), b.structure_hash());
        assert_ne!(a.value_hash(), b.value_hash());
        let mut c = ValueTape::new();
        emit_demo(&mut c, 10, 200, 0.5);
        let _extra = c.encode(Fixed::from_u8(1));
        assert_ne!(a.structure_hash(), c.structure_hash());
    }

    #[test]
    fn holes_template_binds_other_tiles_values_bit_identically() {
        // Template compiled from tile A's program, executed with tile
        // B's bindings ≡ compiling and running tile B from scratch.
        let mut pa = Program::new();
        emit_demo(&mut pa, 10, 200, 0.5);
        let tpl = Template::compile(pa, Optimize::Off, RnRefreshPolicy::PerEncode).unwrap();

        let mut tape_b = ValueTape::new();
        emit_demo(&mut tape_b, 77, 13, 0.125);
        assert!(tpl.accepts(&tape_b));
        let got = tpl
            .execute_in(&mut acc(), &tape_b.into_bindings(), &mut ExecArena::new())
            .unwrap();

        let mut pb = Program::new();
        emit_demo(&mut pb, 77, 13, 0.125);
        let want = pb.run_on(&mut acc()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn exact_template_rejects_differing_values() {
        let mut p = Program::new();
        emit_demo(&mut p, 10, 200, 0.5);
        let tpl = Template::compile(p, Optimize::Full, RnRefreshPolicy::PerEncode).unwrap();
        assert!(!tpl.binds_values());
        let mut same = ValueTape::new();
        emit_demo(&mut same, 10, 200, 0.5);
        assert!(tpl.accepts(&same));
        let mut diff = ValueTape::new();
        emit_demo(&mut diff, 10, 201, 0.5);
        assert!(!tpl.accepts(&diff));
    }

    #[test]
    fn mismatched_bindings_are_rejected() {
        let mut p = Program::new();
        emit_demo(&mut p, 10, 200, 0.5);
        let tpl = Template::compile(p, Optimize::Off, RnRefreshPolicy::PerEncode).unwrap();
        let mut short = ValueTape::new();
        let x = short.encode(Fixed::from_u8(1));
        short.read(x);
        assert!(!tpl.accepts(&short));
        let err = tpl.execute_in(&mut acc(), &short.into_bindings(), &mut ExecArena::new());
        assert!(matches!(err, Err(ImscError::InvalidConfig(_))));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PlanCache::with_capacity(2);
        let key = |n: u64| TemplateKey {
            kernel: "test",
            structure: n,
            level: Optimize::Off,
            policy: RnRefreshPolicy::PerEncode,
            substrate: 0,
            values: 0,
        };
        let tpl = |v: u8| {
            let mut p = Program::new();
            let x = p.encode(Fixed::from_u8(v));
            p.read(x);
            Arc::new(Template::compile(p, Optimize::Off, RnRefreshPolicy::PerEncode).unwrap())
        };
        cache.insert(key(1), tpl(1));
        cache.insert(key(2), tpl(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.lookup(&key(1)).is_some());
        cache.insert(key(3), tpl(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&key(1)).is_some());
        assert!(cache.lookup(&key(2)).is_none());
        assert!(cache.lookup(&key(3)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.capacity, 2);
    }
}
