//! Cross-array pipeline scheduling for [`Program`]s — the executable
//! form of the Fig. 5 throughput model.
//!
//! "In practice, we use multiple arrays to parallelize and pipeline the
//! different stages" (§III): ❶ SBS generation, ❷ arithmetic, and ❸ ADC
//! conversion run in different mats, so in steady state a new operation
//! retires every `max(stage latency)`. [`crate::pipeline::PipelineModel`]
//! states that analytically; this module *executes* it. A
//! [`PipelineScheduler`] takes one logical program, partitioned into
//! **slices** (self-contained sub-programs; see [`partition_into`] /
//! [`partition_by_outputs`]), and runs the slices through three stage
//! workers connected by bounded queues, with at most `k` accelerator
//! instances (arrays) in flight — the work-queue machinery shared with
//! the tiled image kernels ([`crate::parallel`]).
//!
//! Two granularities matter:
//!
//! * **Slices** are the unit of array allocation and thread handoff: each
//!   slice executes on its own accelerator built by the caller's factory,
//!   entering at the ❶ worker (leading encode steps), crossing to the ❷
//!   worker (arithmetic), and retiring at the ❸ worker (trailing reads).
//!   Mid-slice encode steps (e.g. bilinear's vertical select) ride the ❷
//!   worker thread-wise but are still *attributed* to stage ❶ in the
//!   model, so occupancy numbers follow the op semantics, not the thread
//!   placement.
//! * **Wavefronts** are the unit of pipeline initiation in the *modeled*
//!   timeline: maximal op runs with no register live across their
//!   boundary (from the planner's last-use analysis) — one per pixel in
//!   the image kernels. Each wavefront's per-stage latency is measured
//!   from the accelerator's own cost ledger (the delta of
//!   [`crate::cost::CostLedger::latency_ns`] around each step), and the
//!   classic pipeline recurrence over those measured latencies yields the
//!   reported makespan, stage occupancy, and initiation interval —
//!   *measured* numbers that are differentially cross-checked against
//!   [`crate::pipeline::PipelineModel::bottleneck_ns`] in
//!   `tests/sched.rs`.
//!
//! Everything observable is deterministic: slices execute their ops in
//! program order on their own accelerator, results and ledgers are
//! collected in slice order, and the report is computed from
//! ledger-derived latencies — so threaded and sequential execution are
//! bit-identical, and a pipelined image-kernel run is value- and
//! ledger-identical to the per-tile path it subsumes.

use super::cache::{Bindings, Template};
use super::{release_live_slots, ExecArena, ExecView, Op, Plan, PlanData, Program, Step, VReg};
use crate::cost::{CostLedger, WearSummary};
use crate::engine::Accelerator;
use crate::error::ImscError;
use crate::instrument::SinkHandle;
use reram::energy::ReramCosts;
use std::ops::Range;

// The pipeline hands accelerators between stage workers.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Accelerator>();
    assert_send::<ExecArena>();
};

/// The three pipeline stages of the paper's §III multi-array flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// ❶ Stochastic-bit-stream generation (encodes, TRNG rows).
    Sbs,
    /// ❷ In-array SC arithmetic.
    Arith,
    /// ❸ Stochastic→binary conversion (ADC read-out).
    S2b,
}

impl StageKind {
    /// Number of pipeline stages.
    pub const COUNT: usize = 3;

    /// All stages in pipeline order.
    pub const ALL: [StageKind; 3] = [StageKind::Sbs, StageKind::Arith, StageKind::S2b];

    /// The stage executing `op`.
    #[must_use]
    pub fn of(op: &Op) -> StageKind {
        match op {
            Op::Encode { .. } | Op::EncodeCorrelated { .. } | Op::TrngSelect { .. } => {
                StageKind::Sbs
            }
            Op::Read { .. } | Op::ReadConst { .. } => StageKind::S2b,
            _ => StageKind::Arith,
        }
    }

    /// Dense index in pipeline order.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            StageKind::Sbs => 0,
            StageKind::Arith => 1,
            StageKind::S2b => 2,
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Sbs => "sbs",
            StageKind::Arith => "arith",
            StageKind::S2b => "s2b",
        }
    }
}

/// Per-op release counts from the planner's last-use analysis (op `i`
/// is the last use of `rel[i]` registers) — derived from the same
/// [`super::op_last_uses`] pass the planner schedules releases with, so
/// wavefront cuts and plan releases can never disagree.
fn op_releases(program: &Program) -> Result<Vec<usize>, ImscError> {
    let last_use = super::op_last_uses(program)?;
    let mut rel = vec![0usize; program.ops.len()];
    for &i in &last_use {
        rel[i] += 1;
    }
    Ok(rel)
}

/// Op-index ranges of the program's wavefronts: maximal op runs with no
/// register live across their boundaries (per the last-use analysis).
/// Cutting the program at wavefront boundaries is always legal — no
/// dataflow crosses them — which is exactly what the partition functions
/// do. Per-pixel kernels yield one wavefront per pixel.
///
/// # Errors
///
/// [`ImscError::InvalidConfig`] for a malformed program (a register used
/// before its defining op).
pub fn wavefronts(program: &Program) -> Result<Vec<Range<usize>>, ImscError> {
    let rel = op_releases(program)?;
    let mut ranges = Vec::new();
    let mut live = 0usize;
    let mut start = 0usize;
    for (i, op) in program.ops.iter().enumerate() {
        live += op.defs().len();
        live -= rel[i];
        if live == 0 {
            ranges.push(start..i + 1);
            start = i + 1;
        }
    }
    debug_assert_eq!(start, program.ops.len(), "programs end with no live rows");
    Ok(ranges)
}

/// Rebuilds `program.ops[range]` as a self-contained program. The range
/// must start and end on wavefront boundaries, so its registers form the
/// dense index block starting at `reg_lo`.
fn subprogram(src: &Program, range: Range<usize>, reg_lo: usize) -> Program {
    let mut p = Program::new();
    let id = p.id;
    for i in range {
        let op = src.ops[i].map_regs(|r| VReg {
            program: id,
            index: r.index - reg_lo,
        });
        p.regs += op.defs().len();
        if matches!(op, Op::Read { .. } | Op::ReadConst { .. }) {
            p.outputs += 1;
        }
        p.groups.push(src.groups[i]);
        p.ops.push(op);
    }
    p
}

/// Builds slices from wavefront ranges grouped by `counts[j]` wavefronts
/// each.
fn slices_from_wavefront_groups(
    program: &Program,
    waves: &[Range<usize>],
    counts: impl Iterator<Item = usize>,
) -> Vec<Program> {
    let mut slices = Vec::new();
    let mut next = 0usize;
    let mut reg_lo = 0usize;
    for count in counts {
        let group = &waves[next..next + count];
        let range = match (group.first(), group.last()) {
            (Some(first), Some(last)) => first.start..last.end,
            _ => {
                let at = waves.get(next).map_or(program.ops.len(), |w| w.start);
                at..at
            }
        };
        let slice = subprogram(program, range, reg_lo);
        reg_lo += slice.regs;
        next += count;
        slices.push(slice);
    }
    slices
}

/// Partitions one logical program into (at most) `slices` self-contained
/// sub-programs of near-equal wavefront counts, cutting only at
/// wavefront boundaries. Programs with fewer wavefronts than requested
/// slices yield one slice per wavefront.
///
/// # Errors
///
/// [`ImscError::InvalidConfig`] for a malformed program or `slices == 0`.
pub fn partition_into(program: &Program, slices: usize) -> Result<Vec<Program>, ImscError> {
    if slices == 0 {
        return Err(ImscError::InvalidConfig(
            "a partition needs at least one slice",
        ));
    }
    let waves = wavefronts(program)?;
    let k = slices.min(waves.len()).max(1);
    let base = waves.len() / k;
    let extra = waves.len() % k;
    let counts = (0..k).map(|j| base + usize::from(j < extra));
    Ok(slices_from_wavefront_groups(program, &waves, counts))
}

/// Partitions one logical program into slices producing exactly
/// `counts[j]` outputs each — the cut the tiled image kernels use, where
/// `counts` mirrors the per-tile pixel counts, so the sliced program is
/// op-identical to per-tile emission.
///
/// # Errors
///
/// [`ImscError::InvalidConfig`] for a malformed program, when the counts
/// do not sum to the program's output count, or when a requested
/// boundary falls inside a wavefront (a register would be live across
/// the cut).
pub fn partition_by_outputs(
    program: &Program,
    counts: &[usize],
) -> Result<Vec<Program>, ImscError> {
    let waves = wavefronts(program)?;
    let outputs_of = |w: &Range<usize>| -> usize {
        program.ops[w.clone()]
            .iter()
            .filter(|op| matches!(op, Op::Read { .. } | Op::ReadConst { .. }))
            .count()
    };
    let mut wave_counts = Vec::with_capacity(counts.len());
    let mut next = 0usize;
    for &target in counts {
        let mut got = 0usize;
        let mut used = 0usize;
        while got < target {
            let Some(w) = waves.get(next + used) else {
                return Err(ImscError::InvalidConfig(
                    "slice output counts exceed the program's outputs",
                ));
            };
            got += outputs_of(w);
            used += 1;
        }
        if got != target {
            return Err(ImscError::InvalidConfig(
                "requested slice boundary is not a clean cut",
            ));
        }
        next += used;
        wave_counts.push(used);
    }
    if next != waves.len() {
        return Err(ImscError::InvalidConfig(
            "slice output counts do not cover the program",
        ));
    }
    Ok(slices_from_wavefront_groups(
        program,
        &waves,
        wave_counts.into_iter(),
    ))
}

/// One unit of pipelined work: a slice program the ❶ worker plans on
/// admission (the uncached path), or a pre-compiled [`Template`] with
/// the slice's value [`Bindings`] (the plan cache's hit path — emit,
/// optimize and plan are all skipped).
#[derive(Debug, Clone, Copy)]
pub enum SliceExec<'s> {
    /// Plan-and-run a slice program.
    Fresh(&'s Program),
    /// Run a cached template, binding the slice's values at execution.
    Bound(&'s Template, &'s Bindings),
}

impl<'s> SliceExec<'s> {
    /// The program this slice executes (the template's compiled program
    /// on the cached path).
    #[must_use]
    pub fn program(self) -> &'s Program {
        match self {
            SliceExec::Fresh(p) => p,
            SliceExec::Bound(t, _) => t.program(),
        }
    }
}

/// The measured result of one pipeline slice: its outputs plus the
/// per-array observables the tiled kernels merge in slice order.
#[derive(Debug, Clone)]
pub struct SliceOut {
    /// The slice program's outputs in emission order.
    pub outputs: Vec<f64>,
    /// The slice accelerator's accumulated cost ledger.
    pub ledger: CostLedger,
    /// Encode-cache hits observed by the slice accelerator.
    pub cache_hits: u64,
    /// RN realizations (epochs) the slice accelerator consumed.
    pub rn_epochs: u64,
    /// Bit flips the slice accelerator's fault injector applied — the
    /// per-slice health signal of fault-domain scheduling.
    pub faults_injected: u64,
    /// Scouting ops the slice accelerator executed (the denominator of
    /// the observed fault rate).
    pub scout_ops: u64,
    /// Endurance summary of the slice accelerator's stream-row wear map.
    pub stream_wear: WearSummary,
    /// Wall-clock nanoseconds the ❶ worker spent planning this slice
    /// (0 on the cached path, which admits a pre-planned template).
    pub plan_ns: u64,
}

/// Measured pipeline behaviour of one scheduled run, in *modeled*
/// nanoseconds derived from the accelerators' cost ledgers. One 3-stage
/// pipeline is modeled per array; `arrays` scales aggregate throughput
/// linearly, exactly as in [`crate::pipeline::PipelineModel`] / Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineReport {
    /// Accelerator instances the schedule was bounded to.
    pub arrays: usize,
    /// Pipeline initiations (wavefronts) across all slices.
    pub wavefronts: usize,
    /// Summed per-stage busy time, ns (ledger-derived).
    pub stage_busy_ns: [f64; StageKind::COUNT],
    /// Retire time of the first wavefront (pipeline fill), ns.
    pub fill_ns: f64,
    /// Retire time of the last wavefront, ns.
    pub makespan_ns: f64,
    /// Measured steady-state initiation interval: mean retire-to-retire
    /// gap, ns. Equals the bottleneck stage latency on stage-balanced
    /// programs (differentially pinned against
    /// [`crate::pipeline::PipelineModel::bottleneck_ns`]).
    pub initiation_interval_ns: f64,
    /// Unpipelined latency (every stage of every wavefront in series), ns.
    pub sequential_ns: f64,
    /// Fault domains (arrays) retired during the run (0 outside
    /// [`PipelineScheduler::run_with_domains`]).
    pub retired_arrays: usize,
    /// Slices whose results were discarded and re-run on a surviving
    /// array after their fault domain crossed the retirement threshold.
    pub rescheduled_slices: usize,
}

impl PipelineReport {
    /// Fraction of the makespan each stage array is busy.
    #[must_use]
    pub fn stage_occupancy(&self) -> [f64; StageKind::COUNT] {
        let mut occ = [0.0; StageKind::COUNT];
        if self.makespan_ns > 0.0 {
            for (o, busy) in occ.iter_mut().zip(self.stage_busy_ns) {
                *o = busy / self.makespan_ns;
            }
        }
        occ
    }

    /// Modeled speedup of pipelining over fully serial execution.
    #[must_use]
    pub fn pipeline_speedup(&self) -> f64 {
        if self.makespan_ns > 0.0 {
            self.sequential_ns / self.makespan_ns
        } else {
            1.0
        }
    }

    /// Modeled aggregate steady-state throughput across the `arrays`
    /// independent pipelines, in wavefronts per microsecond.
    #[must_use]
    pub fn throughput_ops_per_us(&self) -> f64 {
        if self.initiation_interval_ns > 0.0 {
            self.arrays as f64 * 1000.0 / self.initiation_interval_ns
        } else {
            0.0
        }
    }

    /// Computes the report from per-wavefront stage latencies via the
    /// classic pipeline recurrence: stage `s` of wavefront `i` starts
    /// once both stage `s−1` of wavefront `i` and stage `s` of wavefront
    /// `i−1` are done.
    fn from_wavefronts(durations: &[[f64; StageKind::COUNT]], arrays: usize) -> PipelineReport {
        let mut stage_end = [0.0f64; StageKind::COUNT];
        let mut busy = [0.0f64; StageKind::COUNT];
        let mut fill = 0.0f64;
        let mut last_retire = 0.0f64;
        for (i, durs) in durations.iter().enumerate() {
            let mut t = 0.0f64;
            for s in 0..StageKind::COUNT {
                let start = t.max(stage_end[s]);
                stage_end[s] = start + durs[s];
                t = stage_end[s];
                busy[s] += durs[s];
            }
            if i == 0 {
                fill = t;
            }
            last_retire = t;
        }
        let initiation_interval_ns = if durations.len() > 1 {
            (last_retire - fill) / (durations.len() - 1) as f64
        } else {
            last_retire
        };
        PipelineReport {
            arrays,
            wavefronts: durations.len(),
            stage_busy_ns: busy,
            fill_ns: fill,
            makespan_ns: last_retire,
            initiation_interval_ns,
            sequential_ns: busy.iter().sum(),
            retired_arrays: 0,
            rescheduled_slices: 0,
        }
    }
}

/// When a fault domain (one array of the farm) is taken out of service by
/// [`PipelineScheduler::run_with_domains`]: once an array has executed at
/// least `min_ops` scouting ops, it is retired as soon as its cumulative
/// observed fault rate (injected bit flips per scouting op) exceeds
/// `max_faults_per_op`. The `min_ops` guard keeps one unlucky early flip
/// from condemning a healthy array before the estimate has support.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetirementPolicy {
    /// Highest tolerated cumulative faults-per-scouting-op before the
    /// array is retired. With per-op flip probability `p` over `N`-bit
    /// streams the observed rate concentrates near `p·N`, so thresholds
    /// are naturally larger than 1 for long streams.
    pub max_faults_per_op: f64,
    /// Minimum scouting ops observed on an array before the rate is
    /// trusted.
    pub min_ops: u64,
}

impl Default for RetirementPolicy {
    fn default() -> Self {
        RetirementPolicy {
            max_faults_per_op: 0.5,
            min_ops: 1_000,
        }
    }
}

/// Cumulative health of one fault domain across a
/// [`PipelineScheduler::run_with_domains`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayHealth {
    /// The array (fault-domain) index, `0..scheduler.arrays()`.
    pub array: usize,
    /// Slices whose results this array contributed (discarded slices of a
    /// retiring array are not counted).
    pub slices_run: usize,
    /// Cumulative injected bit flips observed on this array.
    pub faults: u64,
    /// Cumulative scouting ops observed on this array.
    pub scout_ops: u64,
    /// Whether the array crossed the retirement threshold.
    pub retired: bool,
}

impl ArrayHealth {
    /// Observed cumulative fault rate (flips per scouting op).
    #[must_use]
    pub fn fault_rate(&self) -> f64 {
        if self.scout_ops == 0 {
            0.0
        } else {
            self.faults as f64 / self.scout_ops as f64
        }
    }
}

/// A fault-domain-aware pipelined run: the ordinary [`PipelineRun`] plus
/// per-array health and the final slice→array assignment.
#[derive(Debug, Clone)]
pub struct DomainRun {
    /// The pipelined results and report (with
    /// [`PipelineReport::retired_arrays`] /
    /// [`PipelineReport::rescheduled_slices`] filled in).
    pub run: PipelineRun,
    /// Health of every fault domain, indexed by array.
    pub health: Vec<ArrayHealth>,
    /// The array whose result each slice finally kept, in slice order.
    pub assignments: Vec<usize>,
}

/// A finished pipelined run: per-slice results in slice order plus the
/// measured pipeline report.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Per-slice results, in slice order (independent of scheduling).
    pub slices: Vec<SliceOut>,
    /// The measured pipeline behaviour of the whole run.
    pub report: PipelineReport,
}

/// Step-level schedule metadata of one slice: stage attribution,
/// wavefront membership, and the two thread-handoff points.
#[derive(Debug)]
struct SliceMeta {
    /// Stage index per plan step (coalesced encode runs are ❶).
    stage: Vec<usize>,
    /// Wavefront index per plan step (local to the slice).
    wavefront: Vec<usize>,
    /// Number of wavefronts in the slice.
    wavefronts: usize,
    /// End of the leading run of ❶ steps (first handoff).
    sbs_end: usize,
    /// Start of the trailing run of ❸ steps (second handoff).
    s2b_start: usize,
}

impl SliceMeta {
    fn of(prog: &Program, data: &PlanData) -> SliceMeta {
        let stage: Vec<usize> = data
            .steps
            .iter()
            .map(|step| match step {
                Step::EncodeRun { .. } => StageKind::Sbs.index(),
                Step::Single(i) => StageKind::of(&prog.ops[*i]).index(),
            })
            .collect();
        let mut wavefront = Vec::with_capacity(data.steps.len());
        let mut live = 0usize;
        let mut wf = 0usize;
        for (s, step) in data.steps.iter().enumerate() {
            wavefront.push(wf);
            let defs: usize = step.op_range().map(|o| prog.ops[o].defs().len()).sum();
            live += defs;
            live -= data.releases[s].len();
            if live == 0 {
                wf += 1;
            }
        }
        let sbs_end = stage
            .iter()
            .take_while(|&&s| s == StageKind::Sbs.index())
            .count();
        let trailing = stage
            .iter()
            .rev()
            .take_while(|&&s| s == StageKind::S2b.index())
            .count();
        let s2b_start = (stage.len() - trailing).max(sbs_end);
        SliceMeta {
            stage,
            wavefront,
            wavefronts: wf,
            sbs_end,
            s2b_start,
        }
    }

    /// Step range executed by stage worker `phase`.
    fn phase_range(&self, phase: usize) -> Range<usize> {
        match phase {
            0 => 0..self.sbs_end,
            1 => self.sbs_end..self.s2b_start,
            _ => self.s2b_start..self.stage.len(),
        }
    }
}

/// What a stage worker executes for one slice: a plan it produced on
/// admission, or a shared pre-compiled template with the slice's
/// bindings.
enum Hold<'p> {
    Planned(Plan<'p>),
    Bound(&'p Template, &'p Bindings),
}

impl<'p> Hold<'p> {
    fn view(&self) -> ExecView<'_> {
        match self {
            Hold::Planned(plan) => plan.view(),
            Hold::Bound(t, b) => t.view(b),
        }
    }

    fn program(&self) -> &'p Program {
        match self {
            Hold::Planned(plan) => plan.program(),
            Hold::Bound(t, _) => t.program(),
        }
    }
}

/// One slice traveling through the stage workers.
struct InFlight<'p> {
    idx: usize,
    hold: Hold<'p>,
    meta: SliceMeta,
    acc: Accelerator,
    arena: ExecArena,
    out: Vec<f64>,
    /// Per-wavefront ledger-derived stage latencies, ns.
    wf_ns: Vec<[f64; StageKind::COUNT]>,
    /// Planning time paid on admission (0 for bound templates).
    plan_ns: u64,
}

impl std::fmt::Debug for InFlight<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InFlight").field("idx", &self.idx).finish()
    }
}

/// A retired slice plus its wavefront timings.
struct Finished {
    out: SliceOut,
    wf_ns: Vec<[f64; StageKind::COUNT]>,
}

fn prepare<'p>(
    idx: usize,
    slice: SliceExec<'p>,
    acc: Accelerator,
    mut arena: ExecArena,
) -> Result<InFlight<'p>, ImscError> {
    let (hold, plan_ns) = match slice {
        SliceExec::Fresh(p) => {
            let t0 = std::time::Instant::now();
            let plan = p.plan()?;
            (Hold::Planned(plan), t0.elapsed().as_nanos() as u64)
        }
        SliceExec::Bound(t, b) => {
            t.check_binds(b)?;
            (Hold::Bound(t, b), 0)
        }
    };
    let meta = {
        let view = hold.view();
        SliceMeta::of(view.program, view.data)
    };
    let program = hold.program();
    arena.reset(program.regs);
    let wf_ns = vec![[0.0; StageKind::COUNT]; meta.wavefronts];
    let outputs = program.outputs;
    Ok(InFlight {
        idx,
        hold,
        meta,
        acc,
        arena,
        out: Vec::with_capacity(outputs),
        wf_ns,
        plan_ns,
    })
}

/// Executes one stage worker's step range of a slice, attributing each
/// step's ledger latency delta to the step's *stage kind* (not its
/// worker) in the wavefront timeline.
fn exec_phase(f: &mut InFlight<'_>, phase: usize, costs: &ReramCosts) -> Result<(), ImscError> {
    let InFlight {
        hold,
        meta,
        acc,
        arena,
        out,
        wf_ns,
        ..
    } = f;
    let view = hold.view();
    for s in meta.phase_range(phase) {
        let before = acc.ledger().latency_ns(costs);
        view.exec_step(s, acc, &mut arena.slots, out)?;
        let delta = acc.ledger().latency_ns(costs) - before;
        wf_ns[meta.wavefront[s]][meta.stage[s]] += delta;
    }
    Ok(())
}

/// Releases the rows a failed slice still holds (its accelerator may be
/// caller-retained via the factory's clone semantics; cheap regardless).
fn abandon(f: &mut InFlight<'_>) {
    release_live_slots(&mut f.acc, &mut f.arena.slots);
}

/// Retires one slice: drains its accelerator's recorded command trace
/// into the instrumentation sink at dispatch slot `seq` (slices retire in
/// slice order, so the replay stream stays dispatch-ordered and the
/// sink's buffering stays bounded by one slice), then snapshots the
/// observables.
fn finish(f: InFlight<'_>, sink: Option<&SinkHandle>, seq: usize) -> (Finished, ExecArena) {
    let InFlight {
        mut acc,
        arena,
        out,
        wf_ns,
        plan_ns,
        ..
    } = f;
    if let Some(sink) = sink {
        sink.drain_into(seq, &mut acc);
    }
    (
        Finished {
            out: SliceOut {
                outputs: out,
                ledger: *acc.ledger(),
                cache_hits: acc.encode_cache_hits(),
                rn_epochs: acc.rn_epoch(),
                faults_injected: acc.faults_injected(),
                scout_ops: acc.scout_ops_executed(),
                stream_wear: acc.stream_wear(),
                plan_ns,
            },
            wf_ns,
        },
        arena,
    )
}

/// The cross-array pipeline scheduler: executes program slices across
/// three stage workers with a bounded inter-stage queue and at most
/// `arrays` accelerator instances in flight. See the [module docs]
/// (self) for the execution and measurement model.
#[derive(Debug, Clone)]
pub struct PipelineScheduler {
    arrays: usize,
    queue_depth: usize,
    costs: ReramCosts,
    sink: Option<SinkHandle>,
}

impl PipelineScheduler {
    /// Creates a scheduler bounded to `arrays` in-flight accelerator
    /// instances, with inter-stage queues of depth 2 and the calibrated
    /// cost constants.
    ///
    /// # Panics
    ///
    /// Panics if `arrays == 0` (mirroring
    /// [`crate::pipeline::PipelineModel::new`]).
    #[must_use]
    pub fn new(arrays: usize) -> Self {
        assert!(arrays > 0, "at least one array required");
        PipelineScheduler {
            arrays,
            queue_depth: 2,
            costs: ReramCosts::calibrated(),
            sink: None,
        }
    }

    /// Sets the bounded inter-stage queue depth (min 1).
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Overrides the cost constants used for the modeled timeline.
    #[must_use]
    pub fn costs(mut self, costs: ReramCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Attaches an instrumentation sink: every slice's recorded command
    /// trace (including work later discarded by fault-domain
    /// retirement) is drained into it in dispatch order as the slice
    /// retires, so nvsim replay runs incrementally alongside the
    /// schedule. Accelerators built by the factory must record traces
    /// ([`crate::engine::AcceleratorBuilder::record_trace`]) for the
    /// sink to see anything.
    #[must_use]
    pub fn sink(mut self, sink: SinkHandle) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Number of in-flight accelerator instances the schedule allows.
    #[must_use]
    pub fn arrays(&self) -> usize {
        self.arrays
    }

    /// Executes `slices` pipelined, building each slice's accelerator
    /// with `factory(slice_index)`. Results come back in slice order and
    /// are bit-identical however the stage workers interleave (and to a
    /// build without the `parallel` feature, which runs the same
    /// schedule sequentially).
    ///
    /// # Errors
    ///
    /// The lowest-indexed slice's failure (factory, planning, or
    /// execution) — the same slice a sequential run would fail on.
    pub fn run<E, F>(&self, slices: &[Program], factory: F) -> Result<PipelineRun, E>
    where
        F: Fn(usize) -> Result<Accelerator, E> + Sync,
        E: From<ImscError> + Send,
    {
        let execs: Vec<SliceExec<'_>> = slices.iter().map(SliceExec::Fresh).collect();
        self.run_exec(&execs, factory)
    }

    /// [`Self::run`] over explicit slice units — mixes freshly-planned
    /// programs with cache-bound templates ([`SliceExec`]); the tiled
    /// kernels' cached pipelined path enters here.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn run_exec<E, F>(&self, slices: &[SliceExec<'_>], factory: F) -> Result<PipelineRun, E>
    where
        F: Fn(usize) -> Result<Accelerator, E> + Sync,
        E: From<ImscError> + Send,
    {
        let fins = self.run_collect(slices, &factory, 0)?;
        Ok(Self::assemble_run(fins, self.arrays))
    }

    /// Concatenates finished slices (in slice order) into a run.
    fn assemble_run(fins: Vec<Finished>, arrays: usize) -> PipelineRun {
        let mut outs = Vec::with_capacity(fins.len());
        let mut all_wf = Vec::new();
        for fin in fins {
            all_wf.extend(fin.wf_ns);
            outs.push(fin.out);
        }
        PipelineRun {
            slices: outs,
            report: PipelineReport::from_wavefronts(&all_wf, arrays),
        }
    }

    /// Executes slices through the stage workers and returns every
    /// slice's finished result in slice order (the shared core of
    /// [`Self::run`] and [`Self::run_with_domains`]). `seq_base` offsets
    /// the instrumentation sink's dispatch slots so successive rounds
    /// keep one monotone stream.
    fn run_collect<E, F>(
        &self,
        slices: &[SliceExec<'_>],
        factory: &F,
        seq_base: usize,
    ) -> Result<Vec<Finished>, E>
    where
        F: Fn(usize) -> Result<Accelerator, E> + Sync,
        E: From<ImscError> + Send,
    {
        #[cfg(feature = "parallel")]
        {
            if slices.len() > 1 {
                return self.run_threaded(slices, factory, seq_base);
            }
        }
        self.run_sequential(slices, factory, seq_base)
    }

    fn run_sequential<E, F>(
        &self,
        slices: &[SliceExec<'_>],
        factory: &F,
        seq_base: usize,
    ) -> Result<Vec<Finished>, E>
    where
        F: Fn(usize) -> Result<Accelerator, E> + Sync,
        E: From<ImscError> + Send,
    {
        let mut arena = ExecArena::new();
        let mut fins = Vec::with_capacity(slices.len());
        for (idx, &slice) in slices.iter().enumerate() {
            let acc = factory(idx)?;
            let mut f = prepare(idx, slice, acc, std::mem::take(&mut arena)).map_err(E::from)?;
            let run = (0..StageKind::COUNT).try_for_each(|ph| exec_phase(&mut f, ph, &self.costs));
            if let Err(e) = run {
                abandon(&mut f);
                return Err(E::from(e));
            }
            let (fin, used) = finish(f, self.sink.as_ref(), seq_base + idx);
            arena = used;
            fins.push(fin);
        }
        Ok(fins)
    }

    #[cfg(feature = "parallel")]
    fn run_threaded<E, F>(
        &self,
        slices: &[SliceExec<'_>],
        factory: &F,
        seq_base: usize,
    ) -> Result<Vec<Finished>, E>
    where
        F: Fn(usize) -> Result<Accelerator, E> + Sync,
        E: From<ImscError> + Send,
    {
        use crate::parallel::{BoundedQueue, Semaphore};
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Mutex;

        let n = slices.len();
        let q01: BoundedQueue<InFlight<'_>> = BoundedQueue::new(self.queue_depth);
        let q12: BoundedQueue<InFlight<'_>> = BoundedQueue::new(self.queue_depth);
        let tokens = Semaphore::new(self.arrays);
        let abort = AtomicBool::new(false);
        let arena_pool: Mutex<Vec<ExecArena>> = Mutex::new(Vec::new());
        let slots: Vec<Mutex<Option<Result<Finished, E>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let costs = &self.costs;
        let store = |idx: usize, r: Result<Finished, E>| {
            *slots[idx].lock().expect("slice slot lock") = Some(r);
        };
        // A stage worker's failure path: record, return the array token,
        // and stop admitting new slices. Slices already admitted keep
        // flowing (they are ahead in the queues), so every slice below
        // the lowest failure still completes.
        let fail = |idx: usize, e: E| {
            store(idx, Err(e));
            tokens.release();
            abort.store(true, Ordering::Relaxed);
        };

        std::thread::scope(|scope| {
            // ❶ SBS worker: admission (bounded by the array tokens),
            // accelerator construction, planning, leading encode steps.
            scope.spawn(|| {
                for (idx, &slice) in slices.iter().enumerate() {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    tokens.acquire();
                    let arena = arena_pool
                        .lock()
                        .expect("arena pool lock")
                        .pop()
                        .unwrap_or_default();
                    let prepped = factory(idx)
                        .and_then(|acc| prepare(idx, slice, acc, arena).map_err(E::from));
                    match prepped {
                        Ok(mut f) => match exec_phase(&mut f, 0, costs) {
                            Ok(()) => q01.push(f),
                            Err(e) => {
                                abandon(&mut f);
                                fail(idx, E::from(e));
                            }
                        },
                        Err(e) => fail(idx, e),
                    }
                }
                q01.close();
            });
            // ❷ arithmetic worker.
            scope.spawn(|| {
                while let Some(mut f) = q01.pop() {
                    match exec_phase(&mut f, 1, costs) {
                        Ok(()) => q12.push(f),
                        Err(e) => {
                            abandon(&mut f);
                            fail(f.idx, E::from(e));
                        }
                    }
                }
                q12.close();
            });
            // ❸ S2B worker: trailing reads, retirement.
            scope.spawn(|| {
                while let Some(mut f) = q12.pop() {
                    match exec_phase(&mut f, 2, costs) {
                        Ok(()) => {
                            let idx = f.idx;
                            let (fin, arena) = finish(f, self.sink.as_ref(), seq_base + idx);
                            arena_pool.lock().expect("arena pool lock").push(arena);
                            store(idx, Ok(fin));
                            tokens.release();
                        }
                        Err(e) => {
                            abandon(&mut f);
                            fail(f.idx, E::from(e));
                        }
                    }
                }
            });
        });

        let mut fins = Vec::with_capacity(n);
        for slot in slots {
            match slot.into_inner().expect("slice slot lock") {
                Some(Ok(fin)) => fins.push(fin),
                Some(Err(e)) => return Err(e),
                None => unreachable!("unadmitted slice without a preceding failure"),
            }
        }
        Ok(fins)
    }

    /// Executes slices across the farm with each array treated as a
    /// retirable **fault domain**. Slices are dealt round-robin over the
    /// currently healthy arrays and run through the ordinary pipelined
    /// machinery; after each round, per-array health (cumulative injected
    /// faults per scouting op, from the slice accelerators' own
    /// injectors) is re-evaluated **in slice order**. When an array
    /// crosses `policy`'s threshold it is retired: the triggering slice's
    /// result and every later same-round result from that array are
    /// discarded and re-dealt onto the survivors in the next round. The
    /// farm degrades gracefully until no healthy array remains.
    ///
    /// `factory(slice, array)` builds the accelerator for a slice *on a
    /// given array* — heterogeneous per-array fault rates enter here.
    /// Results are deterministic: assignment depends only on slice order
    /// and the health history, never on thread interleaving.
    ///
    /// # Errors
    ///
    /// * The lowest-indexed slice's genuine failure (factory, planning,
    ///   or execution), as in [`Self::run`].
    /// * [`ImscError::InvalidConfig`] once every fault domain is retired.
    pub fn run_with_domains<E, F>(
        &self,
        slices: &[Program],
        factory: F,
        policy: RetirementPolicy,
    ) -> Result<DomainRun, E>
    where
        F: Fn(usize, usize) -> Result<Accelerator, E> + Sync,
        E: From<ImscError> + Send,
    {
        let execs: Vec<SliceExec<'_>> = slices.iter().map(SliceExec::Fresh).collect();
        self.run_with_domains_exec(&execs, factory, policy)
    }

    /// [`Self::run_with_domains`] over explicit slice units
    /// ([`SliceExec`]) — the cached pipelined path with fault-domain
    /// retirement.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run_with_domains`].
    pub fn run_with_domains_exec<E, F>(
        &self,
        slices: &[SliceExec<'_>],
        factory: F,
        policy: RetirementPolicy,
    ) -> Result<DomainRun, E>
    where
        F: Fn(usize, usize) -> Result<Accelerator, E> + Sync,
        E: From<ImscError> + Send,
    {
        let n = slices.len();
        let mut health: Vec<ArrayHealth> = (0..self.arrays)
            .map(|array| ArrayHealth {
                array,
                slices_run: 0,
                faults: 0,
                scout_ops: 0,
                retired: false,
            })
            .collect();
        let mut results: Vec<Option<Finished>> = (0..n).map(|_| None).collect();
        let mut assignments = vec![0usize; n];
        let mut pending: Vec<usize> = (0..n).collect();
        let mut rescheduled = 0usize;
        // Monotone dispatch counter across rounds: replayed work from a
        // retiring array stays in the instrumentation stream even when
        // its results are discarded — the energy was really spent.
        let mut dispatched = 0usize;
        while !pending.is_empty() {
            let healthy: Vec<usize> = health
                .iter()
                .filter(|h| !h.retired)
                .map(|h| h.array)
                .collect();
            if healthy.is_empty() {
                return Err(E::from(ImscError::InvalidConfig(
                    "every fault domain is retired",
                )));
            }
            let round_arrays: Vec<usize> = (0..pending.len())
                .map(|k| healthy[k % healthy.len()])
                .collect();
            let round_progs: Vec<SliceExec<'_>> = pending.iter().map(|&i| slices[i]).collect();
            let fins = self.run_collect(
                &round_progs,
                &|k| factory(pending[k], round_arrays[k]),
                dispatched,
            )?;
            dispatched += round_progs.len();
            let mut retry = Vec::new();
            for (k, fin) in fins.into_iter().enumerate() {
                let arr = round_arrays[k];
                let slice_idx = pending[k];
                if health[arr].retired {
                    // The domain was condemned earlier in this scan; its
                    // remaining round results are suspect too.
                    rescheduled += 1;
                    retry.push(slice_idx);
                    continue;
                }
                let h = &mut health[arr];
                h.faults += fin.out.faults_injected;
                h.scout_ops += fin.out.scout_ops;
                if h.scout_ops >= policy.min_ops && h.fault_rate() > policy.max_faults_per_op {
                    h.retired = true;
                    rescheduled += 1;
                    retry.push(slice_idx);
                } else {
                    h.slices_run += 1;
                    assignments[slice_idx] = arr;
                    results[slice_idx] = Some(fin);
                }
            }
            pending = retry;
        }
        let fins: Vec<Finished> = results
            .into_iter()
            .map(|r| r.expect("every slice resolved or the farm emptied"))
            .collect();
        let mut run = Self::assemble_run(fins, self.arrays);
        run.report.retired_arrays = health.iter().filter(|h| h.retired).count();
        run.report.rescheduled_slices = rescheduled;
        Ok(DomainRun {
            run,
            health,
            assignments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::Fixed;

    fn chain_program(wavefronts: usize) -> Program {
        let mut p = Program::new();
        for i in 0..wavefronts {
            let x = p.encode(Fixed::from_u8(20 + (i as u8 % 200)));
            let y = p.complement(x);
            p.read(y);
        }
        p
    }

    #[test]
    fn wavefronts_cut_at_dead_boundaries() {
        let p = chain_program(5);
        let waves = wavefronts(&p).unwrap();
        assert_eq!(waves.len(), 5);
        assert_eq!(waves[0], 0..3);
        assert_eq!(waves[4], 12..15);
    }

    #[test]
    fn partition_into_balances_wavefronts() {
        let p = chain_program(7);
        let slices = partition_into(&p, 3).unwrap();
        assert_eq!(slices.len(), 3);
        let outs: Vec<usize> = slices.iter().map(Program::outputs).collect();
        assert_eq!(outs, vec![3, 2, 2]);
        assert_eq!(slices.iter().map(Program::regs).sum::<usize>(), p.regs());
        for s in &slices {
            s.plan().expect("re-indexed slices stay well-formed");
        }
    }

    #[test]
    fn partition_by_outputs_rejects_unclean_cuts() {
        let mut p = Program::new();
        let a = p.encode(Fixed::from_u8(9));
        let b = p.encode(Fixed::from_u8(17));
        let m = p.multiply(a, b);
        // Two reads of one live register: a single wavefront with two
        // outputs, so a 1/1 split would cut through live state.
        p.read(m);
        p.read(m);
        let err = partition_by_outputs(&p, &[1, 1]).unwrap_err();
        assert!(matches!(err, ImscError::InvalidConfig(_)));
    }

    #[test]
    fn partition_by_outputs_matches_totals() {
        let p = chain_program(6);
        assert!(partition_by_outputs(&p, &[4, 1]).is_err());
        assert!(partition_by_outputs(&p, &[4, 3]).is_err());
        let ok = partition_by_outputs(&p, &[4, 2]).unwrap();
        assert_eq!(ok[0].outputs(), 4);
        assert_eq!(ok[1].outputs(), 2);
    }

    #[test]
    fn report_recurrence_on_balanced_stages_gives_bottleneck_ii() {
        let durs = vec![[10.0, 4.0, 2.0]; 8];
        let r = PipelineReport::from_wavefronts(&durs, 4);
        assert!((r.initiation_interval_ns - 10.0).abs() < 1e-12);
        assert!((r.fill_ns - 16.0).abs() < 1e-12);
        assert!((r.makespan_ns - (16.0 + 7.0 * 10.0)).abs() < 1e-12);
        assert!((r.sequential_ns - 8.0 * 16.0).abs() < 1e-12);
        assert!(r.pipeline_speedup() > 1.0);
        assert!((r.throughput_ops_per_us() - 4.0 * 1000.0 / 10.0).abs() < 1e-9);
        let occ = r.stage_occupancy();
        assert!(occ[0] > occ[1] && occ[1] > occ[2]);
    }

    #[test]
    fn stage_kinds_classify_ops() {
        let mut p = Program::new();
        let x = p.encode(Fixed::from_u8(3));
        let s = p.trng_select();
        let y = p.blend(x, x, s);
        p.read(y);
        let kinds: Vec<StageKind> = p.ops().iter().map(StageKind::of).collect();
        assert_eq!(
            kinds,
            vec![
                StageKind::Sbs,
                StageKind::Sbs,
                StageKind::Arith,
                StageKind::S2b
            ]
        );
    }

    #[test]
    #[should_panic(expected = "at least one array")]
    fn zero_arrays_panics() {
        let _ = PipelineScheduler::new(0);
    }
}
