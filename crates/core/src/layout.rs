//! Row allocation within accelerator arrays.
//!
//! Fig. 1(a) partitions an array into input-data rows (binary operands),
//! random-number rows (TRNG output), and stochastic-bit-stream rows.
//! [`RowAllocator`] manages that partition dynamically: RN rows are a
//! fixed leading region (reused across conversions), and SBS/result rows
//! are allocated from the remainder with free-list recycling.

use crate::error::ImscError;

/// When the accelerator rewrites its random-number rows with fresh TRNG
/// output (one *RN realization* per rewrite).
///
/// Every stream encoded under one realization is an indicator function of
/// the *same* column-parallel random numbers, so streams that share a
/// realization are maximally correlated (SCC ≈ +1) regardless of their
/// correlation-domain labels. Reuse is therefore a fidelity decision, not
/// just a cost knob:
///
/// * **harmless** when the correlated streams never meet in one operation
///   (e.g. operand sets of *different* pixels of an image kernel — each
///   pixel's result only combines streams from its own batches);
/// * **required** for the correlated-input operations (XOR subtraction,
///   CORDIV division, min/max), which is exactly what
///   [`crate::engine::Accelerator::encode_correlated_many`] provides
///   within a single batch;
/// * **harmful** when two streams that an operation needs independent
///   (e.g. a MAJ select against its operands) land in one realization —
///   the correlation-domain check cannot catch this, because the batches
///   still receive distinct domain labels.
///
/// The policy only schedules refreshes *between* encode batches; within a
/// batch, operands always share the batch's realization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RnRefreshPolicy {
    /// Refresh before every encode batch (the default): every batch gets
    /// an independent realization, matching the paper's per-conversion
    /// entropy accounting. `EveryN(1)` is bit-identical to this.
    PerEncode,
    /// Refresh before every `N`-th encode batch: up to `N` consecutive
    /// batches share one realization. `N` must be nonzero
    /// (validated at build time).
    EveryN(u64),
    /// Never refresh automatically (beyond the initial fill); the caller
    /// schedules realizations via
    /// [`crate::engine::Accelerator::refresh_rn_rows`].
    Explicit,
}

/// Allocates rows of one array among random-number and stream storage.
#[derive(Debug, Clone)]
pub struct RowAllocator {
    rn_rows: usize,
    total_rows: usize,
    next: usize,
    free: Vec<usize>,
}

impl RowAllocator {
    /// Creates an allocator for an array of `total_rows`, reserving the
    /// first `rn_rows` for random numbers.
    ///
    /// # Errors
    ///
    /// Returns [`ImscError::InvalidConfig`] when the reservation does not
    /// leave at least one allocatable row.
    pub fn new(total_rows: usize, rn_rows: usize) -> Result<Self, ImscError> {
        if rn_rows >= total_rows {
            return Err(ImscError::InvalidConfig(
                "rn_rows must leave room for stream rows",
            ));
        }
        Ok(RowAllocator {
            rn_rows,
            total_rows,
            next: rn_rows,
            free: Vec::new(),
        })
    }

    /// The reserved random-number rows (`0..rn_rows`).
    #[must_use]
    pub fn rn_rows(&self) -> Vec<usize> {
        (0..self.rn_rows).collect()
    }

    /// Total rows under management.
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Rows still allocatable (free list + untouched tail).
    #[must_use]
    pub fn available(&self) -> usize {
        self.free.len() + (self.total_rows - self.next)
    }

    /// Allocates one stream row.
    ///
    /// # Errors
    ///
    /// Returns [`ImscError::OutOfRows`] when the array is exhausted.
    pub fn alloc(&mut self) -> Result<usize, ImscError> {
        if let Some(row) = self.free.pop() {
            return Ok(row);
        }
        if self.next < self.total_rows {
            let row = self.next;
            self.next += 1;
            Ok(row)
        } else {
            Err(ImscError::OutOfRows)
        }
    }

    /// Returns a row to the free list.
    ///
    /// # Panics
    ///
    /// Panics if the row is in the reserved RN region or out of range
    /// (an internal-consistency bug, not a user error).
    pub fn release(&mut self, row: usize) {
        assert!(
            row >= self.rn_rows && row < self.total_rows,
            "released row {row} outside the allocatable region"
        );
        debug_assert!(!self.free.contains(&row), "double release of row {row}");
        self.free.push(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_after_reserved_region() {
        let mut a = RowAllocator::new(16, 8).unwrap();
        assert_eq!(a.rn_rows(), (0..8).collect::<Vec<_>>());
        assert_eq!(a.alloc().unwrap(), 8);
        assert_eq!(a.alloc().unwrap(), 9);
        assert_eq!(a.available(), 6);
    }

    #[test]
    fn recycles_released_rows() {
        let mut a = RowAllocator::new(12, 8).unwrap();
        let r1 = a.alloc().unwrap();
        let _r2 = a.alloc().unwrap();
        a.release(r1);
        assert_eq!(a.alloc().unwrap(), r1);
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut a = RowAllocator::new(10, 8).unwrap();
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert!(matches!(a.alloc(), Err(ImscError::OutOfRows)));
    }

    #[test]
    fn bad_reservation_rejected() {
        assert!(RowAllocator::new(8, 8).is_err());
        assert!(RowAllocator::new(8, 9).is_err());
    }

    #[test]
    #[should_panic(expected = "outside the allocatable region")]
    fn releasing_rn_row_panics() {
        let mut a = RowAllocator::new(16, 8).unwrap();
        a.release(3);
    }
}
