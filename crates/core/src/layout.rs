//! Row allocation within accelerator arrays.
//!
//! Fig. 1(a) partitions an array into input-data rows (binary operands),
//! random-number rows (TRNG output), and stochastic-bit-stream rows.
//! [`RowAllocator`] manages that partition dynamically: RN rows are a
//! fixed leading region (reused across conversions), and SBS/result rows
//! are allocated from the remainder with free-list recycling.

use crate::error::ImscError;

/// When the accelerator rewrites its random-number rows with fresh TRNG
/// output (one *RN realization* per rewrite).
///
/// Every stream encoded under one realization is an indicator function of
/// the *same* column-parallel random numbers, so streams that share a
/// realization are maximally correlated (SCC ≈ +1) regardless of their
/// correlation-domain labels. Reuse is therefore a fidelity decision, not
/// just a cost knob:
///
/// * **harmless** when the correlated streams never meet in one operation
///   (e.g. operand sets of *different* pixels of an image kernel — each
///   pixel's result only combines streams from its own batches);
/// * **required** for the correlated-input operations (XOR subtraction,
///   CORDIV division, min/max), which is exactly what
///   [`crate::engine::Accelerator::encode_correlated_many`] provides
///   within a single batch;
/// * **harmful** when two streams that an operation needs independent
///   (e.g. a MAJ select against its operands) land in one realization —
///   the correlation-domain check cannot catch this, because the batches
///   still receive distinct domain labels.
///
/// The policy only schedules refreshes *between* encode batches; within a
/// batch, operands always share the batch's realization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RnRefreshPolicy {
    /// Refresh before every encode batch (the default): every batch gets
    /// an independent realization, matching the paper's per-conversion
    /// entropy accounting. `EveryN(1)` is bit-identical to this.
    PerEncode,
    /// Refresh before every `N`-th encode batch: up to `N` consecutive
    /// batches share one realization. `N` must be nonzero
    /// (validated at build time).
    EveryN(u64),
    /// Never refresh automatically (beyond the initial fill); the caller
    /// schedules realizations via
    /// [`crate::engine::Accelerator::refresh_rn_rows`].
    Explicit,
}

/// Allocates rows of one array among random-number and stream storage.
#[derive(Debug, Clone)]
pub struct RowAllocator {
    rn_rows: usize,
    total_rows: usize,
    next: usize,
    free: Vec<usize>,
}

impl RowAllocator {
    /// Creates an allocator for an array of `total_rows`, reserving the
    /// first `rn_rows` for random numbers.
    ///
    /// # Errors
    ///
    /// Returns [`ImscError::InvalidConfig`] when the reservation does not
    /// leave at least one allocatable row.
    pub fn new(total_rows: usize, rn_rows: usize) -> Result<Self, ImscError> {
        if rn_rows >= total_rows {
            return Err(ImscError::InvalidConfig(
                "rn_rows must leave room for stream rows",
            ));
        }
        Ok(RowAllocator {
            rn_rows,
            total_rows,
            next: rn_rows,
            free: Vec::new(),
        })
    }

    /// The reserved random-number rows (`0..rn_rows`).
    #[must_use]
    pub fn rn_rows(&self) -> Vec<usize> {
        (0..self.rn_rows).collect()
    }

    /// Total rows under management.
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Rows still allocatable (free list + untouched tail).
    #[must_use]
    pub fn available(&self) -> usize {
        self.free.len() + (self.total_rows - self.next)
    }

    /// Allocates one stream row.
    ///
    /// # Errors
    ///
    /// Returns [`ImscError::OutOfRows`] when the array is exhausted.
    pub fn alloc(&mut self) -> Result<usize, ImscError> {
        if let Some(row) = self.free.pop() {
            return Ok(row);
        }
        if self.next < self.total_rows {
            let row = self.next;
            self.next += 1;
            Ok(row)
        } else {
            Err(ImscError::OutOfRows)
        }
    }

    /// Allocates the least-worn available stream row (wear-leveling).
    ///
    /// `wear` is the array's per-physical-row write-count map (see
    /// `CrossbarArray::wear`); candidates are every free-list entry plus
    /// the first untouched tail row. Ties break toward the lowest row
    /// index, so the choice is deterministic for a given wear map. Rows
    /// past the end of `wear` count as unworn.
    ///
    /// With a uniform wear map this still differs from [`Self::alloc`]
    /// (lowest-index-first instead of LIFO), which is what rotates hot
    /// destination rows across the crossbar: a freshly released hot row
    /// loses ties to colder rows that have sat in the free list.
    ///
    /// # Errors
    ///
    /// Returns [`ImscError::OutOfRows`] when the array is exhausted.
    pub fn alloc_least_worn(&mut self, wear: &[u64]) -> Result<usize, ImscError> {
        let wear_of = |row: usize| wear.get(row).copied().unwrap_or(0);
        let mut best: Option<(u64, usize, Option<usize>)> = None; // (wear, row, free idx)
        for (i, &row) in self.free.iter().enumerate() {
            let key = (wear_of(row), row);
            if best.is_none_or(|(w, r, _)| key < (w, r)) {
                best = Some((key.0, key.1, Some(i)));
            }
        }
        if self.next < self.total_rows {
            let key = (wear_of(self.next), self.next);
            if best.is_none_or(|(w, r, _)| key < (w, r)) {
                best = Some((key.0, key.1, None));
            }
        }
        match best {
            Some((_, row, Some(i))) => {
                self.free.swap_remove(i);
                Ok(row)
            }
            Some((_, row, None)) => {
                self.next += 1;
                Ok(row)
            }
            None => Err(ImscError::OutOfRows),
        }
    }

    /// Returns a row to the free list.
    ///
    /// # Panics
    ///
    /// Panics if the row is in the reserved RN region or out of range
    /// (an internal-consistency bug, not a user error).
    pub fn release(&mut self, row: usize) {
        assert!(
            row >= self.rn_rows && row < self.total_rows,
            "released row {row} outside the allocatable region"
        );
        debug_assert!(!self.free.contains(&row), "double release of row {row}");
        self.free.push(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_after_reserved_region() {
        let mut a = RowAllocator::new(16, 8).unwrap();
        assert_eq!(a.rn_rows(), (0..8).collect::<Vec<_>>());
        assert_eq!(a.alloc().unwrap(), 8);
        assert_eq!(a.alloc().unwrap(), 9);
        assert_eq!(a.available(), 6);
    }

    #[test]
    fn recycles_released_rows() {
        let mut a = RowAllocator::new(12, 8).unwrap();
        let r1 = a.alloc().unwrap();
        let _r2 = a.alloc().unwrap();
        a.release(r1);
        assert_eq!(a.alloc().unwrap(), r1);
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut a = RowAllocator::new(10, 8).unwrap();
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert!(matches!(a.alloc(), Err(ImscError::OutOfRows)));
    }

    #[test]
    fn least_worn_prefers_cold_rows() {
        let mut a = RowAllocator::new(8, 4).unwrap();
        let r4 = a.alloc().unwrap();
        let r5 = a.alloc().unwrap();
        a.release(r4);
        a.release(r5);
        // r4 is hot, r5 cold, tail row 6 unworn: wear-aware picks the
        // coldest candidate instead of the LIFO top (r5).
        let wear = [9, 9, 9, 9, 7, 3, 5, 0];
        assert_eq!(a.alloc_least_worn(&wear).unwrap(), 5);
        // Next-coldest surviving candidate is the r4 free entry (7) vs
        // tail row 6 (5): the tail wins.
        assert_eq!(a.alloc_least_worn(&wear).unwrap(), 6);
        assert_eq!(a.alloc_least_worn(&wear).unwrap(), 7);
        assert_eq!(a.alloc_least_worn(&wear).unwrap(), 4);
        assert!(matches!(
            a.alloc_least_worn(&wear),
            Err(ImscError::OutOfRows)
        ));
    }

    #[test]
    fn least_worn_ties_break_low_and_tolerate_short_maps() {
        let mut a = RowAllocator::new(8, 4).unwrap();
        // Empty wear map: everything unworn, lowest index wins and the
        // bump pointer advances normally.
        assert_eq!(a.alloc_least_worn(&[]).unwrap(), 4);
        assert_eq!(a.alloc_least_worn(&[]).unwrap(), 5);
        a.release(4);
        a.release(5);
        assert_eq!(a.alloc_least_worn(&[]).unwrap(), 4);
        assert_eq!(a.available(), 3);
    }

    #[test]
    fn bad_reservation_rejected() {
        assert!(RowAllocator::new(8, 8).is_err());
        assert!(RowAllocator::new(8, 9).is_err());
    }

    #[test]
    #[should_panic(expected = "outside the allocatable region")]
    fn releasing_rn_row_panics() {
        let mut a = RowAllocator::new(16, 8).unwrap();
        a.release(3);
    }
}
