//! Deterministic work distribution for program execution.
//!
//! This is the thread work-queue machinery that used to live inside
//! `imgproc::tile`, hoisted into the core crate so that *any* program —
//! not just image tiles — can be scheduled across workers: the tiled
//! image kernels drive [`run_indexed_with`] with one job per row tile,
//! and the cross-array pipeline scheduler
//! ([`crate::program::sched`]) builds its stage workers on the same
//! primitives ([`BoundedQueue`], [`Semaphore`]).
//!
//! Everything here is *deterministic by construction*: jobs are
//! identified by index, results are collected in index order, and no
//! output ever depends on thread scheduling. Without the `parallel`
//! feature the same APIs execute sequentially and return bit-identical
//! results (the environment pins dependencies, so the workers are
//! `std::thread` scoped threads; a rayon pool could be dropped in behind
//! the same seam).

/// Runs jobs `0..n` with per-worker scratch state, collecting results in
/// index order.
///
/// `init` builds one scratch state per worker (e.g. a pooled
/// [`crate::program::ExecArena`]); `worker` receives the state and a job
/// index and must be deterministic in the index. With the `parallel`
/// feature enabled and `threads > 1`, jobs are claimed from an atomic
/// counter by `min(threads, n)` scoped workers; otherwise they run
/// sequentially on a single state. Results never depend on which worker
/// ran which job.
///
/// # Errors
///
/// The error of the lowest-indexed failing job. Sequential execution
/// stops at the first failure; threaded execution stops claiming new
/// jobs once a failure is observed (already-claimed jobs still finish),
/// and the lowest-indexed failure is still the one reported, because
/// jobs are claimed in index order.
pub fn run_indexed_with<S, T, E, I, W>(
    n: usize,
    threads: usize,
    init: I,
    worker: W,
) -> Result<Vec<T>, E>
where
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> Result<T, E> + Sync,
    T: Send,
    E: Send,
{
    #[cfg(feature = "parallel")]
    {
        if threads > 1 && n > 1 {
            return run_threaded(n, threads.min(n), &init, &worker);
        }
    }
    let _ = threads;
    let mut state = init();
    (0..n).map(|i| worker(&mut state, i)).collect()
}

#[cfg(feature = "parallel")]
fn run_threaded<S, T, E, I, W>(n: usize, threads: usize, init: &I, worker: &W) -> Result<Vec<T>, E>
where
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> Result<T, E> + Sync,
    T: Send,
    E: Send,
{
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;

    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<Result<T, E>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = worker(&mut state, i);
                    if result.is_err() {
                        failed.store(true, Ordering::Relaxed);
                    }
                    *slots[i].lock().expect("job slot lock") = Some(result);
                }
            });
        }
    });
    // Claims happen in index order, so the filled slots form a prefix and
    // the lowest-indexed error precedes every unclaimed slot.
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        match slot.into_inner().expect("job slot lock") {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => return Err(e),
            None => unreachable!("unclaimed job without a preceding failure"),
        }
    }
    Ok(out)
}

/// A blocking bounded FIFO connecting two pipeline stages.
///
/// [`BoundedQueue::push`] blocks while the queue is full (the pipeline's
/// back-pressure); [`BoundedQueue::pop`] blocks while it is empty and
/// returns `None` once the queue is closed *and* drained. Built on
/// `Mutex` + `Condvar` only, so it works wherever `std` does.
#[cfg(feature = "parallel")]
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: std::sync::Mutex<QueueInner<T>>,
    not_empty: std::sync::Condvar,
    not_full: std::sync::Condvar,
    capacity: usize,
}

#[cfg(feature = "parallel")]
#[derive(Debug)]
struct QueueInner<T> {
    items: std::collections::VecDeque<T>,
    closed: bool,
}

#[cfg(feature = "parallel")]
impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: std::sync::Mutex::new(QueueInner {
                items: std::collections::VecDeque::new(),
                closed: false,
            }),
            not_empty: std::sync::Condvar::new(),
            not_full: std::sync::Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`, blocking while the queue is full.
    ///
    /// # Panics
    ///
    /// Panics if the queue was closed (a closed stage must not receive
    /// further work — that would be a scheduler bug, not a data race).
    pub fn push(&self, item: T) {
        let mut inner = self.inner.lock().expect("queue lock");
        while inner.items.len() >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).expect("queue lock");
        }
        assert!(!inner.closed, "push into a closed stage queue");
        inner.items.push_back(item);
        self.not_empty.notify_one();
    }

    /// Dequeues the next item, blocking while the queue is empty; `None`
    /// once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Attempts to enqueue `item` without blocking.
    ///
    /// Returns `Err(item)` (handing the item back) when the queue is full
    /// or closed — the admission-control path of a service frontend: a
    /// full queue is a *shed now* signal, not something to wait out.
    ///
    /// # Errors
    ///
    /// `Err(item)` if the queue is at capacity or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the next item without blocking; `None` if the queue is
    /// currently empty (whether or not it is closed).
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        let item = inner.items.pop_front();
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Dequeues the next item, blocking up to `timeout`.
    ///
    /// Returns [`PopResult::Item`] when an item arrives in time,
    /// [`PopResult::Closed`] once the queue is closed and drained, and
    /// [`PopResult::TimedOut`] if the wait expired with the queue still
    /// open and empty — the batching-window primitive: a coalescing
    /// frontend waits a short window for more compatible work, then
    /// dispatches what it has.
    pub fn pop_timeout(&self, timeout: std::time::Duration) -> PopResult<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return PopResult::Item(item);
            }
            if inner.closed {
                return PopResult::Closed;
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return PopResult::TimedOut;
            };
            let (guard, wait) = self
                .not_empty
                .wait_timeout(inner, remaining)
                .expect("queue lock");
            inner = guard;
            if wait.timed_out() && inner.items.is_empty() && !inner.closed {
                return PopResult::TimedOut;
            }
        }
    }

    /// Closes the queue: pending items remain poppable, further pushes
    /// panic, and a drained pop returns `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Outcome of a [`BoundedQueue::pop_timeout`] wait.
#[cfg(feature = "parallel")]
#[derive(Debug, PartialEq, Eq)]
pub enum PopResult<T> {
    /// An item arrived within the window.
    Item(T),
    /// The wait expired with the queue still open and empty.
    TimedOut,
    /// The queue is closed and fully drained.
    Closed,
}

#[cfg(feature = "parallel")]
impl<T> PopResult<T> {
    /// The popped item, if any.
    pub fn into_item(self) -> Option<T> {
        match self {
            PopResult::Item(item) => Some(item),
            PopResult::TimedOut | PopResult::Closed => None,
        }
    }
}

/// A counting semaphore bounding how many work units are in flight —
/// the pipeline scheduler acquires one permit per live accelerator
/// instance, so at most `k` arrays exist concurrently.
#[cfg(feature = "parallel")]
#[derive(Debug)]
pub struct Semaphore {
    permits: std::sync::Mutex<usize>,
    available: std::sync::Condvar,
}

#[cfg(feature = "parallel")]
impl Semaphore {
    /// Creates a semaphore with `permits` permits (min 1).
    #[must_use]
    pub fn new(permits: usize) -> Self {
        Semaphore {
            permits: std::sync::Mutex::new(permits.max(1)),
            available: std::sync::Condvar::new(),
        }
    }

    /// Blocks until a permit is free, then takes it.
    pub fn acquire(&self) {
        let mut permits = self.permits.lock().expect("semaphore lock");
        while *permits == 0 {
            permits = self.available.wait(permits).expect("semaphore lock");
        }
        *permits -= 1;
    }

    /// Returns a permit.
    pub fn release(&self) {
        *self.permits.lock().expect("semaphore lock") += 1;
        self.available.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_results_come_back_in_order() {
        let out: Result<Vec<usize>, ()> = run_indexed_with(
            10,
            4,
            || 0usize,
            |state, i| {
                *state += 1;
                Ok(i * 2)
            },
        );
        assert_eq!(out.unwrap(), (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn lowest_indexed_error_wins() {
        let out: Result<Vec<usize>, usize> =
            run_indexed_with(8, 4, || (), |(), i| if i >= 3 { Err(i) } else { Ok(i) });
        assert_eq!(out.unwrap_err(), 3);
    }

    #[test]
    fn sequential_when_single_threaded() {
        let out: Result<Vec<usize>, ()> = run_indexed_with(4, 1, || (), |(), i| Ok(i));
        assert_eq!(out.unwrap(), vec![0, 1, 2, 3]);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn bounded_queue_delivers_in_fifo_order_across_threads() {
        let q = BoundedQueue::new(2);
        let got = std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            });
            for i in 0..16 {
                q.push(i);
            }
            q.close();
            consumer.join().expect("consumer thread")
        });
        assert_eq!(got, (0..16).collect::<Vec<i32>>());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn try_push_sheds_when_full_and_when_closed() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.try_pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        q.close();
        assert_eq!(q.try_push(4), Err(4));
        // Pending items stay poppable after close.
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), Some(3));
        assert_eq!(q.try_pop(), None);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn pop_timeout_distinguishes_window_expiry_from_close() {
        use std::time::Duration;
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), PopResult::TimedOut);
        q.push(7);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), PopResult::Item(7));
        q.close();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), PopResult::Closed);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn pop_timeout_wakes_for_concurrent_push() {
        use std::time::Duration;
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        let got = std::thread::scope(|scope| {
            let waiter = scope.spawn(|| q.pop_timeout(Duration::from_secs(5)));
            std::thread::sleep(Duration::from_millis(10));
            q.push(42);
            waiter.join().expect("waiter thread")
        });
        assert_eq!(got, PopResult::Item(42));
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn semaphore_bounds_concurrency() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sem = Semaphore::new(2);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        sem.acquire();
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        live.fetch_sub(1, Ordering::SeqCst);
                        sem.release();
                    }
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }
}
