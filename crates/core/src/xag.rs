//! XOR-AND-inverter graphs (XAGs).
//!
//! The paper converts its in-memory comparison network "into data
//! structures like XOR-AND-Inverter graph (XAG) for manipulation and
//! optimization using logic synthesis tools" (§III-A, citing the EPFL
//! logic-synthesis libraries). This module implements that representation:
//! a DAG whose internal nodes are 2-input AND / XOR gates with optional
//! edge inversion, with structural hashing (common-subexpression sharing)
//! and constant propagation applied on construction, plus a dead-node
//! sweep in [`Xag::cleanup`].
//!
//! XAGs map one-to-one onto scouting-logic schedules: every AND/XOR node
//! is one sensing step, and inverters are free (inverted references).

use crate::fxhash::FxHashMap;
use std::fmt;

/// A signal: a node reference plus an optional inversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signal {
    node: u32,
    inverted: bool,
}

impl Signal {
    /// The constant-false signal.
    pub const FALSE: Signal = Signal {
        node: 0,
        inverted: false,
    };
    /// The constant-true signal.
    pub const TRUE: Signal = Signal {
        node: 0,
        inverted: true,
    };

    /// The complemented signal (an inverter edge, not `std::ops::Not`,
    /// which cannot apply: `Signal` is `Copy` graph metadata).
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> Signal {
        Signal {
            node: self.node,
            inverted: !self.inverted,
        }
    }

    /// The node index this signal refers to.
    #[must_use]
    pub fn node(self) -> u32 {
        self.node
    }

    /// Whether the signal is inverted.
    #[must_use]
    pub fn is_inverted(self) -> bool {
        self.inverted
    }
}

/// A node of the graph. Node 0 is always the constant false.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    Const,
    Input(u32),
    And(Signal, Signal),
    Xor(Signal, Signal),
}

/// Gate-count statistics of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct XagStats {
    /// Number of AND nodes.
    pub ands: usize,
    /// Number of XOR nodes.
    pub xors: usize,
    /// Number of primary inputs.
    pub inputs: usize,
}

impl XagStats {
    /// Total gate (AND + XOR) count — the number of scouting-logic
    /// sensing steps the graph costs.
    #[must_use]
    pub fn gates(&self) -> usize {
        self.ands + self.xors
    }
}

/// A mutable XOR-AND-inverter graph.
///
/// # Example
///
/// ```
/// use imsc::xag::Xag;
///
/// let mut g = Xag::new();
/// let a = g.input();
/// let b = g.input();
/// let sum = g.xor(a, b);
/// let carry = g.and(a, b);
/// g.set_outputs(vec![sum, carry]);
/// assert_eq!(g.eval(&[true, true]), vec![false, true]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Xag {
    nodes: Vec<Node>,
    /// Structural-hash map over *gate* nodes only: `Const` lives at a
    /// fixed index and `Input`s are created with fresh ids, so neither
    /// can ever be a duplicate — keeping them out of the map halves its
    /// size and skips a hash per primary input on the optimizer's hot
    /// path.
    dedup: FxHashMap<Node, u32>,
    inputs: u32,
    outputs: Vec<Signal>,
}

impl Xag {
    /// Creates an empty graph (with the implicit constant node).
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty graph with room for about `nodes` nodes before
    /// the node vector reallocates. The structural-hash map still grows
    /// on demand — it only holds gate nodes, which are a small fraction
    /// of the graph when callers memoize composite ops.
    #[must_use]
    pub fn with_capacity(nodes: usize) -> Self {
        let mut v = Vec::with_capacity(nodes + 1);
        v.push(Node::Const);
        Xag {
            nodes: v,
            dedup: FxHashMap::default(),
            inputs: 0,
            outputs: Vec::new(),
        }
    }

    /// Adds a primary input and returns its signal.
    pub fn input(&mut self) -> Signal {
        let idx = self.inputs;
        self.inputs += 1;
        let node = self.nodes.len() as u32;
        self.nodes.push(Node::Input(idx));
        Signal {
            node,
            inverted: false,
        }
    }

    /// A constant signal.
    #[must_use]
    pub fn constant(&self, value: bool) -> Signal {
        if value {
            Signal::TRUE
        } else {
            Signal::FALSE
        }
    }

    fn push(&mut self, node: Node) -> u32 {
        let next = self.nodes.len() as u32;
        match self.dedup.entry(node) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(next);
                self.nodes.push(node);
                next
            }
        }
    }

    /// Builds `a AND b` with constant folding, trivial-case reduction, and
    /// structural hashing.
    pub fn and(&mut self, a: Signal, b: Signal) -> Signal {
        // Constant folding.
        if a == Signal::FALSE || b == Signal::FALSE {
            return Signal::FALSE;
        }
        if a == Signal::TRUE {
            return b;
        }
        if b == Signal::TRUE {
            return a;
        }
        if a == b {
            return a;
        }
        if a == b.not() {
            return Signal::FALSE;
        }
        // Canonical operand order for hashing.
        let (x, y) = if (a.node, a.inverted) <= (b.node, b.inverted) {
            (a, b)
        } else {
            (b, a)
        };
        let node = self.push(Node::And(x, y));
        Signal {
            node,
            inverted: false,
        }
    }

    /// Builds `a XOR b` with constant folding and structural hashing
    /// (inversions are pulled out of the gate: `¬a ⊕ b = ¬(a ⊕ b)`).
    pub fn xor(&mut self, a: Signal, b: Signal) -> Signal {
        if a == b {
            return Signal::FALSE;
        }
        if a == b.not() {
            return Signal::TRUE;
        }
        if a.node == 0 {
            // a is a constant.
            return if a.inverted { b.not() } else { b };
        }
        if b.node == 0 {
            return if b.inverted { a.not() } else { a };
        }
        // Normalize: strip inversions into the output phase.
        let out_inverted = a.inverted ^ b.inverted;
        let mut x = Signal {
            node: a.node,
            inverted: false,
        };
        let mut y = Signal {
            node: b.node,
            inverted: false,
        };
        if x.node > y.node {
            std::mem::swap(&mut x, &mut y);
        }
        let node = self.push(Node::Xor(x, y));
        Signal {
            node,
            inverted: out_inverted,
        }
    }

    /// Builds `a OR b` (De Morgan over AND).
    pub fn or(&mut self, a: Signal, b: Signal) -> Signal {
        self.and(a.not(), b.not()).not()
    }

    /// Builds a 2-to-1 multiplexer `sel ? a : b`.
    pub fn mux(&mut self, sel: Signal, a: Signal, b: Signal) -> Signal {
        let ta = self.and(sel, a);
        let tb = self.and(sel.not(), b);
        self.or(ta, tb)
    }

    /// Sets the primary outputs.
    pub fn set_outputs(&mut self, outputs: Vec<Signal>) {
        self.outputs = outputs;
    }

    /// The primary outputs.
    #[must_use]
    pub fn outputs(&self) -> &[Signal] {
        &self.outputs
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.inputs as usize
    }

    /// Gate statistics over *all* nodes (including dead ones; run
    /// [`Xag::cleanup`] first for post-optimization counts).
    #[must_use]
    pub fn stats(&self) -> XagStats {
        let mut s = XagStats {
            inputs: self.inputs as usize,
            ..XagStats::default()
        };
        for n in &self.nodes {
            match n {
                Node::And(..) => s.ands += 1,
                Node::Xor(..) => s.xors += 1,
                _ => {}
            }
        }
        s
    }

    /// Evaluates the graph for an input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs()`.
    #[must_use]
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.inputs as usize,
            "wrong number of input values"
        );
        let mut values = vec![false; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            values[i] = match *n {
                Node::Const => false,
                Node::Input(k) => inputs[k as usize],
                Node::And(a, b) => self.read(&values, a) && self.read(&values, b),
                Node::Xor(a, b) => self.read(&values, a) ^ self.read(&values, b),
            };
        }
        self.outputs
            .iter()
            .map(|&s| self.read(&values, s))
            .collect()
    }

    fn read(&self, values: &[bool], s: Signal) -> bool {
        values[s.node as usize] ^ s.inverted
    }

    /// Marks the constant, every input (to keep input numbering stable),
    /// and the transitive fan-in of `roots`.
    fn mark_alive(&self, roots: &[Signal]) -> Vec<bool> {
        let mut alive = vec![false; self.nodes.len()];
        alive[0] = true;
        for (i, n) in self.nodes.iter().enumerate() {
            if matches!(n, Node::Input(_)) {
                alive[i] = true;
            }
        }
        let mut stack: Vec<u32> = roots.iter().map(|s| s.node).collect();
        while let Some(n) = stack.pop() {
            if alive[n as usize] {
                continue;
            }
            alive[n as usize] = true;
            match self.nodes[n as usize] {
                Node::And(a, b) | Node::Xor(a, b) => {
                    stack.push(a.node);
                    stack.push(b.node);
                }
                _ => {}
            }
        }
        alive
    }

    /// Counts the gates [`Xag::cleanup`] would remove if `roots` were the
    /// outputs — the mark phase alone, no rebuild. The program optimizer
    /// reports this diagnostic on its hot path, where the full rebuild
    /// would be wasted work.
    #[must_use]
    pub fn dead_node_count(&self, roots: &[Signal]) -> usize {
        self.mark_alive(roots).iter().filter(|&&a| !a).count()
    }

    /// Dead-node elimination: rebuilds the graph keeping only the
    /// transitive fan-in of the outputs. Returns the number of nodes
    /// removed.
    pub fn cleanup(&mut self) -> usize {
        let before = self.nodes.len();
        let alive = self.mark_alive(&self.outputs);
        let mut remap = vec![u32::MAX; self.nodes.len()];
        let mut new_nodes = Vec::new();
        let mut new_dedup = FxHashMap::default();
        for (i, n) in self.nodes.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            let renamed = match *n {
                Node::Const => Node::Const,
                Node::Input(k) => Node::Input(k),
                Node::And(a, b) => Node::And(
                    Signal {
                        node: remap[a.node as usize],
                        inverted: a.inverted,
                    },
                    Signal {
                        node: remap[b.node as usize],
                        inverted: b.inverted,
                    },
                ),
                Node::Xor(a, b) => Node::Xor(
                    Signal {
                        node: remap[a.node as usize],
                        inverted: a.inverted,
                    },
                    Signal {
                        node: remap[b.node as usize],
                        inverted: b.inverted,
                    },
                ),
            };
            remap[i] = new_nodes.len() as u32;
            if matches!(renamed, Node::And(..) | Node::Xor(..)) {
                new_dedup.insert(renamed, new_nodes.len() as u32);
            }
            new_nodes.push(renamed);
        }
        for s in &mut self.outputs {
            s.node = remap[s.node as usize];
        }
        self.nodes = new_nodes;
        self.dedup = new_dedup;
        before - self.nodes.len()
    }

    /// A topological schedule of gate nodes (indices into an abstract op
    /// list), pairing each gate with its kind — the raw material for the
    /// scouting-logic scheduler.
    #[must_use]
    pub fn gate_schedule(&self) -> Vec<GateKind> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::And(..) => Some(GateKind::And),
                Node::Xor(..) => Some(GateKind::Xor),
                _ => None,
            })
            .collect()
    }
}

/// The kind of a scheduled gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// 2-input AND.
    And,
    /// 2-input XOR.
    Xor,
}

impl fmt::Display for Xag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "xag({} inputs, {} ands, {} xors, {} outputs)",
            s.inputs,
            s.ands,
            s.xors,
            self.outputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_adder_truth_table() {
        let mut g = Xag::new();
        let a = g.input();
        let b = g.input();
        let sum = g.xor(a, b);
        let carry = g.and(a, b);
        g.set_outputs(vec![sum, carry]);
        assert_eq!(g.eval(&[false, false]), vec![false, false]);
        assert_eq!(g.eval(&[true, false]), vec![true, false]);
        assert_eq!(g.eval(&[false, true]), vec![true, false]);
        assert_eq!(g.eval(&[true, true]), vec![false, true]);
    }

    #[test]
    fn constant_folding() {
        let mut g = Xag::new();
        let a = g.input();
        let t = g.constant(true);
        let f = g.constant(false);
        assert_eq!(g.and(a, f), Signal::FALSE);
        assert_eq!(g.and(a, t), a);
        assert_eq!(g.xor(a, f), a);
        assert_eq!(g.xor(a, t), a.not());
        assert_eq!(g.and(a, a.not()), Signal::FALSE);
        assert_eq!(g.xor(a, a), Signal::FALSE);
        assert_eq!(g.stats().gates(), 0);
    }

    #[test]
    fn structural_hashing_shares_gates() {
        let mut g = Xag::new();
        let a = g.input();
        let b = g.input();
        let x1 = g.and(a, b);
        let x2 = g.and(b, a); // commuted: must dedup
        assert_eq!(x1, x2);
        assert_eq!(g.stats().ands, 1);
    }

    #[test]
    fn xor_inversion_normalization() {
        let mut g = Xag::new();
        let a = g.input();
        let b = g.input();
        let x1 = g.xor(a, b);
        let x2 = g.xor(a.not(), b);
        assert_eq!(x1.node(), x2.node());
        assert_eq!(x2, x1.not());
        assert_eq!(g.stats().xors, 1);
    }

    #[test]
    fn or_and_mux_semantics() {
        let mut g = Xag::new();
        let a = g.input();
        let b = g.input();
        let s = g.input();
        let o = g.or(a, b);
        let m = g.mux(s, a, b);
        g.set_outputs(vec![o, m]);
        for bits in 0..8u32 {
            let a_v = bits & 1 == 1;
            let b_v = bits & 2 == 2;
            let s_v = bits & 4 == 4;
            let out = g.eval(&[a_v, b_v, s_v]);
            assert_eq!(out[0], a_v || b_v);
            assert_eq!(out[1], if s_v { a_v } else { b_v });
        }
    }

    #[test]
    fn cleanup_removes_dead_gates() {
        let mut g = Xag::new();
        let a = g.input();
        let b = g.input();
        let _dead = g.xor(a, b);
        let live = g.and(a, b);
        g.set_outputs(vec![live]);
        let removed = g.cleanup();
        assert_eq!(removed, 1);
        assert_eq!(g.stats().gates(), 1);
        // Graph still evaluates correctly after the rebuild.
        assert_eq!(g.eval(&[true, true]), vec![true]);
        assert_eq!(g.eval(&[true, false]), vec![false]);
    }

    #[test]
    fn gate_schedule_lists_all_gates() {
        let mut g = Xag::new();
        let a = g.input();
        let b = g.input();
        let x = g.xor(a, b);
        let y = g.and(x, a);
        g.set_outputs(vec![y]);
        let sched = g.gate_schedule();
        assert_eq!(sched.len(), 2);
        assert!(sched.contains(&GateKind::And));
        assert!(sched.contains(&GateKind::Xor));
    }
}
