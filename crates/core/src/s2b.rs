//! Stochastic→binary conversion through the reference column (§III-C).
//!
//! The output stream's bits drive read voltages onto a column whose cells
//! are pre-programmed to LRS; the accumulated bitline current encodes the
//! population count and is digitized by the 8-bit ADC in one step —
//! against the `N`-cycle counter of CMOS designs.

use crate::error::ImscError;
use reram::adc::Adc;
use sc_core::BitStream;

/// The in-memory converter: an ADC plus conversion statistics.
#[derive(Debug, Clone)]
pub struct StochasticToBinary {
    adc: Adc,
    conversions: u64,
}

impl StochasticToBinary {
    /// Creates a converter around an ADC.
    #[must_use]
    pub fn new(adc: Adc) -> Self {
        StochasticToBinary {
            adc,
            conversions: 0,
        }
    }

    /// Ideal 8-bit converter (the ISAAC ADC at nominal accuracy).
    #[must_use]
    pub fn ideal8() -> Self {
        StochasticToBinary::new(Adc::ideal(8))
    }

    /// Number of conversions performed.
    #[must_use]
    pub fn conversions(&self) -> u64 {
        self.conversions
    }

    /// The ADC resolution in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.adc.bits()
    }

    /// Converts a stream to its binary code (`0..=2^bits − 1`).
    ///
    /// # Errors
    ///
    /// Propagates ADC range errors (impossible for a well-formed stream).
    pub fn convert(&mut self, s: &BitStream) -> Result<u64, ImscError> {
        self.conversions += 1;
        Ok(self.adc.convert_stream(s)?)
    }

    /// Converts a stream to a probability estimate in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Propagates ADC range errors.
    pub fn convert_to_prob(&mut self, s: &BitStream) -> Result<f64, ImscError> {
        self.conversions += 1;
        Ok(self.adc.convert_to_prob(s)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reram::adc::Adc;

    #[test]
    fn ideal_conversion_matches_popcount_scaling() {
        let mut c = StochasticToBinary::ideal8();
        let s = BitStream::from_fn(256, |i| i < 128);
        let code = c.convert(&s).unwrap();
        assert_eq!(code, 128); // round(128/256·255) = 127.5 → 128
        assert_eq!(c.conversions(), 1);
    }

    #[test]
    fn prob_estimate_tracks_stream_value() {
        let mut c = StochasticToBinary::new(Adc::with_noise(8, 0.5, 7));
        let s = BitStream::from_fn(512, |i| i % 4 == 0);
        let p = c.convert_to_prob(&s).unwrap();
        assert!((p - 0.25).abs() < 0.02, "{p}");
    }

    #[test]
    fn single_step_regardless_of_stream_length() {
        // Unlike the CMOS counter (N cycles), the ADC path is one sample
        // per conversion — conversions() counts samples, not bits.
        let mut c = StochasticToBinary::ideal8();
        for n in [32usize, 64, 512] {
            c.convert(&BitStream::ones(n)).unwrap();
        }
        assert_eq!(c.conversions(), 3);
    }
}
