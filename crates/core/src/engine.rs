//! The in-memory SC accelerator: end-to-end ❶→❷→❸ execution.
//!
//! [`Accelerator`] owns a ReRAM array partitioned per Fig. 1(a), a
//! scouting-logic engine (optionally fault-injected), the in-memory TRNG,
//! the IMSNG conversion engine, and the ADC converter. Every operation is
//! executed *in the array* (bulk bitwise over stream rows) and recorded in
//! a [`CostLedger`] — and optionally in an NVMain-style command trace —
//! so accuracy and hardware cost come from the same simulation.
//!
//! Correlation is tracked per stream: streams produced by
//! [`Accelerator::encode`] carry fresh correlation domains (independent RN
//! rows), while [`Accelerator::encode_correlated`] shares one RN
//! realization, as the correlated-input operations (XOR subtraction,
//! CORDIV division, min, max) require. Requesting an operation with the
//! wrong correlation domain is a type error at runtime
//! ([`ImscError::CorrelationMismatch`]), not silent inaccuracy.

use crate::cost::{CostLedger, WearSummary};
use crate::error::ImscError;
use crate::imsng::{Imsng, ImsngVariant};
use crate::layout::{RnRefreshPolicy, RowAllocator};
use crate::s2b::StochasticToBinary;
use nvsim::{CmdKind, Command, Trace};
use reram::array::CrossbarArray;
use reram::cell::DeviceParams;
use reram::div::CordivPeriphery;
use reram::faults::FaultRates;
use reram::scouting::{ScoutingLogic, SlOp};
use reram::trng::TrngEngine;
use sc_core::{BitStream, Fixed};
use std::collections::HashMap;

/// A handle to a stochastic stream stored in the accelerator's array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamHandle(usize);

#[derive(Debug, Clone)]
struct StreamSlot {
    row: usize,
    correlation_group: u64,
    alive: bool,
}

/// Builder for [`Accelerator`].
#[derive(Debug, Clone)]
pub struct AcceleratorBuilder {
    stream_len: usize,
    segment_bits: u32,
    variant: ImsngVariant,
    seed: u64,
    fault_rates: FaultRates,
    trng_bias_sigma: f64,
    stream_rows: usize,
    device: DeviceParams,
    record_trace: bool,
    trace_bank: usize,
    refresh_policy: RnRefreshPolicy,
    whiten_select: bool,
    wear_leveling: bool,
}

impl AcceleratorBuilder {
    fn new() -> Self {
        AcceleratorBuilder {
            stream_len: 256,
            segment_bits: 8,
            variant: ImsngVariant::Opt,
            seed: 0,
            fault_rates: FaultRates::none(),
            trng_bias_sigma: 0.04,
            stream_rows: 64,
            device: DeviceParams::default(),
            record_trace: false,
            trace_bank: 0,
            refresh_policy: RnRefreshPolicy::PerEncode,
            whiten_select: false,
            wear_leveling: false,
        }
    }

    /// Stochastic bit-stream length `N` (default 256).
    #[must_use]
    pub fn stream_len(mut self, n: usize) -> Self {
        self.stream_len = n;
        self
    }

    /// Comparator segment width `M` (default 8).
    #[must_use]
    pub fn segment_bits(mut self, m: u32) -> Self {
        self.segment_bits = m;
        self
    }

    /// IMSNG implementation variant (default [`ImsngVariant::Opt`]).
    #[must_use]
    pub fn variant(mut self, v: ImsngVariant) -> Self {
        self.variant = v;
        self
    }

    /// Master seed for all stochastic components.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// CIM fault-injection rates (default: fault-free).
    #[must_use]
    pub fn fault_rates(mut self, rates: FaultRates) -> Self {
        self.fault_rates = rates;
        self
    }

    /// Per-cell TRNG bias sigma around the 50% point (default 0.04,
    /// matching device-level fluctuation of read-noise TRNGs).
    #[must_use]
    pub fn trng_bias_sigma(mut self, sigma: f64) -> Self {
        self.trng_bias_sigma = sigma;
        self
    }

    /// Stream rows available in the array (default 64; release handles to
    /// recycle).
    #[must_use]
    pub fn stream_rows(mut self, rows: usize) -> Self {
        self.stream_rows = rows;
        self
    }

    /// Device parameter set (default HfO₂).
    #[must_use]
    pub fn device(mut self, params: DeviceParams) -> Self {
        self.device = params;
        self
    }

    /// Record an NVMain-style command trace of every operation.
    #[must_use]
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Memory bank recorded trace commands address (default 0). Multi-
    /// array schedules map each array onto its own bank so stitched
    /// traces replay bank-parallel, mirroring the paper's multi-array
    /// pipelining.
    #[must_use]
    pub fn trace_bank(mut self, bank: usize) -> Self {
        self.trace_bank = bank;
        self
    }

    /// Random-number refresh policy (default
    /// [`RnRefreshPolicy::PerEncode`]). See the policy's docs for the
    /// stream-correlation consequences of realization reuse.
    #[must_use]
    pub fn refresh_policy(mut self, policy: RnRefreshPolicy) -> Self {
        self.refresh_policy = policy;
        self
    }

    /// Von Neumann-whiten the [`Accelerator::trng_select`] path (default
    /// off). Each select bit is then extracted from repeated shot-pairs
    /// of one TRNG cell, cancelling the cell's static bias
    /// (`trng_bias_sigma`) exactly at a ≥ 4× raw-bit cost — the raw-bit
    /// consumption stays visible via [`Accelerator::trng_raw_bits`].
    /// RN-row refreshes are unaffected: IMSNG's comparison against
    /// biased random rows is bias-tolerant by construction, while the
    /// select row's bias enters MAJ blends linearly.
    #[must_use]
    pub fn whiten_select(mut self, on: bool) -> Self {
        self.whiten_select = on;
        self
    }

    /// Allocate destination rows least-worn-first instead of LIFO
    /// (default off). Spreads stream writes across the crossbar so
    /// repeated tile plans stop hammering row `rn..rn+k`; pixel output is
    /// unchanged in fault-free runs (stream contents do not depend on
    /// which physical row holds them), but command traces and row indices
    /// differ from the LIFO allocator.
    #[must_use]
    pub fn wear_leveling(mut self, on: bool) -> Self {
        self.wear_leveling = on;
        self
    }

    /// Builds the accelerator.
    ///
    /// # Errors
    ///
    /// Returns [`ImscError::InvalidConfig`] for out-of-range dimensions or
    /// [`ImscError::Device`] for invalid device or fault parameters.
    pub fn build(self) -> Result<Accelerator, ImscError> {
        if self.stream_len < 2 {
            return Err(ImscError::InvalidConfig("stream_len must be at least 2"));
        }
        if self.stream_rows < 2 {
            return Err(ImscError::InvalidConfig("stream_rows must be at least 2"));
        }
        if self.trng_bias_sigma < 0.0 || self.trng_bias_sigma >= 0.5 {
            return Err(ImscError::InvalidConfig(
                "trng_bias_sigma must be in [0, 0.5)",
            ));
        }
        if self.refresh_policy == RnRefreshPolicy::EveryN(0) {
            return Err(ImscError::InvalidConfig(
                "EveryN refresh interval must be nonzero",
            ));
        }
        self.device.validate()?;
        self.fault_rates.validate()?;
        let imsng = Imsng::new(self.variant, self.segment_bits)?;
        let m = self.segment_bits as usize;
        let total_rows = m + self.stream_rows;
        let array = CrossbarArray::with_params(
            total_rows,
            self.stream_len,
            self.device,
            self.seed ^ 0x5EED_0001,
        );
        let allocator = RowAllocator::new(total_rows, m)?;
        let sl = if self.fault_rates.is_fault_free() {
            ScoutingLogic::ideal()
        } else {
            ScoutingLogic::with_faults(self.fault_rates, self.seed ^ 0x5EED_0002)
        };
        // Cell count rounded up to a 64-multiple so row fills always take
        // the TRNG's word-parallel path.
        let trng = TrngEngine::new(
            4096.max(self.stream_len.next_multiple_of(64)),
            self.trng_bias_sigma,
            self.seed ^ 0x5EED_0003,
        );
        let rn_rows = allocator.rn_rows();
        Ok(Accelerator {
            stream_len: self.stream_len,
            imsng,
            array,
            allocator,
            rn_rows,
            sl,
            trng,
            s2b: StochasticToBinary::ideal8(),
            slots: Vec::new(),
            next_group: 0,
            ledger: CostLedger::default(),
            trace: if self.record_trace {
                Some(Trace::new())
            } else {
                None
            },
            trace_bank: self.trace_bank,
            cache_enabled: self.fault_rates.is_fault_free(),
            encode_cache: HashMap::new(),
            encode_cache_epoch: 0,
            cache_hits: 0,
            refresh_policy: self.refresh_policy,
            whiten_select: self.whiten_select,
            wear_leveling: self.wear_leveling,
            rn_epoch: 0,
            encodes_since_refresh: 0,
        })
    }
}

/// One operation of a batched program for
/// [`Accelerator::execute_many`]. Each variant mirrors the corresponding
/// single-operation method and yields one result handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchOp {
    /// SC multiplication (AND over uncorrelated streams).
    Multiply(StreamHandle, StreamHandle),
    /// MAJ scaled addition over uncorrelated streams.
    ScaledAdd(StreamHandle, StreamHandle),
    /// OR approximate addition over uncorrelated streams.
    ApproxAdd(StreamHandle, StreamHandle),
    /// XOR absolute subtraction over correlated streams.
    AbsSubtract(StreamHandle, StreamHandle),
    /// AND minimum over correlated streams.
    Minimum(StreamHandle, StreamHandle),
    /// OR maximum over correlated streams.
    Maximum(StreamHandle, StreamHandle),
    /// CORDIV division over correlated streams.
    Divide(StreamHandle, StreamHandle),
    /// Inverted-read complement.
    Complement(StreamHandle),
    /// Directed MAJ blend of two correlated streams with an independent
    /// select.
    Blend(StreamHandle, StreamHandle, StreamHandle),
}

/// The all-in-memory stochastic-computing accelerator.
///
/// # RN refresh policy
///
/// The random-number rows are rewritten ("refreshed") according to the
/// builder's [`RnRefreshPolicy`]; each rewrite starts a new *RN epoch*
/// ([`Accelerator::rn_epoch`]). Streams encoded within one epoch share a
/// realization and are maximally correlated (SCC ≈ +1) even though their
/// correlation-domain labels differ — reusing realizations across encode
/// batches trades entropy cost against that correlation, which is
/// harmless only when the affected streams never meet in one operation
/// (see the policy docs for when reuse is harmless, required, or
/// harmful).
///
/// # Encode cache
///
/// Within one RN epoch, an ideal-mode IMSNG conversion is a pure
/// function of the operand: the same operand always produces
/// bit-identical stream rows. The accelerator therefore memoizes
/// conversions per `(operand, RN epoch)` — repeated operands under one
/// realization (e.g. equal neighbouring pixels) replay the cached row
/// with one packed row write instead of re-running the `5·M`-step
/// comparison schedule. A refresh does not clear the cache inline;
/// entries simply stop matching once the epoch moves on and are pruned
/// lazily. Cost accounting records the *modeled* hardware work, which is
/// identical on hit and miss, so ledgers and traces are unaffected by
/// caching. The cache is disabled under fault injection, where every
/// conversion draws fresh faults.
///
/// # Example
///
/// ```
/// use imsc::engine::Accelerator;
/// use sc_core::Fixed;
///
/// # fn main() -> Result<(), imsc::ImscError> {
/// let mut acc = Accelerator::builder().stream_len(512).seed(3).build()?;
/// // |x − y| needs correlated streams: encode them against shared RN rows.
/// let (x, y) = acc.encode_correlated(Fixed::from_u8(200), Fixed::from_u8(72))?;
/// let d = acc.abs_subtract(x, y)?;
/// let v = acc.read_value(d)?;
/// assert!((v - 0.5).abs() < 0.08);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Accelerator {
    stream_len: usize,
    imsng: Imsng,
    array: CrossbarArray,
    allocator: RowAllocator,
    rn_rows: Vec<usize>,
    sl: ScoutingLogic,
    trng: TrngEngine,
    s2b: StochasticToBinary,
    slots: Vec<StreamSlot>,
    next_group: u64,
    ledger: CostLedger,
    trace: Option<Trace>,
    trace_bank: usize,
    cache_enabled: bool,
    /// Memoized conversions keyed by the RN epoch they were generated
    /// under ([`Accelerator::rn_epoch`]): the stream *and* the cost
    /// `generate` reported for it, so hit and miss cost come from the
    /// same source of truth. `encode_cache_epoch` records which epoch the
    /// map's entries belong to; entries from older epochs are pruned
    /// lazily on first use after a refresh (no inline clearing on the
    /// refresh path).
    encode_cache: HashMap<Fixed, (BitStream, crate::imsng::ImsngCost)>,
    encode_cache_epoch: u64,
    cache_hits: u64,
    refresh_policy: RnRefreshPolicy,
    whiten_select: bool,
    wear_leveling: bool,
    /// Count of RN realizations so far; 0 means the RN rows have never
    /// been filled.
    rn_epoch: u64,
    /// Encode batches since the last refresh (drives `EveryN`).
    encodes_since_refresh: u64,
}

impl Accelerator {
    /// Starts building an accelerator.
    #[must_use]
    pub fn builder() -> AcceleratorBuilder {
        AcceleratorBuilder::new()
    }

    /// The stream length `N`.
    #[must_use]
    pub fn stream_len(&self) -> usize {
        self.stream_len
    }

    /// The comparator segment width `M`.
    #[must_use]
    pub fn segment_bits(&self) -> u32 {
        self.imsng.segment_bits()
    }

    /// The accumulated cost ledger.
    #[must_use]
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// The recorded command trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Drains the recorded command trace, leaving recording enabled with
    /// an empty buffer. Streaming consumers (the instrumentation sink)
    /// call this at schedule boundaries so whole-frame runs never buffer
    /// one giant trace. Returns `None` when tracing is off.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace
            .as_mut()
            .map(|t| std::mem::replace(t, Trace::new()))
    }

    /// The memory bank this accelerator's trace commands address.
    #[must_use]
    pub fn trace_bank(&self) -> usize {
        self.trace_bank
    }

    /// Stream rows still available before handles must be released.
    #[must_use]
    pub fn available_rows(&self) -> usize {
        self.allocator.available()
    }

    fn fresh_group(&mut self) -> u64 {
        self.next_group += 1;
        self.next_group
    }

    /// The single allocation point for destination rows: LIFO by default,
    /// least-worn-first (against the array's live wear map) under
    /// [`AcceleratorBuilder::wear_leveling`]. Every op routes through
    /// here, so the alloc-dest-before-cost invariant is mode-independent.
    fn alloc_row(&mut self) -> Result<usize, ImscError> {
        if self.wear_leveling {
            self.allocator.alloc_least_worn(self.array.wear())
        } else {
            self.allocator.alloc()
        }
    }

    fn record(&mut self, cmd: CmdKind, row: usize) {
        if let Some(t) = self.trace.as_mut() {
            t.push(Command::new(self.trace_bank, row, cmd));
        }
    }

    /// Rewrites all RN rows with fresh TRNG output, starting a new RN
    /// realization (epoch). Called automatically according to the
    /// configured [`RnRefreshPolicy`]; under
    /// [`RnRefreshPolicy::Explicit`] this is the caller's scheduling
    /// handle. Conversions memoized under older epochs stop matching (the
    /// encode cache is keyed by epoch) without being cleared inline.
    ///
    /// # Errors
    ///
    /// Substrate errors only.
    pub fn refresh_rn_rows(&mut self) -> Result<(), ImscError> {
        self.rn_epoch += 1;
        self.encodes_since_refresh = 0;
        for i in 0..self.rn_rows.len() {
            let row = self.rn_rows[i];
            self.trng.fill_row(&mut self.array, row)?;
            self.ledger.trng_fills += 1;
            self.record(CmdKind::Write, row);
        }
        Ok(())
    }

    /// The current RN-realization counter (0 until the first fill).
    #[must_use]
    pub fn rn_epoch(&self) -> u64 {
        self.rn_epoch
    }

    /// The configured refresh policy.
    #[must_use]
    pub fn refresh_policy(&self) -> RnRefreshPolicy {
        self.refresh_policy
    }

    /// Whether the next encode batch will trigger a policy-scheduled
    /// refresh. The very first batch always fills the rows, whatever the
    /// policy. Split out so batched recording can flush conversions of
    /// the outgoing realization *before* the refresh fill hits the trace.
    fn refresh_due(&self) -> bool {
        self.rn_epoch == 0
            || match self.refresh_policy {
                RnRefreshPolicy::PerEncode => true,
                RnRefreshPolicy::EveryN(n) => self.encodes_since_refresh >= n,
                RnRefreshPolicy::Explicit => false,
            }
    }

    /// Runs the policy-scheduled refresh in front of one encode batch.
    fn refresh_for_encode(&mut self) -> Result<(), ImscError> {
        if self.refresh_due() {
            self.refresh_rn_rows()?;
        }
        self.encodes_since_refresh += 1;
        Ok(())
    }

    /// Converts `x` into `dest`, replaying a cached stream when the same
    /// operand was already converted under the current RN realization.
    /// Modeled cost is identical either way.
    fn generate_into(
        &mut self,
        x: Fixed,
        dest: usize,
    ) -> Result<crate::imsng::ImsngCost, ImscError> {
        let m = self.imsng.segment_bits();
        if self.cache_enabled {
            // Lazy epoch keying: entries belong to `encode_cache_epoch`;
            // a realization change simply stops them from matching.
            if self.encode_cache_epoch != self.rn_epoch {
                self.encode_cache.clear();
                self.encode_cache_epoch = self.rn_epoch;
            }
            let key = x.requantize(m)?;
            if let Some((stream, cost)) = self.encode_cache.get(&key) {
                let (stream, cost) = (stream.clone(), *cost);
                self.array.write_row(dest, &stream)?;
                // The modeled hardware still runs the full comparison
                // schedule; keep the scouting-op counter faithful to it.
                self.sl.note_ops(u64::from(m));
                self.cache_hits += 1;
                return Ok(cost);
            }
            let cost =
                self.imsng
                    .generate(&mut self.array, &mut self.sl, &self.rn_rows, x, dest)?;
            let stream =
                BitStream::from_words(self.array.row_words(dest)?.to_vec(), self.stream_len);
            self.encode_cache.insert(key, (stream, cost));
            Ok(cost)
        } else {
            self.imsng
                .generate(&mut self.array, &mut self.sl, &self.rn_rows, x, dest)
        }
    }

    /// Records the command stream of one batched IMSNG dispatch covering
    /// `dests` conversions (a batch of one is a plain single encode).
    ///
    /// The comparison schedule runs segment-major: each RN segment row is
    /// asserted while the 5 sensing steps of *every* operand in the batch
    /// execute against the peripheral latches, then the next segment row
    /// is selected. The scout reads are therefore anchored at the segment
    /// row — back-to-back operands on one segment re-assert the same
    /// wordline group, which a row-buffer-aware replay counts as row hits
    /// (this is exactly how encode coalescing pays off in the banked
    /// model). The per-conversion write phase (variant intermediates plus
    /// the final SBS write) targets each destination row afterwards.
    fn record_imsng_batch(&mut self, dests: &[usize]) {
        if self.trace.is_none() || dests.is_empty() {
            return;
        }
        let m = self.imsng.segment_bits() as usize;
        for s in 0..m {
            let rn_row = self.rn_rows[s];
            for _ in 0..5 * dests.len() {
                self.record(CmdKind::ScoutRead { rows: 2 }, rn_row);
            }
        }
        let writes = match self.imsng.variant() {
            ImsngVariant::Baseline => 4 * m,
            ImsngVariant::Naive => 2 * m,
            ImsngVariant::Opt => 0,
        };
        for &dest in dests {
            for _ in 0..writes {
                self.record(CmdKind::Write, dest);
            }
            self.record(CmdKind::Write, dest);
        }
    }

    fn slot(&self, h: StreamHandle) -> Result<&StreamSlot, ImscError> {
        self.slots
            .get(h.0)
            .filter(|s| s.alive)
            .ok_or(ImscError::InvalidHandle(h.0))
    }

    fn new_slot(&mut self, row: usize, group: u64) -> StreamHandle {
        self.slots.push(StreamSlot {
            row,
            correlation_group: group,
            alive: true,
        });
        StreamHandle(self.slots.len() - 1)
    }

    /// Encodes a binary operand into a stochastic stream with a fresh
    /// correlation domain — step ❶ of the SC flow. Whether the stream is
    /// actually independent of earlier encodes is governed by the
    /// [`RnRefreshPolicy`]: under realization reuse (`EveryN`,
    /// `Explicit`) streams of distinct domains can still be maximally
    /// correlated — see the policy docs.
    ///
    /// The destination row is allocated before any cost is charged, so a
    /// failed allocation leaves the ledger and trace untouched.
    ///
    /// # Errors
    ///
    /// * [`ImscError::OutOfRows`] — release handles to recycle rows.
    /// * [`ImscError::Device`] / [`ImscError::Stochastic`] — substrate
    ///   failures.
    pub fn encode(&mut self, x: Fixed) -> Result<StreamHandle, ImscError> {
        Ok(self.encode_many(std::slice::from_ref(&x))?[0])
    }

    /// Encodes a batch of operands, each in its own fresh correlation
    /// domain (the batched form of [`Accelerator::encode`]). Row and slot
    /// bookkeeping is reserved once for the whole batch, and conversions
    /// sharing one RN realization are recorded as a single segment-major
    /// IMSNG dispatch ([`Accelerator::record_imsng_batch`]); a policy
    /// refresh mid-batch flushes the outgoing realization's dispatch
    /// before the fill writes.
    ///
    /// # Errors
    ///
    /// Same as [`Accelerator::encode`]; on failure, rows already encoded
    /// by this call are released (their modeled cost stays charged, and
    /// their commands stay recorded — the hardware did run them).
    pub fn encode_many(&mut self, operands: &[Fixed]) -> Result<Vec<StreamHandle>, ImscError> {
        self.slots.reserve(operands.len());
        let mut handles = Vec::with_capacity(operands.len());
        let mut pending: Vec<usize> = Vec::with_capacity(operands.len());
        for &x in operands {
            if !pending.is_empty() && self.refresh_due() {
                let flushed = std::mem::take(&mut pending);
                self.record_imsng_batch(&flushed);
            }
            let dest = match self.alloc_row() {
                Ok(d) => d,
                Err(e) => {
                    self.record_imsng_batch(&pending);
                    for h in handles {
                        let _ = self.release(h);
                    }
                    return Err(e);
                }
            };
            let generated = self
                .refresh_for_encode()
                .and_then(|()| self.generate_into(x, dest));
            match generated {
                Ok(cost) => {
                    self.ledger.imsng.accumulate(&cost);
                    pending.push(dest);
                    let group = self.fresh_group();
                    handles.push(self.new_slot(dest, group));
                }
                Err(e) => {
                    self.allocator.release(dest);
                    self.record_imsng_batch(&pending);
                    for h in handles {
                        let _ = self.release(h);
                    }
                    return Err(e);
                }
            }
        }
        self.record_imsng_batch(&pending);
        Ok(handles)
    }

    /// Encodes two operands against the *same* random-number realization,
    /// yielding maximally correlated streams (required by
    /// [`Accelerator::abs_subtract`], [`Accelerator::divide`],
    /// [`Accelerator::minimum`], [`Accelerator::maximum`]).
    ///
    /// # Errors
    ///
    /// Same as [`Accelerator::encode`].
    pub fn encode_correlated(
        &mut self,
        x: Fixed,
        y: Fixed,
    ) -> Result<(StreamHandle, StreamHandle), ImscError> {
        let handles = self.encode_correlated_many(&[x, y])?;
        Ok((handles[0], handles[1]))
    }

    /// Encodes any number of operands against one shared random-number
    /// realization — all resulting streams are pairwise maximally
    /// correlated (one correlation domain). Bilinear interpolation uses
    /// this for its four neighbouring pixels, matting for `(I, B, F)`.
    ///
    /// # Errors
    ///
    /// Same as [`Accelerator::encode`]; additionally
    /// [`ImscError::InvalidConfig`] for an empty operand list.
    pub fn encode_correlated_many(
        &mut self,
        operands: &[Fixed],
    ) -> Result<Vec<StreamHandle>, ImscError> {
        if operands.is_empty() {
            return Err(ImscError::InvalidConfig(
                "encode_correlated_many needs at least one operand",
            ));
        }
        // All destination rows are reserved before any cost is charged,
        // so row exhaustion anywhere in the batch leaves the ledger and
        // trace untouched.
        let mut dests = Vec::with_capacity(operands.len());
        for _ in operands {
            match self.alloc_row() {
                Ok(d) => dests.push(d),
                Err(e) => {
                    for d in dests {
                        self.allocator.release(d);
                    }
                    return Err(e);
                }
            }
        }
        let mut costs = Vec::with_capacity(operands.len());
        let mut generate_all = || -> Result<(), ImscError> {
            self.refresh_for_encode()?;
            for (&op, &dest) in operands.iter().zip(&dests) {
                costs.push(self.generate_into(op, dest)?);
            }
            Ok(())
        };
        if let Err(e) = generate_all() {
            for d in dests {
                self.allocator.release(d);
            }
            return Err(e);
        }
        let group = self.fresh_group();
        let mut handles = Vec::with_capacity(dests.len());
        for (&dest, cost) in dests.iter().zip(costs) {
            self.ledger.imsng.accumulate(&cost);
            handles.push(self.new_slot(dest, group));
        }
        // One shared realization ⇒ one segment-major dispatch.
        self.record_imsng_batch(&dests);
        Ok(handles)
    }

    /// Scaled blend via a single 3-input majority over *correlated*
    /// operands with an independent select: wherever the operand bits
    /// agree MAJ passes them through, and wherever they differ the select
    /// bit decides — computing exactly
    /// `sel·max(a,b) + (1−sel)·min(a,b)`.
    ///
    /// This is the CIM-friendly MUX replacement of §III-B and the kernel
    /// of compositing / bilinear interpolation (Fig. 3a–b). To realize a
    /// *directed* MUX `sel·a + (1−sel)·b`, feed `sel` when `a ≥ b` and
    /// the complement select when `a < b` — the operand ordering is known
    /// at encode time from the binary values, so this costs nothing
    /// (see `imgproc::compositing`).
    ///
    /// The result stays in `a`/`b`'s correlation domain.
    ///
    /// # Errors
    ///
    /// [`ImscError::CorrelationMismatch`] unless `a`,`b` share a domain
    /// and `sel` is outside it.
    pub fn blend(
        &mut self,
        a: StreamHandle,
        b: StreamHandle,
        sel: StreamHandle,
    ) -> Result<StreamHandle, ImscError> {
        let (ra, ga) = {
            let s = self.slot(a)?;
            (s.row, s.correlation_group)
        };
        let (rb, gb) = {
            let s = self.slot(b)?;
            (s.row, s.correlation_group)
        };
        let (rs, gs) = {
            let s = self.slot(sel)?;
            (s.row, s.correlation_group)
        };
        if ga != gb {
            return Err(ImscError::CorrelationMismatch {
                op: "blend",
                requires_correlated: true,
            });
        }
        if gs == ga {
            return Err(ImscError::CorrelationMismatch {
                op: "blend select",
                requires_correlated: false,
            });
        }
        // Destination first: no phantom costs on row exhaustion.
        let dest = self.alloc_row()?;
        let result = match self
            .sl
            .execute_mut(&mut self.array, SlOp::Maj, &[ra, rb, rs])
        {
            Ok(r) => r,
            Err(e) => {
                self.allocator.release(dest);
                return Err(e.into());
            }
        };
        self.ledger.sl_single_ops += 1;
        self.record(CmdKind::ScoutRead { rows: 3 }, ra);
        self.array.write_row(dest, &result)?;
        self.ledger.stream_writes += 1;
        self.record(CmdKind::Write, dest);
        Ok(self.new_slot(dest, ga))
    }

    /// Writes one fresh TRNG row into a stream slot and returns it as a
    /// ~0.5-probability select stream in its own correlation domain.
    ///
    /// This is the paper's native select source: the MUX-replacement MAJ
    /// of §III-B takes a *random row* on its select port, and the
    /// in-array TRNG produces one in a single-step write — no IMSNG
    /// conversion, no RN-row refresh, and (crucially) no correlation with
    /// any stream encoded from the RN rows, whatever the refresh policy.
    /// Per-cell device bias (the builder's `trng_bias_sigma`) applies, as
    /// it does to the RN rows themselves.
    ///
    /// # Errors
    ///
    /// [`ImscError::OutOfRows`] or substrate errors.
    pub fn trng_select(&mut self) -> Result<StreamHandle, ImscError> {
        let dest = self.alloc_row()?;
        let row = self.select_row();
        self.array.write_row(dest, &row)?;
        self.ledger.trng_fills += 1;
        self.record(CmdKind::Write, dest);
        let group = self.fresh_group();
        Ok(self.new_slot(dest, group))
    }

    /// One ~0.5 select row, whitened when the builder asked for it.
    fn select_row(&mut self) -> BitStream {
        if self.whiten_select {
            self.trng.generate_row_whitened(self.stream_len)
        } else {
            self.trng.generate_row(self.stream_len)
        }
    }

    /// Raw bits drawn from the in-memory TRNG so far (RN-row refreshes
    /// and select rows). Under [`AcceleratorBuilder::whiten_select`] the
    /// Von Neumann extractor's ≥ 4× raw-bit overhead shows up here while
    /// the ledger keeps counting one `trng_fill` per row written.
    #[must_use]
    pub fn trng_raw_bits(&self) -> u64 {
        self.trng.bits_generated()
    }

    /// Loads an externally produced stream into the array (fresh
    /// correlation domain). Mainly useful for tests and interop.
    ///
    /// # Errors
    ///
    /// * [`ImscError::Stochastic`] — stream length mismatch.
    /// * [`ImscError::OutOfRows`] — array exhausted.
    pub fn load_stream(&mut self, s: &BitStream) -> Result<StreamHandle, ImscError> {
        if s.len() != self.stream_len {
            return Err(ImscError::Stochastic(sc_core::ScError::LengthMismatch {
                left: s.len(),
                right: self.stream_len,
            }));
        }
        let dest = self.alloc_row()?;
        self.array.write_row(dest, s)?;
        self.ledger.stream_writes += 1;
        self.record(CmdKind::Write, dest);
        let group = self.fresh_group();
        Ok(self.new_slot(dest, group))
    }

    fn binary_sl_op(
        &mut self,
        op: SlOp,
        a: StreamHandle,
        b: StreamHandle,
        require_correlated: bool,
        op_name: &'static str,
    ) -> Result<StreamHandle, ImscError> {
        let (ra, ga) = {
            let s = self.slot(a)?;
            (s.row, s.correlation_group)
        };
        let (rb, gb) = {
            let s = self.slot(b)?;
            (s.row, s.correlation_group)
        };
        let correlated = ga == gb;
        if correlated != require_correlated {
            return Err(ImscError::CorrelationMismatch {
                op: op_name,
                requires_correlated: require_correlated,
            });
        }
        // Destination first: a failed allocation must not leave phantom
        // op costs in the ledger or trace.
        let dest = self.alloc_row()?;
        let result = match self.sl.execute_mut(&mut self.array, op, &[ra, rb]) {
            Ok(r) => r,
            Err(e) => {
                self.allocator.release(dest);
                return Err(e.into());
            }
        };
        match op {
            SlOp::Xor | SlOp::Xnor => self.ledger.sl_xor_ops += 1,
            _ => self.ledger.sl_single_ops += 1,
        }
        self.record(CmdKind::ScoutRead { rows: 2 }, ra);
        self.array.write_row(dest, &result)?;
        self.ledger.stream_writes += 1;
        self.record(CmdKind::Write, dest);
        // Correlated-input results are threshold/interval tests of the
        // same shared random numbers, so they remain in the operands'
        // correlation domain; uncorrelated-input results get a fresh one.
        let group = if require_correlated {
            ga
        } else {
            self.fresh_group()
        };
        Ok(self.new_slot(dest, group))
    }

    /// SC multiplication `x·y` (AND over uncorrelated streams).
    ///
    /// # Errors
    ///
    /// [`ImscError::CorrelationMismatch`] if the operands share a
    /// correlation domain; substrate errors otherwise.
    pub fn multiply(
        &mut self,
        a: StreamHandle,
        b: StreamHandle,
    ) -> Result<StreamHandle, ImscError> {
        self.binary_sl_op(SlOp::And, a, b, false, "multiply")
    }

    /// CIM-friendly scaled addition `(x + y)/2`: 3-input majority with a
    /// fresh in-memory TRNG row on the select port (§III-B).
    ///
    /// The select is one single-step [`Accelerator::trng_select`] row —
    /// *not* an IMSNG conversion — so it is independent of both operands
    /// under every refresh policy, never touches the RN rows, and leaves
    /// the encode cache's realization intact. Total cost on top of the
    /// MAJ: one TRNG row fill and the two row writes (select + result).
    ///
    /// # Errors
    ///
    /// [`ImscError::CorrelationMismatch`] for correlated operands;
    /// substrate errors otherwise.
    pub fn scaled_add(
        &mut self,
        a: StreamHandle,
        b: StreamHandle,
    ) -> Result<StreamHandle, ImscError> {
        let (ra, ga) = {
            let s = self.slot(a)?;
            (s.row, s.correlation_group)
        };
        let (rb, gb) = {
            let s = self.slot(b)?;
            (s.row, s.correlation_group)
        };
        if ga == gb {
            return Err(ImscError::CorrelationMismatch {
                op: "scaled_add",
                requires_correlated: false,
            });
        }
        // Destination first: no phantom costs on row exhaustion.
        let dest = self.alloc_row()?;
        // The select row is generated *into* the destination — the MAJ
        // consumes it and the result overwrites it — so the operation
        // peaks at one extra row, like the pre-policy implementation.
        let select = self.select_row();
        if let Err(e) = self.array.write_row(dest, &select) {
            self.allocator.release(dest);
            return Err(e.into());
        }
        self.ledger.trng_fills += 1;
        self.record(CmdKind::Write, dest);
        let result = match self
            .sl
            .execute_mut(&mut self.array, SlOp::Maj, &[ra, rb, dest])
        {
            Ok(r) => r,
            Err(e) => {
                self.allocator.release(dest);
                return Err(e.into());
            }
        };
        self.ledger.sl_single_ops += 1;
        self.record(CmdKind::ScoutRead { rows: 3 }, ra);
        self.array.write_row(dest, &result)?;
        self.ledger.stream_writes += 1;
        self.record(CmdKind::Write, dest);
        let group = self.fresh_group();
        Ok(self.new_slot(dest, group))
    }

    /// Approximate (unscaled) addition `≈ x + y` for `x, y ∈ [0, 0.5]`
    /// (OR over uncorrelated streams).
    ///
    /// # Errors
    ///
    /// [`ImscError::CorrelationMismatch`] for correlated operands.
    pub fn approx_add(
        &mut self,
        a: StreamHandle,
        b: StreamHandle,
    ) -> Result<StreamHandle, ImscError> {
        self.binary_sl_op(SlOp::Or, a, b, false, "approx_add")
    }

    /// Absolute subtraction `|x − y|` (XOR over correlated streams).
    ///
    /// # Errors
    ///
    /// [`ImscError::CorrelationMismatch`] for uncorrelated operands.
    pub fn abs_subtract(
        &mut self,
        a: StreamHandle,
        b: StreamHandle,
    ) -> Result<StreamHandle, ImscError> {
        self.binary_sl_op(SlOp::Xor, a, b, true, "abs_subtract")
    }

    /// Minimum `min(x, y)` (AND over correlated streams).
    ///
    /// # Errors
    ///
    /// [`ImscError::CorrelationMismatch`] for uncorrelated operands.
    pub fn minimum(&mut self, a: StreamHandle, b: StreamHandle) -> Result<StreamHandle, ImscError> {
        self.binary_sl_op(SlOp::And, a, b, true, "minimum")
    }

    /// Maximum `max(x, y)` (OR over correlated streams).
    ///
    /// # Errors
    ///
    /// [`ImscError::CorrelationMismatch`] for uncorrelated operands.
    pub fn maximum(&mut self, a: StreamHandle, b: StreamHandle) -> Result<StreamHandle, ImscError> {
        self.binary_sl_op(SlOp::Or, a, b, true, "maximum")
    }

    /// CORDIV division `x / y` for correlated streams with `x ≤ y`,
    /// executed in the periphery latches (no intermediate array writes).
    ///
    /// # Errors
    ///
    /// * [`ImscError::CorrelationMismatch`] — uncorrelated operands.
    /// * [`ImscError::Stochastic`] — all-zero divisor.
    pub fn divide(&mut self, a: StreamHandle, b: StreamHandle) -> Result<StreamHandle, ImscError> {
        let (ra, ga) = {
            let s = self.slot(a)?;
            (s.row, s.correlation_group)
        };
        let (rb, gb) = {
            let s = self.slot(b)?;
            (s.row, s.correlation_group)
        };
        if ga != gb {
            return Err(ImscError::CorrelationMismatch {
                op: "divide",
                requires_correlated: true,
            });
        }
        // Destination first: no phantom costs on row exhaustion.
        let dest = self.alloc_row()?;
        // Sense both operand rows (faults apply on the sensing path).
        // Each is its own single-row NOT sense read — the ledger charges
        // two single ops, so the trace records two single-row scout
        // reads, one per operand row.
        let sense = |this: &mut Self, row: usize| match this.sl.execute_mut(
            &mut this.array,
            SlOp::Not,
            &[row],
        ) {
            Ok(s) => {
                this.ledger.sl_single_ops += 1;
                this.record(CmdKind::ScoutRead { rows: 1 }, row);
                Ok(s.not())
            }
            Err(e) => {
                this.allocator.release(dest);
                Err(ImscError::from(e))
            }
        };
        let x = sense(self, ra)?;
        let y = sense(self, rb)?;
        let quotient = match CordivPeriphery::new().run(&x, &y) {
            Ok(q) => q,
            Err(e) => {
                // The sense reads above were real work and stay charged;
                // the CORDIV steps never ran.
                self.allocator.release(dest);
                return Err(e.into());
            }
        };
        self.ledger.cordiv_steps += self.stream_len as u64;
        if let Some(t) = self.trace.as_mut() {
            t.push_repeated(
                Command::new(self.trace_bank, ra, CmdKind::CordivStep),
                self.stream_len,
            );
        }
        self.array.write_row(dest, &quotient)?;
        self.ledger.stream_writes += 1;
        self.record(CmdKind::Write, dest);
        let group = self.fresh_group();
        Ok(self.new_slot(dest, group))
    }

    /// Complement `1 − x` (inverted read).
    ///
    /// # Errors
    ///
    /// Substrate errors only.
    pub fn complement(&mut self, a: StreamHandle) -> Result<StreamHandle, ImscError> {
        let ra = self.slot(a)?.row;
        let ga = self.slot(a)?.correlation_group;
        // Destination first: no phantom costs on row exhaustion.
        let dest = self.alloc_row()?;
        let result = match self.sl.execute_mut(&mut self.array, SlOp::Not, &[ra]) {
            Ok(r) => r,
            Err(e) => {
                self.allocator.release(dest);
                return Err(e.into());
            }
        };
        self.ledger.sl_single_ops += 1;
        // An inverted read senses a single row.
        self.record(CmdKind::ScoutRead { rows: 1 }, ra);
        self.array.write_row(dest, &result)?;
        self.ledger.stream_writes += 1;
        self.record(CmdKind::Write, dest);
        // The complement is *anti*-correlated with its source; it stays in
        // the same correlation domain so correlated ops remain legal.
        Ok(self.new_slot(dest, ga))
    }

    /// Reads a stream back as a probability estimate via the reference
    /// column and ADC — step ❸.
    ///
    /// # Errors
    ///
    /// Substrate errors only.
    pub fn read_value(&mut self, h: StreamHandle) -> Result<f64, ImscError> {
        let row = self.slot(h)?.row;
        let s = self.array.read_row(row)?;
        self.ledger.adc_samples += 1;
        self.record(CmdKind::AdcSample, row);
        self.s2b.convert_to_prob(&s)
    }

    /// Copies a stream out of the array (diagnostic path; does not model
    /// the ADC).
    ///
    /// # Errors
    ///
    /// Substrate errors only.
    pub fn read_stream(&mut self, h: StreamHandle) -> Result<BitStream, ImscError> {
        let row = self.slot(h)?.row;
        self.ledger.stream_reads += 1;
        Ok(self.array.read_row(row)?)
    }

    /// Executes a whole program of SC operations, yielding one result
    /// handle per [`BatchOp`] — the batched form of the single-operation
    /// methods. Slot storage is reserved once for the batch and the
    /// per-op ledger/trace updates stay cache-hot across the program.
    ///
    /// # Errors
    ///
    /// The first failing operation's error; handles produced by earlier
    /// operations of the batch remain valid (callers can release them).
    pub fn execute_many(&mut self, ops: &[BatchOp]) -> Result<Vec<StreamHandle>, ImscError> {
        self.slots.reserve(ops.len());
        let mut out = Vec::with_capacity(ops.len());
        for &op in ops {
            let h = match op {
                BatchOp::Multiply(a, b) => self.multiply(a, b)?,
                BatchOp::ScaledAdd(a, b) => self.scaled_add(a, b)?,
                BatchOp::ApproxAdd(a, b) => self.approx_add(a, b)?,
                BatchOp::AbsSubtract(a, b) => self.abs_subtract(a, b)?,
                BatchOp::Minimum(a, b) => self.minimum(a, b)?,
                BatchOp::Maximum(a, b) => self.maximum(a, b)?,
                BatchOp::Divide(a, b) => self.divide(a, b)?,
                BatchOp::Complement(a) => self.complement(a)?,
                BatchOp::Blend(a, b, sel) => self.blend(a, b, sel)?,
            };
            out.push(h);
        }
        Ok(out)
    }

    /// Reads several streams back as probability estimates (batched
    /// [`Accelerator::read_value`]).
    ///
    /// # Errors
    ///
    /// Fails on the first invalid handle or substrate error.
    pub fn read_values(&mut self, handles: &[StreamHandle]) -> Result<Vec<f64>, ImscError> {
        handles.iter().map(|&h| self.read_value(h)).collect()
    }

    /// Releases a batch of stream rows (batched [`Accelerator::release`]).
    ///
    /// # Errors
    ///
    /// Fails on the first already-released or foreign handle; remaining
    /// handles are left untouched.
    pub fn release_many(&mut self, handles: &[StreamHandle]) -> Result<(), ImscError> {
        for &h in handles {
            self.release(h)?;
        }
        Ok(())
    }

    /// Conversions served from the encode cache (see the type-level docs).
    #[must_use]
    pub fn encode_cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Bit flips the fault injector has applied so far (0 when built
    /// fault-free). The per-array health signal of fault-domain
    /// scheduling: divided by [`Accelerator::scout_ops_executed`] it
    /// estimates this array's live error rate.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.sl.faults_injected()
    }

    /// Scouting operations executed by this array's sense path so far.
    #[must_use]
    pub fn scout_ops_executed(&self) -> u64 {
        self.sl.ops_executed()
    }

    /// Whether destination rows are allocated least-worn-first.
    #[must_use]
    pub fn wear_leveling_enabled(&self) -> bool {
        self.wear_leveling
    }

    /// Endurance summary of the stream region's wear map (per-row write
    /// counts of every allocatable row; the reserved RN rows are excluded
    /// because their wear is set by the refresh policy, not the
    /// allocator).
    #[must_use]
    pub fn stream_wear(&self) -> WearSummary {
        WearSummary::from_rows(&self.array.wear()[self.rn_rows.len()..])
    }

    /// Endurance summary of the reserved RN rows' wear map.
    #[must_use]
    pub fn rn_wear(&self) -> WearSummary {
        WearSummary::from_rows(&self.array.wear()[..self.rn_rows.len()])
    }

    /// Releases a stream's row for reuse.
    ///
    /// # Errors
    ///
    /// [`ImscError::InvalidHandle`] if already released or foreign.
    pub fn release(&mut self, h: StreamHandle) -> Result<(), ImscError> {
        let row = {
            let s = self
                .slots
                .get_mut(h.0)
                .filter(|s| s.alive)
                .ok_or(ImscError::InvalidHandle(h.0))?;
            s.alive = false;
            s.row
        };
        self.allocator.release(row);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(n: usize, seed: u64) -> Accelerator {
        Accelerator::builder()
            .stream_len(n)
            .seed(seed)
            .trng_bias_sigma(0.0)
            .build()
            .unwrap()
    }

    #[test]
    fn multiply_uncorrelated_streams() {
        let mut a = acc(4096, 1);
        let x = a.encode(Fixed::from_u8(192)).unwrap();
        let y = a.encode(Fixed::from_u8(128)).unwrap();
        let p = a.multiply(x, y).unwrap();
        let v = a.read_value(p).unwrap();
        assert!((v - 0.375).abs() < 0.04, "{v}");
    }

    #[test]
    fn scaled_add_halves_the_sum() {
        let mut a = acc(4096, 2);
        let x = a.encode(Fixed::from_u8(200)).unwrap();
        let y = a.encode(Fixed::from_u8(56)).unwrap();
        let s = a.scaled_add(x, y).unwrap();
        let v = a.read_value(s).unwrap();
        assert!((v - 0.5).abs() < 0.04, "{v}");
    }

    #[test]
    fn correlated_subtract_min_max_divide() {
        let mut a = acc(4096, 3);
        let (x, y) = a
            .encode_correlated(Fixed::from_u8(60), Fixed::from_u8(180))
            .unwrap();
        let d = a.abs_subtract(x, y).unwrap();
        assert!((a.read_value(d).unwrap() - 120.0 / 256.0).abs() < 0.05);
        let mn = a.minimum(x, y).unwrap();
        assert!((a.read_value(mn).unwrap() - 60.0 / 256.0).abs() < 0.05);
        let mx = a.maximum(x, y).unwrap();
        assert!((a.read_value(mx).unwrap() - 180.0 / 256.0).abs() < 0.05);
        let q = a.divide(x, y).unwrap();
        assert!((a.read_value(q).unwrap() - 60.0 / 180.0).abs() < 0.07);
    }

    #[test]
    fn correlation_domains_are_enforced() {
        let mut a = acc(256, 4);
        let x = a.encode(Fixed::from_u8(100)).unwrap();
        let y = a.encode(Fixed::from_u8(100)).unwrap();
        assert!(matches!(
            a.abs_subtract(x, y),
            Err(ImscError::CorrelationMismatch { .. })
        ));
        let (u, v) = a
            .encode_correlated(Fixed::from_u8(10), Fixed::from_u8(20))
            .unwrap();
        assert!(matches!(
            a.multiply(u, v),
            Err(ImscError::CorrelationMismatch { .. })
        ));
    }

    #[test]
    fn complement_stays_in_domain() {
        let mut a = acc(2048, 5);
        let (x, _y) = a
            .encode_correlated(Fixed::from_u8(64), Fixed::from_u8(160))
            .unwrap();
        let nx = a.complement(x).unwrap();
        let v = a.read_value(nx).unwrap();
        assert!((v - 0.75).abs() < 0.03, "{v}");
        // ¬x shares x's correlation domain, so correlated ops are legal —
        // and AND(¬x, x) is exactly the empty overlap.
        let z = a.minimum(nx, x).unwrap();
        assert!(a.read_value(z).unwrap() < 0.01);
    }

    #[test]
    fn rows_are_recycled_after_release() {
        let mut a = Accelerator::builder()
            .stream_len(64)
            .stream_rows(4)
            .seed(6)
            .build()
            .unwrap();
        for _ in 0..16 {
            let h = a.encode(Fixed::from_u8(1)).unwrap();
            a.release(h).unwrap();
        }
        assert_eq!(a.available_rows(), 4);
        let h = a.encode(Fixed::from_u8(1)).unwrap();
        assert!(matches!(
            a.read_value(StreamHandle(0)),
            Err(ImscError::InvalidHandle(0))
        ));
        let _ = h;
    }

    #[test]
    fn out_of_rows_is_reported() {
        let mut a = Accelerator::builder()
            .stream_len(64)
            .stream_rows(2)
            .seed(7)
            .build()
            .unwrap();
        let _x = a.encode(Fixed::from_u8(9)).unwrap();
        let _y = a.encode(Fixed::from_u8(9)).unwrap();
        assert!(matches!(
            a.encode(Fixed::from_u8(9)),
            Err(ImscError::OutOfRows)
        ));
    }

    #[test]
    fn ledger_tracks_the_flow() {
        let mut a = acc(256, 8);
        let x = a.encode(Fixed::from_u8(50)).unwrap();
        let y = a.encode(Fixed::from_u8(70)).unwrap();
        let p = a.multiply(x, y).unwrap();
        let _ = a.read_value(p).unwrap();
        let l = a.ledger();
        assert_eq!(l.imsng.sense_ops, 80); // two conversions × 5·8
        assert_eq!(l.sl_single_ops, 1);
        assert_eq!(l.adc_samples, 1);
        assert_eq!(l.stream_writes, 1);
        assert_eq!(l.trng_fills, 16);
    }

    /// Asserts that every command class in the trace matches the ledger's
    /// corresponding counters exactly.
    fn assert_trace_matches_ledger(a: &Accelerator, context: &str) {
        let l = a.ledger();
        let trace = a.trace().expect("tracing enabled");
        let count = |pred: &dyn Fn(&CmdKind) -> bool| -> u64 {
            trace.commands().iter().filter(|c| pred(&c.kind)).count() as u64
        };
        assert_eq!(
            count(&|k| matches!(k, CmdKind::ScoutRead { .. })),
            l.imsng.sense_ops + l.sl_single_ops + l.sl_xor_ops,
            "{context}: scout reads"
        );
        assert_eq!(
            count(&|k| *k == CmdKind::Write),
            l.trng_fills + l.stream_writes + l.imsng.intermediate_writes + l.imsng.sbs_writes,
            "{context}: writes"
        );
        assert_eq!(
            count(&|k| *k == CmdKind::AdcSample),
            l.adc_samples,
            "{context}: adc samples"
        );
        assert_eq!(
            count(&|k| *k == CmdKind::CordivStep),
            l.cordiv_steps,
            "{context}: cordiv steps"
        );
    }

    #[test]
    fn trace_recording_matches_ledger() {
        let mut a = Accelerator::builder()
            .stream_len(256)
            .seed(9)
            .record_trace(true)
            .build()
            .unwrap();
        let x = a.encode(Fixed::from_u8(100)).unwrap();
        let _ = a.read_value(x).unwrap();
        let trace = a.trace().unwrap();
        let scouts = trace
            .commands()
            .iter()
            .filter(|c| matches!(c.kind, CmdKind::ScoutRead { .. }))
            .count();
        assert_eq!(scouts, 40);
        let adcs = trace
            .commands()
            .iter()
            .filter(|c| c.kind == CmdKind::AdcSample)
            .count();
        assert_eq!(adcs, 1);
        // Divide performs two single-row NOT sense reads; the trace must
        // record them as two `ScoutRead { rows: 1 }` commands (one per
        // operand row), keeping the scout count equal to the ledger's.
        let (p, q) = a
            .encode_correlated(Fixed::from_u8(60), Fixed::from_u8(180))
            .unwrap();
        let d = a.divide(p, q).unwrap();
        let _ = a.read_value(d).unwrap();
        let trace = a.trace().unwrap();
        let single_row_scouts = trace
            .commands()
            .iter()
            .filter(|c| matches!(c.kind, CmdKind::ScoutRead { rows: 1 }))
            .count();
        assert_eq!(single_row_scouts, 2);
        assert_trace_matches_ledger(&a, "divide");
    }

    #[test]
    fn ledger_and_trace_agree_for_every_batch_op() {
        // Parity across the whole operation surface: one accelerator per
        // `BatchOp` variant, every command class checked against the
        // ledger.
        type Prep = fn(&mut Accelerator) -> BatchOp;
        let preps: [(&str, Prep); 9] = [
            ("multiply", |a| {
                let x = a.encode(Fixed::from_u8(96)).unwrap();
                let y = a.encode(Fixed::from_u8(160)).unwrap();
                BatchOp::Multiply(x, y)
            }),
            ("scaled_add", |a| {
                let x = a.encode(Fixed::from_u8(96)).unwrap();
                let y = a.encode(Fixed::from_u8(160)).unwrap();
                BatchOp::ScaledAdd(x, y)
            }),
            ("approx_add", |a| {
                let x = a.encode(Fixed::from_u8(40)).unwrap();
                let y = a.encode(Fixed::from_u8(50)).unwrap();
                BatchOp::ApproxAdd(x, y)
            }),
            ("abs_subtract", |a| {
                let (x, y) = a
                    .encode_correlated(Fixed::from_u8(60), Fixed::from_u8(180))
                    .unwrap();
                BatchOp::AbsSubtract(x, y)
            }),
            ("minimum", |a| {
                let (x, y) = a
                    .encode_correlated(Fixed::from_u8(60), Fixed::from_u8(180))
                    .unwrap();
                BatchOp::Minimum(x, y)
            }),
            ("maximum", |a| {
                let (x, y) = a
                    .encode_correlated(Fixed::from_u8(60), Fixed::from_u8(180))
                    .unwrap();
                BatchOp::Maximum(x, y)
            }),
            ("divide", |a| {
                let (x, y) = a
                    .encode_correlated(Fixed::from_u8(60), Fixed::from_u8(180))
                    .unwrap();
                BatchOp::Divide(x, y)
            }),
            ("complement", |a| {
                let x = a.encode(Fixed::from_u8(77)).unwrap();
                BatchOp::Complement(x)
            }),
            ("blend", |a| {
                let (x, y) = a
                    .encode_correlated(Fixed::from_u8(60), Fixed::from_u8(180))
                    .unwrap();
                let s = a.trng_select().unwrap();
                BatchOp::Blend(x, y, s)
            }),
        ];
        for (name, prep) in preps {
            let mut a = Accelerator::builder()
                .stream_len(256)
                .seed(33)
                .record_trace(true)
                .build()
                .unwrap();
            let op = prep(&mut a);
            let out = a.execute_many(&[op]).unwrap();
            let _ = a.read_value(out[0]).unwrap();
            assert_trace_matches_ledger(&a, name);
        }
    }

    #[test]
    fn failed_allocations_charge_nothing() {
        // Exhaust the stream rows, then check that every operation's
        // OutOfRows failure leaves both the ledger and the trace exactly
        // as they were (no phantom op costs).
        let mut a = Accelerator::builder()
            .stream_len(64)
            .stream_rows(5)
            .seed(44)
            .trng_bias_sigma(0.0)
            .record_trace(true)
            .build()
            .unwrap();
        let (x, y) = a
            .encode_correlated(Fixed::from_u8(60), Fixed::from_u8(180))
            .unwrap();
        let u = a.encode(Fixed::from_u8(100)).unwrap();
        let sel = a.trng_select().unwrap();
        let _fill = a.trng_select().unwrap(); // occupy the last row
        assert_eq!(a.available_rows(), 0);

        let ledger_before = *a.ledger();
        let trace_before = a.trace().unwrap().commands().len();
        assert!(matches!(a.multiply(x, u), Err(ImscError::OutOfRows)));
        assert!(matches!(a.approx_add(x, u), Err(ImscError::OutOfRows)));
        assert!(matches!(a.abs_subtract(x, y), Err(ImscError::OutOfRows)));
        assert!(matches!(a.minimum(x, y), Err(ImscError::OutOfRows)));
        assert!(matches!(a.divide(x, y), Err(ImscError::OutOfRows)));
        assert!(matches!(a.scaled_add(x, u), Err(ImscError::OutOfRows)));
        assert!(matches!(a.blend(x, y, sel), Err(ImscError::OutOfRows)));
        assert!(matches!(a.complement(x), Err(ImscError::OutOfRows)));
        assert!(matches!(a.trng_select(), Err(ImscError::OutOfRows)));
        assert!(matches!(
            a.encode(Fixed::from_u8(1)),
            Err(ImscError::OutOfRows)
        ));
        assert!(matches!(
            a.encode_correlated(Fixed::from_u8(1), Fixed::from_u8(2)),
            Err(ImscError::OutOfRows)
        ));
        assert_eq!(*a.ledger(), ledger_before, "phantom costs charged");
        assert_eq!(a.trace().unwrap().commands().len(), trace_before);
    }

    #[test]
    fn scaled_add_cost_is_pinned() {
        // The 0.5 select is one single-step TRNG row: scaled_add must
        // charge exactly one TRNG fill, one MAJ scouting op, and one
        // result-row write on top of the operand encodes — no IMSNG run,
        // no RN-row refresh.
        let mut a = acc(256, 12);
        let x = a.encode(Fixed::from_u8(200)).unwrap();
        let y = a.encode(Fixed::from_u8(56)).unwrap();
        let before = *a.ledger();
        let s = a.scaled_add(x, y).unwrap();
        let l = a.ledger();
        assert_eq!(l.trng_fills, before.trng_fills + 1);
        assert_eq!(l.sl_single_ops, before.sl_single_ops + 1);
        assert_eq!(l.stream_writes, before.stream_writes + 1);
        assert_eq!(l.imsng, before.imsng, "no IMSNG conversion");
        let _ = s;
    }

    #[test]
    fn scaled_add_succeeds_with_one_free_row() {
        // The select lives in the destination row until the MAJ result
        // overwrites it, so one free row is enough (as before the
        // refresh-policy rework).
        let mut a = Accelerator::builder()
            .stream_len(2048)
            .stream_rows(3)
            .seed(51)
            .trng_bias_sigma(0.0)
            .build()
            .unwrap();
        let x = a.encode(Fixed::from_u8(200)).unwrap();
        let y = a.encode(Fixed::from_u8(56)).unwrap();
        assert_eq!(a.available_rows(), 1);
        let s = a.scaled_add(x, y).unwrap();
        let v = a.read_value(s).unwrap();
        assert!((v - 0.5).abs() < 0.05, "{v}");
    }

    #[test]
    fn scaled_add_leaves_the_encode_cache_realization_intact() {
        // Under an explicit policy the cached conversion for an operand
        // must survive a scaled_add (the old implementation refreshed the
        // RN rows mid-operation, killing the realization).
        let mut a = Accelerator::builder()
            .stream_len(512)
            .seed(19)
            .refresh_policy(RnRefreshPolicy::Explicit)
            .build()
            .unwrap();
        let h1 = a.encode(Fixed::from_u8(90)).unwrap();
        let s1 = a.read_stream(h1).unwrap();
        let u = a.encode(Fixed::from_u8(30)).unwrap();
        let epoch = a.rn_epoch();
        let _sum = a.scaled_add(h1, u).unwrap();
        assert_eq!(a.rn_epoch(), epoch, "scaled_add must not refresh");
        let h2 = a.encode(Fixed::from_u8(90)).unwrap();
        assert!(a.encode_cache_hits() >= 1);
        assert_eq!(a.read_stream(h2).unwrap(), s1, "same realization");
    }

    #[test]
    fn every_n_policy_shares_realizations() {
        let mut a = Accelerator::builder()
            .stream_len(2048)
            .seed(23)
            .trng_bias_sigma(0.0)
            .refresh_policy(RnRefreshPolicy::EveryN(4))
            .build()
            .unwrap();
        let x = a.encode(Fixed::from_u8(60)).unwrap();
        let y = a.encode(Fixed::from_u8(180)).unwrap();
        assert_eq!(a.rn_epoch(), 1, "4 batches share one realization");
        assert_eq!(a.ledger().trng_fills, 8);
        let sx = a.read_stream(x).unwrap();
        let sy = a.read_stream(y).unwrap();
        // Shared realization: maximally correlated despite distinct
        // correlation-domain labels.
        assert!(sc_core::correlation::scc(&sx, &sy).unwrap() > 0.99);
        let _ = a.encode(Fixed::from_u8(10)).unwrap();
        let _ = a.encode(Fixed::from_u8(11)).unwrap();
        let _ = a.encode(Fixed::from_u8(12)).unwrap();
        assert_eq!(a.rn_epoch(), 2, "5th batch starts the next realization");
        assert_eq!(a.ledger().trng_fills, 16);
    }

    #[test]
    fn explicit_policy_refreshes_only_on_request() {
        let mut a = Accelerator::builder()
            .stream_len(2048)
            .seed(29)
            .trng_bias_sigma(0.0)
            .refresh_policy(RnRefreshPolicy::Explicit)
            .build()
            .unwrap();
        let x = a.encode(Fixed::from_u8(60)).unwrap();
        let sx = a.read_stream(x).unwrap();
        for i in 0..6 {
            let _ = a.encode(Fixed::from_u8(i)).unwrap();
        }
        assert_eq!(a.rn_epoch(), 1, "only the initial fill");
        a.refresh_rn_rows().unwrap();
        let z = a.encode(Fixed::from_u8(60)).unwrap();
        let sz = a.read_stream(z).unwrap();
        assert_eq!(a.rn_epoch(), 2);
        // Fresh realization: the equal-valued streams decorrelate.
        assert!(sc_core::correlation::scc(&sx, &sz).unwrap() < 0.3);
    }

    #[test]
    fn trng_select_is_half_and_independent_of_encodes() {
        let mut a = Accelerator::builder()
            .stream_len(4096)
            .seed(31)
            .trng_bias_sigma(0.0)
            .refresh_policy(RnRefreshPolicy::Explicit)
            .build()
            .unwrap();
        let x = a.encode(Fixed::from_u8(128)).unwrap();
        let s = a.trng_select().unwrap();
        let v = a.read_value(s).unwrap();
        assert!((v - 0.5).abs() < 0.03, "{v}");
        let sx = a.read_stream(x).unwrap();
        let ss = a.read_stream(s).unwrap();
        // Even under full realization reuse the select is fresh entropy.
        assert!(sc_core::correlation::scc(&sx, &ss).unwrap().abs() < 0.1);
    }

    #[test]
    fn whiten_select_removes_per_cell_bias() {
        // stream_len = TRNG cell count (4096): every select row visits
        // each generator cell exactly once, so per-bit frequencies over
        // many rows expose the per-cell bias directly. Under a large
        // bias sigma the raw path reproduces the worst cell's bias; the
        // whitened path sits at the fair-coin sampling-noise floor.
        let rounds = 500u32;
        let run = |whiten: bool| {
            let mut a = Accelerator::builder()
                .stream_len(4096)
                .seed(91)
                .trng_bias_sigma(0.3)
                .whiten_select(whiten)
                .build()
                .unwrap();
            let mut ones = vec![0u64; 4096];
            for _ in 0..rounds {
                let s = a.trng_select().unwrap();
                let row = a.read_stream(s).unwrap();
                for (i, o) in ones.iter_mut().enumerate() {
                    *o += u64::from(row.get(i).unwrap());
                }
                a.release(s).unwrap();
            }
            let dev = ones
                .iter()
                .map(|&o| (o as f64 / f64::from(rounds) - 0.5).abs())
                .fold(0.0f64, f64::max);
            (dev, a.trng_raw_bits(), *a.ledger())
        };
        let (raw_dev, raw_bits, raw_ledger) = run(false);
        let (white_dev, white_bits, white_ledger) = run(true);
        assert!(raw_dev > 0.25, "raw worst per-cell deviation {raw_dev}");
        assert!(
            white_dev < 0.12,
            "whitened worst per-cell deviation {white_dev}"
        );
        // The extractor pays ≥ 2 raw bits per emitted bit (≥ 4× in
        // expectation once discards are counted); the modeled row-write
        // cost is unchanged — one TRNG fill per select either way.
        assert!(white_bits > 2 * raw_bits);
        assert_eq!(raw_ledger.trng_fills, white_ledger.trng_fills);
    }

    #[test]
    fn invalid_refresh_policy_rejected() {
        assert!(Accelerator::builder()
            .refresh_policy(RnRefreshPolicy::EveryN(0))
            .build()
            .is_err());
        assert!(Accelerator::builder()
            .refresh_policy(RnRefreshPolicy::EveryN(1))
            .build()
            .is_ok());
    }

    #[test]
    fn faulty_accelerator_still_tracks_values() {
        let mut a = Accelerator::builder()
            .stream_len(1024)
            .seed(10)
            .fault_rates(FaultRates::uniform(0.02))
            .build()
            .unwrap();
        let x = a.encode(Fixed::from_u8(128)).unwrap();
        let y = a.encode(Fixed::from_u8(128)).unwrap();
        let p = a.multiply(x, y).unwrap();
        let v = a.read_value(p).unwrap();
        assert!((v - 0.25).abs() < 0.08, "{v}");
    }

    #[test]
    fn divide_rejects_zero_divisor() {
        let mut a = acc(128, 11);
        let (x, y) = a
            .encode_correlated(Fixed::from_u8(0), Fixed::from_u8(0))
            .unwrap();
        assert!(a.divide(x, y).is_err());
    }

    #[test]
    fn invalid_builder_configs() {
        assert!(Accelerator::builder().stream_len(1).build().is_err());
        assert!(Accelerator::builder().stream_rows(1).build().is_err());
        assert!(Accelerator::builder().trng_bias_sigma(0.6).build().is_err());
        assert!(Accelerator::builder().segment_bits(0).build().is_err());
    }

    #[test]
    fn invalid_fault_rates_rejected_at_build() {
        for bad in [-0.5, 1.5, f64::NAN] {
            let err = Accelerator::builder()
                .fault_rates(FaultRates::uniform(bad))
                .build()
                .unwrap_err();
            assert!(matches!(err, ImscError::Device(_)), "{err:?}");
        }
        assert!(Accelerator::builder()
            .fault_rates(FaultRates::uniform(1.0))
            .build()
            .is_ok());
    }

    fn hot_loop(a: &mut Accelerator, iters: usize) -> Vec<f64> {
        let mut out = Vec::new();
        for i in 0..iters {
            let x = a.encode(Fixed::from_u8(64 + (i % 8) as u8)).unwrap();
            let y = a.encode(Fixed::from_u8(200 - (i % 8) as u8)).unwrap();
            let p = a.multiply(x, y).unwrap();
            out.push(a.read_value(p).unwrap());
            a.release_many(&[x, y, p]).unwrap();
        }
        out
    }

    #[test]
    fn wear_leveling_flattens_writes_without_changing_values() {
        let build = |leveled: bool| {
            Accelerator::builder()
                .stream_len(256)
                .seed(21)
                .stream_rows(24)
                .refresh_policy(RnRefreshPolicy::Explicit)
                .wear_leveling(leveled)
                .build()
                .unwrap()
        };
        let mut lifo = build(false);
        let mut leveled = build(true);
        lifo.refresh_rn_rows().unwrap();
        leveled.refresh_rn_rows().unwrap();
        let v_lifo = hot_loop(&mut lifo, 64);
        let v_leveled = hot_loop(&mut leveled, 64);
        // Row placement never enters the fault-free data path: values and
        // modeled cost are bit-identical across allocators.
        assert_eq!(v_lifo, v_leveled);
        assert_eq!(lifo.ledger(), leveled.ledger());
        let w_lifo = lifo.stream_wear();
        let w_leveled = leveled.stream_wear();
        assert_eq!(w_lifo.total, w_leveled.total);
        // LIFO recycles the same 3 rows forever; leveling rotates all 24.
        assert!(
            w_leveled.max * 2 <= w_lifo.max,
            "leveled max {} vs lifo max {}",
            w_leveled.max,
            w_lifo.max
        );
        assert!(w_leveled.max_mean_ratio() < w_lifo.max_mean_ratio());
    }

    #[test]
    fn wear_leveled_failed_allocations_charge_nothing() {
        let mut a = Accelerator::builder()
            .stream_len(64)
            .seed(22)
            .stream_rows(2)
            .wear_leveling(true)
            .build()
            .unwrap();
        let x = a.encode(Fixed::from_u8(100)).unwrap();
        let y = a.encode(Fixed::from_u8(50)).unwrap();
        let ledger = *a.ledger();
        assert!(matches!(a.multiply(x, y), Err(ImscError::OutOfRows)));
        assert_eq!(*a.ledger(), ledger);
        a.release(x).unwrap();
        assert!(a.multiply(x, y).is_err()); // stale handle stays invalid
    }

    #[test]
    fn wear_summaries_split_rn_and_stream_regions() {
        let mut a = acc(256, 23);
        let x = a.encode(Fixed::from_u8(10)).unwrap();
        let _ = a.read_value(x).unwrap();
        let rn = a.rn_wear();
        let stream = a.stream_wear();
        assert_eq!(rn.rows, a.segment_bits() as usize);
        assert_eq!(stream.rows, 64);
        assert!(rn.max >= 1); // refreshed once by the first encode
        assert!(stream.max >= 1); // the encoded stream landed here
        assert_eq!(a.faults_injected(), 0);
        assert!(a.scout_ops_executed() > 0);
    }
}
