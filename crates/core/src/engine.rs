//! The in-memory SC accelerator: end-to-end ❶→❷→❸ execution.
//!
//! [`Accelerator`] owns a ReRAM array partitioned per Fig. 1(a), a
//! scouting-logic engine (optionally fault-injected), the in-memory TRNG,
//! the IMSNG conversion engine, and the ADC converter. Every operation is
//! executed *in the array* (bulk bitwise over stream rows) and recorded in
//! a [`CostLedger`] — and optionally in an NVMain-style command trace —
//! so accuracy and hardware cost come from the same simulation.
//!
//! Correlation is tracked per stream: streams produced by
//! [`Accelerator::encode`] carry fresh correlation domains (independent RN
//! rows), while [`Accelerator::encode_correlated`] shares one RN
//! realization, as the correlated-input operations (XOR subtraction,
//! CORDIV division, min, max) require. Requesting an operation with the
//! wrong correlation domain is a type error at runtime
//! ([`ImscError::CorrelationMismatch`]), not silent inaccuracy.

use crate::cost::CostLedger;
use crate::error::ImscError;
use crate::imsng::{Imsng, ImsngVariant};
use crate::layout::RowAllocator;
use crate::s2b::StochasticToBinary;
use nvsim::{CmdKind, Command, Trace};
use reram::array::CrossbarArray;
use reram::cell::DeviceParams;
use reram::div::CordivPeriphery;
use reram::faults::FaultRates;
use reram::scouting::{ScoutingLogic, SlOp};
use reram::trng::TrngEngine;
use sc_core::{BitStream, Fixed};
use std::collections::HashMap;

/// A handle to a stochastic stream stored in the accelerator's array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamHandle(usize);

#[derive(Debug, Clone)]
struct StreamSlot {
    row: usize,
    correlation_group: u64,
    alive: bool,
}

/// Builder for [`Accelerator`].
#[derive(Debug, Clone)]
pub struct AcceleratorBuilder {
    stream_len: usize,
    segment_bits: u32,
    variant: ImsngVariant,
    seed: u64,
    fault_rates: FaultRates,
    trng_bias_sigma: f64,
    stream_rows: usize,
    device: DeviceParams,
    record_trace: bool,
}

impl AcceleratorBuilder {
    fn new() -> Self {
        AcceleratorBuilder {
            stream_len: 256,
            segment_bits: 8,
            variant: ImsngVariant::Opt,
            seed: 0,
            fault_rates: FaultRates::none(),
            trng_bias_sigma: 0.04,
            stream_rows: 64,
            device: DeviceParams::default(),
            record_trace: false,
        }
    }

    /// Stochastic bit-stream length `N` (default 256).
    #[must_use]
    pub fn stream_len(mut self, n: usize) -> Self {
        self.stream_len = n;
        self
    }

    /// Comparator segment width `M` (default 8).
    #[must_use]
    pub fn segment_bits(mut self, m: u32) -> Self {
        self.segment_bits = m;
        self
    }

    /// IMSNG implementation variant (default [`ImsngVariant::Opt`]).
    #[must_use]
    pub fn variant(mut self, v: ImsngVariant) -> Self {
        self.variant = v;
        self
    }

    /// Master seed for all stochastic components.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// CIM fault-injection rates (default: fault-free).
    #[must_use]
    pub fn fault_rates(mut self, rates: FaultRates) -> Self {
        self.fault_rates = rates;
        self
    }

    /// Per-cell TRNG bias sigma around the 50% point (default 0.04,
    /// matching device-level fluctuation of read-noise TRNGs).
    #[must_use]
    pub fn trng_bias_sigma(mut self, sigma: f64) -> Self {
        self.trng_bias_sigma = sigma;
        self
    }

    /// Stream rows available in the array (default 64; release handles to
    /// recycle).
    #[must_use]
    pub fn stream_rows(mut self, rows: usize) -> Self {
        self.stream_rows = rows;
        self
    }

    /// Device parameter set (default HfO₂).
    #[must_use]
    pub fn device(mut self, params: DeviceParams) -> Self {
        self.device = params;
        self
    }

    /// Record an NVMain-style command trace of every operation.
    #[must_use]
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Builds the accelerator.
    ///
    /// # Errors
    ///
    /// Returns [`ImscError::InvalidConfig`] for out-of-range dimensions or
    /// [`ImscError::Device`] for invalid device parameters.
    pub fn build(self) -> Result<Accelerator, ImscError> {
        if self.stream_len < 2 {
            return Err(ImscError::InvalidConfig("stream_len must be at least 2"));
        }
        if self.stream_rows < 2 {
            return Err(ImscError::InvalidConfig("stream_rows must be at least 2"));
        }
        if self.trng_bias_sigma < 0.0 || self.trng_bias_sigma >= 0.5 {
            return Err(ImscError::InvalidConfig(
                "trng_bias_sigma must be in [0, 0.5)",
            ));
        }
        self.device.validate()?;
        let imsng = Imsng::new(self.variant, self.segment_bits)?;
        let m = self.segment_bits as usize;
        let total_rows = m + self.stream_rows;
        let array = CrossbarArray::with_params(
            total_rows,
            self.stream_len,
            self.device,
            self.seed ^ 0x5EED_0001,
        );
        let allocator = RowAllocator::new(total_rows, m)?;
        let sl = if self.fault_rates.is_fault_free() {
            ScoutingLogic::ideal()
        } else {
            ScoutingLogic::with_faults(self.fault_rates, self.seed ^ 0x5EED_0002)
        };
        let trng = TrngEngine::new(
            4096.max(self.stream_len),
            self.trng_bias_sigma,
            self.seed ^ 0x5EED_0003,
        );
        let rn_rows = allocator.rn_rows();
        Ok(Accelerator {
            stream_len: self.stream_len,
            imsng,
            array,
            allocator,
            rn_rows,
            sl,
            trng,
            s2b: StochasticToBinary::ideal8(),
            slots: Vec::new(),
            next_group: 0,
            ledger: CostLedger::default(),
            trace: if self.record_trace {
                Some(Trace::new())
            } else {
                None
            },
            cache_enabled: self.fault_rates.is_fault_free(),
            encode_cache: HashMap::new(),
            cache_hits: 0,
        })
    }
}

/// One operation of a batched program for
/// [`Accelerator::execute_many`]. Each variant mirrors the corresponding
/// single-operation method and yields one result handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchOp {
    /// SC multiplication (AND over uncorrelated streams).
    Multiply(StreamHandle, StreamHandle),
    /// MAJ scaled addition over uncorrelated streams.
    ScaledAdd(StreamHandle, StreamHandle),
    /// OR approximate addition over uncorrelated streams.
    ApproxAdd(StreamHandle, StreamHandle),
    /// XOR absolute subtraction over correlated streams.
    AbsSubtract(StreamHandle, StreamHandle),
    /// AND minimum over correlated streams.
    Minimum(StreamHandle, StreamHandle),
    /// OR maximum over correlated streams.
    Maximum(StreamHandle, StreamHandle),
    /// CORDIV division over correlated streams.
    Divide(StreamHandle, StreamHandle),
    /// Inverted-read complement.
    Complement(StreamHandle),
    /// Directed MAJ blend of two correlated streams with an independent
    /// select.
    Blend(StreamHandle, StreamHandle, StreamHandle),
}

/// The all-in-memory stochastic-computing accelerator.
///
/// # Encode cache
///
/// Within one random-number realization (one refresh of the RN rows), an
/// ideal-mode IMSNG conversion is a pure function of the operand: the
/// same operand always produces bit-identical stream rows. The
/// accelerator therefore memoizes conversions per `(operand, RN epoch)`
/// — repeated operands in a correlated batch (e.g. equal neighbouring
/// pixels) replay the cached row with one packed row write instead of
/// re-running the `5·M`-step comparison schedule. Cost accounting records
/// the *modeled* hardware work, which is identical on hit and miss, so
/// ledgers and traces are unaffected by caching. The cache is disabled
/// under fault injection, where every conversion draws fresh faults.
///
/// # Example
///
/// ```
/// use imsc::engine::Accelerator;
/// use sc_core::Fixed;
///
/// # fn main() -> Result<(), imsc::ImscError> {
/// let mut acc = Accelerator::builder().stream_len(512).seed(3).build()?;
/// // |x − y| needs correlated streams: encode them against shared RN rows.
/// let (x, y) = acc.encode_correlated(Fixed::from_u8(200), Fixed::from_u8(72))?;
/// let d = acc.abs_subtract(x, y)?;
/// let v = acc.read_value(d)?;
/// assert!((v - 0.5).abs() < 0.08);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Accelerator {
    stream_len: usize,
    imsng: Imsng,
    array: CrossbarArray,
    allocator: RowAllocator,
    rn_rows: Vec<usize>,
    sl: ScoutingLogic,
    trng: TrngEngine,
    s2b: StochasticToBinary,
    slots: Vec<StreamSlot>,
    next_group: u64,
    ledger: CostLedger,
    trace: Option<Trace>,
    cache_enabled: bool,
    /// Memoized conversions for the current RN realization: the stream
    /// *and* the cost `generate` reported for it, so hit and miss cost
    /// come from the same source of truth.
    encode_cache: HashMap<Fixed, (BitStream, crate::imsng::ImsngCost)>,
    cache_hits: u64,
}

impl Accelerator {
    /// Starts building an accelerator.
    #[must_use]
    pub fn builder() -> AcceleratorBuilder {
        AcceleratorBuilder::new()
    }

    /// The stream length `N`.
    #[must_use]
    pub fn stream_len(&self) -> usize {
        self.stream_len
    }

    /// The comparator segment width `M`.
    #[must_use]
    pub fn segment_bits(&self) -> u32 {
        self.imsng.segment_bits()
    }

    /// The accumulated cost ledger.
    #[must_use]
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// The recorded command trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Stream rows still available before handles must be released.
    #[must_use]
    pub fn available_rows(&self) -> usize {
        self.allocator.available()
    }

    fn fresh_group(&mut self) -> u64 {
        self.next_group += 1;
        self.next_group
    }

    fn record(&mut self, cmd: CmdKind, row: usize) {
        if let Some(t) = self.trace.as_mut() {
            t.push(Command::new(0, row, cmd));
        }
    }

    fn refresh_rn_rows(&mut self) -> Result<(), ImscError> {
        // A new RN realization invalidates all memoized conversions.
        self.encode_cache.clear();
        for i in 0..self.rn_rows.len() {
            let row = self.rn_rows[i];
            self.trng.fill_row(&mut self.array, row)?;
            self.ledger.trng_fills += 1;
            self.record(CmdKind::Write, row);
        }
        Ok(())
    }

    /// Converts `x` into `dest`, replaying a cached stream when the same
    /// operand was already converted under the current RN realization.
    /// Modeled cost is identical either way.
    fn generate_into(&mut self, x: Fixed, dest: usize) -> Result<crate::imsng::ImsngCost, ImscError> {
        let m = self.imsng.segment_bits();
        if self.cache_enabled {
            let key = x.requantize(m)?;
            if let Some((stream, cost)) = self.encode_cache.get(&key) {
                let (stream, cost) = (stream.clone(), *cost);
                self.array.write_row(dest, &stream)?;
                // The modeled hardware still runs the full comparison
                // schedule; keep the scouting-op counter faithful to it.
                self.sl.note_ops(u64::from(m));
                self.cache_hits += 1;
                return Ok(cost);
            }
            let cost =
                self.imsng
                    .generate(&mut self.array, &mut self.sl, &self.rn_rows, x, dest)?;
            let stream = BitStream::from_words(self.array.row_words(dest)?.to_vec(), self.stream_len);
            self.encode_cache.insert(key, (stream, cost));
            Ok(cost)
        } else {
            self.imsng
                .generate(&mut self.array, &mut self.sl, &self.rn_rows, x, dest)
        }
    }

    fn record_imsng(&mut self, dest: usize) {
        let m = self.imsng.segment_bits() as usize;
        for _ in 0..5 * m {
            self.record(CmdKind::ScoutRead { rows: 2 }, 0);
        }
        let writes = match self.imsng.variant() {
            ImsngVariant::Baseline => 4 * m,
            ImsngVariant::Naive => 2 * m,
            ImsngVariant::Opt => 0,
        };
        for _ in 0..writes {
            self.record(CmdKind::Write, dest);
        }
        self.record(CmdKind::Write, dest);
    }

    fn slot(&self, h: StreamHandle) -> Result<&StreamSlot, ImscError> {
        self.slots
            .get(h.0)
            .filter(|s| s.alive)
            .ok_or(ImscError::InvalidHandle(h.0))
    }

    fn new_slot(&mut self, row: usize, group: u64) -> StreamHandle {
        self.slots.push(StreamSlot {
            row,
            correlation_group: group,
            alive: true,
        });
        StreamHandle(self.slots.len() - 1)
    }

    /// Encodes a binary operand into a stochastic stream with a fresh
    /// (independent) correlation domain — step ❶ of the SC flow.
    ///
    /// # Errors
    ///
    /// * [`ImscError::OutOfRows`] — release handles to recycle rows.
    /// * [`ImscError::Device`] / [`ImscError::Stochastic`] — substrate
    ///   failures.
    pub fn encode(&mut self, x: Fixed) -> Result<StreamHandle, ImscError> {
        self.refresh_rn_rows()?;
        let dest = self.allocator.alloc()?;
        match self.generate_into(x, dest) {
            Ok(cost) => {
                self.ledger.imsng.accumulate(&cost);
                self.record_imsng(dest);
                let group = self.fresh_group();
                Ok(self.new_slot(dest, group))
            }
            Err(e) => {
                self.allocator.release(dest);
                Err(e)
            }
        }
    }

    /// Encodes a batch of operands, each in its own fresh correlation
    /// domain (the batched form of [`Accelerator::encode`]). Row and slot
    /// bookkeeping is reserved once for the whole batch.
    ///
    /// # Errors
    ///
    /// Same as [`Accelerator::encode`]; on failure, rows already encoded
    /// by this call are released.
    pub fn encode_many(&mut self, operands: &[Fixed]) -> Result<Vec<StreamHandle>, ImscError> {
        self.slots.reserve(operands.len());
        let mut handles = Vec::with_capacity(operands.len());
        for &x in operands {
            match self.encode(x) {
                Ok(h) => handles.push(h),
                Err(e) => {
                    for h in handles {
                        let _ = self.release(h);
                    }
                    return Err(e);
                }
            }
        }
        Ok(handles)
    }

    /// Encodes two operands against the *same* random-number realization,
    /// yielding maximally correlated streams (required by
    /// [`Accelerator::abs_subtract`], [`Accelerator::divide`],
    /// [`Accelerator::minimum`], [`Accelerator::maximum`]).
    ///
    /// # Errors
    ///
    /// Same as [`Accelerator::encode`].
    pub fn encode_correlated(
        &mut self,
        x: Fixed,
        y: Fixed,
    ) -> Result<(StreamHandle, StreamHandle), ImscError> {
        let handles = self.encode_correlated_many(&[x, y])?;
        Ok((handles[0], handles[1]))
    }

    /// Encodes any number of operands against one shared random-number
    /// realization — all resulting streams are pairwise maximally
    /// correlated (one correlation domain). Bilinear interpolation uses
    /// this for its four neighbouring pixels, matting for `(I, B, F)`.
    ///
    /// # Errors
    ///
    /// Same as [`Accelerator::encode`]; additionally
    /// [`ImscError::InvalidConfig`] for an empty operand list.
    pub fn encode_correlated_many(
        &mut self,
        operands: &[Fixed],
    ) -> Result<Vec<StreamHandle>, ImscError> {
        if operands.is_empty() {
            return Err(ImscError::InvalidConfig(
                "encode_correlated_many needs at least one operand",
            ));
        }
        self.refresh_rn_rows()?;
        let mut dests = Vec::with_capacity(operands.len());
        let mut costs = Vec::with_capacity(operands.len());
        for &op in operands {
            let dest = match self.allocator.alloc() {
                Ok(d) => d,
                Err(e) => {
                    for d in dests {
                        self.allocator.release(d);
                    }
                    return Err(e);
                }
            };
            match self.generate_into(op, dest) {
                Ok(c) => {
                    dests.push(dest);
                    costs.push(c);
                }
                Err(e) => {
                    self.allocator.release(dest);
                    for d in dests {
                        self.allocator.release(d);
                    }
                    return Err(e);
                }
            }
        }
        let group = self.fresh_group();
        let mut handles = Vec::with_capacity(dests.len());
        for (dest, cost) in dests.into_iter().zip(costs) {
            self.ledger.imsng.accumulate(&cost);
            self.record_imsng(dest);
            handles.push(self.new_slot(dest, group));
        }
        Ok(handles)
    }

    /// Scaled blend via a single 3-input majority over *correlated*
    /// operands with an independent select: wherever the operand bits
    /// agree MAJ passes them through, and wherever they differ the select
    /// bit decides — computing exactly
    /// `sel·max(a,b) + (1−sel)·min(a,b)`.
    ///
    /// This is the CIM-friendly MUX replacement of §III-B and the kernel
    /// of compositing / bilinear interpolation (Fig. 3a–b). To realize a
    /// *directed* MUX `sel·a + (1−sel)·b`, feed `sel` when `a ≥ b` and
    /// the complement select when `a < b` — the operand ordering is known
    /// at encode time from the binary values, so this costs nothing
    /// (see `imgproc::compositing`).
    ///
    /// The result stays in `a`/`b`'s correlation domain.
    ///
    /// # Errors
    ///
    /// [`ImscError::CorrelationMismatch`] unless `a`,`b` share a domain
    /// and `sel` is outside it.
    pub fn blend(
        &mut self,
        a: StreamHandle,
        b: StreamHandle,
        sel: StreamHandle,
    ) -> Result<StreamHandle, ImscError> {
        let (ra, ga) = {
            let s = self.slot(a)?;
            (s.row, s.correlation_group)
        };
        let (rb, gb) = {
            let s = self.slot(b)?;
            (s.row, s.correlation_group)
        };
        let (rs, gs) = {
            let s = self.slot(sel)?;
            (s.row, s.correlation_group)
        };
        if ga != gb {
            return Err(ImscError::CorrelationMismatch {
                op: "blend",
                requires_correlated: true,
            });
        }
        if gs == ga {
            return Err(ImscError::CorrelationMismatch {
                op: "blend select",
                requires_correlated: false,
            });
        }
        let result = self
            .sl
            .execute_mut(&mut self.array, SlOp::Maj, &[ra, rb, rs])?;
        self.ledger.sl_single_ops += 1;
        self.record(CmdKind::ScoutRead { rows: 3 }, ra);
        let dest = self.allocator.alloc()?;
        self.array.write_row(dest, &result)?;
        self.ledger.stream_writes += 1;
        self.record(CmdKind::Write, dest);
        Ok(self.new_slot(dest, ga))
    }

    /// Loads an externally produced stream into the array (fresh
    /// correlation domain). Mainly useful for tests and interop.
    ///
    /// # Errors
    ///
    /// * [`ImscError::Stochastic`] — stream length mismatch.
    /// * [`ImscError::OutOfRows`] — array exhausted.
    pub fn load_stream(&mut self, s: &BitStream) -> Result<StreamHandle, ImscError> {
        if s.len() != self.stream_len {
            return Err(ImscError::Stochastic(sc_core::ScError::LengthMismatch {
                left: s.len(),
                right: self.stream_len,
            }));
        }
        let dest = self.allocator.alloc()?;
        self.array.write_row(dest, s)?;
        self.ledger.stream_writes += 1;
        self.record(CmdKind::Write, dest);
        let group = self.fresh_group();
        Ok(self.new_slot(dest, group))
    }

    fn binary_sl_op(
        &mut self,
        op: SlOp,
        a: StreamHandle,
        b: StreamHandle,
        require_correlated: bool,
        op_name: &'static str,
    ) -> Result<StreamHandle, ImscError> {
        let (ra, ga) = {
            let s = self.slot(a)?;
            (s.row, s.correlation_group)
        };
        let (rb, gb) = {
            let s = self.slot(b)?;
            (s.row, s.correlation_group)
        };
        let correlated = ga == gb;
        if correlated != require_correlated {
            return Err(ImscError::CorrelationMismatch {
                op: op_name,
                requires_correlated: require_correlated,
            });
        }
        let result = self.sl.execute_mut(&mut self.array, op, &[ra, rb])?;
        match op {
            SlOp::Xor | SlOp::Xnor => self.ledger.sl_xor_ops += 1,
            _ => self.ledger.sl_single_ops += 1,
        }
        self.record(CmdKind::ScoutRead { rows: 2 }, ra);
        let dest = self.allocator.alloc()?;
        self.array.write_row(dest, &result)?;
        self.ledger.stream_writes += 1;
        self.record(CmdKind::Write, dest);
        // Correlated-input results are threshold/interval tests of the
        // same shared random numbers, so they remain in the operands'
        // correlation domain; uncorrelated-input results get a fresh one.
        let group = if require_correlated {
            ga
        } else {
            self.fresh_group()
        };
        Ok(self.new_slot(dest, group))
    }

    /// SC multiplication `x·y` (AND over uncorrelated streams).
    ///
    /// # Errors
    ///
    /// [`ImscError::CorrelationMismatch`] if the operands share a
    /// correlation domain; substrate errors otherwise.
    pub fn multiply(
        &mut self,
        a: StreamHandle,
        b: StreamHandle,
    ) -> Result<StreamHandle, ImscError> {
        self.binary_sl_op(SlOp::And, a, b, false, "multiply")
    }

    /// CIM-friendly scaled addition `(x + y)/2`: 3-input majority with an
    /// in-memory generated 0.5 select stream (§III-B).
    ///
    /// # Errors
    ///
    /// [`ImscError::CorrelationMismatch`] for correlated operands;
    /// substrate errors otherwise.
    pub fn scaled_add(
        &mut self,
        a: StreamHandle,
        b: StreamHandle,
    ) -> Result<StreamHandle, ImscError> {
        let (ra, ga) = {
            let s = self.slot(a)?;
            (s.row, s.correlation_group)
        };
        let (rb, gb) = {
            let s = self.slot(b)?;
            (s.row, s.correlation_group)
        };
        if ga == gb {
            return Err(ImscError::CorrelationMismatch {
                op: "scaled_add",
                requires_correlated: false,
            });
        }
        // Select stream: a fresh 0.5-probability stream (one IMSNG run).
        let half = Fixed::new(1 << (self.segment_bits() - 1), self.segment_bits())?;
        let sel = self.encode(half)?;
        let rs = self.slot(sel)?.row;
        let result = self
            .sl
            .execute_mut(&mut self.array, SlOp::Maj, &[ra, rb, rs])?;
        self.ledger.sl_single_ops += 1;
        self.record(CmdKind::ScoutRead { rows: 3 }, ra);
        self.release(sel)?;
        let dest = self.allocator.alloc()?;
        self.array.write_row(dest, &result)?;
        self.ledger.stream_writes += 1;
        self.record(CmdKind::Write, dest);
        let group = self.fresh_group();
        Ok(self.new_slot(dest, group))
    }

    /// Approximate (unscaled) addition `≈ x + y` for `x, y ∈ [0, 0.5]`
    /// (OR over uncorrelated streams).
    ///
    /// # Errors
    ///
    /// [`ImscError::CorrelationMismatch`] for correlated operands.
    pub fn approx_add(
        &mut self,
        a: StreamHandle,
        b: StreamHandle,
    ) -> Result<StreamHandle, ImscError> {
        self.binary_sl_op(SlOp::Or, a, b, false, "approx_add")
    }

    /// Absolute subtraction `|x − y|` (XOR over correlated streams).
    ///
    /// # Errors
    ///
    /// [`ImscError::CorrelationMismatch`] for uncorrelated operands.
    pub fn abs_subtract(
        &mut self,
        a: StreamHandle,
        b: StreamHandle,
    ) -> Result<StreamHandle, ImscError> {
        self.binary_sl_op(SlOp::Xor, a, b, true, "abs_subtract")
    }

    /// Minimum `min(x, y)` (AND over correlated streams).
    ///
    /// # Errors
    ///
    /// [`ImscError::CorrelationMismatch`] for uncorrelated operands.
    pub fn minimum(&mut self, a: StreamHandle, b: StreamHandle) -> Result<StreamHandle, ImscError> {
        self.binary_sl_op(SlOp::And, a, b, true, "minimum")
    }

    /// Maximum `max(x, y)` (OR over correlated streams).
    ///
    /// # Errors
    ///
    /// [`ImscError::CorrelationMismatch`] for uncorrelated operands.
    pub fn maximum(&mut self, a: StreamHandle, b: StreamHandle) -> Result<StreamHandle, ImscError> {
        self.binary_sl_op(SlOp::Or, a, b, true, "maximum")
    }

    /// CORDIV division `x / y` for correlated streams with `x ≤ y`,
    /// executed in the periphery latches (no intermediate array writes).
    ///
    /// # Errors
    ///
    /// * [`ImscError::CorrelationMismatch`] — uncorrelated operands.
    /// * [`ImscError::Stochastic`] — all-zero divisor.
    pub fn divide(&mut self, a: StreamHandle, b: StreamHandle) -> Result<StreamHandle, ImscError> {
        let (ra, ga) = {
            let s = self.slot(a)?;
            (s.row, s.correlation_group)
        };
        let (rb, gb) = {
            let s = self.slot(b)?;
            (s.row, s.correlation_group)
        };
        if ga != gb {
            return Err(ImscError::CorrelationMismatch {
                op: "divide",
                requires_correlated: true,
            });
        }
        // Sense both operand rows (faults apply on the sensing path).
        let x = self
            .sl
            .execute_mut(&mut self.array, SlOp::Not, &[ra])?
            .not();
        let y = self
            .sl
            .execute_mut(&mut self.array, SlOp::Not, &[rb])?
            .not();
        self.ledger.sl_single_ops += 2;
        self.record(CmdKind::ScoutRead { rows: 2 }, ra);
        let quotient = CordivPeriphery::new().run(&x, &y)?;
        self.ledger.cordiv_steps += self.stream_len as u64;
        if let Some(t) = self.trace.as_mut() {
            t.push_repeated(Command::new(0, ra, CmdKind::CordivStep), self.stream_len);
        }
        let dest = self.allocator.alloc()?;
        self.array.write_row(dest, &quotient)?;
        self.ledger.stream_writes += 1;
        self.record(CmdKind::Write, dest);
        let group = self.fresh_group();
        Ok(self.new_slot(dest, group))
    }

    /// Complement `1 − x` (inverted read).
    ///
    /// # Errors
    ///
    /// Substrate errors only.
    pub fn complement(&mut self, a: StreamHandle) -> Result<StreamHandle, ImscError> {
        let ra = self.slot(a)?.row;
        let ga = self.slot(a)?.correlation_group;
        let result = self.sl.execute_mut(&mut self.array, SlOp::Not, &[ra])?;
        self.ledger.sl_single_ops += 1;
        self.record(CmdKind::ScoutRead { rows: 2 }, ra);
        let dest = self.allocator.alloc()?;
        self.array.write_row(dest, &result)?;
        self.ledger.stream_writes += 1;
        self.record(CmdKind::Write, dest);
        // The complement is *anti*-correlated with its source; it stays in
        // the same correlation domain so correlated ops remain legal.
        Ok(self.new_slot(dest, ga))
    }

    /// Reads a stream back as a probability estimate via the reference
    /// column and ADC — step ❸.
    ///
    /// # Errors
    ///
    /// Substrate errors only.
    pub fn read_value(&mut self, h: StreamHandle) -> Result<f64, ImscError> {
        let row = self.slot(h)?.row;
        let s = self.array.read_row(row)?;
        self.ledger.adc_samples += 1;
        self.record(CmdKind::AdcSample, row);
        self.s2b.convert_to_prob(&s)
    }

    /// Copies a stream out of the array (diagnostic path; does not model
    /// the ADC).
    ///
    /// # Errors
    ///
    /// Substrate errors only.
    pub fn read_stream(&mut self, h: StreamHandle) -> Result<BitStream, ImscError> {
        let row = self.slot(h)?.row;
        self.ledger.stream_reads += 1;
        Ok(self.array.read_row(row)?)
    }

    /// Executes a whole program of SC operations, yielding one result
    /// handle per [`BatchOp`] — the batched form of the single-operation
    /// methods. Slot storage is reserved once for the batch and the
    /// per-op ledger/trace updates stay cache-hot across the program.
    ///
    /// # Errors
    ///
    /// The first failing operation's error; handles produced by earlier
    /// operations of the batch remain valid (callers can release them).
    pub fn execute_many(&mut self, ops: &[BatchOp]) -> Result<Vec<StreamHandle>, ImscError> {
        self.slots.reserve(ops.len());
        let mut out = Vec::with_capacity(ops.len());
        for &op in ops {
            let h = match op {
                BatchOp::Multiply(a, b) => self.multiply(a, b)?,
                BatchOp::ScaledAdd(a, b) => self.scaled_add(a, b)?,
                BatchOp::ApproxAdd(a, b) => self.approx_add(a, b)?,
                BatchOp::AbsSubtract(a, b) => self.abs_subtract(a, b)?,
                BatchOp::Minimum(a, b) => self.minimum(a, b)?,
                BatchOp::Maximum(a, b) => self.maximum(a, b)?,
                BatchOp::Divide(a, b) => self.divide(a, b)?,
                BatchOp::Complement(a) => self.complement(a)?,
                BatchOp::Blend(a, b, sel) => self.blend(a, b, sel)?,
            };
            out.push(h);
        }
        Ok(out)
    }

    /// Reads several streams back as probability estimates (batched
    /// [`Accelerator::read_value`]).
    ///
    /// # Errors
    ///
    /// Fails on the first invalid handle or substrate error.
    pub fn read_values(&mut self, handles: &[StreamHandle]) -> Result<Vec<f64>, ImscError> {
        handles.iter().map(|&h| self.read_value(h)).collect()
    }

    /// Releases a batch of stream rows (batched [`Accelerator::release`]).
    ///
    /// # Errors
    ///
    /// Fails on the first already-released or foreign handle; remaining
    /// handles are left untouched.
    pub fn release_many(&mut self, handles: &[StreamHandle]) -> Result<(), ImscError> {
        for &h in handles {
            self.release(h)?;
        }
        Ok(())
    }

    /// Conversions served from the encode cache (see the type-level docs).
    #[must_use]
    pub fn encode_cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Releases a stream's row for reuse.
    ///
    /// # Errors
    ///
    /// [`ImscError::InvalidHandle`] if already released or foreign.
    pub fn release(&mut self, h: StreamHandle) -> Result<(), ImscError> {
        let row = {
            let s = self
                .slots
                .get_mut(h.0)
                .filter(|s| s.alive)
                .ok_or(ImscError::InvalidHandle(h.0))?;
            s.alive = false;
            s.row
        };
        self.allocator.release(row);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(n: usize, seed: u64) -> Accelerator {
        Accelerator::builder()
            .stream_len(n)
            .seed(seed)
            .trng_bias_sigma(0.0)
            .build()
            .unwrap()
    }

    #[test]
    fn multiply_uncorrelated_streams() {
        let mut a = acc(4096, 1);
        let x = a.encode(Fixed::from_u8(192)).unwrap();
        let y = a.encode(Fixed::from_u8(128)).unwrap();
        let p = a.multiply(x, y).unwrap();
        let v = a.read_value(p).unwrap();
        assert!((v - 0.375).abs() < 0.04, "{v}");
    }

    #[test]
    fn scaled_add_halves_the_sum() {
        let mut a = acc(4096, 2);
        let x = a.encode(Fixed::from_u8(200)).unwrap();
        let y = a.encode(Fixed::from_u8(56)).unwrap();
        let s = a.scaled_add(x, y).unwrap();
        let v = a.read_value(s).unwrap();
        assert!((v - 0.5).abs() < 0.04, "{v}");
    }

    #[test]
    fn correlated_subtract_min_max_divide() {
        let mut a = acc(4096, 3);
        let (x, y) = a
            .encode_correlated(Fixed::from_u8(60), Fixed::from_u8(180))
            .unwrap();
        let d = a.abs_subtract(x, y).unwrap();
        assert!((a.read_value(d).unwrap() - 120.0 / 256.0).abs() < 0.05);
        let mn = a.minimum(x, y).unwrap();
        assert!((a.read_value(mn).unwrap() - 60.0 / 256.0).abs() < 0.05);
        let mx = a.maximum(x, y).unwrap();
        assert!((a.read_value(mx).unwrap() - 180.0 / 256.0).abs() < 0.05);
        let q = a.divide(x, y).unwrap();
        assert!((a.read_value(q).unwrap() - 60.0 / 180.0).abs() < 0.07);
    }

    #[test]
    fn correlation_domains_are_enforced() {
        let mut a = acc(256, 4);
        let x = a.encode(Fixed::from_u8(100)).unwrap();
        let y = a.encode(Fixed::from_u8(100)).unwrap();
        assert!(matches!(
            a.abs_subtract(x, y),
            Err(ImscError::CorrelationMismatch { .. })
        ));
        let (u, v) = a
            .encode_correlated(Fixed::from_u8(10), Fixed::from_u8(20))
            .unwrap();
        assert!(matches!(
            a.multiply(u, v),
            Err(ImscError::CorrelationMismatch { .. })
        ));
    }

    #[test]
    fn complement_stays_in_domain() {
        let mut a = acc(2048, 5);
        let (x, _y) = a
            .encode_correlated(Fixed::from_u8(64), Fixed::from_u8(160))
            .unwrap();
        let nx = a.complement(x).unwrap();
        let v = a.read_value(nx).unwrap();
        assert!((v - 0.75).abs() < 0.03, "{v}");
        // ¬x shares x's correlation domain, so correlated ops are legal —
        // and AND(¬x, x) is exactly the empty overlap.
        let z = a.minimum(nx, x).unwrap();
        assert!(a.read_value(z).unwrap() < 0.01);
    }

    #[test]
    fn rows_are_recycled_after_release() {
        let mut a = Accelerator::builder()
            .stream_len(64)
            .stream_rows(4)
            .seed(6)
            .build()
            .unwrap();
        for _ in 0..16 {
            let h = a.encode(Fixed::from_u8(1)).unwrap();
            a.release(h).unwrap();
        }
        assert_eq!(a.available_rows(), 4);
        let h = a.encode(Fixed::from_u8(1)).unwrap();
        assert!(matches!(
            a.read_value(StreamHandle(0)),
            Err(ImscError::InvalidHandle(0))
        ));
        let _ = h;
    }

    #[test]
    fn out_of_rows_is_reported() {
        let mut a = Accelerator::builder()
            .stream_len(64)
            .stream_rows(2)
            .seed(7)
            .build()
            .unwrap();
        let _x = a.encode(Fixed::from_u8(9)).unwrap();
        let _y = a.encode(Fixed::from_u8(9)).unwrap();
        assert!(matches!(
            a.encode(Fixed::from_u8(9)),
            Err(ImscError::OutOfRows)
        ));
    }

    #[test]
    fn ledger_tracks_the_flow() {
        let mut a = acc(256, 8);
        let x = a.encode(Fixed::from_u8(50)).unwrap();
        let y = a.encode(Fixed::from_u8(70)).unwrap();
        let p = a.multiply(x, y).unwrap();
        let _ = a.read_value(p).unwrap();
        let l = a.ledger();
        assert_eq!(l.imsng.sense_ops, 80); // two conversions × 5·8
        assert_eq!(l.sl_single_ops, 1);
        assert_eq!(l.adc_samples, 1);
        assert_eq!(l.stream_writes, 1);
        assert_eq!(l.trng_fills, 16);
    }

    #[test]
    fn trace_recording_matches_ledger() {
        let mut a = Accelerator::builder()
            .stream_len(256)
            .seed(9)
            .record_trace(true)
            .build()
            .unwrap();
        let x = a.encode(Fixed::from_u8(100)).unwrap();
        let _ = a.read_value(x).unwrap();
        let trace = a.trace().unwrap();
        let scouts = trace
            .commands()
            .iter()
            .filter(|c| matches!(c.kind, CmdKind::ScoutRead { .. }))
            .count();
        assert_eq!(scouts, 40);
        let adcs = trace
            .commands()
            .iter()
            .filter(|c| c.kind == CmdKind::AdcSample)
            .count();
        assert_eq!(adcs, 1);
    }

    #[test]
    fn faulty_accelerator_still_tracks_values() {
        let mut a = Accelerator::builder()
            .stream_len(1024)
            .seed(10)
            .fault_rates(FaultRates::uniform(0.02))
            .build()
            .unwrap();
        let x = a.encode(Fixed::from_u8(128)).unwrap();
        let y = a.encode(Fixed::from_u8(128)).unwrap();
        let p = a.multiply(x, y).unwrap();
        let v = a.read_value(p).unwrap();
        assert!((v - 0.25).abs() < 0.08, "{v}");
    }

    #[test]
    fn divide_rejects_zero_divisor() {
        let mut a = acc(128, 11);
        let (x, y) = a
            .encode_correlated(Fixed::from_u8(0), Fixed::from_u8(0))
            .unwrap();
        assert!(a.divide(x, y).is_err());
    }

    #[test]
    fn invalid_builder_configs() {
        assert!(Accelerator::builder().stream_len(1).build().is_err());
        assert!(Accelerator::builder().stream_rows(1).build().is_err());
        assert!(Accelerator::builder().trng_bias_sigma(0.6).build().is_err());
        assert!(Accelerator::builder().segment_bits(0).build().is_err());
    }
}
