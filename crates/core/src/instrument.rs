//! One instrumentation sink for every execution mode.
//!
//! The engine records NVMain-style commands per accelerator
//! ([`crate::engine::AcceleratorBuilder::record_trace`], with
//! [`crate::engine::AcceleratorBuilder::trace_bank`] mapping each array
//! onto its own memory bank). This module stitches those per-array
//! sub-traces into one dispatch-ordered command stream and replays it
//! incrementally through [`nvsim::Simulator`], so eager, per-tile,
//! pipelined, and pipelined-with-retirement execution all produce joules
//! and nanoseconds from the same banked timing/energy model that the
//! analytic [`crate::cost::CostLedger`] approximates.
//!
//! Two invariants make the cross-check exact:
//!
//! * [`replay_config`] derives the simulator's timing/energy table from
//!   the same [`ReramCosts::calibrated`] constants the ledger uses
//!   (sensing = scout step, activation folded into the step as the
//!   substrate's `t_activate_ns = 0` says), so
//!   [`CostLedger::replay_latency_ns`] / [`CostLedger::replay_energy_nj`]
//!   mirror the replay arithmetic exactly — agreement validates the
//!   *plumbing* (no dropped or invented commands), not shared constants
//!   by accident.
//! * Sub-traces are drained out of each accelerator at schedule
//!   boundaries ([`crate::engine::Accelerator::take_trace`]) and fed
//!   through a bounded reorder buffer, so whole-frame programs never
//!   materialize one giant command vector
//!   ([`ReplaySummary::peak_buffered_commands`] pins the bound).

use crate::cost::CostLedger;
use nvsim::energy::EnergyParams;
use nvsim::timing::TimingParams;
use nvsim::{MemoryConfig, SimError, Simulator, Trace};
use reram::energy::ReramCosts;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Banks in the replay memory model (arrays map onto banks modulo this).
pub const REPLAY_BANKS: usize = 8;

/// The replay memory configuration derived from the calibrated ReRAM
/// substrate table for `stream_len`-bit rows.
///
/// Activation/precharge windows and energies are zero because the
/// substrate folds wordline charging into each sensing step
/// (`t_activate_ns = 0` in [`ReramCosts::calibrated`]); row-buffer
/// hits/misses therefore stay pure locality counters while latency and
/// energy mirror the analytic table exactly.
#[must_use]
pub fn replay_config(stream_len: usize) -> MemoryConfig {
    let costs = ReramCosts::calibrated();
    let t = &costs.timings;
    let e = &costs.energies;
    MemoryConfig {
        banks: REPLAY_BANKS,
        rows_per_bank: 1024,
        row_width_bits: stream_len,
        timing: TimingParams {
            t_rcd: t.t_activate_ns,
            t_rp: 0.0,
            t_read: t.t_sense_ns,
            t_write: t.t_write_ns,
            t_scout: t.t_sense_ns,
            t_adc: t.t_adc_ns,
            t_cordiv: t.t_cordiv_step_ns,
        },
        energy: EnergyParams {
            e_activate_nj: 0.0,
            e_precharge_nj: 0.0,
            e_read_bit_pj: e.e_sense_bit_pj,
            e_write_bit_pj: e.e_write_bit_pj,
            e_scout_bit_pj: e.e_sense_bit_pj,
            e_adc_nj: e.e_adc_sample_nj,
            e_cordiv_pj: e.e_cordiv_step_pj,
        },
    }
}

/// Aggregate result of replaying one stitched command stream. `Copy` so
/// run statistics can carry it by value.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReplaySummary {
    /// Replayed energy in nanojoules.
    pub energy_nj: f64,
    /// Bank-parallel makespan of the stream in nanoseconds (time the
    /// last command retires).
    pub time_ns: f64,
    /// Serial busy time: the sum of per-command latencies over all
    /// banks. This is the quantity
    /// [`CostLedger::replay_latency_ns`] mirrors exactly.
    pub busy_ns: f64,
    /// Commands replayed.
    pub commands: u64,
    /// Row-buffer hits across banks (encode-run coalescing shows up
    /// here: batched IMSNG dispatches re-assert segment rows).
    pub row_hits: u64,
    /// Row-buffer misses across banks.
    pub row_misses: u64,
    /// Banks that executed at least one command.
    pub banks_used: usize,
    /// Peak number of commands resident in the sink's reorder buffer —
    /// the memory bound of streaming replay. Stays at one sub-trace
    /// (not the whole frame) when producers drain per slice.
    pub peak_buffered_commands: u64,
}

impl ReplaySummary {
    /// Relative disagreement between the replayed serial busy time and
    /// the ledger's exact replay mirror (0 on perfect agreement).
    #[must_use]
    pub fn busy_vs_ledger(&self, ledger: &CostLedger, costs: &ReramCosts) -> f64 {
        relative_gap(self.busy_ns, ledger.replay_latency_ns(costs))
    }

    /// Relative disagreement between the replayed energy and the
    /// ledger's exact replay mirror (0 on perfect agreement).
    #[must_use]
    pub fn energy_vs_ledger(&self, ledger: &CostLedger, costs: &ReramCosts, width: usize) -> f64 {
        relative_gap(self.energy_nj, ledger.replay_energy_nj(costs, width))
    }
}

/// |a − b| / max(|a|, |b|, 1) — a symmetric relative gap that is well
/// defined at zero.
#[must_use]
pub fn relative_gap(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

/// Streams dispatch-ordered sub-traces through an incremental
/// [`Simulator`] session.
///
/// Producers hand over sub-traces tagged with a dispatch sequence
/// number ([`TraceSink::accept`]); out-of-order arrivals (parallel
/// per-tile workers) wait in a reorder buffer and are fed to the
/// simulator as soon as the sequence is contiguous, keeping peak memory
/// at a few sub-traces instead of the whole frame.
#[derive(Debug)]
pub struct TraceSink {
    sim: Simulator,
    next_seq: usize,
    reorder: BTreeMap<usize, Trace>,
    buffered_commands: u64,
    peak_buffered_commands: u64,
    commands: u64,
    collected: Option<Trace>,
    error: Option<SimError>,
}

impl TraceSink {
    /// Creates a sink replaying into a fresh simulator session.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for a malformed memory configuration.
    pub fn new(config: MemoryConfig) -> Result<Self, SimError> {
        let mut sim = Simulator::new(config);
        sim.begin()?;
        Ok(TraceSink {
            sim,
            next_seq: 0,
            reorder: BTreeMap::new(),
            buffered_commands: 0,
            peak_buffered_commands: 0,
            commands: 0,
            collected: None,
            error: None,
        })
    }

    /// As [`TraceSink::new`], additionally retaining the stitched trace
    /// for export ([`TraceSink::collected`]). Collection defeats the
    /// streaming memory bound; use it for diagnostics and small runs.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for a malformed memory configuration.
    pub fn collecting(config: MemoryConfig) -> Result<Self, SimError> {
        let mut sink = TraceSink::new(config)?;
        sink.collected = Some(Trace::new());
        Ok(sink)
    }

    /// The next dispatch sequence number the sink will replay.
    #[must_use]
    pub fn next_seq(&self) -> usize {
        self.next_seq
    }

    /// Accepts the sub-trace for dispatch slot `seq` (each slot is
    /// consumed exactly once; empty traces are fine and keep the
    /// sequence moving). Replays immediately when contiguous, otherwise
    /// holds the sub-trace until the gap fills.
    pub fn accept(&mut self, seq: usize, trace: Trace) {
        self.buffered_commands += trace.len() as u64;
        self.reorder.insert(seq, trace);
        self.peak_buffered_commands = self.peak_buffered_commands.max(self.buffered_commands);
        while let Some(t) = self.reorder.remove(&self.next_seq) {
            self.next_seq += 1;
            self.buffered_commands -= t.len() as u64;
            self.feed(&t);
        }
    }

    /// Drains an accelerator's recorded trace into the next dispatch
    /// slot — the eager-mode entry point (call after each program or at
    /// operation boundaries of your choice). A no-op when the
    /// accelerator does not record traces.
    pub fn ingest(&mut self, acc: &mut crate::engine::Accelerator) {
        if let Some(t) = acc.take_trace() {
            let seq = self
                .next_seq
                .max(self.reorder.keys().next_back().map_or(0, |k| k + 1));
            self.accept(seq, t);
        }
    }

    fn feed(&mut self, trace: &Trace) {
        if self.error.is_some() {
            return;
        }
        self.commands += trace.len() as u64;
        if let Some(c) = self.collected.as_mut() {
            c.extend_from(trace);
        }
        if let Err(e) = self.sim.feed(trace.commands()) {
            self.error = Some(e);
        }
    }

    /// The stitched trace, when the sink was built with
    /// [`TraceSink::collecting`] (only the contiguously replayed prefix).
    #[must_use]
    pub fn collected(&self) -> Option<&Trace> {
        self.collected.as_ref()
    }

    /// Closes the session and returns the replay summary. Sub-traces
    /// still waiting behind sequence gaps (a producer skipped a slot)
    /// are flushed in sequence order first.
    ///
    /// # Errors
    ///
    /// The first addressing error any sub-trace produced
    /// ([`SimError::BankOutOfRange`] / [`SimError::RowOutOfRange`]).
    pub fn finish(mut self) -> Result<ReplaySummary, SimError> {
        let remaining = std::mem::take(&mut self.reorder);
        for (_, t) in remaining {
            self.feed(&t);
        }
        if let Some(e) = self.error {
            return Err(e);
        }
        let stats = self.sim.finish();
        Ok(ReplaySummary {
            energy_nj: stats.total_energy_nj,
            time_ns: stats.total_time_ns,
            busy_ns: stats.busy_ns,
            commands: self.commands,
            row_hits: stats.row_hits,
            row_misses: stats.row_misses,
            banks_used: stats.banks_used(),
            peak_buffered_commands: self.peak_buffered_commands,
        })
    }
}

/// A clonable, thread-safe handle to one [`TraceSink`] — the form the
/// schedulers and parallel tile workers share.
#[derive(Debug, Clone)]
pub struct SinkHandle {
    inner: Arc<Mutex<TraceSink>>,
}

impl SinkHandle {
    /// Wraps a sink for shared use.
    #[must_use]
    pub fn new(sink: TraceSink) -> Self {
        SinkHandle {
            inner: Arc::new(Mutex::new(sink)),
        }
    }

    /// Builds a sink over [`replay_config`] for `stream_len`-bit rows.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for a malformed configuration.
    pub fn for_stream_len(stream_len: usize) -> Result<Self, SimError> {
        Ok(SinkHandle::new(TraceSink::new(replay_config(stream_len))?))
    }

    /// Accepts the sub-trace for dispatch slot `seq` (see
    /// [`TraceSink::accept`]).
    pub fn accept(&self, seq: usize, trace: Trace) {
        self.lock().accept(seq, trace);
    }

    /// Drains an accelerator's recorded trace into dispatch slot `seq`.
    /// A no-op when the accelerator does not record traces.
    pub fn drain_into(&self, seq: usize, acc: &mut crate::engine::Accelerator) {
        if let Some(t) = acc.take_trace() {
            self.accept(seq, t);
        }
    }

    /// Closes the session and returns the replay summary. Meaningful
    /// once per run; later calls see an empty follow-up session.
    ///
    /// # Errors
    ///
    /// See [`TraceSink::finish`].
    pub fn finish(&self) -> Result<ReplaySummary, SimError> {
        let mut guard = self.lock();
        let config = *guard.sim.config();
        let fresh = TraceSink::new(config).expect("validated config");
        std::mem::replace(&mut *guard, fresh).finish()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceSink> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim::{CmdKind, Command};

    fn trace_of(bank: usize, rows: &[usize]) -> Trace {
        rows.iter()
            .map(|&r| Command::new(bank, r, CmdKind::Write))
            .collect()
    }

    #[test]
    fn replay_config_mirrors_the_calibration_table() {
        let costs = ReramCosts::calibrated();
        let cfg = replay_config(256);
        assert_eq!(cfg.banks, REPLAY_BANKS);
        assert_eq!(cfg.row_width_bits, 256);
        assert!((cfg.timing.t_scout - costs.timings.t_sense_ns).abs() < 1e-12);
        assert!((cfg.timing.t_write - costs.timings.t_write_ns).abs() < 1e-12);
        assert_eq!(cfg.timing.t_rcd, 0.0);
        assert_eq!(cfg.energy.e_activate_nj, 0.0);
        assert!((cfg.energy.e_scout_bit_pj - costs.energies.e_sense_bit_pj).abs() < 1e-12);
        cfg.validate().unwrap();
    }

    #[test]
    fn out_of_order_subtraces_replay_in_dispatch_order() {
        let config = replay_config(64);
        // In-order reference.
        let mut reference = TraceSink::new(config).unwrap();
        reference.accept(0, trace_of(0, &[1, 2]));
        reference.accept(1, trace_of(0, &[2, 2]));
        reference.accept(2, trace_of(1, &[5]));
        let expect = reference.finish().unwrap();

        let mut sink = TraceSink::new(config).unwrap();
        sink.accept(2, trace_of(1, &[5]));
        sink.accept(0, trace_of(0, &[1, 2]));
        assert_eq!(sink.next_seq(), 1);
        sink.accept(1, trace_of(0, &[2, 2]));
        let got = sink.finish().unwrap();
        assert_eq!(got.commands, expect.commands);
        assert_eq!(got.row_hits, expect.row_hits);
        assert!((got.busy_ns - expect.busy_ns).abs() < 1e-9);
        assert!((got.energy_nj - expect.energy_nj).abs() < 1e-12);
        // The out-of-order arrival was buffered: one command waited.
        assert_eq!(got.peak_buffered_commands, 3);
        assert_eq!(expect.peak_buffered_commands, 2);
    }

    #[test]
    fn gaps_are_flushed_at_finish() {
        let mut sink = TraceSink::new(replay_config(64)).unwrap();
        sink.accept(0, trace_of(0, &[1]));
        sink.accept(2, trace_of(0, &[3])); // seq 1 never arrives
        let got = sink.finish().unwrap();
        assert_eq!(got.commands, 2);
    }

    #[test]
    fn addressing_errors_surface_at_finish() {
        let mut sink = TraceSink::new(replay_config(64)).unwrap();
        sink.accept(0, trace_of(REPLAY_BANKS + 3, &[0]));
        assert!(matches!(
            sink.finish(),
            Err(SimError::BankOutOfRange { .. })
        ));
    }

    #[test]
    fn collecting_sink_keeps_the_stitched_trace() {
        let mut sink = TraceSink::collecting(replay_config(64)).unwrap();
        sink.accept(1, trace_of(0, &[9]));
        sink.accept(0, trace_of(0, &[4]));
        let stitched = sink.collected().unwrap();
        assert_eq!(stitched.len(), 2);
        assert_eq!(stitched.commands()[0].row, 4);
        assert_eq!(stitched.commands()[1].row, 9);
    }

    #[test]
    fn shared_handle_round_trips() {
        let handle = SinkHandle::for_stream_len(64).unwrap();
        handle.accept(0, trace_of(0, &[1, 1, 1]));
        let s = handle.finish().unwrap();
        assert_eq!(s.commands, 3);
        assert_eq!(s.row_hits, 2);
        assert_eq!(s.banks_used, 1);
    }
}
