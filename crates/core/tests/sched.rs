//! Differential tests for the cross-array pipeline scheduler: the
//! measured initiation interval must sit in a tolerance band around the
//! analytic `PipelineModel::bottleneck_ns`, and pipelined execution must
//! be observationally identical to executing the same slices one by one.

use imsc::cost::ScOperation;
use imsc::engine::Accelerator;
use imsc::pipeline::PipelineModel;
use imsc::program::sched::{self, PipelineScheduler, RetirementPolicy};
use imsc::program::Program;
use imsc::{ExecArena, ImscError, ImsngVariant};
use reram::energy::ReramCosts;
use reram::faults::FaultRates;
use sc_core::Fixed;

const N: usize = 256;
const M: u32 = 8;

/// Relative tolerance between the scheduler's ledger-derived initiation
/// interval and the analytic stage model. The ledger charges a handful
/// of real-execution extras the closed-form model abstracts away (the
/// result-row write after an arithmetic op, the sense steps of CORDIV's
/// divisor scouting), so the band is deliberately wider than measurement
/// noise — but far tighter than any cross-stage confusion would allow.
const II_TOLERANCE: f64 = 0.25;

fn build(seed: u64) -> Result<Accelerator, ImscError> {
    Accelerator::builder()
        .stream_len(N)
        .segment_bits(M)
        .seed(seed)
        .build()
}

/// `wavefronts` independent encode→complement→read chains: stage ❶ is a
/// single conversion per wavefront, exactly the shape the analytic model
/// prices for the simple ops.
fn sng_bound_program(wavefronts: usize) -> Program {
    let mut p = Program::new();
    for i in 0..wavefronts {
        let x = p.encode(Fixed::from_u8(10 + (i % 200) as u8));
        let y = p.complement(x);
        p.read(y);
    }
    p
}

/// `wavefronts` CORDIV divisions: stage ❷ dominates by two orders of
/// magnitude (n · t_cordiv).
fn division_bound_program(wavefronts: usize) -> Program {
    let mut p = Program::new();
    for i in 0..wavefronts {
        let pair =
            p.encode_correlated(&[Fixed::from_u8(40 + (i % 100) as u8), Fixed::from_u8(200)]);
        let q = p.divide(pair[0], pair[1]);
        p.read(q);
    }
    p
}

#[test]
fn measured_ii_tracks_the_analytic_bottleneck_for_sng_bound_programs() {
    let program = sng_bound_program(24);
    let slices = sched::partition_into(&program, 6).unwrap();
    let run = PipelineScheduler::new(4)
        .run(&slices, |i| build(100 + i as u64))
        .unwrap();
    let report = run.report;
    assert_eq!(report.wavefronts, 24);

    let model = PipelineModel::new(4, M, ImsngVariant::Opt, ReramCosts::calibrated());
    let analytic = model.stages(ScOperation::Multiply, N).bottleneck_ns();
    let measured = report.initiation_interval_ns;
    let rel = (measured - analytic).abs() / analytic;
    assert!(
        rel < II_TOLERANCE,
        "measured II {measured} vs analytic bottleneck {analytic} (rel {rel})"
    );

    // SBS generation is the bottleneck stage, exactly as in Fig. 5's
    // simple-op columns, and the steady-state II equals its latency.
    let occ = report.stage_occupancy();
    assert!(occ[0] > occ[1] && occ[0] > occ[2], "occupancy {occ:?}");
    let per_wf_sbs = report.stage_busy_ns[0] / report.wavefronts as f64;
    assert!((measured - per_wf_sbs).abs() < 1e-6);

    // Aggregate throughput scales with arrays, as in the analytic model.
    assert!((report.throughput_ops_per_us() - 4.0 * 1000.0 / measured).abs() < 1e-9);
    assert!(report.pipeline_speedup() > 1.0);
}

#[test]
fn measured_ii_tracks_the_analytic_bottleneck_for_division_bound_programs() {
    let program = division_bound_program(10);
    let slices = sched::partition_into(&program, 5).unwrap();
    let run = PipelineScheduler::new(2)
        .run(&slices, |i| build(7 + i as u64))
        .unwrap();
    let report = run.report;

    let model = PipelineModel::new(2, M, ImsngVariant::Opt, ReramCosts::calibrated());
    let analytic = model.stages(ScOperation::Division, N).bottleneck_ns();
    let measured = report.initiation_interval_ns;
    let rel = (measured - analytic).abs() / analytic;
    assert!(
        rel < II_TOLERANCE,
        "measured II {measured} vs analytic bottleneck {analytic} (rel {rel})"
    );
    let occ = report.stage_occupancy();
    assert!(occ[1] > occ[0] && occ[1] > occ[2], "occupancy {occ:?}");
}

#[test]
fn pipelined_run_is_identical_to_per_slice_execution() {
    // A mixed program exercising every stage shape the kernels emit:
    // correlated encodes, blends with interior selects, divisions with
    // fallbacks, constant outputs.
    let mut p = Program::new();
    for i in 0..12u8 {
        let ops = p.encode_correlated(&[Fixed::from_u8(30 + 10 * (i % 4)), Fixed::from_u8(90 + i)]);
        p.next_group();
        let sel = p.encode(Fixed::from_u8(128));
        let blended = p.blend(ops[0], ops[1], sel);
        p.read(blended);
        if i % 3 == 0 {
            p.read_const(f64::from(i) / 16.0);
        }
    }
    let slices = sched::partition_into(&p, 4).unwrap();
    assert_eq!(slices.len(), 4);

    let run = PipelineScheduler::new(3)
        .run(&slices, |i| build(55 + i as u64))
        .unwrap();

    for (i, (slice, got)) in slices.iter().zip(&run.slices).enumerate() {
        let mut reference = build(55 + i as u64).unwrap();
        let want = slice.run_on(&mut reference).unwrap();
        assert_eq!(got.outputs, want, "slice {i} outputs");
        assert_eq!(&got.ledger, reference.ledger(), "slice {i} ledger");
        assert_eq!(got.rn_epochs, reference.rn_epoch(), "slice {i} epochs");
        assert_eq!(
            got.cache_hits,
            reference.encode_cache_hits(),
            "slice {i} cache hits"
        );
    }
}

fn build_with_rates(seed: u64, rates: FaultRates) -> Result<Accelerator, ImscError> {
    Accelerator::builder()
        .stream_len(N)
        .segment_bits(M)
        .seed(seed)
        .fault_rates(rates)
        .build()
}

/// A factory for a three-array farm where array 1 injects heavy bit
/// flips and the others are clean; the seed depends only on the slice,
/// so any clean array produces bit-identical results for it.
fn lopsided_farm(slice: usize, array: usize) -> Result<Accelerator, ImscError> {
    let rates = if array == 1 {
        FaultRates::uniform(0.05)
    } else {
        FaultRates::none()
    };
    build_with_rates(300 + slice as u64, rates)
}

#[test]
fn retirement_replaces_the_pathological_array() {
    let program = sng_bound_program(18);
    let slices = sched::partition_into(&program, 9).unwrap();
    let policy = RetirementPolicy {
        max_faults_per_op: 0.5,
        min_ops: 16,
    };
    let domain = PipelineScheduler::new(3)
        .run_with_domains(&slices, lopsided_farm, policy)
        .unwrap();

    assert!(domain.health[1].retired, "{:?}", domain.health);
    assert!(!domain.health[0].retired && !domain.health[2].retired);
    assert!(domain.health[1].fault_rate() > policy.max_faults_per_op);
    assert_eq!(domain.run.report.retired_arrays, 1);
    assert!(domain.run.report.rescheduled_slices >= 1);

    // Every kept result came from a clean array — the bad array's
    // contributions were discarded and re-run on survivors...
    assert_eq!(domain.assignments.len(), slices.len());
    assert!(domain.assignments.iter().all(|&a| a != 1));
    assert_eq!(
        domain.health.iter().map(|h| h.slices_run).sum::<usize>(),
        slices.len()
    );
    // ...so the outputs are bit-identical to fault-free per-slice
    // execution: retirement is lossless on a farm with clean survivors.
    for (i, (slice, got)) in slices.iter().zip(&domain.run.slices).enumerate() {
        let mut clean = build_with_rates(300 + i as u64, FaultRates::none()).unwrap();
        let want = slice.run_on(&mut clean).unwrap();
        assert_eq!(got.outputs, want, "slice {i}");
        assert_eq!(got.faults_injected, 0, "slice {i} kept a faulty result");
    }
}

#[test]
fn retirement_is_deterministic() {
    let program = sng_bound_program(12);
    let slices = sched::partition_into(&program, 6).unwrap();
    let policy = RetirementPolicy {
        max_faults_per_op: 0.5,
        min_ops: 16,
    };
    let a = PipelineScheduler::new(3)
        .run_with_domains(&slices, lopsided_farm, policy)
        .unwrap();
    let b = PipelineScheduler::new(3)
        .run_with_domains(&slices, lopsided_farm, policy)
        .unwrap();
    assert_eq!(a.health, b.health);
    assert_eq!(a.assignments, b.assignments);
    for (x, y) in a.run.slices.iter().zip(&b.run.slices) {
        assert_eq!(x.outputs, y.outputs);
        assert_eq!(x.stream_wear, y.stream_wear);
    }
}

#[test]
fn a_fault_free_domain_run_matches_the_plain_scheduler() {
    let program = division_bound_program(8);
    let slices = sched::partition_into(&program, 4).unwrap();
    let plain = PipelineScheduler::new(2)
        .run(&slices, |i| build(70 + i as u64))
        .unwrap();
    let domain = PipelineScheduler::new(2)
        .run_with_domains(
            &slices,
            |slice, _array| build(70 + slice as u64),
            RetirementPolicy::default(),
        )
        .unwrap();
    assert_eq!(domain.run.report.retired_arrays, 0);
    assert_eq!(domain.run.report.rescheduled_slices, 0);
    // Round-robin deal over a healthy farm.
    assert_eq!(domain.assignments, vec![0, 1, 0, 1]);
    for (p, d) in plain.slices.iter().zip(&domain.run.slices) {
        assert_eq!(p.outputs, d.outputs);
        assert_eq!(p.ledger, d.ledger);
    }
}

#[test]
fn retiring_every_array_is_an_error() {
    let program = sng_bound_program(6);
    let slices = sched::partition_into(&program, 3).unwrap();
    let err = PipelineScheduler::new(2)
        .run_with_domains(
            &slices,
            |slice, _array| build_with_rates(slice as u64, FaultRates::uniform(0.05)),
            RetirementPolicy {
                max_faults_per_op: 0.1,
                min_ops: 1,
            },
        )
        .unwrap_err();
    assert!(matches!(err, ImscError::InvalidConfig(m) if m.contains("retired")));
}

#[test]
fn scheduler_reports_the_lowest_indexed_failure() {
    let program = sng_bound_program(8);
    let slices = sched::partition_into(&program, 8).unwrap();
    let err = PipelineScheduler::new(2)
        .run(&slices, |i| {
            if i == 3 {
                Err(ImscError::InvalidConfig("injected factory failure"))
            } else {
                build(i as u64)
            }
        })
        .unwrap_err();
    assert!(matches!(err, ImscError::InvalidConfig(m) if m.contains("injected")));
}

#[test]
fn mid_run_failures_drain_the_pipeline_without_deadlock() {
    // Far more slices than bounded-queue slots, with failures injected
    // at three admission points — one early, two late. The stage
    // workers must drain in-flight wavefronts, release array tokens,
    // and surface the lowest-indexed error instead of hanging on a full
    // queue or a leaked semaphore token. (Under `--features parallel`
    // this exercises the threaded admission loop; without it, the
    // sequential fallback must agree on the error choice.)
    let program = sng_bound_program(32);
    let slices = sched::partition_into(&program, 32).unwrap();
    let err = PipelineScheduler::new(2)
        .run(&slices, |i| {
            if i == 17 || i == 23 {
                Err(ImscError::InvalidConfig("late injected failure"))
            } else if i == 11 {
                Err(ImscError::InvalidConfig("lowest injected failure"))
            } else {
                build(i as u64)
            }
        })
        .unwrap_err();
    assert!(matches!(err, ImscError::InvalidConfig(m) if m.contains("lowest")));
}

#[test]
fn pooled_arena_execution_matches_fresh_allocation() {
    let a = sng_bound_program(3);
    let b = division_bound_program(2);
    let mut arena = ExecArena::new();

    for (seed, prog) in [(1u64, &a), (2, &b), (3, &a)] {
        let mut acc_pooled = build(seed).unwrap();
        let mut acc_fresh = build(seed).unwrap();
        let plan = prog.plan().unwrap();
        let pooled = plan.execute_in(&mut acc_pooled, &mut arena).unwrap();
        let fresh = plan.execute(&mut acc_fresh).unwrap();
        assert_eq!(pooled, fresh);
        assert_eq!(acc_pooled.ledger(), acc_fresh.ledger());
    }
}

#[test]
fn partition_preserves_the_op_stream() {
    let p = division_bound_program(9);
    let slices = sched::partition_into(&p, 4).unwrap();
    let total_ops: usize = slices.iter().map(Program::len).sum();
    let total_outputs: usize = slices.iter().map(Program::outputs).sum();
    let total_regs: usize = slices.iter().map(Program::regs).sum();
    assert_eq!(total_ops, p.len());
    assert_eq!(total_outputs, p.outputs());
    assert_eq!(total_regs, p.regs());
}
