//! Program/Planner lowering tests: the declarative layer must be
//! observationally identical to driving the [`Accelerator`] imperatively
//! — values, cost ledger, command trace (including row assignment), and
//! RN epochs — while adding lifetime-aware row allocation.

use imsc::engine::Accelerator;
use imsc::program::Program;
use imsc::{ImscError, RnRefreshPolicy};
use nvsim::CmdKind;
use sc_core::{Fixed, ScError};

fn builder(seed: u64) -> imsc::AcceleratorBuilder {
    Accelerator::builder()
        .stream_len(256)
        .seed(seed)
        .record_trace(true)
}

/// Every command class recorded in the trace must match the ledger's
/// counters exactly (no phantom or missing entries).
fn assert_trace_matches_ledger(a: &Accelerator, context: &str) {
    let l = a.ledger();
    let trace = a.trace().expect("tracing enabled");
    let count = |pred: &dyn Fn(&CmdKind) -> bool| -> u64 {
        trace.commands().iter().filter(|c| pred(&c.kind)).count() as u64
    };
    assert_eq!(
        count(&|k| matches!(k, CmdKind::ScoutRead { .. })),
        l.imsng.sense_ops + l.sl_single_ops + l.sl_xor_ops,
        "{context}: scout reads"
    );
    assert_eq!(
        count(&|k| *k == CmdKind::Write),
        l.trng_fills + l.stream_writes + l.imsng.intermediate_writes + l.imsng.sbs_writes,
        "{context}: writes"
    );
    assert_eq!(
        count(&|k| *k == CmdKind::AdcSample),
        l.adc_samples,
        "{context}: adc samples"
    );
    assert_eq!(
        count(&|k| *k == CmdKind::CordivStep),
        l.cordiv_steps,
        "{context}: cordiv steps"
    );
}

/// One program exercising every op variant, plus its imperative mirror
/// (same call sequence, operands released in the planner's order: right
/// after their last use, ascending register index). The two runs must be
/// indistinguishable — including row-level trace equality, i.e. the
/// planner's register allocation is exactly eager last-use release.
#[test]
fn lowering_matches_imperative_mirror_bit_exactly() {
    let mut p = Program::new();
    let a = p.encode(Fixed::from_u8(96));
    let b = p.encode(Fixed::from_u8(160)); // coalesces with `a`
    let m = p.multiply(a, b);
    let c = p.encode(Fixed::from_u8(40));
    let sa = p.scaled_add(m, c);
    let e = p.encode(Fixed::from_u8(50));
    let aa = p.approx_add(sa, e);
    let xy = p.encode_correlated(&[Fixed::from_u8(60), Fixed::from_u8(180)]);
    let (x, y) = (xy[0], xy[1]);
    let d = p.abs_subtract(x, y);
    let mn = p.minimum(x, y);
    let mx = p.maximum(x, y);
    let s = p.trng_select();
    let bl = p.blend(mn, mx, s);
    let q = p.divide(mn, mx);
    let cq = p.complement(q);
    let _ = p.read(aa);
    let _ = p.read(d);
    let _ = p.read(bl);
    let _ = p.read(cq);
    let _ = p.read_const(0.25);

    let mut planned = builder(7).build().unwrap();
    let got = p.run_on(&mut planned).unwrap();

    let mut acc = builder(7).build().unwrap();
    let mut want = Vec::new();
    {
        let hs = acc
            .encode_many(&[Fixed::from_u8(96), Fixed::from_u8(160)])
            .unwrap();
        let (ha, hb) = (hs[0], hs[1]);
        let hm = acc.multiply(ha, hb).unwrap();
        acc.release(ha).unwrap();
        acc.release(hb).unwrap();
        let hc = acc.encode(Fixed::from_u8(40)).unwrap();
        let hsa = acc.scaled_add(hm, hc).unwrap();
        acc.release(hm).unwrap();
        acc.release(hc).unwrap();
        let he = acc.encode(Fixed::from_u8(50)).unwrap();
        let haa = acc.approx_add(hsa, he).unwrap();
        acc.release(hsa).unwrap();
        acc.release(he).unwrap();
        let hxy = acc
            .encode_correlated(Fixed::from_u8(60), Fixed::from_u8(180))
            .unwrap();
        let (hx, hy) = hxy;
        let hd = acc.abs_subtract(hx, hy).unwrap();
        let hmn = acc.minimum(hx, hy).unwrap();
        let hmx = acc.maximum(hx, hy).unwrap();
        acc.release(hx).unwrap();
        acc.release(hy).unwrap();
        let hs = acc.trng_select().unwrap();
        let hbl = acc.blend(hmn, hmx, hs).unwrap();
        acc.release(hs).unwrap();
        let hq = acc.divide(hmn, hmx).unwrap();
        acc.release(hmn).unwrap();
        acc.release(hmx).unwrap();
        let hcq = acc.complement(hq).unwrap();
        acc.release(hq).unwrap();
        want.push(acc.read_value(haa).unwrap());
        acc.release(haa).unwrap();
        want.push(acc.read_value(hd).unwrap());
        acc.release(hd).unwrap();
        want.push(acc.read_value(hbl).unwrap());
        acc.release(hbl).unwrap();
        want.push(acc.read_value(hcq).unwrap());
        acc.release(hcq).unwrap();
        want.push(0.25);
    }

    assert_eq!(got, want, "output values");
    assert_eq!(planned.ledger(), acc.ledger(), "cost ledger");
    assert_eq!(planned.trace(), acc.trace(), "command trace (incl. rows)");
    assert_eq!(planned.rn_epoch(), acc.rn_epoch(), "rn epochs");
    assert_eq!(
        planned.available_rows(),
        acc.available_rows(),
        "all program rows returned"
    );
    assert_trace_matches_ledger(&planned, "planned run");
}

/// Refresh-group boundaries must reproduce the explicit `refresh_rn_rows`
/// plumbing under `Explicit`, and stay inert under automatic policies.
#[test]
fn refresh_groups_subsume_explicit_plumbing() {
    let emit = |pixels: &[(u8, u8, u8)]| {
        let mut p = Program::new();
        for &(f, b, sel) in pixels {
            let fb = p.encode_correlated(&[Fixed::from_u8(f), Fixed::from_u8(b)]);
            p.next_group();
            let hs = p.encode(Fixed::from_u8(sel));
            let hc = p.blend(fb[0], fb[1], hs);
            p.read(hc);
        }
        p
    };
    let pixels = [(200, 40, 128), (90, 170, 30)];
    let p = emit(&pixels);

    let mut planned = builder(11)
        .refresh_policy(RnRefreshPolicy::Explicit)
        .build()
        .unwrap();
    let got = p.run_on(&mut planned).unwrap();

    let mut acc = builder(11)
        .refresh_policy(RnRefreshPolicy::Explicit)
        .build()
        .unwrap();
    let mut want = Vec::new();
    for &(f, b, sel) in &pixels {
        let (hf, hb) = acc
            .encode_correlated(Fixed::from_u8(f), Fixed::from_u8(b))
            .unwrap();
        acc.refresh_rn_rows().unwrap();
        let hs = acc.encode(Fixed::from_u8(sel)).unwrap();
        let hc = acc.blend(hf, hb, hs).unwrap();
        acc.release(hf).unwrap();
        acc.release(hb).unwrap();
        acc.release(hs).unwrap();
        want.push(acc.read_value(hc).unwrap());
        acc.release(hc).unwrap();
    }
    assert_eq!(got, want);
    assert_eq!(planned.ledger(), acc.ledger());
    assert_eq!(planned.trace(), acc.trace());
    // Initial fill + one boundary refresh per pixel (the next pixel's
    // operand batch deliberately reuses the select's realization).
    assert_eq!(planned.rn_epoch(), 1 + pixels.len() as u64);
    assert_eq!(planned.rn_epoch(), acc.rn_epoch());

    // Under PerEncode the tags are inert: one realization per encode
    // batch, exactly as if no groups had been declared.
    let mut fresh = builder(11).build().unwrap();
    let _ = p.run_on(&mut fresh).unwrap();
    assert_eq!(fresh.rn_epoch(), 4, "two encode batches per pixel");
}

/// The satellite regression: a program whose naive row demand (no early
/// releases) exceeds the array must still run once planned, and a
/// successful run leaves no phantom ledger entries and no leaked rows.
#[test]
fn planned_lifetimes_fit_where_naive_demand_overflows() {
    let stream_rows = 6usize;
    let mut p = Program::new();
    for i in 0..8u8 {
        let a = p.encode(Fixed::from_u8(10 + i));
        let b = p.encode(Fixed::from_u8(200 - i));
        let m = p.multiply(a, b);
        p.read(m);
    }
    let plan = p.plan().unwrap();
    assert_eq!(plan.naive_peak_rows(), 24);
    assert!(
        plan.naive_peak_rows() > stream_rows,
        "naive demand overflows"
    );
    assert_eq!(plan.peak_rows(), 3);
    assert!(plan.peak_rows() <= stream_rows, "planned demand fits");

    let mut acc = builder(13).stream_rows(stream_rows).build().unwrap();
    let out = plan.execute(&mut acc).unwrap();
    assert_eq!(out.len(), 8);
    for v in out {
        assert!((0.0..=1.0).contains(&v));
    }
    assert_eq!(acc.available_rows(), stream_rows, "no leaked rows");
    assert_trace_matches_ledger(&acc, "overflowing naive demand");

    // The same demand *without* planning genuinely overflows.
    let mut naive = builder(13).stream_rows(stream_rows).build().unwrap();
    let mut handles = Vec::new();
    let overflow = (0..8u8).try_for_each(|i| -> Result<(), ImscError> {
        let a = naive.encode(Fixed::from_u8(10 + i))?;
        handles.push(a);
        let b = naive.encode(Fixed::from_u8(200 - i))?;
        handles.push(b);
        handles.push(naive.multiply(a, b)?);
        Ok(())
    });
    assert!(matches!(overflow, Err(ImscError::OutOfRows)));
}

/// `divide_or` turns a stochastic all-zero divisor into a constant
/// output instead of failing the program; the failed division's sense
/// reads stay charged, nothing else does.
#[test]
fn divide_or_poisons_instead_of_failing() {
    let mut p = Program::new();
    let xy = p.encode_correlated(&[Fixed::from_u8(0), Fixed::from_u8(0)]);
    let q = p.divide_or(xy[0], xy[1], 0.125);
    p.read(q);
    let mut acc = builder(17).build().unwrap();
    let out = p.run_on(&mut acc).unwrap();
    assert_eq!(out, vec![0.125]);
    assert_eq!(acc.ledger().cordiv_steps, 0, "cordiv never ran");
    assert_eq!(acc.ledger().adc_samples, 0, "constant output needs no ADC");
    assert_eq!(
        acc.ledger().sl_single_ops,
        2,
        "the sense reads stay charged"
    );
    assert_eq!(acc.available_rows(), 64, "no leaked rows");
    assert_trace_matches_ledger(&acc, "divide_or fallback");

    // Without a fallback the same program fails like the imperative API.
    let mut strict = Program::new();
    let xy = strict.encode_correlated(&[Fixed::from_u8(0), Fixed::from_u8(0)]);
    let q = strict.divide(xy[0], xy[1]);
    strict.read(q);
    let mut acc = builder(17).build().unwrap();
    assert!(matches!(
        strict.run_on(&mut acc),
        Err(ImscError::Stochastic(ScError::DivisionByZero))
    ));
}

/// A failed execution must release every row the program still holds —
/// the caller has no handles to clean up with, so a leak would be
/// irrecoverable on a retained accelerator.
#[test]
fn failed_execution_releases_held_rows() {
    let mut p = Program::new();
    let keep = p.encode(Fixed::from_u8(33)); // still live at the failure
    let xy = p.encode_correlated(&[Fixed::from_u8(0), Fixed::from_u8(0)]);
    let q = p.divide(xy[0], xy[1]); // strict divide: all-zero divisor fails
    let s = p.scaled_add(keep, q);
    p.read(s);
    let mut acc = builder(29).build().unwrap();
    assert!(matches!(
        p.run_on(&mut acc),
        Err(ImscError::Stochastic(ScError::DivisionByZero))
    ));
    assert_eq!(acc.available_rows(), 64, "held rows returned on failure");
    // The accelerator stays fully usable afterwards.
    let out = p.run_on(&mut acc);
    assert!(out.is_err(), "same program, same failure");
    assert_eq!(acc.available_rows(), 64);
    let h = acc.encode(Fixed::from_u8(10)).unwrap();
    let _ = acc.read_value(h).unwrap();
}

/// A poisoned register may only be read.
#[test]
fn poisoned_register_rejects_compute_ops() {
    let mut p = Program::new();
    let xy = p.encode_correlated(&[Fixed::from_u8(0), Fixed::from_u8(0)]);
    let q = p.divide_or(xy[0], xy[1], 0.0);
    let c = p.complement(q);
    p.read(c);
    let mut acc = builder(19).build().unwrap();
    assert!(matches!(
        p.run_on(&mut acc),
        Err(ImscError::InvalidConfig(_))
    ));
}

/// Coalesced encode batches are behaviourally identical to one-at-a-time
/// encodes (encode_many is a loop over encode by construction).
#[test]
fn coalescing_is_cost_and_value_neutral() {
    let values = [Fixed::from_u8(9), Fixed::from_u8(9), Fixed::from_u8(77)];
    let mut p = Program::new();
    let regs: Vec<_> = values.iter().map(|&v| p.encode(v)).collect();
    for &r in &regs {
        p.read(r);
    }
    assert_eq!(p.plan().unwrap().coalesced_encodes(), 3);
    let mut planned = builder(23).build().unwrap();
    let got = p.run_on(&mut planned).unwrap();

    let mut acc = builder(23).build().unwrap();
    let mut handles = Vec::new();
    for &v in &values {
        handles.push(acc.encode(v).unwrap());
    }
    let mut want = Vec::new();
    for &h in &handles {
        want.push(acc.read_value(h).unwrap());
    }
    for &h in &handles {
        acc.release(h).unwrap();
    }
    assert_eq!(got, want);
    assert_eq!(planned.ledger(), acc.ledger());
    assert_eq!(planned.rn_epoch(), acc.rn_epoch());
}
