//! Integration tests of the accelerator beyond module level: ledger/trace
//! consistency, correlation-domain algebra, and long operation chains.

use imsc::engine::{Accelerator, BatchOp};
use imsc::{ImscError, RnRefreshPolicy};
use nvsim::{CmdKind, MemoryConfig, Simulator};
use proptest::prelude::*;
use sc_core::Fixed;

#[test]
fn encode_cache_replays_identical_streams_with_identical_costs() {
    // Correlated duplicate operands must come back bit-identical (the
    // conversion is a pure function of the RN realization), and the
    // modeled cost must not depend on whether the cache served them.
    let mut acc = Accelerator::builder()
        .stream_len(256)
        .seed(3)
        .build()
        .expect("valid configuration");
    let handles = acc
        .encode_correlated_many(&[
            Fixed::from_u8(90),
            Fixed::from_u8(90),
            Fixed::from_u8(200),
            Fixed::from_u8(90),
        ])
        .expect("rows available");
    let s0 = acc.read_stream(handles[0]).expect("alive");
    let s1 = acc.read_stream(handles[1]).expect("alive");
    let s3 = acc.read_stream(handles[3]).expect("alive");
    assert_eq!(s0, s1);
    assert_eq!(s0, s3);
    assert!(acc.encode_cache_hits() >= 2);
    // Four conversions' worth of modeled IMSNG work, hits included.
    assert_eq!(acc.ledger().imsng.sense_ops, 4 * 40);
    assert_eq!(acc.ledger().imsng.sbs_writes, 4);
}

#[test]
fn fault_injection_disables_the_encode_cache() {
    use reram::faults::FaultRates;
    let mut acc = Accelerator::builder()
        .stream_len(1024)
        .seed(5)
        .fault_rates(FaultRates::uniform(0.05))
        .build()
        .expect("valid configuration");
    let handles = acc
        .encode_correlated_many(&[Fixed::from_u8(128), Fixed::from_u8(128)])
        .expect("rows available");
    assert_eq!(acc.encode_cache_hits(), 0);
    // Every conversion draws fresh faults: duplicates must differ.
    let a = acc.read_stream(handles[0]).expect("alive");
    let b = acc.read_stream(handles[1]).expect("alive");
    assert_ne!(a, b);
}

#[test]
fn batched_apis_match_the_single_op_flow() {
    let run = |batched: bool| {
        let mut acc = Accelerator::builder()
            .stream_len(2048)
            .seed(21)
            .trng_bias_sigma(0.0)
            .build()
            .expect("valid configuration");
        let (v, ledger) = if batched {
            let h = acc
                .encode_many(&[Fixed::from_u8(200), Fixed::from_u8(128)])
                .expect("rows available");
            let out = acc
                .execute_many(&[BatchOp::Multiply(h[0], h[1])])
                .expect("uncorrelated");
            let v = acc.read_values(&out).expect("alive")[0];
            acc.release_many(&h).expect("alive");
            acc.release_many(&out).expect("alive");
            (v, *acc.ledger())
        } else {
            let a = acc.encode(Fixed::from_u8(200)).expect("rows");
            let b = acc.encode(Fixed::from_u8(128)).expect("rows");
            let p = acc.multiply(a, b).expect("uncorrelated");
            let v = acc.read_value(p).expect("alive");
            (v, *acc.ledger())
        };
        (v, ledger.imsng.sense_ops, ledger.sl_single_ops)
    };
    // Identical seeds and identical operation sequences: the batched API
    // is a pure convenience layer, so values and ledgers must agree.
    assert_eq!(run(true), run(false));
}

#[test]
fn ledger_and_trace_agree_on_operation_counts() {
    let mut acc = Accelerator::builder()
        .stream_len(128)
        .seed(5)
        .record_trace(true)
        .build()
        .expect("valid configuration");
    let x = acc.encode(Fixed::from_u8(77)).expect("rows");
    let y = acc.encode(Fixed::from_u8(200)).expect("rows");
    let p = acc.multiply(x, y).expect("uncorrelated");
    let s = acc.scaled_add(x, y).expect("uncorrelated");
    let _ = acc.read_value(p).expect("alive");
    let _ = acc.read_value(s).expect("alive");

    let ledger = *acc.ledger();
    let trace = acc.trace().expect("tracing enabled");
    let count = |pred: &dyn Fn(&CmdKind) -> bool| {
        trace.commands().iter().filter(|c| pred(&c.kind)).count() as u64
    };
    // scaled_add's select is a single-step TRNG row, not an IMSNG
    // conversion: only the two operand encodes run the comparator.
    assert_eq!(ledger.imsng.sense_ops, 2 * 40);
    assert_eq!(ledger.trng_fills, 2 * 8 + 1);
    assert_eq!(
        count(&|k| matches!(k, CmdKind::ScoutRead { .. })),
        ledger.imsng.sense_ops + ledger.sl_single_ops + ledger.sl_xor_ops
    );
    assert_eq!(count(&|k| *k == CmdKind::AdcSample), ledger.adc_samples);
    assert_eq!(count(&|k| *k == CmdKind::CordivStep), ledger.cordiv_steps);
}

#[test]
fn chained_operations_stay_accurate() {
    // ((a·b) + (c·d))/2 over four independent operands.
    let mut acc = Accelerator::builder()
        .stream_len(4096)
        .seed(11)
        .trng_bias_sigma(0.0)
        .build()
        .expect("valid configuration");
    let a = acc.encode(Fixed::from_u8(200)).expect("rows");
    let b = acc.encode(Fixed::from_u8(128)).expect("rows");
    let c = acc.encode(Fixed::from_u8(64)).expect("rows");
    let d = acc.encode(Fixed::from_u8(192)).expect("rows");
    let ab = acc.multiply(a, b).expect("uncorrelated");
    let cd = acc.multiply(c, d).expect("uncorrelated");
    let out = acc.scaled_add(ab, cd).expect("uncorrelated");
    let v = acc.read_value(out).expect("alive");
    let exact = ((200.0 / 256.0) * 0.5 + (64.0 / 256.0) * (192.0 / 256.0)) / 2.0;
    assert!((v - exact).abs() < 0.04, "{v} vs {exact}");
}

#[test]
fn nested_blends_preserve_the_correlation_domain() {
    let mut acc = Accelerator::builder()
        .stream_len(2048)
        .seed(13)
        .build()
        .expect("valid configuration");
    let vals = acc
        .encode_correlated_many(&[
            Fixed::from_u8(40),
            Fixed::from_u8(80),
            Fixed::from_u8(160),
            Fixed::from_u8(240),
        ])
        .expect("rows");
    let s1 = acc.encode(Fixed::from_u8(128)).expect("rows");
    let s2 = acc.encode(Fixed::from_u8(128)).expect("rows");
    let low = acc.blend(vals[0], vals[1], s1).expect("domains ok");
    let high = acc.blend(vals[2], vals[3], s2).expect("domains ok");
    // The two blend outputs are still in the shared domain: a further
    // correlated op between them must be legal.
    let s3 = acc.encode(Fixed::from_u8(128)).expect("rows");
    let out = acc
        .blend(low, high, s3)
        .expect("blend outputs stay correlated");
    let v = acc.read_value(out).expect("alive");
    // Expected: mid(mid(40,80), mid(160,240)) = mid(60, 200) = 130 / 256.
    assert!((v - 130.0 / 256.0).abs() < 0.05, "{v}");
}

#[test]
fn trace_replay_costs_track_ledger_model() {
    use reram::energy::ReramCosts;
    let mut acc = Accelerator::builder()
        .stream_len(256)
        .seed(17)
        .record_trace(true)
        .build()
        .expect("valid configuration");
    let (a, b) = acc
        .encode_correlated(Fixed::from_u8(30), Fixed::from_u8(210))
        .expect("rows");
    let d = acc.abs_subtract(a, b).expect("correlated");
    let q = acc.divide(d, b).expect("correlated domain");
    let _ = acc.read_value(q).expect("alive");

    let costs = ReramCosts::calibrated();
    let model_ns = acc.ledger().latency_ns(&costs);
    let mut sim = Simulator::new(MemoryConfig::reram_default());
    let stats = sim
        .run(acc.trace().expect("tracing enabled"))
        .expect("valid trace");
    // The trace includes TRNG refills and row-buffer effects the ledger
    // excludes; both live in the same order of magnitude.
    assert!(
        stats.total_time_ns > model_ns * 0.5,
        "{} vs {model_ns}",
        stats.total_time_ns
    );
    assert!(
        stats.total_time_ns < model_ns * 5.0,
        "{} vs {model_ns}",
        stats.total_time_ns
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn encode_read_round_trip(x in 0u8..=255, seed in 0u64..500) {
        let mut acc = Accelerator::builder()
            .stream_len(2048)
            .seed(seed)
            .trng_bias_sigma(0.0)
            .build()
            .expect("valid configuration");
        let h = acc.encode(Fixed::from_u8(x)).expect("rows");
        let v = acc.read_value(h).expect("alive");
        // 2048-bit stream: ~4.5σ tolerance.
        prop_assert!((v - f64::from(x) / 256.0).abs() < 0.055,
            "x={x}: {v}");
    }

    #[test]
    fn correlated_encode_orders_streams(lo in 0u8..=254, delta in 1u8..=255, seed in 0u64..300) {
        let hi = lo.saturating_add(delta);
        prop_assume!(hi > lo);
        let mut acc = Accelerator::builder()
            .stream_len(512)
            .seed(seed)
            .build()
            .expect("valid configuration");
        let (a, b) = acc
            .encode_correlated(Fixed::from_u8(lo), Fixed::from_u8(hi))
            .expect("rows");
        let sa = acc.read_stream(a).expect("alive");
        let sb = acc.read_stream(b).expect("alive");
        // Nested: every lo-one is a hi-one.
        prop_assert_eq!(sa.and(&sb).expect("equal lengths").count_ones(),
                        sa.count_ones());
    }

    #[test]
    fn release_always_recovers_rows(ops in 1usize..12, seed in 0u64..100) {
        let mut acc = Accelerator::builder()
            .stream_len(64)
            .stream_rows(6)
            .seed(seed)
            .build()
            .expect("valid configuration");
        for i in 0..ops {
            let h = acc.encode(Fixed::from_u8((i * 37 % 256) as u8)).expect("rows");
            let before = acc.available_rows();
            acc.release(h).expect("alive");
            prop_assert_eq!(acc.available_rows(), before + 1);
        }
    }

    #[test]
    fn reused_realization_maximally_correlates_encodes(
        lo in 0u8..=255, hi in 0u8..=255, seed in 0u64..300,
    ) {
        // Two operands encoded without an intervening refresh share one
        // RN realization: their streams are nested indicator functions of
        // the same random numbers, so SCC ≈ +1 (exactly +1 in the
        // similar-bits formulation whenever both streams are non-trivial).
        let mut acc = Accelerator::builder()
            .stream_len(1024)
            .seed(seed)
            .refresh_policy(RnRefreshPolicy::Explicit)
            .build()
            .expect("valid configuration");
        let a = acc.encode(Fixed::from_u8(lo)).expect("rows");
        let b = acc.encode(Fixed::from_u8(hi)).expect("rows");
        let sa = acc.read_stream(a).expect("alive");
        let sb = acc.read_stream(b).expect("alive");
        // Nested: the smaller operand's ones are a subset of the larger's.
        let overlap = sa.and(&sb).expect("equal lengths").count_ones();
        prop_assert_eq!(overlap, sa.count_ones().min(sb.count_ones()));
        // SCC is only defined away from the constant streams.
        if sa.count_ones() > 0 && sb.count_ones() > 0
            && sa.count_ones() < sa.len() as u64 && sb.count_ones() < sb.len() as u64
        {
            let scc = sc_core::correlation::scc(&sa, &sb).expect("lengths");
            prop_assert!(scc > 0.99, "scc {}", scc);
        }
    }

    #[test]
    fn every_n_1_is_bit_identical_to_per_encode(
        x in 0u8..=255, y in 0u8..=255, seed in 0u64..300,
    ) {
        // EveryN(1) refreshes before every batch — exactly PerEncode's
        // schedule — so identical seeds must give bit-identical streams
        // and identical ledgers.
        let run = |policy: RnRefreshPolicy| {
            let mut acc = Accelerator::builder()
                .stream_len(512)
                .seed(seed)
                .refresh_policy(policy)
                .build()
                .expect("valid configuration");
            let a = acc.encode(Fixed::from_u8(x)).expect("rows");
            let (b, c) = acc
                .encode_correlated(Fixed::from_u8(y), Fixed::from_u8(x))
                .expect("rows");
            let streams = (
                acc.read_stream(a).expect("alive"),
                acc.read_stream(b).expect("alive"),
                acc.read_stream(c).expect("alive"),
            );
            (streams, *acc.ledger(), acc.rn_epoch())
        };
        prop_assert_eq!(
            run(RnRefreshPolicy::PerEncode),
            run(RnRefreshPolicy::EveryN(1))
        );
    }

    #[test]
    fn double_release_is_rejected(seed in 0u64..100) {
        let mut acc = Accelerator::builder()
            .stream_len(64)
            .seed(seed)
            .build()
            .expect("valid configuration");
        let h = acc.encode(Fixed::from_u8(9)).expect("rows");
        acc.release(h).expect("alive");
        prop_assert!(matches!(acc.release(h), Err(ImscError::InvalidHandle(_))));
    }
}
