//! Optimizer tests: `imsc::program::opt` must be observationally
//! equivalent to running the unoptimized program — identical output
//! values and RN-epoch counts on same-seeded accelerators — while only
//! ever shrinking the scouting-op bill. Covers the XAG `cleanup`/`eval`
//! round-trip property, each rewrite family in isolation, the refresh
//! segment-repair and legality-fixpoint safety nets, and a randomized
//! differential sweep across levels × refresh policies.

use imsc::cost::CostLedger;
use imsc::engine::Accelerator;
use imsc::program::{Op, Program};
use imsc::xag::{Signal, Xag};
use imsc::{optimize, Optimize, RnRefreshPolicy};
use nvsim::Trace;
use proptest::prelude::*;
use sc_core::Fixed;

fn f(v: u8) -> Fixed {
    Fixed::from_u8(v)
}

/// One execution's observables: values, ledger, epoch count, and the
/// full command trace.
type RunOut = (Vec<f64>, CostLedger, u64, Trace);

/// Runs `p` on a fresh accelerator.
fn run(p: &Program, policy: RnRefreshPolicy, seed: u64) -> RunOut {
    let mut acc = Accelerator::builder()
        .stream_len(128)
        .seed(seed)
        .record_trace(true)
        .refresh_policy(policy)
        .build()
        .unwrap();
    let vals = p.run_on(&mut acc).unwrap();
    (
        vals,
        *acc.ledger(),
        acc.rn_epoch(),
        acc.trace().cloned().unwrap(),
    )
}

/// Optimizes `p` at `level`, runs both versions on same-seeded
/// accelerators, and asserts bit-identical values, identical RN epochs,
/// and a scouting bill that did not grow. Returns (off, opt) runs.
fn assert_parity(
    p: &Program,
    level: Optimize,
    policy: RnRefreshPolicy,
    context: &str,
) -> (RunOut, RunOut) {
    let (q, stats) = optimize(p, level, policy);
    assert_eq!(stats.ops_after, q.ops().len(), "{context}: stats ops_after");
    let off = run(p, policy, 99);
    let opt = run(&q, policy, 99);
    assert_eq!(off.0, opt.0, "{context}: values");
    assert_eq!(off.2, opt.2, "{context}: rn epochs");
    assert_eq!(
        off.1.trng_fills, opt.1.trng_fills,
        "{context}: trng draws must keep their schedule"
    );
    assert!(
        opt.1.scout_ops() <= off.1.scout_ops(),
        "{context}: scout ops grew {} -> {}",
        off.1.scout_ops(),
        opt.1.scout_ops()
    );
    (off, opt)
}

#[test]
fn off_level_is_identity() {
    let mut p = Program::new();
    let a = p.encode(f(80));
    let b = p.encode(f(80));
    let m = p.multiply(a, b);
    p.read(m);
    let (q, stats) = optimize(&p, Optimize::Off, RnRefreshPolicy::Explicit);
    assert_eq!(q.ops().len(), p.ops().len());
    assert_eq!(stats.ops_before, stats.ops_after);
    assert_eq!(stats.comb_elided + stats.encodes_elided, 0);
}

#[test]
fn cse_collapses_duplicate_multiplies() {
    let mut p = Program::new();
    let a = p.encode(f(96));
    let b = p.encode(f(160));
    let m1 = p.multiply(a, b);
    let m2 = p.multiply(a, b);
    p.read(m1);
    p.read(m2);
    let (q, stats) = optimize(&p, Optimize::Cse, RnRefreshPolicy::PerEncode);
    assert_eq!(stats.comb_elided, 1, "duplicate multiply must collapse");
    assert_eq!(q.ops().len(), p.ops().len() - 1);
    let (_, opt) = assert_parity(&p, Optimize::Cse, RnRefreshPolicy::PerEncode, "cse-mul");
    assert_eq!(opt.0[0], opt.0[1], "both reads see one stream");
}

#[test]
fn double_complement_cancels() {
    let mut p = Program::new();
    let a = p.encode(f(70));
    let c1 = p.complement(a);
    let c2 = p.complement(c1);
    p.read(c2);
    let (q, stats) = optimize(&p, Optimize::Cse, RnRefreshPolicy::PerEncode);
    // ¬¬a structurally hashes back to a's signal: the outer complement
    // aliases to `a` and the inner one goes dead.
    assert_eq!(stats.comb_elided, 2);
    assert_eq!(q.ops().len(), 2);
    assert_parity(&p, Optimize::Cse, RnRefreshPolicy::PerEncode, "double-not");
}

#[test]
fn batch_duplicates_prune_and_reads_fold() {
    // Roberts cross on a flat cell: all four taps equal, both gradients
    // are a ⊕ a ≡ 0, the blend of two zero streams is zero, and the
    // read is a compile-time 0.0 — the whole pixel folds to one
    // single-slot batch (kept for its refresh event), the TRNG select
    // (RN schedule), and a `ReadConst`.
    let mut p = Program::new();
    let t = p.encode_correlated(&[f(123); 4]);
    let g1 = p.abs_subtract(t[0], t[1]);
    let g2 = p.abs_subtract(t[2], t[3]);
    let sel = p.trng_select();
    let e = p.blend(g1, g2, sel);
    p.read(e);
    let (q, stats) = optimize(&p, Optimize::Full, RnRefreshPolicy::EveryN(8));
    assert_eq!(stats.reads_folded, 1);
    assert_eq!(stats.encodes_elided, 3, "three duplicate batch slots");
    let kept: Vec<&Op> = q.ops().iter().collect();
    assert!(
        matches!(kept[0], Op::EncodeCorrelated { values, .. } if values.len() == 1),
        "batch pruned to one slot, got {kept:?}"
    );
    assert!(kept.iter().any(|op| matches!(op, Op::TrngSelect { .. })));
    assert!(kept.iter().any(|op| matches!(op, Op::ReadConst { .. })));
    assert_parity(&p, Optimize::Full, RnRefreshPolicy::EveryN(8), "flat-pixel");
}

#[test]
fn encode_dedup_requires_explicit_policy() {
    let mut p = Program::new();
    let a = p.encode(f(50));
    let b = p.encode(f(50));
    p.read(a);
    p.read(b);
    // Explicit: both encodes share one refresh segment and one value —
    // the second is the same stream and folds away.
    let (q, stats) = optimize(&p, Optimize::Full, RnRefreshPolicy::Explicit);
    assert_eq!(stats.encodes_elided, 1);
    assert_eq!(q.ops().len(), 3);
    assert_parity(&p, Optimize::Full, RnRefreshPolicy::Explicit, "enc-dedup");
    // PerEncode: each encode is its own refresh event; deduping would
    // change the refresh cadence, so nothing may be removed.
    let (q, stats) = optimize(&p, Optimize::Full, RnRefreshPolicy::PerEncode);
    assert_eq!(stats.encodes_elided, 0);
    assert_eq!(q.ops().len(), p.ops().len());
    assert_parity(&p, Optimize::Full, RnRefreshPolicy::PerEncode, "enc-keep");
}

#[test]
fn segment_repair_preserves_epoch_count() {
    // The middle refresh segment's only encode is dead. Removing it
    // would merge two segments and shift every later realization; the
    // repair pass must restore it so the epoch count is unchanged.
    let mut p = Program::new();
    let a = p.encode(f(40));
    p.next_group();
    let _dead = p.encode(f(90));
    p.next_group();
    let c = p.encode(f(200));
    p.read(a);
    p.read(c);
    let (q, stats) = optimize(&p, Optimize::Full, RnRefreshPolicy::Explicit);
    assert_eq!(
        q.ops()
            .iter()
            .filter(|o| matches!(o, Op::Encode { .. }))
            .count(),
        3,
        "dead segment encode must be restored"
    );
    assert_eq!(stats.encodes_elided, 0);
    assert_parity(
        &p,
        Optimize::Full,
        RnRefreshPolicy::Explicit,
        "segment-repair",
    );
}

#[test]
fn incompressible_program_is_bit_identical() {
    // No redundancy anywhere: the optimizer must return an op-identical
    // program whose execution is indistinguishable down to the command
    // trace.
    let mut p = Program::new();
    let xy = p.encode_correlated(&[f(60), f(180)]);
    let d = p.abs_subtract(xy[0], xy[1]);
    p.read(d);
    let s = p.trng_select();
    let bl = p.blend(xy[0], xy[1], s);
    p.read(bl);
    let (q, stats) = optimize(&p, Optimize::Full, RnRefreshPolicy::PerEncode);
    assert_eq!(stats.ops_after, stats.ops_before);
    assert_eq!(q.ops().len(), p.ops().len());
    let (off, opt) = assert_parity(
        &p,
        Optimize::Full,
        RnRefreshPolicy::PerEncode,
        "incompressible",
    );
    assert_eq!(off.1, opt.1, "ledger");
    assert_eq!(off.3, opt.3, "command trace");
}

#[test]
fn legality_fixpoint_blocks_group_breaking_alias() {
    // Two same-value encodes feed a scaled add — an RN-drawing op the
    // optimizer may never fold. Encode dedup would turn it into
    // scaled_add(a, a) — same correlation group, which the engine
    // rejects. The legality simulation must pin the alias and keep both
    // encodes. (A `multiply` would not do here: a ∧ a folds to `a`
    // bit-identically before any group check can fail.)
    let mut p = Program::new();
    let a = p.encode(f(77));
    let b = p.encode(f(77));
    let m = p.scaled_add(a, b);
    p.read(m);
    let (q, stats) = optimize(&p, Optimize::Full, RnRefreshPolicy::Explicit);
    assert!(stats.aliases_blocked >= 1, "alias must be pinned");
    assert_eq!(
        q.ops()
            .iter()
            .filter(|o| matches!(o, Op::Encode { .. }))
            .count(),
        2,
        "both encodes survive"
    );
    assert_parity(&p, Optimize::Full, RnRefreshPolicy::Explicit, "legality");
}

#[test]
fn hoist_moves_interior_encode_into_leading_run() {
    // An encode sitting after a scouting op must bubble into the
    // pixel's leading ❶ SBS run (past the abs-sub, stopping at the
    // batch encode barrier) without changing results.
    let mut p = Program::new();
    let xy = p.encode_correlated(&[f(30), f(220)]);
    let d = p.abs_subtract(xy[0], xy[1]);
    let e = p.encode(f(100));
    let sa = p.scaled_add(d, e);
    p.read(sa);
    let (q, stats) = optimize(&p, Optimize::Full, RnRefreshPolicy::PerEncode);
    assert_eq!(stats.hoisted, 1);
    assert!(
        matches!(q.ops()[0], Op::EncodeCorrelated { .. })
            && matches!(q.ops()[1], Op::Encode { .. }),
        "encode must lead: {:?}",
        q.ops()
    );
    assert_parity(&p, Optimize::Full, RnRefreshPolicy::PerEncode, "hoist");
}

/// Builds a random kernel-shaped program from packed pixel words: each
/// word carries four tap bytes plus a blend/two-reads shape bit.
fn build(pixels: &[u64]) -> Program {
    let mut p = Program::new();
    for &px in pixels {
        let b = px.to_le_bytes();
        let t = p.encode_correlated(&[f(b[0]), f(b[1]), f(b[2]), f(b[3])]);
        let g1 = p.abs_subtract(t[0], t[1]);
        let g2 = p.minimum(t[2], t[3]);
        if b[4] & 1 == 1 {
            let s = p.trng_select();
            let e = p.blend(g1, g2, s);
            p.read(e);
        } else {
            p.read(g1);
            p.read(g2);
        }
        p.next_group();
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // `Xag::cleanup` must preserve `eval` on every input assignment and
    // never grow the graph. Gate ops are packed words: kind, operand
    // picks, and an output-inversion bit.
    #[test]
    fn xag_cleanup_preserves_eval(
        ops in proptest::collection::vec(any::<u64>(), 0..40),
        n_inputs in 1usize..6,
        out_picks in proptest::collection::vec(any::<usize>(), 1..5),
        probes in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 5..6),
            1..8,
        ),
    ) {
        let mut g = Xag::new();
        let mut pool: Vec<Signal> = (0..n_inputs).map(|_| g.input()).collect();
        pool.push(Signal::FALSE);
        pool.push(Signal::TRUE);
        for word in &ops {
            let b = word.to_le_bytes();
            let (ia, ib, ic) = (b[1] as usize, b[2] as usize, b[3] as usize);
            let a = pool[ia % pool.len()];
            let bb = pool[ib % pool.len()];
            let s = match b[0] % 4 {
                0 => g.and(a, bb),
                1 => g.xor(a, bb),
                2 => g.or(a, bb),
                _ => g.mux(pool[ic % pool.len()], a, bb),
            };
            pool.push(if b[4] & 1 == 1 { s.not() } else { s });
        }
        let outs: Vec<Signal> = out_picks.iter().map(|&i| pool[i % pool.len()]).collect();
        g.set_outputs(outs);
        let before_gates = g.stats().gates();
        let want: Vec<Vec<bool>> = probes.iter().map(|pr| g.eval(&pr[..n_inputs])).collect();
        let removed = g.cleanup();
        prop_assert!(g.stats().gates() + removed >= before_gates);
        prop_assert!(g.stats().gates() <= before_gates);
        for (pr, w) in probes.iter().zip(&want) {
            prop_assert_eq!(&g.eval(&pr[..n_inputs]), w);
        }
    }

    // Differential sweep: for random kernel-shaped programs, every
    // (level, policy) combination must reproduce the unoptimized values
    // and RN epochs exactly while never increasing scout ops.
    #[test]
    fn optimizer_parity_on_random_programs(
        pixels in proptest::collection::vec(any::<u64>(), 1..7),
        seed in 0u64..1000,
    ) {
        let p = build(&pixels);
        for policy in [
            RnRefreshPolicy::PerEncode,
            RnRefreshPolicy::EveryN(3),
            RnRefreshPolicy::Explicit,
        ] {
            let off = run(&p, policy, seed);
            for level in [Optimize::Cse, Optimize::Full] {
                let (q, _) = optimize(&p, level, policy);
                let opt = run(&q, policy, seed);
                prop_assert_eq!(&off.0, &opt.0, "values {level:?}/{policy:?}");
                prop_assert_eq!(off.2, opt.2, "epochs {level:?}/{policy:?}");
                prop_assert_eq!(
                    off.1.trng_fills,
                    opt.1.trng_fills,
                    "trng {level:?}/{policy:?}"
                );
                prop_assert!(opt.1.scout_ops() <= off.1.scout_ops());
            }
        }
    }
}
