//! Differential tests: `Schedule::Pipelined` must be observationally
//! identical to the per-tile path for every kernel — same pixels, same
//! merged cost ledger, same RN epochs and encode-cache hits — because
//! the pipeline scheduler executes tile-shaped slices of the same
//! logical program on the same per-tile-seeded accelerators; only the
//! stage-worker placement (and the measured pipeline report) differ.
//!
//! Image heights are chosen to span ≥ 2 row tiles with a ragged final
//! tile, so the slicing, the in-flight array bound, and the tile-ordered
//! merge all do real work.

use imgproc::{bilinear, compositing, edge, matting, synth, ScReramConfig, ScRunStats, Schedule};
use imsc::Optimize;

fn assert_stats_match(pipelined: &ScRunStats, per_tile: &ScRunStats, kernel: &str) {
    assert_eq!(pipelined.ledger, per_tile.ledger, "{kernel} ledger");
    assert_eq!(pipelined.rn_epochs, per_tile.rn_epochs, "{kernel} epochs");
    assert_eq!(
        pipelined.encode_cache_hits, per_tile.encode_cache_hits,
        "{kernel} cache hits"
    );
    assert_eq!(pipelined.tiles, per_tile.tiles, "{kernel} tiles");
    assert!(per_tile.pipeline.is_none(), "{kernel} per-tile report");
    let report = pipelined
        .pipeline
        .unwrap_or_else(|| panic!("{kernel} pipelined run must carry a report"));
    assert!(report.wavefronts > 0, "{kernel} wavefronts");
    assert!(report.makespan_ns > 0.0, "{kernel} makespan");
    assert!(
        report.makespan_ns <= report.sequential_ns,
        "{kernel} pipelining cannot be slower than serial"
    );
}

#[test]
fn edge_pipelined_matches_per_tile() {
    let img = synth::value_noise(10, 20, 3, 11);
    let cfg = ScReramConfig::new(128, 9);
    let (want_img, want) = edge::sc_reram_with_stats(&img, &cfg).unwrap();
    assert!(want.tiles >= 2, "need a multi-tile run");
    for arrays in [1, 3] {
        let pipelined = cfg.with_schedule(Schedule::Pipelined { arrays });
        let (got_img, got) = edge::sc_reram_with_stats(&img, &pipelined).unwrap();
        assert_eq!(got_img.pixels(), want_img.pixels(), "{arrays}-array pixels");
        assert_stats_match(&got, &want, "edge");
        assert_eq!(got.pipeline.unwrap().arrays, arrays);
        // One wavefront per pixel: the initiation count is the image.
        // (Only for unoptimized emission — the program optimizer may
        // merge or split pixel wavefronts, e.g. a fully folded pixel
        // leaves a const-only wavefront.)
        if cfg.effective_optimize() == Optimize::Off {
            assert_eq!(got.pipeline.unwrap().wavefronts, 10 * 20);
        }
    }
}

#[test]
fn bilinear_pipelined_matches_per_tile() {
    let src = synth::gradient(6, 9, true); // 12×18 output → 3 tiles
    let cfg = ScReramConfig::new(128, 5);
    let (want_img, want) = bilinear::sc_reram_with_stats(&src, 2, &cfg).unwrap();
    assert!(want.tiles >= 2);
    let pipelined = cfg.with_schedule(Schedule::Pipelined { arrays: 2 });
    let (got_img, got) = bilinear::sc_reram_with_stats(&src, 2, &pipelined).unwrap();
    assert_eq!(got_img.pixels(), want_img.pixels());
    assert_stats_match(&got, &want, "bilinear");
}

#[test]
fn compositing_pipelined_matches_per_tile() {
    let set = synth::app_images(9, 18, 42);
    let (f, b, a) = (&set.foreground, &set.background, &set.alpha);
    let cfg = ScReramConfig::new(128, 7);
    let (want_img, want) = compositing::sc_reram_with_stats(f, b, a, &cfg).unwrap();
    assert!(want.tiles >= 2);
    let pipelined = cfg.with_schedule(Schedule::Pipelined { arrays: 3 });
    let (got_img, got) = compositing::sc_reram_with_stats(f, b, a, &pipelined).unwrap();
    assert_eq!(got_img.pixels(), want_img.pixels());
    assert_stats_match(&got, &want, "compositing");
}

#[test]
fn matting_pipelined_matches_per_tile_through_fallback_pixels() {
    // Matting has data-dependent fallbacks: degenerate (F == B) pixels
    // resolve at emission time (pure ❸ wavefronts) and near-equal F/B
    // pixels hit the stochastic zero-divisor fallback. Parity must hold
    // through both.
    let set = synth::app_images(10, 18, 5);
    let i = compositing::software(&set.foreground, &set.background, &set.alpha).unwrap();
    let cfg = ScReramConfig::new(64, 13);
    let (want_img, want) =
        matting::sc_reram_with_stats(&i, &set.background, &set.foreground, &cfg).unwrap();
    assert!(want.tiles >= 2);
    let pipelined = cfg.with_schedule(Schedule::Pipelined { arrays: 2 });
    let (got_img, got) =
        matting::sc_reram_with_stats(&i, &set.background, &set.foreground, &pipelined).unwrap();
    assert_eq!(got_img.pixels(), want_img.pixels());
    assert_stats_match(&got, &want, "matting");
}

#[test]
fn pipelined_faulted_run_matches_per_tile() {
    // Fault injection draws from the per-tile accelerator's seeded RNG;
    // slice-per-tile seeding must keep faulted runs bit-identical too.
    use reram::faults::FaultRates;
    let img = synth::checkerboard(8, 17, 3);
    let cfg = ScReramConfig::new(64, 21).with_faults(FaultRates::uniform(0.02));
    let (want_img, want) = edge::sc_reram_with_stats(&img, &cfg).unwrap();
    let pipelined = cfg.with_schedule(Schedule::Pipelined { arrays: 2 });
    let (got_img, got) = edge::sc_reram_with_stats(&img, &pipelined).unwrap();
    assert_eq!(got_img.pixels(), want_img.pixels());
    assert_eq!(got.ledger, want.ledger);
}
