//! Differential tests for the compiled-template cache
//! ([`imsc::PlanCache`] via [`ScReramConfig::with_plan_cache`]): a
//! cached run must be observationally identical to an uncached run —
//! pixels, merged cost ledger, RN epochs, encode-cache hits, wear
//! summary, fault counts, trace replay — on every kernel, schedule,
//! refresh policy and optimizer level; the cache may only change *when*
//! compilation happens, never what executes.
//!
//! Also pinned here: the cache-key correctness guards (templates are
//! never shared across differing fault/wear configurations, or across
//! tile structures — matting's degenerate-pixel branch), determinism of
//! a shared cache across worker-thread counts, and bounded-capacity
//! LRU eviction under churn.

use imgproc::{
    bilinear, compositing, edge, matting, synth, GrayImage, ScReramConfig, ScRunStats, Schedule,
};
use imsc::{Optimize, PlanCache, RnRefreshPolicy};
use reram::faults::FaultRates;
use std::sync::Arc;

const POLICIES: [RnRefreshPolicy; 3] = [
    RnRefreshPolicy::PerEncode,
    RnRefreshPolicy::EveryN(4),
    RnRefreshPolicy::Explicit,
];
const LEVELS: [Optimize; 2] = [Optimize::Off, Optimize::Full];
const SCHEDULES: [Schedule; 2] = [Schedule::PerTile, Schedule::Pipelined { arrays: 2 }];

fn assert_run_eq(tag: &str, want: &(GrayImage, ScRunStats), got: &(GrayImage, ScRunStats)) {
    assert_eq!(got.0.pixels(), want.0.pixels(), "{tag}: pixels");
    assert_eq!(got.1.ledger, want.1.ledger, "{tag}: ledger");
    assert_eq!(got.1.rn_epochs, want.1.rn_epochs, "{tag}: RN epochs");
    assert_eq!(
        got.1.encode_cache_hits, want.1.encode_cache_hits,
        "{tag}: encode-cache hits"
    );
    assert_eq!(got.1.stream_wear, want.1.stream_wear, "{tag}: wear");
    assert_eq!(
        got.1.faults_injected, want.1.faults_injected,
        "{tag}: faults"
    );
    assert_eq!(got.1.tiles, want.1.tiles, "{tag}: tiles");
}

/// The full parity matrix for one kernel: every schedule × refresh
/// policy × optimizer level, uncached vs. cached frame 1 (misses) vs.
/// cached frame 2 (hits) — all three bit-identical.
fn parity_matrix(kernel: &str, run: &dyn Fn(&ScReramConfig) -> (GrayImage, ScRunStats)) {
    for schedule in SCHEDULES {
        for policy in POLICIES {
            for level in LEVELS {
                let base = ScReramConfig::new(64, 11)
                    .with_schedule(schedule)
                    .with_refresh_policy(policy)
                    .with_optimize(level);
                let tag = format!("{kernel}/{schedule:?}/{policy:?}/{level:?}");
                let want = run(&base.without_plan_cache());
                assert!(want.1.plan_cache.is_none(), "{tag}: uncached run counts");
                assert!(want.1.tiles >= 2, "{tag}: need a multi-tile run");
                let cfg = base.with_plan_cache(Arc::new(PlanCache::new()));
                let first = run(&cfg);
                let counts = first.1.plan_cache.expect("{tag}: cached run counts");
                assert!(counts.misses >= 1, "{tag}: first frame must compile");
                assert_eq!(counts.fallbacks, 0, "{tag}: unexpected hash collision");
                assert_eq!(
                    counts.lookups(),
                    want.1.tiles as u64,
                    "{tag}: one lookup per tile"
                );
                assert_run_eq(&format!("{tag} frame 1"), &want, &first);
                let second = run(&cfg);
                let counts = second.1.plan_cache.unwrap();
                assert_eq!(
                    counts.hits,
                    counts.lookups(),
                    "{tag}: second frame must be all hits"
                );
                assert_run_eq(&format!("{tag} frame 2"), &want, &second);
            }
        }
    }
}

#[test]
fn edge_cached_matches_uncached_everywhere() {
    let img = synth::value_noise(9, 12, 3, 7);
    parity_matrix("edge", &|cfg| edge::sc_reram_with_stats(&img, cfg).unwrap());
}

#[test]
fn bilinear_cached_matches_uncached_everywhere() {
    let src = synth::gradient(5, 6, true); // 10×12 output → 2 tiles
    parity_matrix("bilinear", &|cfg| {
        bilinear::sc_reram_with_stats(&src, 2, cfg).unwrap()
    });
}

#[test]
fn compositing_cached_matches_uncached_everywhere() {
    let set = synth::app_images(9, 12, 42);
    parity_matrix("compositing", &|cfg| {
        compositing::sc_reram_with_stats(&set.foreground, &set.background, &set.alpha, cfg).unwrap()
    });
}

#[test]
fn matting_cached_matches_uncached_everywhere() {
    let set = synth::app_images(9, 12, 5);
    let i = compositing::software(&set.foreground, &set.background, &set.alpha).unwrap();
    parity_matrix("matting", &|cfg| {
        matting::sc_reram_with_stats(&i, &set.background, &set.foreground, cfg).unwrap()
    });
}

#[test]
fn trace_replay_is_identical_under_caching() {
    let src = synth::gradient(5, 8, false); // 10×16 output → 2 tiles
    let base = ScReramConfig::new(64, 3)
        .with_optimize(Optimize::Full)
        .with_trace_replay(true);
    let (want_img, want) =
        bilinear::sc_reram_with_stats(&src, 2, &base.without_plan_cache()).unwrap();
    let cached = base.with_plan_cache(Arc::new(PlanCache::new()));
    for frame in 0..2 {
        let (img, stats) = bilinear::sc_reram_with_stats(&src, 2, &cached).unwrap();
        assert_eq!(img.pixels(), want_img.pixels(), "frame {frame} pixels");
        assert_eq!(
            stats.replay, want.replay,
            "frame {frame}: the replayed command stream must be unchanged"
        );
    }
}

/// The cache-key correctness guard: one shared cache across fault-free,
/// fault-injected and wear-leveled configurations must mint a separate
/// template population per configuration — a template is never reused
/// across differing fault/wear configs — while every run stays
/// bit-identical to its own uncached twin.
#[test]
fn fault_and_wear_configs_never_share_templates() {
    let img = synth::value_noise(8, 16, 3, 5); // 2 equal tiles → 1 key per config
    let cache = Arc::new(PlanCache::new());
    let variants: [(&str, ScReramConfig); 3] = [
        (
            "fault-free",
            ScReramConfig::new(64, 3).with_optimize(Optimize::Off),
        ),
        (
            "global faults",
            ScReramConfig::new(64, 3).with_faults(FaultRates::uniform(0.05)),
        ),
        (
            "wear-leveled",
            ScReramConfig::new(64, 3)
                .with_optimize(Optimize::Off)
                .with_wear_leveling(true),
        ),
    ];
    let mut minted = 0;
    for (tag, cfg) in &variants {
        let want = edge::sc_reram_with_stats(&img, &cfg.without_plan_cache()).unwrap();
        let got =
            edge::sc_reram_with_stats(&img, &cfg.with_plan_cache(Arc::clone(&cache))).unwrap();
        assert_run_eq(tag, &want, &got);
        assert!(
            got.1.plan_cache.unwrap().misses >= 1,
            "{tag}: must compile its own template, not reuse another config's"
        );
        minted += 1;
        assert_eq!(
            cache.len(),
            minted,
            "{tag}: each configuration owns a distinct cache entry"
        );
    }
}

/// Same guard for the pipelined fault-domain override: a per-array
/// fault-rate override changes the substrate signature, so a pipelined
/// run with it never reuses the plain pipelined run's templates.
#[test]
fn per_array_fault_override_gets_its_own_templates() {
    let img = synth::value_noise(8, 16, 3, 9);
    let cache = Arc::new(PlanCache::new());
    let base = ScReramConfig::new(64, 7)
        .with_optimize(Optimize::Off)
        .with_schedule(Schedule::Pipelined { arrays: 2 });
    let want = edge::sc_reram_with_stats(&img, &base.without_plan_cache()).unwrap();
    let got = edge::sc_reram_with_stats(&img, &base.with_plan_cache(Arc::clone(&cache))).unwrap();
    assert_run_eq("plain pipelined", &want, &got);
    let plain_len = cache.len();
    let faulty = base.with_array_faults(1, FaultRates::uniform(0.05));
    let want = edge::sc_reram_with_stats(&img, &faulty.without_plan_cache()).unwrap();
    let got = edge::sc_reram_with_stats(&img, &faulty.with_plan_cache(Arc::clone(&cache))).unwrap();
    assert_run_eq("array-fault pipelined", &want, &got);
    assert!(
        cache.len() > plain_len,
        "per-array override must mint its own templates"
    );
}

/// Matting's degenerate-pixel branch (`F == B` → `read_const`) changes
/// the emitted op shape, so tiles with different degenerate patterns get
/// different structure hashes — two templates, both bit-identical to the
/// uncached run.
#[test]
fn matting_degenerate_tiles_key_by_structure() {
    let (w, h) = (6, 16);
    let i = GrayImage::from_fn(w, h, |x, y| (x * 30 + y * 7) as u8);
    // Top tile: F == B everywhere (all pixels degenerate). Bottom tile:
    // a normal matte.
    let b = GrayImage::from_fn(w, h, |_, y| if y < 8 { 100 } else { 40 });
    let f = GrayImage::from_fn(w, h, |_, y| if y < 8 { 100 } else { 200 });
    let base = ScReramConfig::new(64, 17).with_optimize(Optimize::Off);
    let want = matting::sc_reram_with_stats(&i, &b, &f, &base.without_plan_cache()).unwrap();
    assert_eq!(want.1.tiles, 2);
    let cache = Arc::new(PlanCache::new());
    let cfg = base.with_plan_cache(Arc::clone(&cache));
    let got = matting::sc_reram_with_stats(&i, &b, &f, &cfg).unwrap();
    assert_run_eq("degenerate matting", &want, &got);
    assert_eq!(
        cache.len(),
        2,
        "the two tile structures must not share a template"
    );
    let counts = got.1.plan_cache.unwrap();
    assert_eq!((counts.misses, counts.hits), (2, 0));
    let again = matting::sc_reram_with_stats(&i, &b, &f, &cfg).unwrap();
    assert_run_eq("degenerate matting, frame 2", &want, &again);
    assert_eq!(again.1.plan_cache.unwrap().hits, 2);
}

/// At `Optimize::Off` one template serves every value pattern of a
/// structure: a second image with different pixels misses the frame
/// digest but hits the structure-keyed template, binding its own values
/// into the holes — no new template is minted, and both runs match
/// their uncached twins exactly.
#[test]
fn off_level_templates_are_shared_across_images() {
    let cache = Arc::new(PlanCache::new());
    let base = ScReramConfig::new(64, 21).with_optimize(Optimize::Off);
    let cfg = base.with_plan_cache(Arc::clone(&cache));
    for seed in [3, 4] {
        let img = synth::value_noise(8, 16, 3, seed); // 2 equal 8-row tiles
        let want = edge::sc_reram_with_stats(&img, &base.without_plan_cache()).unwrap();
        let got = edge::sc_reram_with_stats(&img, &cfg).unwrap();
        assert_run_eq(&format!("image seed {seed}"), &want, &got);
    }
    assert_eq!(
        cache.len(),
        1,
        "both images and both tiles share the one holes-mode template"
    );
}

/// A bounded cache under churn: four distinct value patterns at
/// `Optimize::Full` (each its own key) through a capacity-2 cache must
/// evict — and every run must still match its uncached twin exactly.
#[test]
fn bounded_cache_evicts_without_changing_results() {
    let cache = Arc::new(PlanCache::with_capacity(2));
    let base = ScReramConfig::new(64, 13).with_optimize(Optimize::Full);
    for seed in 1..=4 {
        let img = synth::value_noise(8, 8, 2, seed);
        let want = edge::sc_reram_with_stats(&img, &base.without_plan_cache()).unwrap();
        let got =
            edge::sc_reram_with_stats(&img, &base.with_plan_cache(Arc::clone(&cache))).unwrap();
        assert_run_eq(&format!("churn seed {seed}"), &want, &got);
        assert!(cache.len() <= 2, "capacity must bound occupancy");
    }
    assert!(
        cache.stats().evictions >= 2,
        "four distinct keys through capacity 2 must evict"
    );
}

#[cfg(feature = "parallel")]
mod threaded {
    use super::*;

    /// Serializes env mutation: the test harness runs `#[test]`s on
    /// threads of one process, and `IMGPROC_TILE_THREADS` is
    /// process-global.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("IMGPROC_TILE_THREADS", threads.to_string());
        let out = f();
        std::env::remove_var("IMGPROC_TILE_THREADS");
        out
    }

    /// One shared cache, racing tile workers: whatever the worker count
    /// (and whatever mix of hits and concurrent misses the race
    /// produces), pixels and merged stats must be bit-identical to the
    /// single-threaded uncached run.
    #[test]
    fn shared_cache_is_deterministic_across_worker_counts() {
        let img = synth::value_noise(9, 20, 3, 11); // 3 tiles, ragged tail
        let base = ScReramConfig::new(64, 9).with_optimize(Optimize::Full);
        let want = with_threads(1, || {
            edge::sc_reram_with_stats(&img, &base.without_plan_cache()).unwrap()
        });
        assert!(want.1.tiles >= 3);
        let cfg = base.with_plan_cache(Arc::new(PlanCache::new()));
        for threads in [1, 2, 4] {
            let got = with_threads(threads, || edge::sc_reram_with_stats(&img, &cfg).unwrap());
            assert_run_eq(&format!("{threads} worker(s)"), &want, &got);
            assert_eq!(
                got.1.plan_cache.unwrap().lookups(),
                want.1.tiles as u64,
                "{threads} worker(s): one lookup per tile"
            );
        }
    }
}
