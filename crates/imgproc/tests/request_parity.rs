//! Differential tests for the unified request API: `request::run` /
//! `run_on` / `run_batch` must be observationally identical to the
//! legacy per-kernel entry points they replaced — same pixels, same
//! deterministic stats, same errors — across every kernel, both
//! schedules, and with the template cache on or off. The legacy
//! wrappers are now thin shims over the request dispatch, so these
//! tests are what lets callers migrate (and lets us eventually retire
//! the shims) without a bit of behaviour drift.
//!
//! Also pins the admission-time [`ScReramConfig::validate`] error
//! messages: a service rejects bad configurations by these exact
//! strings, so they are contract, not prose.

use imgproc::request::{self, KernelRequest};
use imgproc::scbackend::CmosSngKind;
use imgproc::{
    bilinear, compositing, edge, matting, synth, Backend, CmosScConfig, GrayImage, ImgError,
    ScReramConfig, ScRunStats, Schedule,
};
use imsc::{Optimize, PlanCache, RetirementPolicy};
use std::sync::Arc;

/// One request per kernel, each spanning ≥ 2 row tiles with a ragged
/// final tile so tiling, scheduling, and assembly all do real work.
fn requests() -> Vec<KernelRequest> {
    let app = synth::app_images(9, 18, 42);
    let composite = compositing::software(&app.foreground, &app.background, &app.alpha)
        .expect("matched dimensions");
    vec![
        KernelRequest::Edge {
            image: synth::value_noise(10, 20, 3, 11),
        },
        KernelRequest::Bilinear {
            src: synth::gradient(6, 9, true),
            factor: 2,
        },
        KernelRequest::Compositing {
            foreground: app.foreground.clone(),
            background: app.background.clone(),
            alpha: app.alpha.clone(),
        },
        KernelRequest::Matting {
            image: composite,
            background: app.background,
            foreground: app.foreground,
        },
    ]
}

/// Runs the same workload through the legacy per-kernel entry point.
fn legacy_with_stats(req: &KernelRequest, cfg: &ScReramConfig) -> (GrayImage, ScRunStats) {
    match req {
        KernelRequest::Edge { image } => edge::sc_reram_with_stats(image, cfg),
        KernelRequest::Bilinear { src, factor } => bilinear::sc_reram_with_stats(src, *factor, cfg),
        KernelRequest::Compositing {
            foreground,
            background,
            alpha,
        } => compositing::sc_reram_with_stats(foreground, background, alpha, cfg),
        KernelRequest::Matting {
            image,
            background,
            foreground,
        } => matting::sc_reram_with_stats(image, background, foreground, cfg),
    }
    .expect("valid input")
}

/// Asserts the deterministic parts of two runs' stats are identical.
/// Wall-clock fields (`compile`, the pipeline report's measured
/// timings) are excluded — they vary run to run by construction.
fn assert_stats_match(got: &ScRunStats, want: &ScRunStats, label: &str) {
    assert_eq!(got.ledger, want.ledger, "{label}: ledger");
    assert_eq!(got.rn_epochs, want.rn_epochs, "{label}: rn epochs");
    assert_eq!(
        got.encode_cache_hits, want.encode_cache_hits,
        "{label}: encode-cache hits"
    );
    assert_eq!(got.tiles, want.tiles, "{label}: tiles");
    assert_eq!(
        got.scout_ops_per_pixel, want.scout_ops_per_pixel,
        "{label}: scout ops/pixel"
    );
    assert_eq!(got.stream_wear.max, want.stream_wear.max, "{label}: wear");
    assert_eq!(got.faults_injected, want.faults_injected, "{label}: faults");
    assert_eq!(
        got.pipeline.is_some(),
        want.pipeline.is_some(),
        "{label}: pipeline report presence"
    );
    match (&got.plan_cache, &want.plan_cache) {
        (None, None) => {}
        (Some(g), Some(w)) => {
            assert_eq!(g.hits, w.hits, "{label}: cache hits");
            assert_eq!(g.misses, w.misses, "{label}: cache misses");
            assert_eq!(g.fallbacks, w.fallbacks, "{label}: cache fallbacks");
        }
        _ => panic!("{label}: plan-cache run presence diverged"),
    }
}

#[test]
fn run_matches_legacy_across_schedules_and_cache() {
    for req in requests() {
        for schedule in [Schedule::PerTile, Schedule::Pipelined { arrays: 3 }] {
            for cached in [false, true] {
                let label = format!("{} {schedule:?} cached={cached}", req.kernel_name());
                let base = ScReramConfig::new(128, 9).with_schedule(schedule);
                // Fresh caches per run so hit/miss counts match too.
                let legacy_cfg = if cached {
                    base.with_plan_cache(Arc::new(PlanCache::new()))
                } else {
                    base.without_plan_cache()
                };
                let request_cfg = if cached {
                    base.with_plan_cache(Arc::new(PlanCache::new()))
                } else {
                    base.without_plan_cache()
                };
                let (want_img, want) = legacy_with_stats(&req, &legacy_cfg);
                let resp = request::run(&req, &request_cfg).expect("valid input");
                assert_eq!(resp.pixels.pixels(), want_img.pixels(), "{label}: pixels");
                let got = resp.stats.expect("sc backend reports stats");
                assert_stats_match(&got, &want, &label);
            }
        }
    }
}

#[test]
fn run_batch_matches_individual_runs() {
    // A mixed batch — every kernel plus a shape-twin edge request that
    // must coalesce — scheduled as one pipelined pass over a shared
    // template cache. Each frame must still be bit-identical to running
    // its request alone.
    let mut reqs = requests();
    reqs.push(KernelRequest::Edge {
        image: synth::checkerboard(10, 20, 2),
    });
    let cfg = ScReramConfig::new(128, 9)
        .with_schedule(Schedule::Pipelined { arrays: 3 })
        .with_plan_cache(Arc::new(PlanCache::new()));
    let batch = request::run_batch(&reqs, &cfg).expect("valid batch");
    assert_eq!(batch.len(), reqs.len());
    for (req, resp) in reqs.iter().zip(&batch) {
        let solo_cfg = ScReramConfig::new(128, 9)
            .with_schedule(Schedule::Pipelined { arrays: 3 })
            .without_plan_cache();
        let solo = request::run(req, &solo_cfg).expect("valid input");
        let label = req.kernel_name();
        assert_eq!(
            resp.pixels.pixels(),
            solo.pixels.pixels(),
            "{label}: batch pixels"
        );
        let got = resp.stats.as_ref().expect("batch stats");
        let want = solo.stats.expect("solo stats");
        assert_eq!(got.ledger, want.ledger, "{label}: batch ledger");
        assert_eq!(got.rn_epochs, want.rn_epochs, "{label}: batch epochs");
        assert_eq!(got.tiles, want.tiles, "{label}: batch tiles");
    }
}

#[test]
fn run_on_matches_legacy_baselines() {
    let cfg = ScReramConfig::new(64, 7);
    let cmos = CmosScConfig::new(64, CmosSngKind::Sobol, 7);
    for req in requests() {
        let label = req.kernel_name();
        let legacy_cmos = match &req {
            KernelRequest::Edge { image } => edge::sc_cmos(image, &cmos),
            KernelRequest::Bilinear { src, factor } => bilinear::sc_cmos(src, *factor, &cmos),
            KernelRequest::Compositing {
                foreground,
                background,
                alpha,
            } => compositing::sc_cmos(foreground, background, alpha, &cmos),
            KernelRequest::Matting {
                image,
                background,
                foreground,
            } => matting::sc_cmos(image, background, foreground, &cmos),
        }
        .expect("valid input");
        let legacy_cim = match &req {
            KernelRequest::Edge { image } => edge::binary_cim(image, 0.01, cfg.seed),
            KernelRequest::Bilinear { src, factor } => {
                bilinear::binary_cim(src, *factor, 0.01, cfg.seed)
            }
            KernelRequest::Compositing {
                foreground,
                background,
                alpha,
            } => compositing::binary_cim(foreground, background, alpha, 0.01, cfg.seed),
            KernelRequest::Matting {
                image,
                background,
                foreground,
            } => matting::binary_cim(image, background, foreground, 0.01, cfg.seed),
        }
        .expect("valid input");
        let legacy_sw = match &req {
            KernelRequest::Edge { image } => Ok(edge::software(image)),
            KernelRequest::Bilinear { src, factor } => bilinear::software(src, *factor),
            KernelRequest::Compositing {
                foreground,
                background,
                alpha,
            } => compositing::software(foreground, background, alpha),
            KernelRequest::Matting {
                image,
                background,
                foreground,
            } => matting::software(image, background, foreground),
        }
        .expect("valid input");

        for (backend, want) in [
            (Backend::Cmos(cmos), &legacy_cmos),
            (Backend::BinaryCim { fault_prob: 0.01 }, &legacy_cim),
            (Backend::Software, &legacy_sw),
        ] {
            let resp = request::run_on(&req, &backend, &cfg).expect("valid input");
            assert_eq!(
                resp.pixels.pixels(),
                want.pixels(),
                "{label} {backend:?}: pixels"
            );
            assert!(
                resp.stats.is_none(),
                "{label} {backend:?}: non-SC backends have no ledger"
            );
        }
    }
}

#[test]
fn request_validation_matches_legacy_errors() {
    let img = synth::gradient(6, 4, true);
    let cfg = ScReramConfig::new(64, 7);
    // Bad scale factor: same error, found before any work.
    let bad = KernelRequest::Bilinear {
        src: img.clone(),
        factor: 1,
    };
    let legacy = bilinear::sc_reram(&img, 1, &cfg).unwrap_err();
    let unified = request::run(&bad, &cfg).unwrap_err();
    assert_eq!(format!("{unified}"), format!("{legacy}"));
    assert!(bad.validate().is_err());
    // Mismatched compositing inputs likewise.
    let mismatched = KernelRequest::Compositing {
        foreground: img.clone(),
        background: synth::gradient(4, 6, true),
        alpha: img,
    };
    assert!(mismatched.validate().is_err());
    assert!(request::run(&mismatched, &cfg).is_err());
    // A bad request anywhere in a batch fails the whole batch upfront.
    let mut batch = requests();
    batch.push(mismatched);
    assert!(request::run_batch(&batch, &cfg).is_err());
}

#[test]
fn config_validate_pins_admission_messages() {
    let ok = ScReramConfig::new(128, 9);
    assert!(ok.validate().is_ok());
    assert!(ok
        .with_schedule(Schedule::Pipelined { arrays: 3 })
        .with_retirement(RetirementPolicy {
            max_faults_per_op: 0.01,
            min_ops: 1_000,
        })
        .validate()
        .is_ok());

    let cases: Vec<(ScReramConfig, &str)> = vec![
        (ScReramConfig::new(0, 9), "stream_len must be non-zero"),
        (
            ok.with_schedule(Schedule::Pipelined { arrays: 0 }),
            "pipelined schedule needs at least one array",
        ),
        (
            ok.with_retirement(RetirementPolicy {
                max_faults_per_op: 0.01,
                min_ops: 1_000,
            }),
            "retirement policy requires Schedule::Pipelined",
        ),
        (
            ok.with_array_faults(0, reram::faults::FaultRates::uniform(0.05)),
            "per-array fault override requires Schedule::Pipelined",
        ),
        (
            ok.with_optimize(Optimize::Full)
                .with_faults(reram::faults::FaultRates::uniform(0.05)),
            "fault injection forces the optimizer off; request Optimize::Off explicitly or drop the fault rates",
        ),
    ];
    for (cfg, want) in cases {
        let err = cfg.validate().unwrap_err();
        assert!(
            matches!(err, ImgError::Config(_)),
            "expected Config error, got {err:?}"
        );
        assert_eq!(format!("{err}"), format!("invalid configuration: {want}"));
    }
}
