//! Exercises the `parallel` feature's thread work queue in CI: a
//! multi-tile kernel run must produce bit-identical images and
//! deterministically merged ledgers whatever the worker count — including
//! on single-core machines, where `IMGPROC_TILE_THREADS` forces the
//! threaded path.
#![cfg(feature = "parallel")]

use imgproc::{edge, matting, synth, ScReramConfig};

/// Serializes env mutation: the test harness runs `#[test]`s on threads
/// of one process, and `IMGPROC_TILE_THREADS` is process-global.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` with the tile worker count pinned to `threads`.
fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("IMGPROC_TILE_THREADS", threads.to_string());
    let out = f();
    std::env::remove_var("IMGPROC_TILE_THREADS");
    out
}

#[test]
fn threaded_tiles_match_serial_run_exactly() {
    // 20 rows → 3 row tiles (TILE_ROWS = 8): genuinely ≥ 2 tiles, with a
    // ragged final tile, so the work queue has real scheduling freedom.
    let img = synth::value_noise(12, 20, 3, 11);
    let cfg = ScReramConfig::new(256, 9);

    let (serial_img, serial_stats) =
        with_threads(1, || edge::sc_reram_with_stats(&img, &cfg).unwrap());
    assert!(serial_stats.tiles >= 2, "need a multi-tile run");

    for threads in [2, 4] {
        let (par_img, par_stats) =
            with_threads(threads, || edge::sc_reram_with_stats(&img, &cfg).unwrap());
        assert_eq!(
            par_img.pixels(),
            serial_img.pixels(),
            "{threads}-thread image"
        );
        // Tile-ordered merge: every cost counter, not just totals.
        assert_eq!(
            par_stats.ledger, serial_stats.ledger,
            "{threads}-thread ledger"
        );
        assert_eq!(par_stats.rn_epochs, serial_stats.rn_epochs);
        assert_eq!(par_stats.encode_cache_hits, serial_stats.encode_cache_hits);
        assert_eq!(par_stats.tiles, serial_stats.tiles);
    }
}

#[test]
fn wear_leveled_tiles_are_deterministic_across_worker_counts() {
    // Wear-leveling makes row allocation depend on the accelerator's
    // accumulated wear map; each tile owns its accelerator, so the
    // leveled allocation stream — and therefore pixels AND the merged
    // wear summary — must be bit-identical whatever the worker count.
    let img = synth::value_noise(12, 20, 3, 17);
    let cfg = ScReramConfig::new(256, 29).with_wear_leveling(true);

    let (serial_img, serial_stats) =
        with_threads(1, || edge::sc_reram_with_stats(&img, &cfg).unwrap());
    assert!(serial_stats.tiles >= 2, "need a multi-tile run");
    assert!(serial_stats.stream_wear.max > 0);

    for threads in [2, 4] {
        let (par_img, par_stats) =
            with_threads(threads, || edge::sc_reram_with_stats(&img, &cfg).unwrap());
        assert_eq!(par_img.pixels(), serial_img.pixels(), "{threads}-thread");
        assert_eq!(
            par_stats.stream_wear, serial_stats.stream_wear,
            "{threads}-thread wear summary"
        );
        assert_eq!(par_stats.ledger, serial_stats.ledger);
    }
}

#[test]
fn threaded_matting_is_deterministic_with_fallback_pixels() {
    // Matting has data-dependent fallbacks (degenerate and zero-divisor
    // pixels); determinism must hold through those too.
    let set = synth::app_images(10, 18, 5);
    let i = imgproc::compositing::software(&set.foreground, &set.background, &set.alpha).unwrap();
    let cfg = ScReramConfig::new(64, 13);
    let (serial, serial_stats) = with_threads(1, || {
        matting::sc_reram_with_stats(&i, &set.background, &set.foreground, &cfg).unwrap()
    });
    assert!(serial_stats.tiles >= 2);
    let (threaded, threaded_stats) = with_threads(3, || {
        matting::sc_reram_with_stats(&i, &set.background, &set.foreground, &cfg).unwrap()
    });
    assert_eq!(threaded.pixels(), serial.pixels());
    assert_eq!(threaded_stats.ledger, serial_stats.ledger);
}
