//! Differential tests for the program optimizer at the kernel level:
//! `Optimize::Cse`/`Optimize::Full` must reproduce the `Optimize::Off`
//! pixels and RN-epoch counts bit-for-bit on every kernel — per-tile,
//! pipelined, and under fault injection (where the optimizer is forced
//! off) — while the scouting bill only ever shrinks, and measurably so
//! on bilinear and compositing (the ISSUE 6 acceptance metric).

use imgproc::{bilinear, compositing, edge, matting, synth, GrayImage, ScReramConfig, ScRunStats};
use imsc::Optimize;

/// Runs one kernel at Off/Cse/Full and checks value + epoch parity and
/// the op-count direction; `strict` additionally demands a real drop at
/// `Full` (the acceptance criterion for bilinear and compositing).
fn check_levels(
    base: ScReramConfig,
    strict: bool,
    kernel: &str,
    run: &dyn Fn(&ScReramConfig) -> (GrayImage, ScRunStats),
) {
    let (img_off, off) = run(&base.with_optimize(Optimize::Off));
    assert!(off.scout_ops_per_pixel > 0.0, "{kernel}: metric populated");
    for level in [Optimize::Cse, Optimize::Full] {
        let (img, s) = run(&base.with_optimize(level));
        assert_eq!(
            img.pixels(),
            img_off.pixels(),
            "{kernel} {level:?}: pixels must be bit-identical"
        );
        assert_eq!(s.rn_epochs, off.rn_epochs, "{kernel} {level:?}: epochs");
        assert_eq!(
            s.ledger.trng_fills, off.ledger.trng_fills,
            "{kernel} {level:?}: TRNG draws keep their schedule"
        );
        assert!(
            s.ledger.scout_ops() <= off.ledger.scout_ops(),
            "{kernel} {level:?}: scout ops grew"
        );
        if strict && level == Optimize::Full {
            assert!(
                s.scout_ops_per_pixel < off.scout_ops_per_pixel,
                "{kernel}: expected a measurable ops/pixel drop, got {} vs {}",
                s.scout_ops_per_pixel,
                off.scout_ops_per_pixel
            );
        }
    }
}

#[test]
fn bilinear_full_drops_ops_with_identical_pixels() {
    let src = synth::value_noise(16, 12, 3, 7);
    check_levels(ScReramConfig::new(128, 5), true, "bilinear", &|cfg| {
        bilinear::sc_reram_with_stats(&src, 2, cfg).unwrap()
    });
}

#[test]
fn compositing_full_drops_ops_with_identical_pixels() {
    let set = synth::app_images(16, 16, 42);
    check_levels(ScReramConfig::new(128, 5), true, "compositing", &|cfg| {
        compositing::sc_reram_with_stats(&set.foreground, &set.background, &set.alpha, cfg).unwrap()
    });
}

#[test]
fn edge_full_drops_ops_with_identical_pixels() {
    // Checkerboard cells are flat: whole pixels fold to constants.
    let img = synth::checkerboard(16, 16, 4);
    check_levels(ScReramConfig::new(128, 5), true, "edge", &|cfg| {
        edge::sc_reram_with_stats(&img, cfg).unwrap()
    });
}

#[test]
fn matting_parity_across_levels() {
    let set = synth::app_images(16, 16, 42);
    let i = compositing::software(&set.foreground, &set.background, &set.alpha).unwrap();
    check_levels(ScReramConfig::new(64, 13), false, "matting", &|cfg| {
        matting::sc_reram_with_stats(&i, &set.background, &set.foreground, cfg).unwrap()
    });
}

#[test]
fn pipelined_full_matches_per_tile_full() {
    // The pipelined path optimizes per-wavefront slices after the cut;
    // a deterministic optimizer over op-identical slices must keep the
    // scheduler observationally equal to the optimized per-tile run.
    use imgproc::Schedule;
    let src = synth::value_noise(8, 18, 3, 9);
    let cfg = ScReramConfig::new(128, 5).with_optimize(Optimize::Full);
    let (want_img, want) = bilinear::sc_reram_with_stats(&src, 2, &cfg).unwrap();
    assert!(want.tiles >= 2, "need a multi-tile run");
    let pipelined = cfg.with_schedule(Schedule::Pipelined { arrays: 2 });
    let (got_img, got) = bilinear::sc_reram_with_stats(&src, 2, &pipelined).unwrap();
    assert_eq!(got_img.pixels(), want_img.pixels());
    assert_eq!(got.ledger, want.ledger);
    assert_eq!(got.rn_epochs, want.rn_epochs);
    assert_eq!(got.scout_ops_per_pixel, want.scout_ops_per_pixel);
}

#[test]
fn faults_force_the_optimizer_off() {
    // Fault injection perturbs rows the rewriter cannot model; the
    // backend must ignore the knob and run bit-identically to Off —
    // including the full ledger, since no op may be elided.
    use reram::faults::FaultRates;
    let img = synth::checkerboard(12, 12, 3);
    let base = ScReramConfig::new(64, 21).with_faults(FaultRates::uniform(0.02));
    assert_eq!(
        base.with_optimize(Optimize::Full).effective_optimize(),
        Optimize::Off
    );
    let (img_off, off) =
        edge::sc_reram_with_stats(&img, &base.with_optimize(Optimize::Off)).unwrap();
    let (img_full, full) =
        edge::sc_reram_with_stats(&img, &base.with_optimize(Optimize::Full)).unwrap();
    assert_eq!(img_full.pixels(), img_off.pixels());
    assert_eq!(full.ledger, off.ledger);
    assert_eq!(full.rn_epochs, off.rn_epochs);
}
