//! Differential tests: each image kernel's emitted [`Program`] must be
//! observationally identical to the pre-refactor *eager* path — the
//! imperative per-pixel `Accelerator` call sequence the kernels used to
//! hand-write, with explicit refresh plumbing and end-of-pixel releases.
//!
//! Compared per kernel: output values (bit-exact `f64`s), the full cost
//! ledger, the RN-epoch count, and the command-trace schedule (the
//! sequence of command kinds; row *assignment* legitimately differs —
//! the planner's lifetime-aware register allocation releases rows
//! eagerly where the eager path held them to the end of the pixel, and
//! stream values are row-invariant). Row-exact trace equality of the
//! planner against a release-mirrored imperative driver is pinned
//! separately in `imsc`'s `tests/program.rs`.

use imgproc::scbackend::prob_to_pixel;
use imgproc::{bilinear, compositing, edge, matting, synth, GrayImage, ScReramConfig};
use imsc::engine::Accelerator;
use imsc::{ImscError, RnRefreshPolicy};
use nvsim::CmdKind;
use sc_core::{Fixed, ScError};

/// The accelerator `ScReramConfig::build_for_tile_with` builds for tile
/// 0, with tracing on (the config does not expose tracing; parameters
/// must stay in lockstep with `scbackend.rs`).
fn traced_acc(cfg: &ScReramConfig, policy: RnRefreshPolicy) -> Accelerator {
    Accelerator::builder()
        .stream_len(cfg.stream_len)
        .segment_bits(cfg.segment_bits)
        .seed(cfg.seed)
        .trng_bias_sigma(cfg.trng_bias_sigma)
        .variant(cfg.variant)
        .refresh_policy(policy)
        .stream_rows(24)
        .record_trace(true)
        .build()
        .unwrap()
}

fn trace_kinds(acc: &Accelerator) -> Vec<CmdKind> {
    acc.trace()
        .unwrap()
        .commands()
        .iter()
        .map(|c| c.kind)
        .collect()
}

/// Asserts the planned run is indistinguishable from the eager run.
fn assert_runs_match(planned: &Accelerator, eager: &Accelerator, got: &[f64], want: &[f64]) {
    assert_eq!(got, want, "output values");
    assert_eq!(planned.ledger(), eager.ledger(), "cost ledger");
    assert_eq!(planned.rn_epoch(), eager.rn_epoch(), "rn epochs");
    assert_eq!(trace_kinds(planned), trace_kinds(eager), "command schedule");
}

#[test]
fn compositing_program_matches_eager_path() {
    let set = synth::app_images(8, 8, 42);
    let (f, b, a) = (&set.foreground, &set.background, &set.alpha);
    let cfg = ScReramConfig::new(256, 7);

    let mut planned = traced_acc(&cfg, RnRefreshPolicy::Explicit);
    let got = compositing::emit_program(f, b, a, 0..f.height())
        .run_on(&mut planned)
        .unwrap();

    let mut acc = traced_acc(&cfg, RnRefreshPolicy::Explicit);
    let mut want = Vec::new();
    for y in 0..f.height() {
        for x in 0..f.width() {
            let pf = f.get(x, y).unwrap();
            let pb = b.get(x, y).unwrap();
            let pa = a.get(x, y).unwrap();
            let sel = if pf >= pb { pa } else { 255 - pa };
            let (hf, hb) = acc
                .encode_correlated(Fixed::from_u8(pf), Fixed::from_u8(pb))
                .unwrap();
            acc.refresh_rn_rows().unwrap();
            let hs = acc.encode(Fixed::from_u8(sel)).unwrap();
            let hc = acc.blend(hf, hb, hs).unwrap();
            want.push(acc.read_value(hc).unwrap());
            acc.release_many(&[hf, hb, hs, hc]).unwrap();
        }
    }
    assert_runs_match(&planned, &acc, &got, &want);

    // The public kernel (single tile at this size) returns the same image.
    let img = compositing::sc_reram(f, b, a, &cfg).unwrap();
    let from_program: Vec<u8> = got.iter().map(|&v| prob_to_pixel(v)).collect();
    assert_eq!(img.pixels(), &from_program[..]);
}

#[test]
fn bilinear_program_matches_eager_path() {
    let src = synth::gradient(4, 4, true);
    let factor = 2usize;
    let cfg = ScReramConfig::new(256, 5);
    let (width, height) = (src.width() * factor, src.height() * factor);

    let mut planned = traced_acc(&cfg, RnRefreshPolicy::Explicit);
    let got = bilinear::emit_program(&src, factor, 0..height)
        .run_on(&mut planned)
        .unwrap();

    // The pre-refactor eager pixel: correlated 4-tap encode, refresh,
    // correlated horizontal-select pair, two blends, refresh, vertical
    // select, final blend, read, end-of-pixel release.
    let tap = |ox: usize, oy: usize| {
        let fx = ox as f64 / factor as f64;
        let fy = oy as f64 / factor as f64;
        let x0 = fx.floor() as isize;
        let y0 = fy.floor() as isize;
        let dx = ((fx - x0 as f64) * 256.0).round().clamp(0.0, 255.0) as u8;
        let dy = ((fy - y0 as f64) * 256.0).round().clamp(0.0, 255.0) as u8;
        (
            src.get_clamped(x0, y0),
            src.get_clamped(x0 + 1, y0),
            src.get_clamped(x0, y0 + 1),
            src.get_clamped(x0 + 1, y0 + 1),
            dx,
            dy,
        )
    };
    let mut acc = traced_acc(&cfg, RnRefreshPolicy::Explicit);
    let mut want = Vec::new();
    for oy in 0..height {
        for ox in 0..width {
            let (i11, i21, i12, i22, dx, dy) = tap(ox, oy);
            let handles = acc
                .encode_correlated_many(&[
                    Fixed::from_u8(i11),
                    Fixed::from_u8(i21),
                    Fixed::from_u8(i12),
                    Fixed::from_u8(i22),
                ])
                .unwrap();
            let (h11, h21, h12, h22) = (handles[0], handles[1], handles[2], handles[3]);
            let sel_top = if i21 >= i11 { dx } else { 255 - dx };
            let sel_bot = if i22 >= i12 { dx } else { 255 - dx };
            acc.refresh_rn_rows().unwrap();
            let (hst, hsb) = acc
                .encode_correlated(Fixed::from_u8(sel_top), Fixed::from_u8(sel_bot))
                .unwrap();
            let top = acc.blend(h11, h21, hst).unwrap();
            let bottom = acc.blend(h12, h22, hsb).unwrap();
            let fdx = f64::from(dx) / 256.0;
            let et = f64::from(i11) + (f64::from(i21) - f64::from(i11)) * fdx;
            let eb = f64::from(i12) + (f64::from(i22) - f64::from(i12)) * fdx;
            let sel_v = if eb >= et { dy } else { 255 - dy };
            acc.refresh_rn_rows().unwrap();
            let hsv = acc.encode(Fixed::from_u8(sel_v)).unwrap();
            let result = acc.blend(top, bottom, hsv).unwrap();
            want.push(acc.read_value(result).unwrap());
            acc.release_many(&[h11, h21, h12, h22, hst, hsb, top, bottom, hsv, result])
                .unwrap();
        }
    }
    assert_runs_match(&planned, &acc, &got, &want);

    let img = bilinear::sc_reram(&src, factor, &cfg).unwrap();
    let from_program: Vec<u8> = got.iter().map(|&v| prob_to_pixel(v)).collect();
    assert_eq!(img.pixels(), &from_program[..]);
}

#[test]
fn edge_program_matches_eager_path() {
    let img = synth::checkerboard(8, 8, 3);
    let cfg = ScReramConfig::new(256, 4);
    let policy = RnRefreshPolicy::EveryN(edge::RN_REUSE_PIXELS);

    let mut planned = traced_acc(&cfg, policy);
    let got = edge::emit_program(&img, 0..img.height())
        .run_on(&mut planned)
        .unwrap();

    let mut acc = traced_acc(&cfg, policy);
    let mut want = Vec::new();
    for y in 0..img.height() {
        for x in 0..img.width() {
            let g = |dx: usize, dy: usize| img.get_clamped((x + dx) as isize, (y + dy) as isize);
            let (a, b, c, d) = (g(0, 0), g(1, 1), g(1, 0), g(0, 1));
            let handles = acc
                .encode_correlated_many(&[
                    Fixed::from_u8(a),
                    Fixed::from_u8(b),
                    Fixed::from_u8(c),
                    Fixed::from_u8(d),
                ])
                .unwrap();
            let g1 = acc.abs_subtract(handles[0], handles[1]).unwrap();
            let g2 = acc.abs_subtract(handles[2], handles[3]).unwrap();
            let sel = acc.trng_select().unwrap();
            let e = acc.blend(g1, g2, sel).unwrap();
            want.push(acc.read_value(e).unwrap());
            acc.release_many(&[
                handles[0], handles[1], handles[2], handles[3], g1, g2, sel, e,
            ])
            .unwrap();
        }
    }
    assert_runs_match(&planned, &acc, &got, &want);

    let out = edge::sc_reram(&img, &cfg).unwrap();
    let from_program: Vec<u8> = got.iter().map(|&v| prob_to_pixel(v)).collect();
    assert_eq!(out.pixels(), &from_program[..]);
}

#[test]
fn matting_program_matches_eager_path() {
    // Inputs with degenerate (F == B) pixels and near-equal F/B pixels,
    // so both fallback paths (emission-time constant, stochastic
    // division-by-zero) are exercised alongside the regular CORDIV path.
    let f = GrayImage::from_fn(8, 8, |x, y| {
        if (x + y) % 5 == 0 {
            100
        } else {
            (40 + 23 * x + 11 * y) as u8
        }
    });
    let b = GrayImage::from_fn(8, 8, |x, y| {
        if (x + y) % 5 == 0 {
            100 // == F: degenerate matte
        } else if (x + y) % 5 == 1 {
            (39 + 23 * x + 11 * y) as u8 // |F − B| = 1: zero-prone divisor
        } else {
            (255 - 2 * (x + 7 * y)) as u8
        }
    });
    let alpha = synth::app_images(8, 8, 77).alpha;
    let i = compositing::software(&f, &b, &alpha).unwrap();
    let cfg = ScReramConfig::new(64, 3); // short streams: zeros do occur
    let policy = RnRefreshPolicy::EveryN(matting::RN_REUSE_PIXELS);

    let mut planned = traced_acc(&cfg, policy);
    let got = matting::emit_program(&i, &b, &f, 0..i.height())
        .run_on(&mut planned)
        .unwrap();

    let mut acc = traced_acc(&cfg, policy);
    let mut want = Vec::new();
    let mut zero_divisors = 0u32;
    for y in 0..i.height() {
        for x in 0..i.width() {
            let pi = i.get(x, y).unwrap();
            let pb = b.get(x, y).unwrap();
            let pf = f.get(x, y).unwrap();
            if pf == pb {
                want.push(0.0);
                continue;
            }
            let handles = acc
                .encode_correlated_many(&[
                    Fixed::from_u8(pi),
                    Fixed::from_u8(pb),
                    Fixed::from_u8(pf),
                ])
                .unwrap();
            let (hi, hb, hf) = (handles[0], handles[1], handles[2]);
            let d_num = acc.abs_subtract(hi, hb).unwrap();
            let d_den = acc.abs_subtract(hf, hb).unwrap();
            match acc.divide(d_num, d_den) {
                Ok(q) => {
                    want.push(acc.read_value(q).unwrap());
                    acc.release(q).unwrap();
                }
                Err(ImscError::Stochastic(ScError::DivisionByZero)) => {
                    want.push(0.0);
                    zero_divisors += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
            acc.release_many(&[hi, hb, hf, d_num, d_den]).unwrap();
        }
    }
    assert!(
        zero_divisors > 0,
        "inputs must exercise the stochastic division-by-zero fallback"
    );
    assert_runs_match(&planned, &acc, &got, &want);

    let est = matting::sc_reram(&i, &b, &f, &cfg).unwrap();
    let from_program: Vec<u8> = got.iter().map(|&v| prob_to_pixel(v)).collect();
    assert_eq!(est.pixels(), &from_program[..]);
}
