//! Energy/latency ground truth: the analytic cost model and nvsim
//! replay of the *real* schedules must agree.
//!
//! Two tiers of agreement are pinned, for all four kernels in both
//! `PerTile` and `Pipelined` scheduling:
//!
//! 1. **Plumbing-exact** (relative gap < 1e-9): the replayed command
//!    stream's serial busy time and energy equal the ledger's replay
//!    mirrors ([`CostLedger::replay_latency_ns`] /
//!    [`CostLedger::replay_energy_nj`]), and the command count equals
//!    [`CostLedger::replay_commands`]. The replay memory config derives
//!    from the same calibration table, so any disagreement means the
//!    instrumentation dropped or invented commands — a failure.
//! 2. **Model band** (documented below): the paper-facing Table III
//!    estimates ([`CostLedger::latency_ns`] / [`CostLedger::energy_nj`])
//!    differ from replay by known, bounded asymmetries — the analytic
//!    latency excludes TRNG-fill/SBS/stream bookkeeping writes and adds
//!    an XOR second-cycle term; the analytic energy prices scouting-logic
//!    ops at the cheaper `e_slop_bit` rate. Measured across the four
//!    kernels both ratios stay within [0.5, 1.1]; drifting outside that
//!    band fails the suite (the models diverged).

use imgproc::{bilinear, compositing, edge, matting, synth, ScReramConfig, ScRunStats, Schedule};
use reram::energy::ReramCosts;

const STREAM_LEN: usize = 64;

/// The documented model band: analytic Table III estimate ÷ replayed
/// ground truth, for latency and energy alike (see module docs).
const MODEL_BAND: std::ops::RangeInclusive<f64> = 0.5..=1.1;

fn base_cfg(seed: u64) -> ScReramConfig {
    ScReramConfig::new(STREAM_LEN, seed)
        .with_optimize(imsc::Optimize::Off)
        .with_trace_replay(true)
}

/// Runs every kernel on small multi-tile inputs and returns
/// `(kernel, stats)` pairs.
fn run_all(cfg: &ScReramConfig) -> Vec<(&'static str, ScRunStats)> {
    let mut out = Vec::new();

    let img = synth::value_noise(8, 18, 3, 11);
    out.push(("edge", edge::sc_reram_with_stats(&img, cfg).unwrap().1));

    let src = synth::gradient(5, 9, true); // 10×18 output
    out.push((
        "bilinear",
        bilinear::sc_reram_with_stats(&src, 2, cfg).unwrap().1,
    ));

    let set = synth::app_images(8, 18, 42);
    out.push((
        "compositing",
        compositing::sc_reram_with_stats(&set.foreground, &set.background, &set.alpha, cfg)
            .unwrap()
            .1,
    ));

    let i = imgproc::compositing::software(&set.foreground, &set.background, &set.alpha).unwrap();
    out.push((
        "matting",
        matting::sc_reram_with_stats(&i, &set.background, &set.foreground, cfg)
            .unwrap()
            .1,
    ));
    out
}

/// The full cross-check of one kernel run (see module docs).
fn check(kernel: &str, mode: &str, stats: &ScRunStats) {
    let costs = ReramCosts::calibrated();
    let replay = stats
        .replay
        .unwrap_or_else(|| panic!("{kernel}/{mode}: trace replay must produce a summary"));
    let ledger = &stats.ledger;

    // Tier 1: plumbing-exact agreement with the ledger's replay mirror.
    assert_eq!(
        replay.commands,
        ledger.replay_commands(),
        "{kernel}/{mode}: replayed command count"
    );
    let busy_gap = replay.busy_vs_ledger(ledger, &costs);
    assert!(
        busy_gap < 1e-9,
        "{kernel}/{mode}: busy-time gap {busy_gap:e} (replay {} vs ledger {})",
        replay.busy_ns,
        ledger.replay_latency_ns(&costs)
    );
    let energy_gap = replay.energy_vs_ledger(ledger, &costs, STREAM_LEN);
    assert!(
        energy_gap < 1e-9,
        "{kernel}/{mode}: energy gap {energy_gap:e} (replay {} vs ledger {})",
        replay.energy_nj,
        ledger.replay_energy_nj(&costs, STREAM_LEN)
    );

    // Bank-parallel geometry: the makespan sits between the busiest
    // bank's lower bound and the fully serial sum.
    assert!(replay.banks_used >= 1, "{kernel}/{mode}: banks used");
    assert!(
        replay.time_ns <= replay.busy_ns + 1e-6,
        "{kernel}/{mode}: makespan beyond serial busy sum"
    );
    assert!(
        replay.time_ns + 1e-6 >= replay.busy_ns / replay.banks_used as f64,
        "{kernel}/{mode}: makespan under the per-bank average"
    );

    // Tier 2: the paper-facing analytic model stays in its band.
    let latency_ratio = ledger.latency_ns(&costs) / replay.busy_ns;
    assert!(
        MODEL_BAND.contains(&latency_ratio),
        "{kernel}/{mode}: analytic/replay latency ratio {latency_ratio} outside {MODEL_BAND:?}"
    );
    let energy_ratio = ledger.energy_nj(&costs, STREAM_LEN) / replay.energy_nj;
    assert!(
        MODEL_BAND.contains(&energy_ratio),
        "{kernel}/{mode}: analytic/replay energy ratio {energy_ratio} outside {MODEL_BAND:?}"
    );
}

#[test]
fn per_tile_replay_matches_the_analytic_model() {
    for (kernel, stats) in run_all(&base_cfg(9)) {
        assert!(stats.tiles >= 2, "{kernel}: need a multi-tile run");
        check(kernel, "PerTile", &stats);
    }
}

#[test]
fn pipelined_replay_matches_the_analytic_model() {
    let cfg = base_cfg(9).with_schedule(Schedule::Pipelined { arrays: 3 });
    for (kernel, stats) in run_all(&cfg) {
        check(kernel, "Pipelined", &stats);
        // Multi-array runs map slices onto distinct banks.
        assert!(
            stats.replay.unwrap().banks_used >= 2,
            "{kernel}: pipelined replay should use several banks"
        );
    }
}

#[test]
fn replay_does_not_perturb_pixels_or_ledger() {
    let img = synth::value_noise(8, 18, 3, 11);
    let plain = ScReramConfig::new(STREAM_LEN, 9).with_optimize(imsc::Optimize::Off);
    let (want_img, want) = edge::sc_reram_with_stats(&img, &plain).unwrap();
    let (got_img, got) = edge::sc_reram_with_stats(&img, &plain.with_trace_replay(true)).unwrap();
    assert_eq!(got_img.pixels(), want_img.pixels());
    assert_eq!(got.ledger, want.ledger);
    assert!(want.replay.is_none());
    assert!(got.replay.is_some());
}

/// Satellite: streaming replay must stay bounded — per-slice sub-traces
/// are drained into the simulator as slices retire, so the peak number
/// of buffered commands is one slice's worth, not the whole frame's.
#[test]
fn pipelined_replay_buffering_is_bounded_by_one_slice() {
    let img = synth::value_noise(8, 32, 3, 7); // 4 row tiles
    let cfg = base_cfg(3).with_schedule(Schedule::Pipelined { arrays: 2 });
    let (_, stats) = edge::sc_reram_with_stats(&img, &cfg).unwrap();
    assert_eq!(stats.tiles, 4);
    let replay = stats.replay.unwrap();
    assert!(replay.peak_buffered_commands > 0);
    // Slices retire in order: the buffer never holds more than the
    // largest single slice (~1/4 of the stream here; assert half with
    // headroom). Regression guard against re-materializing the frame.
    assert!(
        replay.peak_buffered_commands < replay.commands / 2,
        "peak {} vs total {}: streaming bound lost",
        replay.peak_buffered_commands,
        replay.commands
    );
}

/// Satellite: `Optimize::Full` programs replay to no more commands and
/// no more energy than `Optimize::Off` on every kernel — the optimizer's
/// savings are real in the replayed stream, not just the analytic model.
#[test]
fn optimized_traces_replay_to_fewer_commands_and_joules() {
    let off = run_all(&base_cfg(5));
    let full = run_all(&base_cfg(5).with_optimize(imsc::Optimize::Full));
    let mut strictly_better = 0;
    for ((kernel, o), (_, f)) in off.iter().zip(&full) {
        let (o, f) = (o.replay.unwrap(), f.replay.unwrap());
        assert!(
            f.commands <= o.commands,
            "{kernel}: Full replays {} commands vs Off {}",
            f.commands,
            o.commands
        );
        assert!(
            f.energy_nj <= o.energy_nj + 1e-9,
            "{kernel}: Full replays {} nJ vs Off {}",
            f.energy_nj,
            o.energy_nj
        );
        if f.commands < o.commands {
            strictly_better += 1;
        }
    }
    assert!(
        strictly_better >= 2,
        "the optimizer should strictly shrink several kernels' streams"
    );
}

/// Retired arrays' replayed work stays in the stream: when a
/// fault-domain run retires an array mid-run, the retiring round's
/// unkept slices are discarded and rescheduled — but the hardware
/// really spent that energy, so the replay keeps it. The merged ledger
/// sums only the *kept* slices, hence strictly fewer commands than the
/// replayed stream. Tier-1 exactness is intentionally not asserted
/// here: the replay is the ground truth that *includes* the waste the
/// ledger cannot see.
#[test]
fn retirement_keeps_discarded_work_in_the_replay_stream() {
    let src = synth::gradient(5, 9, true);
    let cfg = base_cfg(7)
        .with_schedule(Schedule::Pipelined { arrays: 3 })
        .with_array_faults(1, reram::faults::FaultRates::uniform(0.05))
        .with_retirement(imsc::RetirementPolicy {
            max_faults_per_op: 0.01,
            min_ops: 1_000,
        });
    let (_, stats) = bilinear::sc_reram_with_stats(&src, 2, &cfg).unwrap();
    let report = stats.pipeline.expect("pipelined run reports");
    assert!(report.retired_arrays >= 1, "the faulty array must retire");
    assert!(report.rescheduled_slices >= 1, "work must be rescheduled");
    let replay = stats.replay.expect("trace replay enabled");
    assert!(
        replay.commands > stats.ledger.replay_commands(),
        "replayed {} commands should exceed the kept ledger's {} — the \
         discarded round's work belongs in the energy ground truth",
        replay.commands,
        stats.ledger.replay_commands()
    );
}

/// Satellite: encode-run coalescing (batched IMSNG conversions) shows up
/// as row-buffer locality. A batch of `k` conversions re-asserts each
/// segment's RN row `5k` times consecutively (`5k−1` hits per segment),
/// beating the `4` hits/segment an unbatched conversion gets — so the
/// bilinear anchor, whose planner coalesces encode runs, must clear the
/// unbatched bound.
#[test]
fn bilinear_encode_coalescing_produces_row_hits() {
    let src = synth::gradient(5, 9, true);
    let cfg = base_cfg(21);
    let (_, stats) = bilinear::sc_reram_with_stats(&src, 2, &cfg).unwrap();
    let replay = stats.replay.unwrap();
    let m = u64::from(cfg.segment_bits);
    let sense = stats.ledger.imsng.sense_ops;
    assert_eq!(sense % (5 * m), 0, "IMSNG senses come 5·M per conversion");
    let conversions = sense / (5 * m);
    assert!(conversions > 0);
    assert!(
        replay.row_hits > conversions * 4 * m,
        "row hits {} do not beat the unbatched bound {} ({} conversions)",
        replay.row_hits,
        conversions * 4 * m,
        conversions
    );
}
