//! End-to-end fault tolerance: wear-leveling row allocation and
//! fault-domain shard retirement on the real image kernels.
//!
//! Wear-leveling must change *where* streams live without changing
//! *what* they compute; retirement must detect a pathological array in a
//! pipelined farm, discard its contributions, and reschedule onto clean
//! survivors — losslessly, because slice seeds depend only on the tile.

use imgproc::{bilinear, compositing, matting, metrics, synth, ScReramConfig, Schedule};
use imsc::RetirementPolicy;
use reram::faults::FaultRates;

/// Per-kernel PSNR floors (dB) vs the exact software kernels at N = 256.
/// Comfortably below the measured fault-free values (bilinear ≈ 31 dB,
/// matting recomposite ≈ 35 dB) but far above what kept faulty slices
/// would produce.
const BILINEAR_PSNR_FLOOR: f64 = 27.0;
const MATTING_PSNR_FLOOR: f64 = 27.0;

/// A three-array pipelined farm whose array 1 flips bits heavily; the
/// retirement policy trips on the first slice the bad array touches.
fn lopsided(cfg: ScReramConfig) -> ScReramConfig {
    cfg.with_schedule(Schedule::Pipelined { arrays: 3 })
        .with_array_faults(1, FaultRates::uniform(0.05))
        .with_retirement(RetirementPolicy {
            max_faults_per_op: 0.5,
            min_ops: 64,
        })
}

#[test]
fn wear_leveling_preserves_kernel_pixels_and_flattens_wear() {
    let src = synth::value_noise(16, 24, 3, 7);
    let cfg = ScReramConfig::new(256, 11);
    let (plain, plain_stats) = bilinear::sc_reram_with_stats(&src, 2, &cfg).unwrap();
    let (leveled, leveled_stats) =
        bilinear::sc_reram_with_stats(&src, 2, &cfg.with_wear_leveling(true)).unwrap();

    assert_eq!(plain.pixels(), leveled.pixels(), "pixels must not change");
    assert_eq!(plain_stats.ledger, leveled_stats.ledger);
    assert_eq!(
        plain_stats.stream_wear.total, leveled_stats.stream_wear.total,
        "leveling moves writes, it does not add any"
    );
    assert!(
        plain_stats.stream_wear.max >= 2 * leveled_stats.stream_wear.max,
        "hottest row must at least halve: {} vs {}",
        plain_stats.stream_wear.max,
        leveled_stats.stream_wear.max
    );
    assert!(leveled_stats.stream_wear.max_mean_ratio() < plain_stats.stream_wear.max_mean_ratio());
}

#[test]
fn retirement_is_lossless_with_clean_survivors() {
    // 24 output rows → 3 tiles over 3 arrays: the round-robin deal puts
    // tile 1 on the pathological array, which must be retired and its
    // slice re-run on a survivor.
    let src = synth::value_noise(16, 12, 3, 19);
    let cfg = ScReramConfig::new(256, 23);
    let (reference, _) = bilinear::sc_reram_with_stats(&src, 2, &cfg).unwrap();

    let (out, stats) = bilinear::sc_reram_with_stats(&src, 2, &lopsided(cfg)).unwrap();
    let report = stats.pipeline.expect("pipelined run reports");
    assert_eq!(report.retired_arrays, 1, "the bad array must retire");
    assert!(report.rescheduled_slices >= 1);
    assert_eq!(stats.faults_injected, 0, "no faulty slice result was kept");
    // Slice seeds depend only on the tile, so rescheduling onto a clean
    // survivor reproduces exactly what a healthy farm computes.
    assert_eq!(out.pixels(), reference.pixels());

    let software = bilinear::software(&src, 2).unwrap();
    let psnr = metrics::psnr(&software, &out).unwrap();
    assert!(psnr > BILINEAR_PSNR_FLOOR, "bilinear psnr {psnr:.2} dB");
}

#[test]
fn matting_fallbacks_survive_shard_retirement() {
    // Matting exercises the documented fault fallback (divide_or on
    // degenerate denominators) plus XOR/CORDIV correlated encodes; the
    // retired shard must not perturb any of it.
    let set = synth::app_images(12, 24, 31);
    let i = compositing::software(&set.foreground, &set.background, &set.alpha).unwrap();
    let cfg = ScReramConfig::new(256, 37);

    let (clean, _) =
        matting::sc_reram_with_stats(&i, &set.background, &set.foreground, &cfg).unwrap();
    let (retired, stats) =
        matting::sc_reram_with_stats(&i, &set.background, &set.foreground, &lopsided(cfg)).unwrap();
    assert_eq!(stats.pipeline.expect("pipelined").retired_arrays, 1);
    assert_eq!(
        retired.pixels(),
        clean.pixels(),
        "retirement must not move matting's fallback pixels"
    );

    // Quality is judged on the recomposite, like Table IV: the PSNR
    // delta of the retired run vs the clean run is exactly zero (bit
    // identity above), and both clear the kernel floor.
    let rec_true = matting::recomposite(&set.foreground, &set.background, &set.alpha).unwrap();
    let rec_est = matting::recomposite(&set.foreground, &set.background, &retired).unwrap();
    let psnr = metrics::psnr(&rec_true, &rec_est).unwrap();
    assert!(psnr > MATTING_PSNR_FLOOR, "matting psnr {psnr:.2} dB");
}

#[test]
fn an_all_faulty_farm_errors_instead_of_returning_garbage() {
    let src = synth::value_noise(8, 12, 3, 3);
    let cfg = ScReramConfig::new(64, 5)
        .with_schedule(Schedule::Pipelined { arrays: 2 })
        .with_faults(FaultRates::uniform(0.05))
        .with_retirement(RetirementPolicy {
            max_faults_per_op: 0.1,
            min_ops: 1,
        });
    let err = bilinear::sc_reram_with_stats(&src, 2, &cfg).unwrap_err();
    assert!(format!("{err}").contains("retired"), "{err}");
}

#[test]
fn invalid_fault_rates_surface_as_config_errors() {
    let src = synth::value_noise(8, 8, 3, 3);
    let cfg = ScReramConfig::new(64, 5).with_faults(FaultRates {
        maj: f64::NAN,
        ..FaultRates::none()
    });
    let err = bilinear::sc_reram_with_stats(&src, 2, &cfg).unwrap_err();
    assert!(format!("{err}").contains("fault_rates.maj"), "{err}");
}
