//! Accuracy impact of the kernels' RN-realization reuse schedules.
//!
//! Every SC-ReRAM kernel opts into some realization reuse (`EveryN` or
//! explicit per-pixel refresh points) where the induced cross-pixel
//! stream correlation is harmless; these tests measure each kernel under
//! its default schedule against the same kernel forced back to
//! `PerEncode` (a fresh realization for every encode batch) and pin that
//! the accuracy cost stays small while the entropy cost drops.

use imgproc::scbackend::ScReramConfig;
use imgproc::{bilinear, compositing, edge, matting, metrics, synth};
use imsc::RnRefreshPolicy;

/// PSNR penalty (dB) the reuse schedules are allowed versus `PerEncode`.
/// The measured deltas hover around zero (reuse sometimes wins — both
/// runs sit on the same stochastic noise floor); the bound leaves ~4σ of
/// seed-to-seed wobble.
const MAX_PSNR_PENALTY_DB: f64 = 2.0;

fn per_encode(cfg: &ScReramConfig) -> ScReramConfig {
    cfg.with_refresh_policy(RnRefreshPolicy::PerEncode)
}

#[test]
fn edge_reuse_accuracy_and_entropy() {
    let img = synth::gradient(10, 10, true);
    let exact = edge::software(&img);
    let cfg = ScReramConfig::new(256, 4);
    let (reuse_img, reuse_stats) = edge::sc_reram_with_stats(&img, &cfg).unwrap();
    let (fresh_img, fresh_stats) = edge::sc_reram_with_stats(&img, &per_encode(&cfg)).unwrap();
    let p_reuse = metrics::psnr(&exact, &reuse_img).unwrap();
    let p_fresh = metrics::psnr(&exact, &fresh_img).unwrap();
    eprintln!("reuse {p_reuse:.2} dB vs fresh {p_fresh:.2} dB");
    assert!(
        p_reuse > p_fresh - MAX_PSNR_PENALTY_DB,
        "reuse {p_reuse} dB vs fresh {p_fresh} dB"
    );
    // EveryN(8) with one encode batch per pixel: ~8× fewer realizations
    // and TRNG fills.
    assert!(
        reuse_stats.rn_epochs * 6 < fresh_stats.rn_epochs,
        "epochs {} vs {}",
        reuse_stats.rn_epochs,
        fresh_stats.rn_epochs
    );
    // Fills include the per-pixel TRNG select row (one per pixel in both
    // runs); the refresh-driven share still drops ~8×.
    assert!(reuse_stats.ledger.trng_fills * 2 < fresh_stats.ledger.trng_fills);
}

#[test]
fn matting_reuse_accuracy_and_entropy() {
    let set = synth::app_images(10, 10, 77);
    let i = compositing::software(&set.foreground, &set.background, &set.alpha).unwrap();
    let cfg = ScReramConfig::new(256, 3);
    let (reuse_est, reuse_stats) =
        matting::sc_reram_with_stats(&i, &set.background, &set.foreground, &cfg).unwrap();
    let (fresh_est, fresh_stats) =
        matting::sc_reram_with_stats(&i, &set.background, &set.foreground, &per_encode(&cfg))
            .unwrap();
    let rec_true = matting::recomposite(&set.foreground, &set.background, &set.alpha).unwrap();
    let rec_reuse = matting::recomposite(&set.foreground, &set.background, &reuse_est).unwrap();
    let rec_fresh = matting::recomposite(&set.foreground, &set.background, &fresh_est).unwrap();
    let p_reuse = metrics::psnr(&rec_true, &rec_reuse).unwrap();
    let p_fresh = metrics::psnr(&rec_true, &rec_fresh).unwrap();
    eprintln!("reuse {p_reuse:.2} dB vs fresh {p_fresh:.2} dB");
    assert!(
        p_reuse > p_fresh - MAX_PSNR_PENALTY_DB,
        "reuse {p_reuse} dB vs fresh {p_fresh} dB"
    );
    assert!(reuse_stats.rn_epochs * 6 < fresh_stats.rn_epochs);
}

#[test]
fn compositing_reuse_accuracy_and_entropy() {
    let set = synth::app_images(12, 12, 42);
    let exact = compositing::software(&set.foreground, &set.background, &set.alpha).unwrap();
    let cfg = ScReramConfig::new(256, 7);
    let (reuse_img, reuse_stats) =
        compositing::sc_reram_with_stats(&set.foreground, &set.background, &set.alpha, &cfg)
            .unwrap();
    let (fresh_img, fresh_stats) = compositing::sc_reram_with_stats(
        &set.foreground,
        &set.background,
        &set.alpha,
        &per_encode(&cfg),
    )
    .unwrap();
    let p_reuse = metrics::psnr(&exact, &reuse_img).unwrap();
    let p_fresh = metrics::psnr(&exact, &fresh_img).unwrap();
    eprintln!("reuse {p_reuse:.2} dB vs fresh {p_fresh:.2} dB");
    assert!(
        p_reuse > p_fresh - MAX_PSNR_PENALTY_DB,
        "reuse {p_reuse} dB vs fresh {p_fresh} dB"
    );
    // One explicit refresh per pixel instead of two: half the epochs.
    assert!(
        reuse_stats.rn_epochs * 3 < fresh_stats.rn_epochs * 2,
        "epochs {} vs {}",
        reuse_stats.rn_epochs,
        fresh_stats.rn_epochs
    );
}

#[test]
fn bilinear_reuse_accuracy_and_entropy() {
    let src = synth::gradient(6, 6, true);
    let exact = bilinear::software(&src, 2).unwrap();
    let cfg = ScReramConfig::new(256, 5);
    let (reuse_img, reuse_stats) = bilinear::sc_reram_with_stats(&src, 2, &cfg).unwrap();
    let (fresh_img, fresh_stats) =
        bilinear::sc_reram_with_stats(&src, 2, &per_encode(&cfg)).unwrap();
    let p_reuse = metrics::psnr(&exact, &reuse_img).unwrap();
    let p_fresh = metrics::psnr(&exact, &fresh_img).unwrap();
    eprintln!("reuse {p_reuse:.2} dB vs fresh {p_fresh:.2} dB");
    assert!(
        p_reuse > p_fresh - MAX_PSNR_PENALTY_DB,
        "reuse {p_reuse} dB vs fresh {p_fresh} dB"
    );
    // Two refreshes per pixel instead of three.
    assert!(
        reuse_stats.rn_epochs * 4 < fresh_stats.rn_epochs * 3,
        "epochs {} vs {}",
        reuse_stats.rn_epochs,
        fresh_stats.rn_epochs
    );
}
