//! Image-quality metrics: MSE, PSNR, SSIM (Table IV's yardsticks).

use crate::error::ImgError;
use crate::image::GrayImage;

/// Mean squared error between two images (gray-level units squared).
///
/// # Errors
///
/// Returns [`ImgError::DimensionMismatch`] for unequal dimensions.
pub fn mse(a: &GrayImage, b: &GrayImage) -> Result<f64, ImgError> {
    check_dims(a, b)?;
    let sum: f64 = a
        .pixels()
        .iter()
        .zip(b.pixels())
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum();
    Ok(sum / a.pixels().len() as f64)
}

/// Peak signal-to-noise ratio in dB (`∞` for identical images).
///
/// # Errors
///
/// Returns [`ImgError::DimensionMismatch`] for unequal dimensions.
pub fn psnr(a: &GrayImage, b: &GrayImage) -> Result<f64, ImgError> {
    let m = mse(a, b)?;
    if m == 0.0 {
        Ok(f64::INFINITY)
    } else {
        Ok(10.0 * (255.0 * 255.0 / m).log10())
    }
}

/// Structural similarity index in `[-1, 1]`, computed over 8×8 windows
/// with stride 4 and the standard constants
/// `C₁ = (0.01·255)²`, `C₂ = (0.03·255)²`.
///
/// # Errors
///
/// Returns [`ImgError::DimensionMismatch`] for unequal dimensions or
/// [`ImgError::InvalidParameter`] for images smaller than one window.
pub fn ssim(a: &GrayImage, b: &GrayImage) -> Result<f64, ImgError> {
    check_dims(a, b)?;
    const WIN: usize = 8;
    const STRIDE: usize = 4;
    if a.width() < WIN || a.height() < WIN {
        return Err(ImgError::InvalidParameter(
            "images must be at least 8x8 for ssim",
        ));
    }
    let c1 = (0.01 * 255.0) * (0.01 * 255.0);
    let c2 = (0.03 * 255.0) * (0.03 * 255.0);
    let mut total = 0.0;
    let mut windows = 0usize;
    let mut wy = 0;
    while wy + WIN <= a.height() {
        let mut wx = 0;
        while wx + WIN <= a.width() {
            let mut sum_a = 0.0;
            let mut sum_b = 0.0;
            let mut sum_aa = 0.0;
            let mut sum_bb = 0.0;
            let mut sum_ab = 0.0;
            for dy in 0..WIN {
                for dx in 0..WIN {
                    let pa = f64::from(a.get(wx + dx, wy + dy).expect("window in bounds"));
                    let pb = f64::from(b.get(wx + dx, wy + dy).expect("window in bounds"));
                    sum_a += pa;
                    sum_b += pb;
                    sum_aa += pa * pa;
                    sum_bb += pb * pb;
                    sum_ab += pa * pb;
                }
            }
            let n = (WIN * WIN) as f64;
            let mu_a = sum_a / n;
            let mu_b = sum_b / n;
            let var_a = (sum_aa / n - mu_a * mu_a).max(0.0);
            let var_b = (sum_bb / n - mu_b * mu_b).max(0.0);
            let cov = sum_ab / n - mu_a * mu_b;
            let s = ((2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2))
                / ((mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2));
            total += s;
            windows += 1;
            wx += STRIDE;
        }
        wy += STRIDE;
    }
    Ok(total / windows as f64)
}

/// SSIM expressed as the percentage the paper reports (`ssim × 100`).
///
/// # Errors
///
/// Same as [`ssim`].
pub fn ssim_percent(a: &GrayImage, b: &GrayImage) -> Result<f64, ImgError> {
    Ok(ssim(a, b)? * 100.0)
}

fn check_dims(a: &GrayImage, b: &GrayImage) -> Result<(), ImgError> {
    if !a.same_dims(b) {
        return Err(ImgError::DimensionMismatch {
            expected: (a.width(), a.height()),
            got: (b.width(), b.height()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn identical_images_are_perfect() {
        let img = synth::value_noise(32, 32, 8, 1);
        assert_eq!(mse(&img, &img).unwrap(), 0.0);
        assert_eq!(psnr(&img, &img).unwrap(), f64::INFINITY);
        assert!((ssim(&img, &img).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_noise_gives_high_psnr_and_ssim() {
        let a = synth::value_noise(32, 32, 8, 2);
        let b = GrayImage::from_fn(32, 32, |x, y| {
            a.get(x, y).unwrap().saturating_add(((x + y) % 3) as u8)
        });
        let p = psnr(&a, &b).unwrap();
        assert!(p > 40.0, "psnr {p}");
        assert!(ssim(&a, &b).unwrap() > 0.97);
    }

    #[test]
    fn heavy_corruption_degrades_metrics() {
        let a = synth::gradient(32, 32, true);
        let b = GrayImage::from_fn(32, 32, |x, y| {
            if (x * 31 + y * 17) % 3 == 0 {
                255 - a.get(x, y).unwrap()
            } else {
                a.get(x, y).unwrap()
            }
        });
        assert!(psnr(&a, &b).unwrap() < 20.0);
        assert!(ssim(&a, &b).unwrap() < 0.8);
    }

    #[test]
    fn psnr_matches_hand_computation() {
        let a = GrayImage::from_fn(8, 8, |_, _| 100);
        let b = GrayImage::from_fn(8, 8, |_, _| 110);
        // MSE = 100 → PSNR = 10·log10(65025/100) ≈ 28.13 dB.
        let p = psnr(&a, &b).unwrap();
        assert!((p - 28.1308).abs() < 0.001, "{p}");
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = GrayImage::new(8, 8);
        let b = GrayImage::new(8, 9);
        assert!(mse(&a, &b).is_err());
        assert!(ssim(&a, &b).is_err());
    }

    #[test]
    fn tiny_images_rejected_by_ssim() {
        let a = GrayImage::new(4, 4);
        assert!(matches!(ssim(&a, &a), Err(ImgError::InvalidParameter(_))));
    }
}
