//! Deterministic program scheduling across row tiles for the SC-ReRAM
//! image kernels.
//!
//! The in-memory kernels are embarrassingly parallel across pixels, but a
//! hardware accelerator instance is stateful (TRNG, row allocator, cost
//! ledger). The tiling layer therefore splits the *output* image into
//! fixed-height row tiles and runs one accelerator instance per tile —
//! mirroring how a multi-array deployment shards a frame across banks
//! (cf. `imsc::pipeline`). Tile geometry and per-tile seeds are pure
//! functions of the image size and the configured master seed, so results
//! are bit-identical whether tiles execute sequentially or on a thread
//! pool, and per-tile [`CostLedger`]s merge in tile order so accumulated
//! hardware-cost numbers (the Table III / Fig. 4–5 inputs) are unchanged
//! by parallelism.
//!
//! Since the program-IR refactor, the kernels are *program emitters*: for
//! each tile they emit one [`imsc::Program`] covering the tile's pixels,
//! and [`run_tile_programs`] is the scheduler that partitions that
//! program batch across per-tile accelerators — building the tile's
//! accelerator, planning the tile's program (lifetime-aware row reuse,
//! coalesced encodes, refresh-group boundaries), executing it, and
//! quantizing the outputs to pixels. With the `parallel` feature enabled,
//! whole programs run per tile on `std::thread::scope` workers via an
//! atomic work queue (this environment pins dependencies, so no rayon;
//! the seam is the same one a rayon pool would plug into), and the
//! per-tile ledgers still merge in tile order.

use crate::error::ImgError;
use crate::scbackend::prob_to_pixel;
use imsc::cost::CostLedger;
use imsc::engine::Accelerator;
use imsc::program::Program;

/// Output rows per tile. Small enough to parallelize modest images,
/// large enough to amortize accelerator construction per tile.
pub(crate) const TILE_ROWS: usize = 8;

/// The result of processing one row tile.
#[derive(Debug, Clone)]
pub(crate) struct TileOut {
    /// Row-major pixels of this tile (`rows.len() * width` entries).
    pub pixels: Vec<u8>,
    /// The tile accelerator's accumulated hardware-cost ledger.
    pub ledger: CostLedger,
    /// Encode-cache hits observed by the tile accelerator.
    pub cache_hits: u64,
    /// RN realizations (epochs) the tile accelerator consumed.
    pub rn_epochs: u64,
}

/// Aggregate statistics of one tiled SC-ReRAM kernel run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScRunStats {
    /// Hardware-cost totals, merged deterministically across tiles.
    pub ledger: CostLedger,
    /// Total encode-cache hits across tile accelerators.
    pub encode_cache_hits: u64,
    /// Total RN realizations consumed across tile accelerators — the
    /// direct measure of how much the kernel's refresh policy reuses
    /// random-number rows.
    pub rn_epochs: u64,
    /// Number of tiles executed.
    pub tiles: usize,
}

/// Derives the per-tile accelerator seed from a master seed. Tile 0 keeps
/// the master seed, so a single-tile run is identical to the untiled
/// flow.
#[must_use]
pub(crate) fn tile_seed(master: u64, tile: usize) -> u64 {
    master ^ (tile as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn tile_ranges(height: usize) -> Vec<std::ops::Range<usize>> {
    (0..height.div_ceil(TILE_ROWS))
        .map(|t| t * TILE_ROWS..((t + 1) * TILE_ROWS).min(height))
        .collect()
}

/// Runs `worker` over every row tile of an output image of the given
/// `height`, returning tile outputs in tile order. The worker receives
/// `(tile_index, row_range)` and must be deterministic in those inputs.
pub(crate) fn run_row_tiles<W>(height: usize, worker: W) -> Result<Vec<TileOut>, ImgError>
where
    W: Fn(usize, std::ops::Range<usize>) -> Result<TileOut, ImgError> + Sync,
{
    let ranges = tile_ranges(height);
    run_tiles_impl(&ranges, &worker)
}

#[cfg(not(feature = "parallel"))]
fn run_tiles_impl<W>(
    ranges: &[std::ops::Range<usize>],
    worker: &W,
) -> Result<Vec<TileOut>, ImgError>
where
    W: Fn(usize, std::ops::Range<usize>) -> Result<TileOut, ImgError> + Sync,
{
    ranges
        .iter()
        .enumerate()
        .map(|(t, r)| worker(t, r.clone()))
        .collect()
}

#[cfg(feature = "parallel")]
fn run_tiles_impl<W>(
    ranges: &[std::ops::Range<usize>],
    worker: &W,
) -> Result<Vec<TileOut>, ImgError>
where
    W: Fn(usize, std::ops::Range<usize>) -> Result<TileOut, ImgError> + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    // `IMGPROC_TILE_THREADS` overrides the worker count (useful to force
    // the threaded path on single-core CI or to pin thread counts).
    let threads = std::env::var("IMGPROC_TILE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .min(ranges.len());
    if threads <= 1 {
        return ranges
            .iter()
            .enumerate()
            .map(|(t, r)| worker(t, r.clone()))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<TileOut, ImgError>>>> =
        ranges.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                if t >= ranges.len() {
                    break;
                }
                let result = worker(t, ranges[t].clone());
                *slots[t].lock().expect("tile slot lock") = Some(result);
            });
        }
    });
    // Collect in tile order; scheduling cannot affect the merged result.
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("tile slot lock")
                .expect("every tile index was claimed")
        })
        .collect()
}

/// Runs one emitted [`Program`] per row tile: `build` constructs the
/// tile's accelerator, `emit` the tile's program (one output per pixel,
/// row-major). Planning and execution happen per tile — on the work-queue
/// threads under the `parallel` feature — and each tile's outputs are
/// quantized to pixels, with ledgers/epochs collected for tile-ordered
/// merging.
pub(crate) fn run_tile_programs<B, E>(
    height: usize,
    build: B,
    emit: E,
) -> Result<Vec<TileOut>, ImgError>
where
    B: Fn(usize) -> Result<Accelerator, ImgError> + Sync,
    E: Fn(usize, std::ops::Range<usize>) -> Program + Sync,
{
    run_row_tiles(height, |t, rows| {
        let mut acc = build(t)?;
        let program = emit(t, rows);
        let values = program.run_on(&mut acc)?;
        Ok(TileOut {
            pixels: values.into_iter().map(prob_to_pixel).collect(),
            ledger: *acc.ledger(),
            cache_hits: acc.encode_cache_hits(),
            rn_epochs: acc.rn_epoch(),
        })
    })
}

/// Assembles tile outputs into `(pixels, stats)`, merging ledgers in tile
/// order.
pub(crate) fn assemble(tiles: Vec<TileOut>) -> (Vec<u8>, ScRunStats) {
    let mut pixels = Vec::with_capacity(tiles.iter().map(|t| t.pixels.len()).sum());
    let mut stats = ScRunStats {
        tiles: tiles.len(),
        ..ScRunStats::default()
    };
    for tile in tiles {
        pixels.extend_from_slice(&tile.pixels);
        stats.ledger.merge(&tile.ledger);
        stats.encode_cache_hits += tile.cache_hits;
        stats.rn_epochs += tile.rn_epochs;
    }
    (pixels, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_tile(t: usize, rows: std::ops::Range<usize>) -> Result<TileOut, ImgError> {
        Ok(TileOut {
            pixels: rows.map(|r| (r * 10 + t) as u8).collect(),
            ledger: CostLedger {
                adc_samples: 1,
                ..CostLedger::default()
            },
            cache_hits: t as u64,
            rn_epochs: 1,
        })
    }

    #[test]
    fn tiles_cover_the_height_in_order() {
        let outs = run_row_tiles(19, constant_tile).unwrap();
        assert_eq!(outs.len(), 3);
        let (pixels, stats) = assemble(outs);
        assert_eq!(pixels.len(), 19);
        assert_eq!(pixels[0], 0); // row 0, tile 0
        assert_eq!(pixels[8], 81); // row 8, tile 1
        assert_eq!(stats.tiles, 3);
        assert_eq!(stats.ledger.adc_samples, 3);
        assert_eq!(stats.encode_cache_hits, 1 + 2);
        assert_eq!(stats.rn_epochs, 3);
    }

    #[test]
    fn errors_propagate() {
        let r = run_row_tiles(16, |t, rows| {
            if t == 1 {
                Err(ImgError::InvalidParameter("boom"))
            } else {
                constant_tile(t, rows)
            }
        });
        assert!(r.is_err());
    }

    #[test]
    fn tile_seed_is_stable_and_tile0_is_master() {
        assert_eq!(tile_seed(42, 0), 42);
        assert_ne!(tile_seed(42, 1), tile_seed(42, 2));
        assert_eq!(tile_seed(7, 3), tile_seed(7, 3));
    }
}
